#!/usr/bin/env python
"""Dynamic load balancing and task migration in action (sections 4.3, 5.5).

A persistent load imbalance -- the first half of the node IDs run the 3 ms
coarse grain, the rest the 0.3 ms fine grain -- that no weight-blind static
partitioner can capture.  The run compares:

* the static Metis partition,
* the thesis's centralized heuristic (busy = 25 % above ALL neighbours,
  one task migrated per busy-idle pair), and
* the greedy pairing extension (section 7's "more rigorous algorithm").

It also prints the migration log: watch tasks stream from the heavy region
to the idle processors over successive balancer invocations.

Run:  python examples/dynamic_load_balancing.py
"""

from __future__ import annotations

from repro.apps.imbalance import ImbalanceSchedule, make_imbalanced_average_fn
from repro.core import (
    CentralizedHeuristicBalancer,
    GreedyPairBalancer,
    ICPlatform,
    PlatformConfig,
)
from repro.graphs import hex64
from repro.partitioning import MetisLikePartitioner

ITERATIONS = 60
NPROCS = 8

#: heavy first half forever -- invisible to a static partitioner.
SCHEDULE = ImbalanceSchedule(windows=((10**9, 0.0, 0.5),))


def main() -> None:
    graph = hex64()
    partition = MetisLikePartitioner(seed=1).partition(graph, NPROCS)
    node_fn = make_imbalanced_average_fn(SCHEDULE)

    def run(dynamic: bool, balancer=None):
        config = PlatformConfig(
            iterations=ITERATIONS,
            dynamic_load_balancing=dynamic,
            lb_period=10,
            track_trace=True,
        )
        platform = ICPlatform(graph, node_fn, config=config, balancer=balancer)
        return platform.run(partition)

    static = run(dynamic=False)
    centralized = run(dynamic=True, balancer=CentralizedHeuristicBalancer(0.25))
    greedy = run(dynamic=True, balancer=GreedyPairBalancer(0.25))

    print(f"hex64, {NPROCS} processors, {ITERATIONS} iterations, "
          f"heavy region = first 50% of node IDs\n")
    print(f"  {'strategy':<22} {'elapsed (s)':>12} {'migrations':>11}")
    for label, result in (
        ("static partition", static),
        ("centralized heuristic", centralized),
        ("greedy pairing", greedy),
    ):
        print(f"  {label:<22} {result.elapsed:>12.3f} {len(result.migrations):>11}")

    print("\nmigration log (greedy):")
    for event in greedy.migrations[:12]:
        print(
            f"  iteration {event.iteration:>3}: node {event.global_id:>3} "
            f"proc {event.from_proc} -> proc {event.to_proc}"
        )
    if len(greedy.migrations) > 12:
        print(f"  ... {len(greedy.migrations) - 12} more")

    moved_heavy = sum(
        1 for e in greedy.migrations if e.global_id <= graph.num_nodes // 2
    )
    print(
        f"\n{moved_heavy}/{len(greedy.migrations)} migrated tasks were heavy "
        "nodes -- the balancer diffuses exactly the load the static "
        "partitioner could not see."
    )
    print("\ncompute-imbalance trace (greedy; 1.0 = perfectly balanced):")
    series = dict(greedy.trace.imbalance_series())
    for iteration in (1, 10, 11, 20, 21, 40, 60):
        print(f"  iteration {iteration:>3}: {series[iteration]:.3f}")

    # Values are identical regardless of strategy: migration is transparent.
    assert static.values == greedy.values == centralized.values
    print("\nfinal node values identical across all three strategies: True")


if __name__ == "__main__":
    main()
