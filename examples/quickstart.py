#!/usr/bin/env python
"""Quickstart: parallelize a sequential iterative computation in ~20 lines.

This is the thesis's pitch in miniature.  You have a sequential node
computation (here: every node averages itself with its neighbours, plus a
0.3 ms compute grain).  To run it in parallel you plug three things into the
platform -- the application graph, the node data (initial values), and the
node function -- and pick a static partitioner.  No explicit message passing
anywhere.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro.apps import FINE_GRAIN, make_average_fn
from repro.core import ICPlatform, PlatformConfig
from repro.graphs import hex64
from repro.partitioning import MetisLikePartitioner


def main() -> None:
    # Plug-in 1: the application program graph (a 64-node hexagonal grid).
    graph = hex64()

    # Plug-in 2: the node computation function.  `make_average_fn` wraps the
    # neighbour-average with a 0.3 ms virtual compute grain -- the paper's
    # "fine grain" setting.  Write your own as:
    #
    #     def my_node_fn(node, ctx):
    #         ctx.work(my_grain_seconds)          # charge compute time
    #         return f(node.value, node.neighbors)  # new node value
    node_fn = make_average_fn(FINE_GRAIN)

    # Plug-in 3 (optional): initial node data; defaults to the global ID.

    # A third-party static partitioner maps nodes onto processors.
    partitioner = MetisLikePartitioner(seed=1)

    print(f"{'procs':>6} {'elapsed (s)':>12} {'speedup':>8} {'edge cut':>9}")
    baseline = None
    for nprocs in (1, 2, 4, 8, 16):
        partition = partitioner.partition(graph, nprocs)
        platform = ICPlatform(graph, node_fn, config=PlatformConfig(iterations=20))
        result = platform.run(partition)
        baseline = baseline or result.elapsed
        print(
            f"{nprocs:>6} {result.elapsed:>12.4f} "
            f"{baseline / result.elapsed:>8.2f} {partition.edge_cut():>9}"
        )

    # The computed values are identical no matter how many processors ran.
    sample = sorted(result.values.items())[:4]
    print("\nfirst node values:", [(g, round(v, 3)) for g, v in sample])


if __name__ == "__main__":
    main()
