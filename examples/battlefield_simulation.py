#!/usr/bin/env python
"""The battlefield management simulation on the platform (section 5.3).

A 32x32-hex terrain; red deploys west, blue east; fronts advance, collide,
and combat zones form dynamically -- concentrating compute load in space
and time.  Each simulation step runs TWO compute/communicate rounds
(combat, then movement), the platform customization the thesis describes
for this application.

The script runs the same battle sequentially and on 8 simulated processors
under two partitioners, verifies the outcomes are bit-identical, and prints
a battle report plus the runtime comparison.

Run:  python examples/battlefield_simulation.py
"""

from __future__ import annotations

from repro.apps.battlefield import (
    BattlefieldApp,
    HexState,
    opposing_fronts,
    render_map,
    simulate_sequential,
)
from repro.core import ICPlatform
from repro.partitioning import ColumnBandPartitioner, MetisLikePartitioner

STEPS = 20


def battle_report(app: BattlefieldApp, states: dict[int, HexState]) -> None:
    red, blue = HexState.total_strengths(states.values())
    red0, blue0 = app.scenario.total_strengths()
    destroyed_red = sum(s.destroyed_red for s in states.values())
    destroyed_blue = sum(s.destroyed_blue for s in states.values())
    contested = sum(1 for s in states.values() if s.contested)
    grid = app.scenario.grid
    front_cols = [grid.rc(gid)[1] for gid, s in states.items() if s.contested]
    print(f"  after {STEPS} steps:")
    print(f"    red   {red:8.1f} / {red0:.0f} deployed  ({destroyed_red:6.1f} destroyed)")
    print(f"    blue  {blue:8.1f} / {blue0:.0f} deployed  ({destroyed_blue:6.1f} destroyed)")
    print(f"    contested hexes: {contested}", end="")
    if front_cols:
        print(f"  (front around columns {min(front_cols)}-{max(front_cols)})")
    else:
        print()


def main() -> None:
    app = BattlefieldApp(opposing_fronts(depth=12, strength_per_hex=8.0))
    graph = app.graph()
    print(f"battlefield: {graph.num_nodes} hexes, {graph.num_edges} adjacencies")

    print("\nsequential reference:")
    reference = simulate_sequential(app, STEPS)
    battle_report(app, reference)
    print("\n  terrain map (r/R/M red, b/B/W blue, x contested):")
    for line in render_map(app.scenario.grid, reference).splitlines()[::2]:
        print("   ", line)  # every other row keeps the map compact

    print("\nplatform runs (8 simulated processors):")
    for partitioner in (MetisLikePartitioner(seed=0), ColumnBandPartitioner(32, 32)):
        partition = partitioner.partition(graph, 8)
        platform = ICPlatform(
            graph,
            app.node_fns(),
            init_value=app.init_value,
            config=app.platform_config(steps=STEPS),
        )
        result = platform.run(partition)
        identical = result.values == reference
        print(
            f"  {partition.method:<10} cut={partition.edge_cut():<4} "
            f"elapsed={result.elapsed:.3f}s  "
            f"matches sequential: {identical}"
        )
        assert identical, "platform execution must be bit-identical"


if __name__ == "__main__":
    main()
