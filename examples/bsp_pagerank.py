#!/usr/bin/env python
"""PageRank as a BSP vertex program (the thesis's closing future-work item).

"We will also explore extending it to applications that use the BSP model
[HMS98], as this model essentially divides the computation from
communication phases as iC2mpi does."  This example runs Pregel-style
PageRank on the BSP layer built over the same simulated MPI substrate and
the same partitioner plug-ins the platform uses.

Run:  python examples/bsp_pagerank.py
"""

from __future__ import annotations

from repro.core import VertexContext, run_vertex_program
from repro.graphs import preferential_attachment
from repro.mpi import IDEAL
from repro.partitioning import MetisLikePartitioner

DAMPING = 0.85
SUPERSTEPS = 30


class PageRank:
    """Undirected-graph PageRank: each vertex spreads its rank along its
    incident edges every superstep; after a fixed horizon everyone halts."""

    def __init__(self, graph):
        self.num_vertices = graph.num_nodes

    def initial_value(self, gid: int, graph) -> float:
        return 1.0 / self.num_vertices

    def compute(self, value: float, inbox: list[float], ctx: VertexContext) -> float:
        if ctx.superstep > 0:
            value = (1 - DAMPING) / self.num_vertices + DAMPING * sum(inbox)
        if ctx.superstep < SUPERSTEPS:
            if ctx.neighbors:
                ctx.send_to_neighbors(value / len(ctx.neighbors))
        else:
            ctx.vote_to_halt()
        return value


def main() -> None:
    graph = preferential_attachment(100, edges_per_node=2, seed=7)
    print(f"graph: {graph.name} ({graph.num_nodes} vertices, {graph.num_edges} edges)")

    for nprocs in (1, 4, 8):
        partition = MetisLikePartitioner(seed=1).partition(graph, nprocs)
        values, supersteps = run_vertex_program(
            graph,
            partition,
            PageRank(graph),
            max_supersteps=SUPERSTEPS + 2,
            machine=IDEAL,
        )
        total = sum(values.values())
        top = sorted(values.items(), key=lambda kv: -kv[1])[:5]
        print(
            f"\n{nprocs} processors, {supersteps} supersteps, "
            f"rank mass {total:.6f}"
        )
        print("  top vertices:", ", ".join(f"{g}:{r:.4f}" for g, r in top))
        if nprocs == 1:
            reference = values
        else:
            drift = max(abs(values[g] - reference[g]) for g in graph.nodes())
            print(f"  max drift vs sequential run: {drift:.2e}")
            assert drift < 1e-12

    # Sanity: high-degree hubs rank highest on a preferential-attachment graph.
    hub = max(graph.nodes(), key=graph.degree)
    assert reference[hub] == max(reference.values())
    print(f"\nhighest-rank vertex is the biggest hub (vertex {hub}, "
          f"degree {graph.degree(hub)})")


if __name__ == "__main__":
    main()
