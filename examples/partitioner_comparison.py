#!/usr/bin/env python
"""The platform as a partitioning test-bed (Goal 3 of the thesis).

Designers of partitioning algorithms "can only estimate the efficiency of
their techniques analytically"; iC2mpi lets them *execute*.  This example
pits six partitioners against each other on two very different graphs --
a regular hex mesh and an irregular random graph -- and ranks them by
actual platform runtime, not just edge cut.

It also shows the PaGrid-style architecture-awareness: on a heterogeneous
two-cluster machine with expensive inter-cluster links, partitioning
*against the processor graph* beats partitioning in the abstract.

Run:  python examples/partitioner_comparison.py
"""

from __future__ import annotations

from repro.apps import FINE_GRAIN, make_average_fn
from repro.core import ICPlatform, PlatformConfig
from repro.graphs import hex64, random_connected_graph
from repro.mpi import MachineModel, TopologyMachineModel
from repro.partitioning import (
    BfsGreedyPartitioner,
    MetisLikePartitioner,
    PaGridLikePartitioner,
    ProcessorGraph,
    RandomPartitioner,
    RoundRobinPartitioner,
    SpectralPartitioner,
)

NPROCS = 8
ITERATIONS = 20


def runtime(graph, partition, machine=None) -> float:
    platform = ICPlatform(
        graph, make_average_fn(FINE_GRAIN), config=PlatformConfig(iterations=ITERATIONS)
    )
    kwargs = {"machine": machine} if machine else {}
    return platform.run(partition, **kwargs).elapsed


def main() -> None:
    graphs = {
        "hex64 (regular mesh)": hex64(),
        "rand64 (irregular)": random_connected_graph(64, 4.0, seed=0, name="rand64"),
    }
    partitioners = [
        MetisLikePartitioner(seed=1),
        SpectralPartitioner(seed=1),
        BfsGreedyPartitioner(seed=1),
        PaGridLikePartitioner(ProcessorGraph.hypercube(NPROCS), rref=0.45, seed=1),
        RandomPartitioner(seed=1),
        RoundRobinPartitioner(),
    ]

    for label, graph in graphs.items():
        print(f"\n{label}, {NPROCS} processors, {ITERATIONS} iterations:")
        print(f"  {'partitioner':<12} {'edge cut':>8} {'imbalance':>10} {'runtime (s)':>12}")
        rows = []
        for partitioner in partitioners:
            partition = partitioner.partition(graph, NPROCS)
            rows.append(
                (runtime(graph, partition), partition.method,
                 partition.edge_cut(), partition.imbalance())
            )
        for elapsed, method, cut, imbalance in sorted(rows):
            print(f"  {method:<12} {cut:>8} {imbalance:>10.3f} {elapsed:>12.4f}")

    # --- Architecture awareness on a heterogeneous grid ------------------
    print("\nheterogeneous machine: two 4-processor clusters, inter-cluster "
          "links 10x slower")
    procgraph = ProcessorGraph.heterogeneous_grid([4, 4], intra_cost=1.0, inter_cost=10.0)
    # The machine model carries the SAME topology: messages crossing the
    # slow inter-cluster links pay for the distance, so a better mapping
    # becomes a better runtime.
    base = MachineModel(name="grid", latency=200e-6, bandwidth=20e6,
                        send_overhead=30e-6, recv_overhead=30e-6)
    machine = TopologyMachineModel.wrap(base, procgraph, hop_latency_factor=1.0)
    graph = hex64()
    from repro.partitioning import Partition

    metis = MetisLikePartitioner(seed=1).partition(graph, NPROCS)
    # A topology-oblivious partitioner makes no promise about part
    # numbering; interleave the labels across the two clusters to stand for
    # the arbitrary mapping you get in general.  (Recursive bisection's own
    # numbering happens to be hierarchical and thus accidentally
    # cluster-friendly -- worth knowing, but not something to rely on.)
    perm = [0, 4, 1, 5, 2, 6, 3, 7]
    scrambled = Partition.from_assignment(
        graph, [perm[p] for p in metis.assignment], NPROCS, method="metis-anymap"
    )
    pagrid = PaGridLikePartitioner(procgraph, rref=0.45, seed=1).partition(
        graph, NPROCS
    )
    for partition in (scrambled, metis, pagrid):
        cost = sum(
            procgraph.distance(partition.owner(u), partition.owner(v))
            for u, v in graph.edges()
            if partition.owner(u) != partition.owner(v)
        )
        print(
            f"  {partition.method:<13} cut={partition.edge_cut():<4} "
            f"mapped comm cost={cost:7.1f}  "
            f"runtime={runtime(graph, partition, machine):.4f}s"
        )
    print(
        "\n  note: with the platform's per-iteration barrier, concurrent\n"
        "  message flights overlap, so end-to-end runtime only feels the\n"
        "  WORST link each iteration -- mapping quality (the 377 -> 205\n"
        "  cost drop above) pays off when many peers contend at scale, as\n"
        "  the Figure-17 benchmark shows, not on this 2-cluster toy."
    )


if __name__ == "__main__":
    main()
