#!/usr/bin/env python
"""Combined-arms battlefield: typed unit mixes on the platform.

Figure 2's original ``hex_struct`` tracks individual units; this variant
restores that typed structure at the arm level -- armor, infantry and
artillery with a rock-paper-scissors effectiveness matrix, indirect
artillery fire, and per-arm mobility.  Watch the force composition shift
as the battle develops: fast armor spearheads the advance and pays for it,
artillery attrits from depth.

Run:  python examples/combined_arms.py
"""

from __future__ import annotations

from repro.apps.battlefield import (
    ARMS,
    CombinedArmsApp,
    ForceMix,
    opposing_arms_fronts,
    simulate_arms_sequential,
)
from repro.core import ICPlatform
from repro.graphs import HexGrid
from repro.partitioning import MetisLikePartitioner

STEPS = 14


def composition(states, side: str) -> ForceMix:
    total = ForceMix()
    for state in states.values():
        total = total.plus(state.side(side))
        for _, mix in (state.red_out if side == "red" else state.blue_out):
            total = total.plus(mix)
    return total


def main() -> None:
    initial, grid = opposing_arms_fronts(grid=HexGrid(12, 16), depth=5)
    app = CombinedArmsApp(initial, grid)
    print(f"terrain {grid.rows}x{grid.cols}; each deployed hex fields "
          "armor 3 / infantry 4 / artillery 2")

    print(f"\n{'step':>5}  {'red armor':>9} {'red inf':>8} {'red arty':>9}"
          f"  | {'blue total':>10}")
    checkpoints = (0, 4, 8, STEPS)
    for steps in checkpoints:
        states = simulate_arms_sequential(app, steps) if steps else app.initial
        red = composition(states, "red")
        blue = composition(states, "blue")
        print(f"{steps:>5}  {red.armor:>9.1f} {red.infantry:>8.1f} "
              f"{red.artillery:>9.1f}  | {blue.total:>10.1f}")

    # Platform equivalence on 6 processors.
    graph = app.graph()
    partition = MetisLikePartitioner(seed=0).partition(graph, 6)
    platform = ICPlatform(
        graph,
        app.node_fns(),
        init_value=app.init_value,
        config=app.platform_config(steps=STEPS),
    )
    result = platform.run(partition)
    reference = simulate_arms_sequential(app, STEPS)
    print(f"\nplatform on 6 processors: elapsed {result.elapsed:.3f} virtual s; "
          f"matches sequential: {result.values == reference}")
    assert result.values == reference

    red = composition(reference, "red")
    share = {arm: red.arm(arm) / red.total for arm in ARMS}
    print("red composition after the battle: "
          + ", ".join(f"{arm} {share[arm]:.0%}" for arm in ARMS)
          + "  (deployed at 33%/44%/22%)")


if __name__ == "__main__":
    main()
