#!/usr/bin/env python
"""Difference equations on the platform: a Jacobi heat plate.

The introduction motivates iC2mpi with "mesh-structured computations, such
as difference equations [Q04]".  This example solves the steady-state heat
equation on a 24x24 plate (top edge hot, others cold) by Jacobi relaxation,
distributed over 8 simulated processors, and prints the converging
temperature field plus the residual curve.

Run:  python examples/heat_plate.py
"""

from __future__ import annotations

from repro.apps import hot_edge_plate, make_jacobi_fn, residual
from repro.core import ICPlatform, PlatformConfig
from repro.partitioning import MetisLikePartitioner

ROWS = COLS = 24
NPROCS = 8


def render_field(values: dict[int, float], rows: int, cols: int) -> str:
    """Coarse thermal map: one glyph per 3x3 block."""
    glyphs = " .:-=+*#%@"
    lines = []
    for r in range(0, rows, 3):
        row = ""
        for c in range(0, cols, 3):
            block = [
                values[rr * cols + cc + 1]
                for rr in range(r, min(r + 3, rows))
                for cc in range(c, min(c + 3, cols))
            ]
            mean = sum(block) / len(block)
            row += glyphs[min(9, int(mean / 100.0 * 9.99))]
        lines.append(row)
    return "\n".join(lines)


def main() -> None:
    graph, boundary, init_value = hot_edge_plate(ROWS, COLS)
    partition = MetisLikePartitioner(seed=1).partition(graph, NPROCS)
    print(f"plate {ROWS}x{COLS}, {NPROCS} processors, partition cut "
          f"{partition.edge_cut()}")

    values = {gid: init_value(gid) for gid in graph.nodes()}
    print(f"\ninitial residual: {residual(graph, values, boundary):7.3f}")

    total_iterations = 0
    for batch in (10, 40, 150):
        platform = ICPlatform(
            graph,
            make_jacobi_fn(boundary),
            init_value=lambda gid: values[gid],
            config=PlatformConfig(iterations=batch),
        )
        result = platform.run(partition)
        values = result.values
        total_iterations += batch
        print(
            f"after {total_iterations:>4} iterations: residual "
            f"{residual(graph, values, boundary):7.3f}   "
            f"(elapsed {result.elapsed:.4f} virtual s)"
        )

    print("\ntemperature field (hot top edge, @ = 100 degrees):")
    print(render_field(values, ROWS, COLS))


if __name__ == "__main__":
    main()
