#!/usr/bin/env python
"""Deterministic fault injection + checkpoint/restart on the platform.

A seeded :class:`~repro.mpi.faults.FaultPlan` perturbs the virtual cluster
-- 5 % of messages take an extra flight delay, rank 1 runs 2.5x slow for a
window, and rank 2 crashes at the start of iteration 40.  The platform
checkpoints every 10 iterations, so the crash rolls every rank back to the
iteration-30 snapshot and re-runs, with detection/restore/re-execution all
charged to the virtual clocks.

The demo shows the three guarantees the fault subsystem makes:

1. **Determinism** -- the same plan run twice produces bit-identical
   virtual end-times and final node states.
2. **Transparency** -- crashes and delays change *timing*, never *answers*:
   final values match the fault-free run exactly.
3. **Accountability** -- the recovery overhead is visible in the
   ExecutionTrace (rolled-back iteration records) and in the ``recovery``
   phase bucket.

Run:  python examples/fault_tolerance.py
"""

from __future__ import annotations

from repro.apps.average import FINE_GRAIN, make_average_fn
from repro.core import ICPlatform, PlatformConfig
from repro.graphs import hex64
from repro.mpi.faults import FaultPlan
from repro.partitioning import MetisLikePartitioner

ITERATIONS = 60
NPROCS = 4

#: crash rank 2 at iteration 40; 5% message delay; rank 1 slow early on.
PLAN = FaultPlan.parse("seed=7,delay=0.05:0.002,slow=1:2.5:0.0:0.05,crash=2@40")


def main() -> None:
    graph = hex64()
    partition = MetisLikePartitioner(seed=1).partition(graph, NPROCS)
    node_fn = make_average_fn(FINE_GRAIN)
    config = PlatformConfig(
        iterations=ITERATIONS, checkpoint_period=10, track_trace=True
    )

    def run(faults):
        return ICPlatform(graph, node_fn, config=config).run(
            partition, faults=faults
        )

    clean = run(None)
    faulted = run(PLAN)
    replay = run(PLAN)

    print(f"hex64, {NPROCS} processors, {ITERATIONS} iterations")
    print(f"fault plan: {PLAN.describe()}\n")

    print(f"  {'run':<12} {'elapsed (s)':>12} {'checkpoints':>12} {'recoveries':>11}")
    for label, result in (("fault-free", clean), ("faulted", faulted), ("replay", replay)):
        print(
            f"  {label:<12} {result.elapsed:>12.6f} "
            f"{result.checkpoints:>12} {result.recoveries:>11}"
        )

    # 1. Determinism: bit-identical virtual end-times and node states.
    assert faulted.elapsed == replay.elapsed
    assert faulted.values == replay.values
    assert faulted.trace.records == replay.trace.records
    print("\nreplay bit-identical to first faulted run: True")

    # 2. Transparency: faults change timing, never answers.
    assert faulted.values == clean.values
    print("final node values match the fault-free run: True")

    # 3. Accountability: the overhead is visible, not hidden.
    print(f"\nfault report: {faulted.fault_report.summary()}")
    redone = faulted.trace.rolled_back()
    print(
        f"recovery: {len(redone)} iteration records rolled back "
        f"({faulted.trace.recovery_overhead() * 1e3:.3f} ms re-executed), "
        f"slowdown vs fault-free "
        f"{(faulted.elapsed / clean.elapsed - 1.0) * 100.0:.1f}%"
    )
    print("\nmean recovery phase per rank: "
          f"{faulted.mean_phases.recovery * 1e3:.3f} ms")

    print("\ntrace around the crash (iteration 40; note the R flags):")
    for line in faulted.trace.render(max_iterations=ITERATIONS).splitlines():
        fields = line.split()
        if fields and fields[0].isdigit() and 37 <= int(fields[0]) <= 42:
            print(f"  {line}")
    print(f"  {faulted.trace.render().splitlines()[-1]}")


if __name__ == "__main__":
    main()
