#!/usr/bin/env python
"""File-based workflow: Chaco graphs and partition files (Appendix A).

The thesis drives the platform from files: the application graph in Chaco
format (``64_r_in.txt``) and the partitioner's node-to-processor output
(``64_r_out_16p.txt``).  This example reproduces that pipeline end to end:

1. generate a random application graph and write it in Chaco format,
2. "run the partitioner" (our Metis-like) and write the partition file,
3. read both files back -- as the platform's initialization phase would --
   and execute.

Run:  python examples/chaco_workflow.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro.apps import FINE_GRAIN, make_average_fn
from repro.core import ICPlatform, PlatformConfig
from repro.graphs import (
    random_connected_graph,
    read_chaco,
    read_partition,
    write_chaco,
    write_partition,
)
from repro.partitioning import MetisLikePartitioner, Partition

NPROCS = 16


def main() -> None:
    workdir = Path(tempfile.mkdtemp(prefix="ic2mpi-"))

    # -- 1. the application program graph, on disk in Chaco format --------
    graph = random_connected_graph(64, avg_degree=4.0, seed=0, name="64_r")
    graph_file = workdir / "64_r_in.txt"
    write_chaco(graph, graph_file)
    print(f"wrote {graph_file} ({graph.num_nodes} vertices, {graph.num_edges} edges)")
    print("first lines:")
    for line in graph_file.read_text().splitlines()[:4]:
        print(f"    {line}")

    # -- 2. partition it, write the node-to-processor mapping -------------
    partition = MetisLikePartitioner(seed=1).partition(graph, NPROCS)
    part_file = workdir / f"64_r_out_{NPROCS}p.txt"
    write_partition(list(partition.assignment), part_file)
    print(f"\nwrote {part_file} (edge cut {partition.edge_cut()})")

    # -- 3. reload both files and execute, as the platform's init phase ---
    loaded_graph = read_chaco(graph_file)
    loaded_assignment = read_partition(part_file, num_nodes=loaded_graph.num_nodes)
    loaded_partition = Partition.from_assignment(
        loaded_graph, loaded_assignment, NPROCS, method="from-file"
    )
    assert loaded_graph == graph

    platform = ICPlatform(
        loaded_graph, make_average_fn(FINE_GRAIN), config=PlatformConfig(iterations=20)
    )
    result = platform.run(loaded_partition)
    print(
        f"\nexecuted 20 iterations on {NPROCS} simulated processors: "
        f"{result.elapsed:.4f} virtual seconds"
    )
    print(f"(equivalent command line: mpirun -np {NPROCS} MPIFramework {graph_file.name})")


if __name__ == "__main__":
    main()
