"""Partition-analysis utilities for the test-bed use case.

Goal 3 makes the platform a laboratory for partitioning research; beyond
the headline metrics (edge cut, balance) researchers look at the *shape* of
the subdomains: are parts connected?  how ragged are their surfaces?  which
pairs of processors actually talk, and how unevenly?  These functions
compute those diagnostics for any assignment.
"""

from __future__ import annotations

from collections import deque
from typing import Sequence

from .graph import Graph
from .metrics import part_loads

__all__ = [
    "part_connectivity",
    "surface_to_volume",
    "interface_matrix",
    "interface_stats",
    "partition_summary",
]


def part_connectivity(
    graph: Graph, assignment: Sequence[int], nparts: int
) -> list[int]:
    """Connected components *within* each part (1 = the part is connected).

    Empty parts report 0.  Fragmented parts are a partitioner smell: they
    pay boundary cost without locality benefit.
    """
    components = [0] * nparts
    seen = [False] * (graph.num_nodes + 1)
    for start in graph.nodes():
        if seen[start]:
            continue
        part = assignment[start - 1]
        components[part] += 1
        seen[start] = True
        queue: deque[int] = deque([start])
        while queue:
            u = queue.popleft()
            for v in graph.neighbors(u):
                if not seen[v] and assignment[v - 1] == part:
                    seen[v] = True
                    queue.append(v)
    return components


def surface_to_volume(
    graph: Graph, assignment: Sequence[int], nparts: int
) -> list[float]:
    """Per part: boundary nodes / total nodes (0 for interior-only parts).

    Low ratios mean compact subdomains -- exactly what keeps the platform's
    shadow traffic small relative to compute.  Empty parts report 0.
    """
    boundary = [0] * nparts
    volume = [0] * nparts
    for gid in graph.nodes():
        part = assignment[gid - 1]
        volume[part] += 1
        if any(assignment[v - 1] != part for v in graph.neighbors(gid)):
            boundary[part] += 1
    return [b / v if v else 0.0 for b, v in zip(boundary, volume)]


def interface_matrix(
    graph: Graph, assignment: Sequence[int], nparts: int
) -> list[list[int]]:
    """``matrix[a][b]`` = cut edges between parts a and b (symmetric).

    This is the static analogue of the run-time processor graph the
    dynamic load balancer builds from buffer lengths.
    """
    matrix = [[0] * nparts for _ in range(nparts)]
    for u, v in graph.edges():
        pu, pv = assignment[u - 1], assignment[v - 1]
        if pu != pv:
            matrix[pu][pv] += 1
            matrix[pv][pu] += 1
    return matrix


def interface_stats(
    graph: Graph, assignment: Sequence[int], nparts: int
) -> dict[str, float]:
    """Summary of the interface matrix.

    Returns: ``pairs`` (communicating processor pairs), ``max_degree``
    (most neighbours any processor has), ``max_interface`` (heaviest pair),
    ``mean_interface`` (mean over communicating pairs, 0 when none).
    """
    matrix = interface_matrix(graph, assignment, nparts)
    weights = [
        matrix[a][b] for a in range(nparts) for b in range(a + 1, nparts)
        if matrix[a][b] > 0
    ]
    degrees = [
        sum(1 for b in range(nparts) if matrix[a][b] > 0) for a in range(nparts)
    ]
    return {
        "pairs": float(len(weights)),
        "max_degree": float(max(degrees, default=0)),
        "max_interface": float(max(weights, default=0)),
        "mean_interface": sum(weights) / len(weights) if weights else 0.0,
    }


def partition_summary(
    graph: Graph, assignment: Sequence[int], nparts: int
) -> str:
    """One-screen text report over all diagnostics."""
    from .metrics import communication_volume, edge_cut, load_imbalance

    loads = part_loads(graph, assignment, nparts)
    connectivity = part_connectivity(graph, assignment, nparts)
    stv = surface_to_volume(graph, assignment, nparts)
    stats = interface_stats(graph, assignment, nparts)
    lines = [
        f"parts: {nparts}   nodes: {graph.num_nodes}   edges: {graph.num_edges}",
        f"edge cut: {edge_cut(graph, assignment)}   "
        f"comm volume: {communication_volume(graph, assignment)}   "
        f"imbalance: {load_imbalance(graph, assignment, nparts):.3f}",
        f"interfaces: {stats['pairs']:.0f} pairs, heaviest "
        f"{stats['max_interface']:.0f} edges, max proc degree "
        f"{stats['max_degree']:.0f}",
        "part   load   components   surface/volume",
    ]
    for part in range(nparts):
        lines.append(
            f"{part:4d}   {loads[part]:4d}   {connectivity[part]:10d}   "
            f"{stv[part]:14.3f}"
        )
    return "\n".join(lines)
