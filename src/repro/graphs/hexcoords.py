"""Hexagonal coordinate arithmetic (cube/axial systems).

The grid container in :mod:`.hexgrid` uses odd-r offset coordinates, which
are convenient for storage but awkward for geometry.  This module provides
the standard cube-coordinate toolbox -- exact distances, rings, ranges and
interpolated lines -- used by the battlefield analytics (front lengths,
zone radii) and handy for any hex-based application plugged into the
platform.

Conversions follow the usual odd-r conventions: offset ``(row, col)`` maps
to cube ``(x, y, z)`` with ``x + y + z == 0``.
"""

from __future__ import annotations

from typing import Iterator

__all__ = [
    "offset_to_cube",
    "cube_to_offset",
    "cube_distance",
    "hex_distance",
    "cube_ring",
    "cube_range",
    "hexes_within",
    "hex_line",
]

Cube = tuple[int, int, int]

#: The six cube-coordinate direction vectors.
_CUBE_DIRECTIONS: tuple[Cube, ...] = (
    (1, -1, 0), (1, 0, -1), (0, 1, -1), (-1, 1, 0), (-1, 0, 1), (0, -1, 1)
)


def offset_to_cube(row: int, col: int) -> Cube:
    """Odd-r offset -> cube coordinates."""
    x = col - (row - (row & 1)) // 2
    z = row
    y = -x - z
    return (x, y, z)


def cube_to_offset(cube: Cube) -> tuple[int, int]:
    """Cube -> odd-r offset coordinates (inverse of :func:`offset_to_cube`)."""
    x, y, z = cube
    if x + y + z != 0:
        raise ValueError(f"invalid cube coordinate {cube}: components must sum to 0")
    row = z
    col = x + (z - (z & 1)) // 2
    return (row, col)


def cube_distance(a: Cube, b: Cube) -> int:
    """Hex (Chebyshev-like) distance between two cube coordinates."""
    return max(abs(a[0] - b[0]), abs(a[1] - b[1]), abs(a[2] - b[2]))


def hex_distance(a: tuple[int, int], b: tuple[int, int]) -> int:
    """Hex distance between two odd-r offset coordinates."""
    return cube_distance(offset_to_cube(*a), offset_to_cube(*b))


def cube_ring(center: Cube, radius: int) -> list[Cube]:
    """The hexes exactly ``radius`` away from ``center`` (6*radius of them;
    radius 0 yields just the center)."""
    if radius < 0:
        raise ValueError(f"radius must be >= 0, got {radius}")
    if radius == 0:
        return [center]
    results: list[Cube] = []
    # start radius steps in direction 4, then walk around the six sides
    x, y, z = center
    dx, dy, dz = _CUBE_DIRECTIONS[4]
    cube = (x + dx * radius, y + dy * radius, z + dz * radius)
    for side in range(6):
        for _ in range(radius):
            results.append(cube)
            dx, dy, dz = _CUBE_DIRECTIONS[side]
            cube = (cube[0] + dx, cube[1] + dy, cube[2] + dz)
    return results


def cube_range(center: Cube, radius: int) -> Iterator[Cube]:
    """All hexes within ``radius`` of ``center`` (inclusive)."""
    if radius < 0:
        raise ValueError(f"radius must be >= 0, got {radius}")
    cx, cy, cz = center
    for dx in range(-radius, radius + 1):
        for dy in range(max(-radius, -dx - radius), min(radius, -dx + radius) + 1):
            dz = -dx - dy
            yield (cx + dx, cy + dy, cz + dz)


def hexes_within(
    center: tuple[int, int], radius: int, rows: int, cols: int
) -> list[tuple[int, int]]:
    """In-bounds odd-r offset cells within ``radius`` of ``center``."""
    out = []
    for cube in cube_range(offset_to_cube(*center), radius):
        row, col = cube_to_offset(cube)
        if 0 <= row < rows and 0 <= col < cols:
            out.append((row, col))
    return out


def _cube_lerp(a: Cube, b: Cube, t: float) -> tuple[float, float, float]:
    return tuple(a[i] + (b[i] - a[i]) * t for i in range(3))  # type: ignore[return-value]


def _cube_round(frac: tuple[float, float, float]) -> Cube:
    rx, ry, rz = (round(c) for c in frac)
    dx, dy, dz = (abs(r - c) for r, c in zip((rx, ry, rz), frac))
    if dx > dy and dx > dz:
        rx = -ry - rz
    elif dy > dz:
        ry = -rx - rz
    else:
        rz = -rx - ry
    return (int(rx), int(ry), int(rz))


def hex_line(a: tuple[int, int], b: tuple[int, int]) -> list[tuple[int, int]]:
    """The offset cells on the straight hex line from ``a`` to ``b``
    (inclusive) -- useful for line-of-sight/march-route queries."""
    ca, cb = offset_to_cube(*a), offset_to_cube(*b)
    steps = cube_distance(ca, cb)
    if steps == 0:
        return [a]
    out = []
    for i in range(steps + 1):
        # nudge off grid-edge ties for stable rounding
        frac = _cube_lerp(ca, cb, i / steps)
        frac = (frac[0] + 1e-6, frac[1] + 2e-6, frac[2] - 3e-6)
        out.append(cube_to_offset(_cube_round(frac)))
    return out
