"""Chaco graph-format I/O.

The thesis feeds graphs to Metis/PaGrid in Chaco format and reads the
node-to-processor mapping back from a partition file (Appendix A's
``InitializeGraph`` / ``InitializeInputArray`` / ``InitializeOutputArray``).
This module implements both directions, covering the four ``fmt`` codes the
appendix parses:

* ``fmt = 0``  -- unweighted graph,
* ``fmt = 1``  -- weights on edges,
* ``fmt = 10`` -- a single weight on each vertex,
* ``fmt = 11`` -- weights on both vertices and edges.

A Chaco file's first line is ``<num_vertices> <num_edges> [fmt]``; each of
the following ``num_vertices`` lines lists (optionally a vertex weight, then)
the neighbours of vertex ``i`` as 1-based IDs, with the edge weight following
each neighbour when edges are weighted.
"""

from __future__ import annotations

import io
from pathlib import Path
from typing import Sequence

from .graph import Graph

__all__ = [
    "read_chaco",
    "write_chaco",
    "parse_chaco",
    "format_chaco",
    "read_partition",
    "write_partition",
    "parse_partition",
    "format_partition",
]

_VALID_FMTS = (0, 1, 10, 11)


def parse_chaco(text: str, name: str = "chaco") -> Graph:
    """Parse Chaco-format text into a :class:`Graph`."""
    # Comment lines are dropped; *blank* lines are kept because a vertex
    # with no neighbours (and no weights) is encoded as an empty line.
    lines = [ln for ln in text.splitlines() if not ln.lstrip().startswith("%")]
    while lines and not lines[0].strip():
        lines.pop(0)
    if not lines:
        raise ValueError("empty Chaco input")
    header = lines[0].split()
    if len(header) < 2:
        raise ValueError(f"bad Chaco header: {lines[0]!r}")
    num_vertices = int(header[0])
    num_edges = int(header[1])
    fmt = int(header[2]) if len(header) >= 3 else 0
    if fmt not in _VALID_FMTS:
        raise ValueError(f"unsupported Chaco fmt {fmt}; expected one of {_VALID_FMTS}")
    body = lines[1:]
    # Tolerate extra trailing blank lines (editors often add one); interior
    # blanks are significant (isolated vertices).
    while len(body) > num_vertices and not body[-1].strip():
        body.pop()
    if len(body) != num_vertices:
        raise ValueError(
            f"Chaco header promises {num_vertices} vertex lines, found {len(body)}"
        )

    vertex_weighted = fmt in (10, 11)
    edge_weighted = fmt in (1, 11)

    adjacency: list[list[int]] = []
    node_weights: list[int] = []
    edge_weights: dict[tuple[int, int], int] = {}
    for gid, line in enumerate(body, start=1):
        tokens = [int(tok) for tok in line.split()]
        idx = 0
        if vertex_weighted:
            if not tokens:
                raise ValueError(f"vertex {gid}: missing vertex weight")
            node_weights.append(tokens[0])
            idx = 1
        else:
            node_weights.append(1)
        nbrs: list[int] = []
        if edge_weighted:
            rest = tokens[idx:]
            if len(rest) % 2 != 0:
                raise ValueError(f"vertex {gid}: dangling edge weight")
            for pos in range(0, len(rest), 2):
                v, w = rest[pos], rest[pos + 1]
                nbrs.append(v)
                key = (min(gid, v), max(gid, v))
                prior = edge_weights.get(key)
                if prior is not None and prior != w:
                    raise ValueError(
                        f"edge ({key[0]}, {key[1]}): inconsistent weights {prior} vs {w}"
                    )
                edge_weights[key] = w
        else:
            nbrs.extend(tokens[idx:])
        adjacency.append(nbrs)

    graph = Graph(
        adjacency,
        node_weights=node_weights,
        edge_weights=edge_weights or None,
        name=name,
    )
    if graph.num_edges != num_edges:
        raise ValueError(
            f"Chaco header promises {num_edges} edges, adjacency has {graph.num_edges}"
        )
    return graph


def read_chaco(path: str | Path, name: str | None = None) -> Graph:
    """Read a Chaco-format graph file."""
    path = Path(path)
    return parse_chaco(path.read_text(), name=name or path.stem)


def format_chaco(graph: Graph, fmt: int | None = None) -> str:
    """Render ``graph`` as Chaco text.

    When ``fmt`` is None, the smallest fmt that preserves the graph's
    weights is chosen.
    """
    if fmt is None:
        fmt = (10 if graph.has_node_weights else 0) + (1 if graph.has_edge_weights else 0)
    if fmt not in _VALID_FMTS:
        raise ValueError(f"unsupported Chaco fmt {fmt}")
    vertex_weighted = fmt in (10, 11)
    edge_weighted = fmt in (1, 11)
    out = io.StringIO()
    header = f"{graph.num_nodes} {graph.num_edges}"
    if fmt != 0:
        header += f" {fmt:02d}" if fmt >= 10 else f" {fmt}"
    out.write(header + "\n")
    for gid in graph.nodes():
        tokens: list[str] = []
        if vertex_weighted:
            tokens.append(str(graph.node_weight(gid)))
        for v in graph.neighbors(gid):
            tokens.append(str(v))
            if edge_weighted:
                tokens.append(str(graph.edge_weight(gid, v)))
        out.write(" ".join(tokens) + "\n")
    return out.getvalue()


def write_chaco(graph: Graph, path: str | Path, fmt: int | None = None) -> None:
    """Write ``graph`` to ``path`` in Chaco format."""
    Path(path).write_text(format_chaco(graph, fmt=fmt))


# --------------------------------------------------------------------- #
# Partition files: one processor id per line, vertex order
# (this is the "output array" Appendix A loads from e.g. 64_r_out_16p.txt)
# --------------------------------------------------------------------- #


def parse_partition(text: str) -> list[int]:
    """Parse a partition file body into ``assignment[gid - 1] = proc``."""
    assignment: list[int] = []
    for lineno, line in enumerate(text.splitlines(), start=1):
        stripped = line.strip()
        if not stripped:
            continue
        try:
            assignment.append(int(stripped))
        except ValueError as exc:
            raise ValueError(f"partition file line {lineno}: {stripped!r}") from exc
    return assignment


def read_partition(path: str | Path, num_nodes: int | None = None) -> list[int]:
    """Read a partition file; optionally check the expected node count."""
    assignment = parse_partition(Path(path).read_text())
    if num_nodes is not None and len(assignment) != num_nodes:
        raise ValueError(
            f"partition file has {len(assignment)} entries, expected {num_nodes}"
        )
    return assignment


def format_partition(assignment: Sequence[int]) -> str:
    """Render an assignment as partition-file text."""
    return "\n".join(str(p) for p in assignment) + "\n"


def write_partition(assignment: Sequence[int], path: str | Path) -> None:
    """Write an assignment to a partition file."""
    Path(path).write_text(format_partition(assignment))
