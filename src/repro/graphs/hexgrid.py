"""Hexagonal grids.

Two of the paper's three workloads live on hexagonal meshes:

* the generic hexagonal-grid topologies (32-, 64- and 96-node grids used in
  section 5.1), and
* the 32x32-hex battlefield terrain of the battlefield management
  simulation (section 5.3), where "the computational domain is divided into
  hexes" and each hex has six neighbours.

We use the standard *odd-r offset* layout: hexes are addressed by
``(row, col)``; odd rows are shifted half a hex to the right.  Interior hexes
have exactly six neighbours; border hexes fewer.  Global IDs are assigned in
row-major order starting at 1, matching the Chaco convention used
throughout the library.
"""

from __future__ import annotations

from dataclasses import dataclass

from .graph import Graph

__all__ = ["HexGrid", "hex_grid", "hex32", "hex64", "hex96", "battlefield_grid"]

# Neighbour offsets (d_row, d_col) in odd-r layout, keyed by row parity.
_EVEN_ROW_OFFSETS = ((0, -1), (0, 1), (-1, -1), (-1, 0), (1, -1), (1, 0))
_ODD_ROW_OFFSETS = ((0, -1), (0, 1), (-1, 0), (-1, 1), (1, 0), (1, 1))


@dataclass(frozen=True)
class HexGrid:
    """A rows x cols hexagonal lattice in odd-r offset coordinates.

    Attributes:
        rows: Number of hex rows.
        cols: Number of hex columns.
    """

    rows: int
    cols: int

    def __post_init__(self) -> None:
        if self.rows < 1 or self.cols < 1:
            raise ValueError(f"grid must be at least 1x1, got {self.rows}x{self.cols}")

    @property
    def num_cells(self) -> int:
        """Total number of hexes."""
        return self.rows * self.cols

    def gid(self, row: int, col: int) -> int:
        """Global (1-based) ID of the hex at ``(row, col)``."""
        self._check(row, col)
        return row * self.cols + col + 1

    def rc(self, gid: int) -> tuple[int, int]:
        """Inverse of :meth:`gid`."""
        if not 1 <= gid <= self.num_cells:
            raise KeyError(f"gid {gid} outside 1..{self.num_cells}")
        return divmod(gid - 1, self.cols)

    def in_bounds(self, row: int, col: int) -> bool:
        """Whether ``(row, col)`` is inside the grid."""
        return 0 <= row < self.rows and 0 <= col < self.cols

    def _check(self, row: int, col: int) -> None:
        if not self.in_bounds(row, col):
            raise KeyError(f"({row}, {col}) outside {self.rows}x{self.cols} grid")

    def neighbor_cells(self, row: int, col: int) -> list[tuple[int, int]]:
        """In-bounds hex neighbours of ``(row, col)``, at most six."""
        self._check(row, col)
        offsets = _ODD_ROW_OFFSETS if row % 2 else _EVEN_ROW_OFFSETS
        return [
            (row + dr, col + dc)
            for dr, dc in offsets
            if self.in_bounds(row + dr, col + dc)
        ]

    def neighbor_directions(self, row: int, col: int) -> list[tuple[int, tuple[int, int]]]:
        """Like :meth:`neighbor_cells` but keeping the direction index 0..5.

        Direction indices follow the offset tables' order (W, E, then the two
        upper and two lower neighbours); the battlefield simulator uses them
        for its per-direction ``destroyed`` bookkeeping.
        """
        self._check(row, col)
        offsets = _ODD_ROW_OFFSETS if row % 2 else _EVEN_ROW_OFFSETS
        return [
            (d, (row + dr, col + dc))
            for d, (dr, dc) in enumerate(offsets)
            if self.in_bounds(row + dr, col + dc)
        ]

    def to_graph(self, name: str | None = None) -> Graph:
        """The hex lattice as an application :class:`Graph`."""
        edges: list[tuple[int, int]] = []
        for row in range(self.rows):
            for col in range(self.cols):
                u = self.gid(row, col)
                for nrow, ncol in self.neighbor_cells(row, col):
                    v = self.gid(nrow, ncol)
                    if u < v:
                        edges.append((u, v))
        label = name or f"hex{self.num_cells}({self.rows}x{self.cols})"
        return Graph.from_edges(self.num_cells, edges, name=label)


def hex_grid(rows: int, cols: int) -> Graph:
    """Hexagonal grid graph with ``rows * cols`` nodes."""
    return HexGrid(rows, cols).to_graph()


def hex32() -> Graph:
    """The paper's 32-node hexagonal grid (4 x 8)."""
    return HexGrid(4, 8).to_graph(name="hex32")


def hex64() -> Graph:
    """The paper's 64-node hexagonal grid (8 x 8)."""
    return HexGrid(8, 8).to_graph(name="hex64")


def hex96() -> Graph:
    """The paper's 96-node hexagonal grid (8 x 12)."""
    return HexGrid(8, 12).to_graph(name="hex96")


def battlefield_grid(rows: int = 32, cols: int = 32) -> HexGrid:
    """The battlefield terrain: a 32 x 32 hex mesh by default."""
    return HexGrid(rows, cols)
