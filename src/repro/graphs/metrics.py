"""Partition-quality metrics.

The thesis judges partitioners by the balance of computational load and by
the *edge cut* (inter-processor communication), and the dynamic load
balancer reasons about buffer lengths (communication volume).  These
functions compute those quantities for a node-to-processor assignment.

An *assignment* is a list with ``assignment[gid - 1] == processor`` for every
global node ID -- the exact shape of the thesis's ``output_arr``.
"""

from __future__ import annotations

from collections import Counter
from typing import Sequence

from .graph import Graph

__all__ = [
    "validate_assignment",
    "edge_cut",
    "weighted_edge_cut",
    "communication_volume",
    "part_loads",
    "load_imbalance",
    "boundary_nodes",
    "neighbor_processors",
    "parts_used",
]


def validate_assignment(graph: Graph, assignment: Sequence[int], nparts: int) -> None:
    """Raise ``ValueError`` unless the assignment covers every node with a
    processor id in ``[0, nparts)``."""
    if len(assignment) != graph.num_nodes:
        raise ValueError(
            f"assignment covers {len(assignment)} nodes, graph has {graph.num_nodes}"
        )
    for gid, proc in enumerate(assignment, start=1):
        if not 0 <= proc < nparts:
            raise ValueError(f"node {gid} assigned to processor {proc} outside [0, {nparts})")


def edge_cut(graph: Graph, assignment: Sequence[int]) -> int:
    """Number of edges whose endpoints live on different processors."""
    return sum(
        1 for u, v in graph.edges() if assignment[u - 1] != assignment[v - 1]
    )


def weighted_edge_cut(graph: Graph, assignment: Sequence[int]) -> int:
    """Edge cut counting edge weights."""
    return sum(
        graph.edge_weight(u, v)
        for u, v in graph.edges()
        if assignment[u - 1] != assignment[v - 1]
    )


def communication_volume(graph: Graph, assignment: Sequence[int]) -> int:
    """Total shadow-copy count: for each node, the number of *distinct*
    remote processors that need its data.

    This is exactly the sum of the platform's per-processor communication
    buffer lengths, and therefore the quantity its load balancer uses as
    processor-graph edge weights.
    """
    volume = 0
    for gid in graph.nodes():
        own = assignment[gid - 1]
        remote = {assignment[v - 1] for v in graph.neighbors(gid)} - {own}
        volume += len(remote)
    return volume


def part_loads(graph: Graph, assignment: Sequence[int], nparts: int) -> list[int]:
    """Total node weight hosted by each processor."""
    loads = [0] * nparts
    for gid in graph.nodes():
        loads[assignment[gid - 1]] += graph.node_weight(gid)
    return loads


def load_imbalance(graph: Graph, assignment: Sequence[int], nparts: int) -> float:
    """``max_load / mean_load``; 1.0 is perfect balance."""
    loads = part_loads(graph, assignment, nparts)
    total = sum(loads)
    if total == 0:
        return 1.0
    mean = total / nparts
    return max(loads) / mean


def boundary_nodes(graph: Graph, assignment: Sequence[int]) -> set[int]:
    """Global IDs of peripheral nodes (>= 1 neighbour on another processor)."""
    return {
        gid
        for gid in graph.nodes()
        if any(assignment[v - 1] != assignment[gid - 1] for v in graph.neighbors(gid))
    }


def neighbor_processors(
    graph: Graph, assignment: Sequence[int], proc: int
) -> set[int]:
    """Processors that share at least one cut edge with ``proc``."""
    out: set[int] = set()
    for u, v in graph.edges():
        pu, pv = assignment[u - 1], assignment[v - 1]
        if pu == pv:
            continue
        if pu == proc:
            out.add(pv)
        elif pv == proc:
            out.add(pu)
    return out


def parts_used(assignment: Sequence[int]) -> Counter:
    """Histogram of node counts per processor."""
    return Counter(assignment)
