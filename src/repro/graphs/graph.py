"""The application program graph.

The thesis feeds *application program graphs* in Chaco format to the
partitioners and to the platform's initialization phase.  Chaco numbers
vertices 1..n, and the appendix code keeps that convention everywhere
(``globalID`` starts at 1); we preserve it so data structures, partition
files, and examples line up with the paper.

:class:`Graph` is a simple immutable-ish undirected graph with optional
integer node weights and edge weights, adjacency-list backed, plus the
validation and conversion utilities the rest of the library needs.
"""

from __future__ import annotations

from collections import deque
from typing import Iterable, Iterator, Mapping, Sequence

__all__ = ["Graph"]


class Graph:
    """Undirected application graph with 1-based global node IDs.

    Args:
        adjacency: ``adjacency[i]`` lists the neighbours (1-based global IDs)
            of node ``i + 1``.  Must be symmetric and self-loop free.
        node_weights: Optional per-node computational weights (1-based node
            ``i`` weight at index ``i - 1``); default all 1.
        edge_weights: Optional mapping ``(u, v) -> weight`` with ``u < v``;
            missing edges default to weight 1.
        name: Optional label used in reprs and experiment tables.
    """

    def __init__(
        self,
        adjacency: Sequence[Sequence[int]],
        node_weights: Sequence[int] | None = None,
        edge_weights: Mapping[tuple[int, int], int] | None = None,
        name: str = "graph",
        validate: bool = True,
    ) -> None:
        self._adj: list[tuple[int, ...]] = [tuple(nbrs) for nbrs in adjacency]
        n = len(self._adj)
        if node_weights is None:
            self._node_weights = [1] * n
        else:
            if len(node_weights) != n:
                raise ValueError(
                    f"node_weights has {len(node_weights)} entries for {n} nodes"
                )
            self._node_weights = list(node_weights)
        # Weight-1 entries are dropped so that graphs compare equal whether
        # default weights were implicit or spelled out (e.g. after Chaco I/O).
        self._edge_weights: dict[tuple[int, int], int] = {}
        if edge_weights:
            for (u, v), w in edge_weights.items():
                if w != 1:
                    self._edge_weights[self._ekey(u, v)] = w
        self.name = name
        if validate:
            self.validate()

    # ------------------------------------------------------------------ #
    # Constructors
    # ------------------------------------------------------------------ #

    @classmethod
    def from_edges(
        cls,
        num_nodes: int,
        edges: Iterable[tuple[int, int]],
        node_weights: Sequence[int] | None = None,
        edge_weights: Mapping[tuple[int, int], int] | None = None,
        name: str = "graph",
    ) -> "Graph":
        """Build from an edge list over nodes ``1..num_nodes``."""
        adj: list[list[int]] = [[] for _ in range(num_nodes)]
        seen: set[tuple[int, int]] = set()
        for u, v in edges:
            if not (1 <= u <= num_nodes and 1 <= v <= num_nodes):
                raise ValueError(f"edge ({u}, {v}) outside 1..{num_nodes}")
            if u == v:
                raise ValueError(f"self-loop on node {u}")
            key = (min(u, v), max(u, v))
            if key in seen:
                continue
            seen.add(key)
            adj[u - 1].append(v)
            adj[v - 1].append(u)
        for lst in adj:
            lst.sort()
        return cls(adj, node_weights=node_weights, edge_weights=edge_weights, name=name)

    @classmethod
    def from_networkx(cls, nxg, name: str = "graph") -> "Graph":
        """Convert a ``networkx.Graph`` (nodes relabelled to 1..n)."""
        nodes = sorted(nxg.nodes())
        index = {node: i + 1 for i, node in enumerate(nodes)}
        edges = [(index[u], index[v]) for u, v in nxg.edges()]
        weights = [int(nxg.nodes[node].get("weight", 1)) for node in nodes]
        eweights = {
            (min(index[u], index[v]), max(index[u], index[v])): int(d.get("weight", 1))
            for u, v, d in nxg.edges(data=True)
        }
        return cls.from_edges(
            len(nodes), edges, node_weights=weights, edge_weights=eweights, name=name
        )

    # ------------------------------------------------------------------ #
    # Basic accessors
    # ------------------------------------------------------------------ #

    @property
    def num_nodes(self) -> int:
        """Number of vertices."""
        return len(self._adj)

    @property
    def num_edges(self) -> int:
        """Number of undirected edges."""
        return sum(len(nbrs) for nbrs in self._adj) // 2

    def nodes(self) -> range:
        """All global IDs, ``1..n``."""
        return range(1, self.num_nodes + 1)

    def neighbors(self, gid: int) -> tuple[int, ...]:
        """Neighbours of global node ``gid`` (sorted, 1-based)."""
        self._check(gid)
        return self._adj[gid - 1]

    def degree(self, gid: int) -> int:
        """Degree of ``gid``."""
        return len(self.neighbors(gid))

    def max_degree(self) -> int:
        """Largest degree in the graph (0 for an empty graph)."""
        return max((len(nbrs) for nbrs in self._adj), default=0)

    def has_edge(self, u: int, v: int) -> bool:
        """Whether the undirected edge ``{u, v}`` exists."""
        self._check(u)
        self._check(v)
        return v in self._adj[u - 1]

    def edges(self) -> Iterator[tuple[int, int]]:
        """Iterate undirected edges as ``(u, v)`` with ``u < v``."""
        for u in self.nodes():
            for v in self._adj[u - 1]:
                if u < v:
                    yield (u, v)

    def node_weight(self, gid: int) -> int:
        """Computational weight of ``gid`` (default 1)."""
        self._check(gid)
        return self._node_weights[gid - 1]

    @property
    def node_weights(self) -> tuple[int, ...]:
        """All node weights in global-ID order."""
        return tuple(self._node_weights)

    def total_node_weight(self) -> int:
        """Sum of all node weights."""
        return sum(self._node_weights)

    def edge_weight(self, u: int, v: int) -> int:
        """Weight of edge ``{u, v}`` (default 1); raises if absent."""
        if not self.has_edge(u, v):
            raise KeyError(f"no edge ({u}, {v})")
        return self._edge_weights.get(self._ekey(u, v), 1)

    @property
    def has_node_weights(self) -> bool:
        """True when any node weight differs from 1."""
        return any(w != 1 for w in self._node_weights)

    @property
    def has_edge_weights(self) -> bool:
        """True when any edge weight differs from 1."""
        return any(w != 1 for w in self._edge_weights.values())

    @staticmethod
    def _ekey(u: int, v: int) -> tuple[int, int]:
        return (u, v) if u < v else (v, u)

    def _check(self, gid: int) -> None:
        if not 1 <= gid <= len(self._adj):
            raise KeyError(f"node {gid} outside 1..{len(self._adj)}")

    # ------------------------------------------------------------------ #
    # Structure queries
    # ------------------------------------------------------------------ #

    def validate(self) -> None:
        """Check symmetry, ID range, self-loops, duplicates; raise ValueError."""
        n = len(self._adj)
        for i, nbrs in enumerate(self._adj):
            gid = i + 1
            if len(set(nbrs)) != len(nbrs):
                raise ValueError(f"duplicate neighbours at node {gid}")
            for v in nbrs:
                if not 1 <= v <= n:
                    raise ValueError(f"node {gid} lists neighbour {v} outside 1..{n}")
                if v == gid:
                    raise ValueError(f"self-loop on node {gid}")
                if gid not in self._adj[v - 1]:
                    raise ValueError(f"asymmetric edge ({gid}, {v})")
        for (u, v) in self._edge_weights:
            if not (1 <= u <= n and 1 <= v <= n) or v not in self._adj[u - 1]:
                raise ValueError(f"edge weight on missing edge ({u}, {v})")

    def is_connected(self) -> bool:
        """BFS connectivity check (empty graphs count as connected)."""
        n = self.num_nodes
        if n == 0:
            return True
        seen = [False] * (n + 1)
        seen[1] = True
        queue: deque[int] = deque([1])
        count = 1
        while queue:
            u = queue.popleft()
            for v in self._adj[u - 1]:
                if not seen[v]:
                    seen[v] = True
                    count += 1
                    queue.append(v)
        return count == n

    def connected_components(self) -> list[list[int]]:
        """All connected components, each a sorted list of global IDs."""
        n = self.num_nodes
        seen = [False] * (n + 1)
        comps: list[list[int]] = []
        for start in self.nodes():
            if seen[start]:
                continue
            seen[start] = True
            comp = [start]
            queue: deque[int] = deque([start])
            while queue:
                u = queue.popleft()
                for v in self._adj[u - 1]:
                    if not seen[v]:
                        seen[v] = True
                        comp.append(v)
                        queue.append(v)
            comps.append(sorted(comp))
        return comps

    def bfs_order(self, start: int) -> list[int]:
        """Nodes in BFS order from ``start`` (only the reachable ones)."""
        self._check(start)
        seen = {start}
        order = [start]
        queue: deque[int] = deque([start])
        while queue:
            u = queue.popleft()
            for v in self._adj[u - 1]:
                if v not in seen:
                    seen.add(v)
                    order.append(v)
                    queue.append(v)
        return order

    # ------------------------------------------------------------------ #
    # Derivations
    # ------------------------------------------------------------------ #

    def with_node_weights(self, weights: Sequence[int]) -> "Graph":
        """Copy of this graph with new node weights."""
        return Graph(
            self._adj,
            node_weights=weights,
            edge_weights=dict(self._edge_weights),
            name=self.name,
            validate=False,
        )

    def subgraph(self, nodes: Iterable[int]) -> tuple["Graph", dict[int, int]]:
        """Induced subgraph; returns ``(graph, old_gid -> new_gid map)``."""
        keep = sorted(set(nodes))
        for gid in keep:
            self._check(gid)
        remap = {old: new + 1 for new, old in enumerate(keep)}
        adj = [
            tuple(remap[v] for v in self._adj[old - 1] if v in remap) for old in keep
        ]
        weights = [self._node_weights[old - 1] for old in keep]
        eweights = {
            (min(remap[u], remap[v]), max(remap[u], remap[v])): w
            for (u, v), w in self._edge_weights.items()
            if u in remap and v in remap
        }
        return (
            Graph(adj, node_weights=weights, edge_weights=eweights,
                  name=f"{self.name}-sub", validate=False),
            remap,
        )

    def to_networkx(self):
        """Convert to a ``networkx.Graph`` with weight attributes."""
        import networkx as nx

        nxg = nx.Graph(name=self.name)
        for gid in self.nodes():
            nxg.add_node(gid, weight=self.node_weight(gid))
        for u, v in self.edges():
            nxg.add_edge(u, v, weight=self.edge_weight(u, v))
        return nxg

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Graph):
            return NotImplemented
        return (
            self._adj == other._adj
            and self._node_weights == other._node_weights
            and self._edge_weights == other._edge_weights
        )

    def __hash__(self) -> int:  # adjacency is effectively immutable
        return hash((tuple(self._adj), tuple(self._node_weights)))

    def __repr__(self) -> str:
        return (
            f"Graph(name={self.name!r}, nodes={self.num_nodes}, "
            f"edges={self.num_edges})"
        )
