"""Application-graph generators.

Covers the paper's generic topologies (hexagonal grids live in
:mod:`repro.graphs.hexgrid`; the connected random graphs of section 5.2 are
generated here) plus a set of standard meshes useful for tests, examples and
ablation benchmarks.  All generators are deterministic given their ``seed``.
"""

from __future__ import annotations

import random

from .graph import Graph

__all__ = [
    "random_connected_graph",
    "random32",
    "random64",
    "grid2d",
    "torus2d",
    "path_graph",
    "cycle_graph",
    "star_graph",
    "complete_graph",
    "binary_tree",
    "preferential_attachment",
]


def random_connected_graph(
    num_nodes: int,
    avg_degree: float = 4.0,
    seed: int = 0,
    name: str | None = None,
) -> Graph:
    """A connected Erdos-Renyi-style random graph.

    A uniform spanning tree (random-walk based) guarantees connectivity;
    extra edges are then sampled uniformly until the average degree target is
    met.  This mirrors the thesis's "random graphs", which must be connected
    for the platform's shadow-node machinery to exercise every processor.

    Args:
        num_nodes: Number of vertices (>= 1).
        avg_degree: Target mean degree; clamped to the achievable range.
        seed: RNG seed (deterministic output).
        name: Graph label; default ``random<N>``.
    """
    if num_nodes < 1:
        raise ValueError(f"num_nodes must be >= 1, got {num_nodes}")
    rng = random.Random(seed)
    edges: set[tuple[int, int]] = set()

    # Aldous-Broder style random spanning tree for unbiased connectivity.
    unvisited = set(range(2, num_nodes + 1))
    current = 1
    while unvisited:
        nxt = rng.randint(1, num_nodes)
        if nxt in unvisited:
            edges.add((min(current, nxt), max(current, nxt)))
            unvisited.discard(nxt)
        if nxt != current:
            current = nxt

    max_edges = num_nodes * (num_nodes - 1) // 2
    target_edges = min(max_edges, max(len(edges), round(num_nodes * avg_degree / 2)))
    attempts = 0
    while len(edges) < target_edges and attempts < 50 * target_edges:
        u = rng.randint(1, num_nodes)
        v = rng.randint(1, num_nodes)
        attempts += 1
        if u == v:
            continue
        edges.add((min(u, v), max(u, v)))
    return Graph.from_edges(
        num_nodes, sorted(edges), name=name or f"random{num_nodes}"
    )


def random32(seed: int = 0) -> Graph:
    """The paper's 32-node random graph (one of the five seeds averaged)."""
    return random_connected_graph(32, avg_degree=4.0, seed=seed, name=f"random32-s{seed}")


def random64(seed: int = 0) -> Graph:
    """The paper's 64-node random graph."""
    return random_connected_graph(64, avg_degree=4.0, seed=seed, name=f"random64-s{seed}")


def grid2d(rows: int, cols: int, name: str | None = None) -> Graph:
    """A rows x cols 4-neighbour mesh."""
    if rows < 1 or cols < 1:
        raise ValueError("grid must be at least 1x1")
    edges = []
    def gid(r: int, c: int) -> int:
        return r * cols + c + 1
    for r in range(rows):
        for c in range(cols):
            if c + 1 < cols:
                edges.append((gid(r, c), gid(r, c + 1)))
            if r + 1 < rows:
                edges.append((gid(r, c), gid(r + 1, c)))
    return Graph.from_edges(rows * cols, edges, name=name or f"grid{rows}x{cols}")


def torus2d(rows: int, cols: int, name: str | None = None) -> Graph:
    """A rows x cols mesh with wraparound links (rows, cols >= 3)."""
    if rows < 3 or cols < 3:
        raise ValueError("torus needs rows, cols >= 3 to avoid duplicate edges")
    edges = []
    def gid(r: int, c: int) -> int:
        return r * cols + c + 1
    for r in range(rows):
        for c in range(cols):
            edges.append((gid(r, c), gid(r, (c + 1) % cols)))
            edges.append((gid(r, c), gid((r + 1) % rows, c)))
    return Graph.from_edges(rows * cols, edges, name=name or f"torus{rows}x{cols}")


def path_graph(num_nodes: int) -> Graph:
    """A simple path 1-2-...-n."""
    edges = [(i, i + 1) for i in range(1, num_nodes)]
    return Graph.from_edges(num_nodes, edges, name=f"path{num_nodes}")


def cycle_graph(num_nodes: int) -> Graph:
    """A ring of ``num_nodes`` >= 3 vertices."""
    if num_nodes < 3:
        raise ValueError("cycle needs >= 3 nodes")
    edges = [(i, i + 1) for i in range(1, num_nodes)] + [(num_nodes, 1)]
    return Graph.from_edges(num_nodes, edges, name=f"cycle{num_nodes}")


def star_graph(num_leaves: int) -> Graph:
    """Node 1 connected to ``num_leaves`` leaves."""
    edges = [(1, i) for i in range(2, num_leaves + 2)]
    return Graph.from_edges(num_leaves + 1, edges, name=f"star{num_leaves}")


def complete_graph(num_nodes: int) -> Graph:
    """K_n."""
    edges = [
        (u, v) for u in range(1, num_nodes + 1) for v in range(u + 1, num_nodes + 1)
    ]
    return Graph.from_edges(num_nodes, edges, name=f"K{num_nodes}")


def binary_tree(depth: int) -> Graph:
    """A complete binary tree of the given depth (depth 0 = single node)."""
    if depth < 0:
        raise ValueError("depth must be >= 0")
    num_nodes = 2 ** (depth + 1) - 1
    edges = []
    for parent in range(1, num_nodes + 1):
        for child in (2 * parent, 2 * parent + 1):
            if child <= num_nodes:
                edges.append((parent, child))
    return Graph.from_edges(num_nodes, edges, name=f"btree{depth}")


def preferential_attachment(num_nodes: int, edges_per_node: int = 2, seed: int = 0) -> Graph:
    """Barabasi-Albert style scale-free graph (irregular-degree stressor)."""
    if num_nodes < edges_per_node + 1:
        raise ValueError("num_nodes must exceed edges_per_node")
    rng = random.Random(seed)
    edges: set[tuple[int, int]] = set()
    targets = list(range(1, edges_per_node + 1))
    repeated: list[int] = list(targets)
    for new in range(edges_per_node + 1, num_nodes + 1):
        chosen: set[int] = set()
        while len(chosen) < edges_per_node:
            chosen.add(rng.choice(repeated))
        for t in chosen:
            edges.add((min(new, t), max(new, t)))
            repeated.append(t)
        repeated.extend([new] * edges_per_node)
    return Graph.from_edges(num_nodes, sorted(edges), name=f"ba{num_nodes}")
