"""``python -m repro`` -- the platform CLI."""

import sys

from .cli import main

sys.exit(main())
