"""Command-line interface: the ``MPIFramework`` binary, reimagined.

The thesis drives its platform as::

    mpirun -np num_procs MPIFramework $program_graph

The equivalent here is::

    python -m repro run --graph 64_r_in.txt --np 16 --iterations 20

plus subcommands for the rest of the workflow:

* ``generate``  -- write application graphs in Chaco format,
* ``partition`` -- run a partitioner plug-in, write the node-to-processor
  mapping (the ``*_out_Np.txt`` files of Appendix A), print quality stats,
* ``run``       -- execute the neighbour-average workload on the platform,
* ``bench``     -- regenerate a named table/figure of the paper,
* ``info``      -- inspect a graph file.
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from .apps.average import COARSE_GRAIN, FINE_GRAIN, make_average_fn
from .apps.imbalance import PAPER_SCHEDULE, make_imbalanced_average_fn
from .core.config import PlatformConfig
from .core.loadbalance import (
    CentralizedHeuristicBalancer,
    DiffusionBalancer,
    GreedyPairBalancer,
)
from .core.platform import ICPlatform
from .graphs.chaco import read_chaco, read_partition, write_chaco, write_partition
from .graphs.generators import grid2d, random_connected_graph, torus2d
from .graphs.graph import Graph
from .graphs.hexgrid import HexGrid, hex_grid
from .mpi.errors import UnsupportedBackendError
from .mpi.faults import FaultPlan
from .mpi.timing import ETHERNET_CLUSTER, IDEAL, ORIGIN2000
from .partitioning.bands import (
    ColumnBandPartitioner,
    RectangularPartitioner,
    RowBandPartitioner,
)
from .partitioning.base import Partition, Partitioner
from .partitioning.graycode import GrayCodePartitioner
from .partitioning.multilevel.kway import MetisLikePartitioner
from .partitioning.pagrid import PaGridLikePartitioner
from .partitioning.procgraph import ProcessorGraph
from .partitioning.simple import (
    BfsGreedyPartitioner,
    RandomPartitioner,
    RoundRobinPartitioner,
)
from .partitioning.spectral import SpectralPartitioner

__all__ = ["main", "build_parser"]

_MACHINES = {
    "origin2000": ORIGIN2000,
    "ideal": IDEAL,
    "ethernet": ETHERNET_CLUSTER,
}

_BALANCERS = {
    "centralized": CentralizedHeuristicBalancer,
    "greedy": GreedyPairBalancer,
    "diffusion": DiffusionBalancer,
}


def _grid_dims(graph: Graph, rows: int | None, cols: int | None) -> tuple[int, int]:
    if rows and cols:
        if rows * cols != graph.num_nodes:
            raise SystemExit(
                f"--rows {rows} x --cols {cols} != {graph.num_nodes} graph nodes"
            )
        return rows, cols
    raise SystemExit("this partitioner needs --rows and --cols (grid geometry)")


def make_partitioner(
    scheme: str,
    nparts: int,
    seed: int,
    graph: Graph,
    rows: int | None = None,
    cols: int | None = None,
    rref: float = 0.45,
) -> Partitioner:
    """Instantiate a partitioner plug-in by name."""
    if scheme == "metis":
        return MetisLikePartitioner(seed=seed)
    if scheme == "pagrid":
        return PaGridLikePartitioner(ProcessorGraph.hypercube(nparts), rref=rref, seed=seed)
    if scheme == "spectral":
        return SpectralPartitioner(seed=seed)
    if scheme == "bfsgreedy":
        return BfsGreedyPartitioner(seed=seed)
    if scheme == "random":
        return RandomPartitioner(seed=seed)
    if scheme == "roundrobin":
        return RoundRobinPartitioner()
    if scheme in ("rowband", "colband", "rectband", "graycode"):
        r, c = _grid_dims(graph, rows, cols)
        return {
            "rowband": RowBandPartitioner,
            "colband": ColumnBandPartitioner,
            "rectband": RectangularPartitioner,
            "graycode": GrayCodePartitioner,
        }[scheme](r, c)
    raise SystemExit(f"unknown partitioner {scheme!r}")


PARTITIONER_CHOICES = (
    "metis", "pagrid", "spectral", "bfsgreedy", "random", "roundrobin",
    "rowband", "colband", "rectband", "graycode",
)


# --------------------------------------------------------------------- #
# Subcommands
# --------------------------------------------------------------------- #


def cmd_generate(args: argparse.Namespace) -> int:
    if args.kind == "hex":
        graph = hex_grid(args.rows, args.cols)
    elif args.kind == "grid":
        graph = grid2d(args.rows, args.cols)
    elif args.kind == "torus":
        graph = torus2d(args.rows, args.cols)
    elif args.kind == "random":
        graph = random_connected_graph(
            args.nodes, avg_degree=args.degree, seed=args.seed
        )
    else:  # battlefield terrain
        graph = HexGrid(args.rows, args.cols).to_graph(name="battlefield")
    write_chaco(graph, args.output)
    print(
        f"wrote {args.output}: {graph.name} "
        f"({graph.num_nodes} vertices, {graph.num_edges} edges)"
    )
    return 0


def cmd_partition(args: argparse.Namespace) -> int:
    graph = read_chaco(args.graph)
    partitioner = make_partitioner(
        args.scheme, args.np, args.seed, graph, args.rows, args.cols, args.rref
    )
    partition = partitioner.partition(graph, args.np)
    write_partition(list(partition.assignment), args.output)
    loads = partition.loads()
    print(f"wrote {args.output}")
    print(f"  scheme       {partition.method}")
    print(f"  processors   {args.np}")
    print(f"  edge cut     {partition.edge_cut()}")
    print(f"  comm volume  {partition.communication_volume()}")
    print(f"  imbalance    {partition.imbalance():.3f} (loads {min(loads)}..{max(loads)})")
    if args.analyze:
        from .graphs.analysis import partition_summary

        print()
        print(partition_summary(graph, partition.assignment, args.np))
    return 0


def _run_with_host_profile(path: str, fn):
    """Execute ``fn()`` with every host thread profiled; dump merged stats.

    ``cProfile`` is per-thread, and the simulated cluster runs one OS
    thread per rank -- so a profiler is bootstrapped into every new thread
    via :func:`threading.setprofile` (the hook fires on the thread's first
    call event and replaces itself with a thread-local ``cProfile.Profile``)
    and the per-thread stats are merged with the main thread's at the end.
    """
    import cProfile
    import pstats
    import threading

    profiles: list[cProfile.Profile] = []
    lock = threading.Lock()

    def bootstrap(frame, event, arg):
        prof = cProfile.Profile()
        with lock:
            profiles.append(prof)
        prof.enable()

    main_prof = cProfile.Profile()
    threading.setprofile(bootstrap)
    try:
        main_prof.enable()
        result = fn()
    finally:
        main_prof.disable()
        threading.setprofile(None)
    stats = pstats.Stats(main_prof)
    with lock:
        for prof in profiles:
            try:
                stats.add(prof)
            except Exception:
                pass  # thread died before recording anything measurable
    stats.dump_stats(path)
    print(f"host profile  {path} ({len(profiles) + 1} threads merged)")
    return result


def cmd_run(args: argparse.Namespace) -> int:
    graph = read_chaco(args.graph)
    if args.partition:
        assignment = read_partition(args.partition, num_nodes=graph.num_nodes)
        partition = Partition.from_assignment(
            graph, assignment, args.np, method="from-file"
        )
    else:
        partitioner = make_partitioner(
            args.scheme, args.np, args.seed, graph, args.rows, args.cols, args.rref
        )
        partition = partitioner.partition(graph, args.np)

    grain = {"fine": FINE_GRAIN, "coarse": COARSE_GRAIN}[args.grain]
    if args.workload == "average":
        node_fn = make_average_fn(grain)
    else:  # the Figure-23 rolling imbalance
        node_fn = make_imbalanced_average_fn(PAPER_SCHEDULE)

    if args.checkpoint_keep < 1:
        print(
            f"repro run: error: --checkpoint-keep: must be >= 1, "
            f"got {args.checkpoint_keep}",
            file=sys.stderr,
        )
        raise SystemExit(2)

    faults = None
    if args.faults:
        try:
            faults = FaultPlan.parse(args.faults)
            faults.validate_ranks(args.np)
        except ValueError as exc:
            # One line naming the bad clause, exit code 2 (usage error) --
            # matching argparse's own convention, not a traceback.
            print(f"repro run: error: --faults: {exc}", file=sys.stderr)
            raise SystemExit(2)

    store_override = {"store": args.store} if args.store else {}
    execution_override = {"execution": args.execution} if args.execution else {}
    config = PlatformConfig(
        iterations=args.iterations,
        dynamic_load_balancing=args.dynamic,
        lb_period=args.lb_period,
        overlap_communication=args.overlap,
        rebalance_mode=args.rebalance_mode,
        checkpoint_period=args.checkpoint_period,
        checkpoint_keep=args.checkpoint_keep,
        recovery_policy=args.recovery,
        integrity=args.integrity,
        activation=args.activation,
        converge=args.converge,
        hybrid_inner_cap=args.hybrid_inner_cap,
        **store_override,
        **execution_override,
    )
    balancer = _BALANCERS[args.balancer](args.lb_threshold) if args.dynamic else None
    # Seed node values as floats rather than the default int gids: the
    # averaging workloads produce floats after the first sweep either way,
    # and float-valued stores are what lets --scheduler process back the
    # node arrays with shared-memory segments.
    platform = ICPlatform(
        graph, node_fn, init_value=lambda gid: float(gid), config=config,
        balancer=balancer,
    )

    def execute():
        return platform.run(
            partition,
            machine=_MACHINES[args.machine],
            faults=faults,
            scheduler=args.scheduler,
        )

    try:
        if args.profile_host:
            result = _run_with_host_profile(args.profile_host, execute)
        else:
            result = execute()
    except UnsupportedBackendError as exc:
        # A one-line usage-style error (exit 2), not a traceback: the
        # scheduler/store combination is wrong, not the platform.
        print(f"repro run: error: --scheduler: {exc}", file=sys.stderr)
        raise SystemExit(2)

    print(f"graph         {graph.name} ({graph.num_nodes} nodes)")
    print(f"partition     {partition.method} (cut {partition.edge_cut()})")
    print(f"processors    {args.np}")
    print(f"iterations    {result.iterations}")
    print(f"machine       {args.machine}")
    print(f"elapsed       {result.elapsed:.6f} virtual seconds")
    if config.store != "object":
        print(f"store         {config.store}")
        if result.sparse_geom_hits or result.sparse_geom_misses:
            print(
                f"sparse geom   {result.sparse_geom_hits} hits, "
                f"{result.sparse_geom_misses} misses (CSR memo)"
            )
    if config.execution != "bsp":
        print(f"execution     {config.execution} (inner cap {config.hybrid_inner_cap})")
        print(f"inner sweeps  {result.inner_sweeps} (summed over ranks)")
        print(f"barriers      {result.barriers}")
    if args.activation != "dense":
        print(f"activation    {args.activation}")
        print(f"messages      {result.messages_delivered} delivered")
    if args.converge == "quiescence":
        if result.quiesced_at is not None:
            saved = args.iterations - result.quiesced_at
            print(
                f"quiescence    reached at iteration {result.quiesced_at} "
                f"({saved} of {args.iterations} iterations saved)"
            )
        else:
            print(f"quiescence    not reached within {args.iterations} iterations")
    if args.dynamic:
        print(f"migrations    {len(result.migrations)}")
        if result.repartitions:
            print(f"repartitions  {result.repartitions}")
    if faults is not None:
        print(f"faults        {faults.describe()}")
        if result.fault_report is not None:
            print(f"fault report  {result.fault_report.summary()}")
        print(f"checkpoints   {result.checkpoints}")
        print(f"recoveries    {result.recoveries} (policy: {args.recovery})")
        if result.dead_ranks:
            survivors = args.np - len(result.dead_ranks)
            print(
                f"dead ranks    {list(result.dead_ranks)} "
                f"(finished on {survivors} survivors)"
            )
        for event in result.trace.reconfiguration_events():
            print(
                f"reconfigured  iter {event.iteration}: "
                f"{event.nodes_redistributed} nodes redistributed, "
                f"detect {event.detection_cost * 1e3:.3f}ms"
            )
    if args.integrity != "off":
        print(f"integrity     {args.integrity}")
        if result.repairs:
            print(f"repairs       {result.repairs} (surgical, from shadow replicas)")
        for event in result.trace.integrity_events():
            source = (
                f"replica on rank {event.replica}"
                if event.mode == "repair"
                else "checkpoint rollback"
            )
            print(
                f"corruption    iter {event.iteration}: node {event.gid} "
                f"on rank {event.owner} [{event.mode}] via {source}, "
                f"latency {event.latency}"
            )
    if args.phases:
        print("phase breakdown (mean per rank):")
        for name, seconds in result.mean_phases.as_dict().items():
            print(f"  {name:<24} {seconds * 1e3:9.3f} ms")
    return 0


def cmd_bench(args: argparse.Namespace) -> int:
    from .bench import harness

    name = args.experiment
    if name == "all":
        from .bench.report import generate_report

        print(generate_report(quick=args.quick))
    elif name.startswith("table") and "hex" in name:
        nodes = int(name.split("hex")[1])
        print(harness.run_hex_table(nodes).render())
    elif name.startswith("table") and "rand" in name:
        nodes = int(name.split("rand")[1])
        print(harness.run_random_table(nodes, seeds=tuple(range(args.seeds))).render())
    elif name.startswith("table") and "bf" in name:
        scheme = name.split("bf_")[1]
        print(harness.run_battlefield_table(scheme).render())
    elif name == "fig11":
        tables = [harness.run_hex_table(n, iterations_list=(20,)) for n in (32, 64, 96)]
        print(harness.run_speedup_figure(tables, title="Hex-grid speedups").render())
    elif name == "fig20":
        print(harness.run_battlefield_speedups().render())
    elif name in ("fig21", "fig22"):
        graph = (
            harness.hex_graph(64)
            if name == "fig21"
            else random_connected_graph(64, 4.0, seed=0, name="rand64")
        )
        print(harness.run_overheads(graph).render())
    else:
        raise SystemExit(
            f"unknown experiment {name!r}; try table2_hex32, table6_rand64, "
            "table7_bf_metis, fig11, fig20, fig21, fig22"
        )
    return 0


def cmd_info(args: argparse.Namespace) -> int:
    graph = read_chaco(args.graph)
    degrees = [graph.degree(v) for v in graph.nodes()]
    print(f"graph      {graph.name}")
    print(f"vertices   {graph.num_nodes}")
    print(f"edges      {graph.num_edges}")
    print(f"degree     min {min(degrees)}, max {max(degrees)}, "
          f"mean {sum(degrees) / len(degrees):.2f}")
    print(f"connected  {graph.is_connected()}")
    print(f"weighted   nodes={graph.has_node_weights}, edges={graph.has_edge_weights}")
    return 0


# --------------------------------------------------------------------- #
# Parser
# --------------------------------------------------------------------- #


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="iC2mpi platform CLI (simulated-MPI reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    gen = sub.add_parser("generate", help="write an application graph (Chaco format)")
    gen.add_argument("--kind", choices=("hex", "grid", "torus", "random", "battlefield"),
                     default="hex")
    gen.add_argument("--rows", type=int, default=8)
    gen.add_argument("--cols", type=int, default=8)
    gen.add_argument("--nodes", type=int, default=64, help="random graphs only")
    gen.add_argument("--degree", type=float, default=4.0, help="random graphs only")
    gen.add_argument("--seed", type=int, default=0)
    gen.add_argument("--output", required=True)
    gen.set_defaults(fn=cmd_generate)

    def add_partitioner_args(p):
        p.add_argument("--scheme", choices=PARTITIONER_CHOICES, default="metis")
        p.add_argument("--np", type=int, required=True, help="number of processors")
        p.add_argument("--seed", type=int, default=0)
        p.add_argument("--rows", type=int, help="grid geometry (band/graycode schemes)")
        p.add_argument("--cols", type=int)
        p.add_argument("--rref", type=float, default=0.45, help="PaGrid Rref")

    part = sub.add_parser("partition", help="partition a graph, write the mapping")
    part.add_argument("--graph", required=True)
    add_partitioner_args(part)
    part.add_argument("--output", required=True)
    part.add_argument("--analyze", action="store_true",
                      help="print the full partition diagnostics report")
    part.set_defaults(fn=cmd_partition)

    run = sub.add_parser("run", help="execute a workload on the platform")
    run.add_argument("--graph", required=True)
    add_partitioner_args(run)
    run.add_argument("--partition", help="partition file (skips the partitioner)")
    run.add_argument("--workload", choices=("average", "imbalance"), default="average")
    run.add_argument("--grain", choices=("fine", "coarse"), default="fine")
    run.add_argument("--iterations", type=int, default=20)
    run.add_argument("--machine", choices=sorted(_MACHINES), default="origin2000")
    run.add_argument("--scheduler", choices=("event", "threads", "process"), default=None,
                     help="simulated-cluster execution backend (default: event; "
                          "virtual-time results are identical on all three; "
                          "process runs one worker OS process per rank over "
                          "shared memory and requires --store soa)")
    run.add_argument("--dynamic", action="store_true", help="enable dynamic LB")
    run.add_argument("--balancer", choices=sorted(_BALANCERS), default="centralized")
    run.add_argument("--lb-period", type=int, default=10)
    run.add_argument("--lb-threshold", type=float, default=0.25)
    run.add_argument("--rebalance-mode", choices=("migrate", "repartition"),
                     default="migrate")
    run.add_argument("--overlap", action="store_true",
                     help="use the Figure-8a overlapped pipeline")
    run.add_argument("--store", choices=("object", "soa"), default=None,
                     help="node-state representation: object (one NodeData "
                          "per node, the conformance oracle) or soa "
                          "(struct-of-arrays with vectorized sweeps; "
                          "bit-identical results).  Default: the REPRO_STORE "
                          "environment variable, else 'object'")
    run.add_argument("--execution", choices=("bsp", "hybrid"), default=None,
                     help="superstep structure: bsp (every node recomputed "
                          "between consecutive global barriers) or hybrid "
                          "(boundary nodes synchronize as usual, interior "
                          "nodes iterate asynchronously to local convergence "
                          "inside each superstep).  Default: the "
                          "REPRO_EXECUTION environment variable, else 'bsp'")
    run.add_argument("--hybrid-inner-cap", type=int, default=32,
                     help="max interior sweeps per superstep under "
                          "--execution hybrid")
    run.add_argument("--activation", choices=("dense", "sparse"), default="dense",
                     help="sparse = change-driven execution: recompute only "
                          "nodes whose neighbourhood changed, exchange only "
                          "changed shadow values, elide empty sends")
    run.add_argument("--converge", choices=("fixed", "quiescence"),
                     default="fixed",
                     help="quiescence = stop early once a global reduction "
                          "sees an iteration in which no node's value changed")
    run.add_argument("--profile-host", metavar="PATH",
                     help="profile the host Python process (all rank threads) "
                          "and dump merged cProfile stats to PATH")
    run.add_argument("--phases", action="store_true", help="print phase breakdown")
    run.add_argument("--faults",
                     help="deterministic fault-injection spec, e.g. "
                          "'seed=7,delay=0.05,drop=0.01,slow=1:3.0,crash=2@40,"
                          "flipmsg=0.01,flip=1@5:37'")
    run.add_argument("--integrity", choices=("off", "checksum", "digest", "full"),
                     default="off",
                     help="silent-corruption protection: checksum (verified "
                          "transport), digest (partition-state digests + "
                          "rollback), full (digests + shadow-replica repair)")
    run.add_argument("--checkpoint-period", type=int, default=0,
                     help="checkpoint every K iterations (0 = baseline only)")
    run.add_argument("--checkpoint-keep", type=int, default=2,
                     help="snapshots retained per rank (older ones pruned)")
    run.add_argument("--recovery", choices=("rollback", "shrink"),
                     default="rollback",
                     help="crash recovery policy: rollback (restore everyone, "
                          "resurrect the dead rank) or shrink (continue on "
                          "the survivors)")
    run.set_defaults(fn=cmd_run)

    bench = sub.add_parser("bench", help="regenerate a paper table/figure ('all' for the full report)")
    bench.add_argument("experiment")
    bench.add_argument("--seeds", type=int, default=5, help="random-graph averaging")
    bench.add_argument("--quick", action="store_true",
                       help="reduced axes for 'all' (seconds, not minutes)")
    bench.set_defaults(fn=cmd_bench)

    info = sub.add_parser("info", help="inspect a Chaco graph file")
    info.add_argument("--graph", required=True)
    info.set_defaults(fn=cmd_info)

    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
