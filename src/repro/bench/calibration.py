"""Cost-model calibration against published runtimes.

The `ORIGIN2000` machine model and the default `PlatformCosts` were fitted
once against Tables 2-6 with the coordinate-descent search implemented
here.  Keeping the fitter in the library means the reproduction can be
re-calibrated against a different machine's measurements (or re-verified)
at any time::

    from repro.bench.calibration import CalibrationProblem, coordinate_descent
    problem = CalibrationProblem.tables_2_to_6()
    best, error = coordinate_descent(problem, sweeps=2)

The objective is the mean relative error over every (graph, iterations,
processors) cell of the target tables.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Mapping, Sequence

from ..apps.average import FINE_GRAIN, make_average_fn
from ..core.config import PlatformConfig, PlatformCosts
from ..core.platform import ICPlatform
from ..graphs.generators import random_connected_graph
from ..graphs.graph import Graph
from ..mpi.timing import MachineModel
from ..partitioning.base import Partition
from ..partitioning.multilevel.kway import MetisLikePartitioner
from .paperdata import PAPER_TABLES, PROCS

__all__ = ["CalibrationParam", "CalibrationProblem", "evaluate", "coordinate_descent"]


@dataclass(frozen=True)
class CalibrationParam:
    """One tunable constant.

    Attributes:
        name: Identifier (used in the result mapping).
        grid: Candidate values for the coordinate-descent sweep.
        target: ``"machine"`` (a :class:`MachineModel` field) or ``"costs"``
            (a :class:`PlatformCosts` field).
        fields: The dataclass field(s) this parameter sets (several fields
            may share one value, e.g. send and receive overhead).
    """

    name: str
    grid: tuple[float, ...]
    target: str
    fields: tuple[str, ...]

    def __post_init__(self) -> None:
        if self.target not in ("machine", "costs"):
            raise ValueError(f"target must be 'machine' or 'costs', got {self.target!r}")
        if not self.grid:
            raise ValueError(f"parameter {self.name}: empty grid")


@dataclass
class CalibrationProblem:
    """A set of target tables plus the parameters to fit.

    Attributes:
        cells: ``(graph, iterations, procs_index) -> paper seconds`` --
            flattened target cells.
        graphs: The benchmark graphs, keyed by label.
        params: Tunable parameters.
        base_machine: Machine model the parameter overrides start from.
        base_costs: Cost constants the overrides start from.
        iterations: Iteration counts to run (rows).
        procs: Processor axis (columns).
    """

    tables: Mapping[str, Mapping[int, Sequence[float]]]
    graphs: Mapping[str, Graph]
    params: Sequence[CalibrationParam]
    base_machine: MachineModel
    base_costs: PlatformCosts
    iterations: tuple[int, ...] = (20,)
    procs: tuple[int, ...] = tuple(PROCS)
    partitioner_seed: int = 1
    _partitions: dict[tuple[str, int], Partition] = field(default_factory=dict)

    @classmethod
    def tables_2_to_6(
        cls,
        params: Sequence[CalibrationParam] | None = None,
        iterations: tuple[int, ...] = (20,),
        procs: tuple[int, ...] = tuple(PROCS),
    ) -> "CalibrationProblem":
        """The calibration used for this repository's defaults."""
        from ..graphs.hexgrid import hex32, hex64, hex96
        from ..mpi.timing import ORIGIN2000

        graphs = {
            "table2_hex32": hex32(),
            "table3_hex64": hex64(),
            "table4_hex96": hex96(),
            "table5_rand32": random_connected_graph(32, 4.0, seed=0, name="rand32"),
            "table6_rand64": random_connected_graph(64, 4.0, seed=0, name="rand64"),
        }
        default_params = params or (
            CalibrationParam(
                "latency", (15e-6, 30e-6, 50e-6), "machine", ("latency",)
            ),
            CalibrationParam(
                "overhead", (20e-6, 35e-6, 50e-6), "machine",
                ("send_overhead", "recv_overhead"),
            ),
            CalibrationParam(
                "scan", (0.6e-6, 0.8e-6, 1.2e-6), "costs",
                ("data_scan_item_cost", "unpack_scan_item_cost"),
            ),
            CalibrationParam(
                "recv_setup", (60e-6, 100e-6, 150e-6), "costs", ("recv_setup_cost",)
            ),
        )
        return cls(
            tables={k: PAPER_TABLES[k] for k in graphs},
            graphs=graphs,
            params=default_params,
            base_machine=ORIGIN2000,
            base_costs=PlatformCosts(),
            iterations=iterations,
            procs=procs,
        )

    def partition_for(self, label: str, nprocs: int) -> Partition:
        key = (label, nprocs)
        if key not in self._partitions:
            self._partitions[key] = MetisLikePartitioner(
                seed=self.partitioner_seed
            ).partition(self.graphs[label], nprocs)
        return self._partitions[key]

    def apply(self, values: Mapping[str, float]) -> tuple[MachineModel, PlatformCosts]:
        """Materialize parameter values into (machine, costs)."""
        machine_overrides: dict[str, float] = {}
        cost_overrides: dict[str, float] = {}
        for param in self.params:
            if param.name not in values:
                continue
            for fname in param.fields:
                if param.target == "machine":
                    machine_overrides[fname] = values[param.name]
                else:
                    cost_overrides[fname] = values[param.name]
        machine = (
            self.base_machine.with_overrides(**machine_overrides)
            if machine_overrides
            else self.base_machine
        )
        costs = (
            self.base_costs.with_overrides(**cost_overrides)
            if cost_overrides
            else self.base_costs
        )
        return machine, costs


def evaluate(problem: CalibrationProblem, values: Mapping[str, float]) -> float:
    """Mean relative error over every target cell for one parameter setting."""
    machine, costs = problem.apply(values)
    node_fn = make_average_fn(FINE_GRAIN)
    total = 0.0
    count = 0
    for label, rows in problem.tables.items():
        graph = problem.graphs[label]
        for iters in problem.iterations:
            paper_row = rows[iters]
            for idx, nprocs in enumerate(problem.procs):
                paper_value = paper_row[list(PROCS).index(nprocs)]
                config = PlatformConfig(iterations=iters, costs=costs)
                platform = ICPlatform(graph, node_fn, config=config)
                elapsed = platform.run(
                    problem.partition_for(label, nprocs), machine=machine
                ).elapsed
                total += abs(elapsed - paper_value) / paper_value
                count += 1
    return total / max(1, count)


def coordinate_descent(
    problem: CalibrationProblem,
    sweeps: int = 2,
    on_step: Callable[[str, float, float], None] | None = None,
) -> tuple[dict[str, float], float]:
    """Greedy per-parameter grid search.

    Args:
        problem: What to fit against.
        sweeps: Full passes over the parameter list.
        on_step: Optional callback ``(param_name, value, error)`` per trial.

    Returns:
        ``(best values, best mean relative error)``.
    """
    best = {p.name: p.grid[len(p.grid) // 2] for p in problem.params}
    best_error = evaluate(problem, best)
    for _ in range(sweeps):
        improved = False
        for param in problem.params:
            for value in param.grid:
                if value == best[param.name]:
                    continue
                trial = dict(best)
                trial[param.name] = value
                error = evaluate(problem, trial)
                if on_step is not None:
                    on_step(param.name, value, error)
                if error < best_error - 1e-9:
                    best, best_error = trial, error
                    improved = True
        if not improved:
            break
    return best, best_error
