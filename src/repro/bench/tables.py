"""Result-table containers and text rendering for the experiment harness."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

__all__ = ["ExperimentTable", "SeriesFigure", "format_seconds"]


def format_seconds(value: float) -> str:
    """Render a runtime like the paper's tables (3-4 significant figures)."""
    if value >= 1.0:
        return f"{value:.3f}"
    return f"{value:.4f}"


@dataclass
class ExperimentTable:
    """A runtimes table in the paper's shape: rows = iteration counts,
    columns = processor counts.

    Attributes:
        experiment_id: e.g. ``"table2_hex32"``.
        title: Human-readable caption.
        row_label: ``"Iterations"`` or ``"Simulation Steps"``.
        procs: Column order.
        rows: ``iterations -> [seconds per processor]`` (measured).
        paper: Optional paper values; their columns follow ``paper_procs``
            (the paper's full processor axis), and rendering picks out the
            columns matching this table's ``procs``.
        paper_procs: Processor axis of the ``paper`` rows.
    """

    experiment_id: str
    title: str
    row_label: str
    procs: Sequence[int]
    rows: dict[int, list[float]]
    paper: Mapping[int, Sequence[float]] | None = None
    paper_procs: Sequence[int] = (1, 2, 4, 8, 16)

    def _paper_row(self, iterations: int) -> list[float | None]:
        """Paper values aligned to this table's processor columns."""
        assert self.paper is not None
        full = self.paper[iterations]
        index = {p: i for i, p in enumerate(self.paper_procs)}
        return [
            full[index[p]] if p in index and index[p] < len(full) else None
            for p in self.procs
        ]

    def speedups(self, iterations: int) -> list[float]:
        """Speedup over the single-processor column for one row."""
        row = self.rows[iterations]
        base = row[list(self.procs).index(1)] if 1 in self.procs else row[0]
        return [base / t for t in row]

    def render(self) -> str:
        """Paper-style text table, with paper values interleaved if known."""
        header = [self.row_label] + [f"p={p}" for p in self.procs]
        widths = [max(12, len(h) + 2) for h in header]
        lines = [self.title, "-" * len(self.title)]
        lines.append("".join(h.ljust(w) for h, w in zip(header, widths)))
        for iters in sorted(self.rows):
            cells = [str(iters)] + [format_seconds(v) for v in self.rows[iters]]
            lines.append("".join(c.ljust(w) for c, w in zip(cells, widths)))
            if self.paper and iters in self.paper:
                cells = ["  (paper)"] + [
                    format_seconds(v) if v is not None else "-"
                    for v in self._paper_row(iters)
                ]
                lines.append("".join(c.ljust(w) for c, w in zip(cells, widths)))
        return "\n".join(lines)


@dataclass
class SeriesFigure:
    """A figure with one or more named series over processor counts.

    Attributes:
        experiment_id: e.g. ``"fig11_hex_speedup"``.
        title: Caption.
        procs: X axis.
        series: ``label -> values`` (speedups or seconds).
        ylabel: What the values are.
    """

    experiment_id: str
    title: str
    procs: Sequence[int]
    series: dict[str, list[float]] = field(default_factory=dict)
    ylabel: str = "speedup"

    def add(self, label: str, values: Sequence[float]) -> None:
        """Attach one series (length must match the processor axis)."""
        values = list(values)
        if len(values) != len(self.procs):
            raise ValueError(
                f"series {label!r} has {len(values)} points for {len(self.procs)} procs"
            )
        self.series[label] = values

    def render(self) -> str:
        """Text rendering: one row per series."""
        width = max((len(s) for s in self.series), default=10) + 2
        lines = [self.title, "-" * len(self.title)]
        lines.append(
            " " * width + "".join(f"p={p}".ljust(9) for p in self.procs)
            + f"  ({self.ylabel})"
        )
        for label, values in self.series.items():
            lines.append(
                label.ljust(width) + "".join(f"{v:.3f}".ljust(9) for v in values)
            )
        return "\n".join(lines)
