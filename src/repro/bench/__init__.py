"""Experiment harness: regenerates every table and figure of section 5."""

from .harness import (
    PERSISTENT_IMBALANCE,
    PROCS,
    RECOVERY_IMBALANCE,
    OverheadResult,
    RecoveryComparison,
    RecoveryRun,
    battlefield_partitioners,
    hex_graph,
    run_average_once,
    run_battlefield_speedups,
    run_battlefield_table,
    run_hex_table,
    run_metis_vs_pagrid,
    run_overheads,
    run_random_table,
    run_recovery_comparison,
    run_speedup_figure,
    run_static_vs_dynamic,
)
from .paperdata import PAPER_TABLES
from .tables import ExperimentTable, SeriesFigure, format_seconds

__all__ = [
    "ExperimentTable",
    "OverheadResult",
    "PAPER_TABLES",
    "PERSISTENT_IMBALANCE",
    "PROCS",
    "RECOVERY_IMBALANCE",
    "RecoveryComparison",
    "RecoveryRun",
    "SeriesFigure",
    "battlefield_partitioners",
    "format_seconds",
    "hex_graph",
    "run_average_once",
    "run_battlefield_speedups",
    "run_battlefield_table",
    "run_hex_table",
    "run_metis_vs_pagrid",
    "run_overheads",
    "run_random_table",
    "run_recovery_comparison",
    "run_speedup_figure",
    "run_static_vs_dynamic",
]
