"""Full evaluation report generator.

``generate_report()`` reruns the paper's entire evaluation section — every
table and figure — and returns one markdown document with measured results
rendered next to the published numbers.  ``python -m repro bench all``
prints it; the benchmark suite is the asserting twin of this module.

A ``quick=True`` mode shrinks the processor axis and averaging so the
report builds in seconds (used by the tests); the full mode matches the
benchmark suite's configurations.
"""

from __future__ import annotations

import io
from typing import Sequence

from ..graphs.generators import random_connected_graph
from .harness import (
    PERSISTENT_IMBALANCE,
    hex_graph,
    run_battlefield_speedups,
    run_battlefield_table,
    run_hex_table,
    run_metis_vs_pagrid,
    run_overheads,
    run_random_table,
    run_speedup_figure,
    run_static_vs_dynamic,
)

__all__ = ["generate_report"]


def _section(out: io.StringIO, title: str) -> None:
    out.write(f"\n## {title}\n\n")


def _block(out: io.StringIO, rendered: str) -> None:
    out.write("```\n")
    out.write(rendered)
    out.write("\n```\n")


def generate_report(
    quick: bool = False,
    procs: Sequence[int] | None = None,
) -> str:
    """Build the full paper-vs-measured report as markdown.

    Args:
        quick: Use a reduced processor axis, fewer random-graph seeds and
            shorter horizons (seconds instead of minutes to build).
        procs: Override the processor axis entirely.
    """
    procs = tuple(procs) if procs is not None else ((1, 4) if quick else (1, 2, 4, 8, 16))
    seeds = (0,) if quick else (0, 1, 2, 3, 4)
    sd_iters = 30 if quick else 60
    bf_steps: tuple[int, ...] = (5,) if quick else (5, 15, 25)
    schemes = ("metis", "bf") if quick else ("metis", "bf", "rowband", "colband", "rectband")

    out = io.StringIO()
    out.write("# iC2mpi evaluation report (regenerated)\n")
    out.write(
        "\nVirtual-time simulation calibrated against the thesis's "
        "Origin-2000 results; `(paper)` rows are the published numbers.\n"
    )

    _section(out, "Tables 2-4: hexagonal grids (fine grain, Metis)")
    for nodes in (32, 64, 96):
        table = run_hex_table(nodes, procs=procs)
        _block(out, table.render())

    _section(out, "Tables 5-6: random graphs (fine grain, Metis)")
    for nodes in (32, 64):
        table = run_random_table(nodes, procs=procs, seeds=seeds)
        _block(out, table.render())

    _section(out, "Figure 11/16: speedups for static partition")
    hex_tables = [run_hex_table(n, iterations_list=(20,), procs=procs) for n in (32, 64, 96)]
    _block(out, run_speedup_figure(hex_tables, title="Hex grids").render())
    rand_tables = [
        run_random_table(n, iterations_list=(20,), procs=procs, seeds=seeds)
        for n in (32, 64)
    ]
    _block(out, run_speedup_figure(rand_tables, title="Random graphs").render())

    _section(out, "Figures 12/17: Metis vs PaGrid")
    _block(out, run_metis_vs_pagrid(hex_graph(64), procs=procs).render())
    rand64 = random_connected_graph(64, 4.0, seed=0, name="rand64")
    _block(out, run_metis_vs_pagrid(rand64, procs=procs).render())

    _section(out, "Figures 13-15/18-19: static vs dynamic load balancing")
    for graph in (hex_graph(64), hex_graph(32), rand64):
        fig = run_static_vs_dynamic(
            graph, procs=procs, iterations=sd_iters, schedule=PERSISTENT_IMBALANCE
        )
        _block(out, fig.render())

    _section(out, "Tables 7-11 / Figure 20: battlefield management simulation")
    for scheme in schemes:
        _block(out, run_battlefield_table(scheme, steps_list=bf_steps, procs=procs).render())
    if not quick:
        _block(out, run_battlefield_speedups(procs=procs).render())

    _section(out, "Figures 21/22: phase overheads")
    overhead_procs = tuple(p for p in procs if p >= 2) or (2,)
    _block(out, run_overheads(hex_graph(64), procs=overhead_procs).render())
    _block(
        out,
        run_overheads(
            rand64, procs=overhead_procs, experiment_id="fig22_overheads"
        ).render(),
    )

    return out.getvalue()
