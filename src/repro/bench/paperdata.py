"""The paper's published numbers (Tables 2-11), used for side-by-side
comparison in the benchmark harness and EXPERIMENTS.md.

All values are seconds, rows keyed by iteration / simulation-step count,
columns in processor order ``(1, 2, 4, 8, 16)``.
"""

from __future__ import annotations

__all__ = ["PROCS", "PAPER_TABLES"]

#: Processor counts used across the whole evaluation section.
PROCS: tuple[int, ...] = (1, 2, 4, 8, 16)

#: Table id -> {iterations/steps -> [seconds per processor count]}.
PAPER_TABLES: dict[str, dict[int, list[float]]] = {
    # Table 2: 32-node hexagonal grids (fine grain, Metis)
    "table2_hex32": {
        10: [0.111, 0.0580, 0.0315, 0.0191, 0.028],
        15: [0.165, 0.085, 0.0462, 0.027, 0.035],
        20: [0.209, 0.113, 0.0605, 0.0435, 0.0434],
    },
    # Table 3: 64-node hexagonal grids
    "table3_hex64": {
        10: [0.218, 0.113, 0.0708, 0.0348, 0.039],
        15: [0.344, 0.178, 0.092, 0.0585, 0.056],
        20: [0.458, 0.236, 0.136, 0.0829, 0.0638],
    },
    # Table 4: 96-node hexagonal grids
    "table4_hex96": {
        10: [0.3528, 0.177, 0.0912, 0.0603, 0.052],
        15: [0.527, 0.254, 0.135, 0.0809, 0.071],
        20: [0.7016, 0.352, 0.180, 0.106, 0.085],
    },
    # Table 5: 32-node random graphs
    "table5_rand32": {
        10: [0.108, 0.056, 0.030, 0.020, 0.035],
        15: [0.161, 0.082, 0.045, 0.037, 0.044],
        20: [0.215, 0.109, 0.059, 0.046, 0.049],
    },
    # Table 6: 64-node random graphs
    "table6_rand64": {
        10: [0.218, 0.111, 0.064, 0.050, 0.051],
        15: [0.325, 0.167, 0.095, 0.059, 0.067],
        20: [0.434, 0.221, 0.126, 0.073, 0.083],
    },
    # Table 7: battlefield simulator, Metis partition
    "table7_bf_metis": {
        5: [0.684, 0.654, 0.537, 0.461, 0.390],
        15: [1.463, 1.447, 1.109, 0.869, 0.623],
        25: [2.248, 2.245, 1.666, 1.265, 0.847],
    },
    # Table 8: battlefield, gray-code mesh-to-hypercube (BF partition)
    "table8_bf_graycode": {
        5: [0.681, 1.360, 0.926, 0.645, 0.454],
        15: [1.410, 3.578, 2.279, 1.413, 0.814],
        25: [2.255, 5.752, 3.627, 2.166, 1.164],
    },
    # Table 9: battlefield, row band partition
    "table9_bf_rowband": {
        5: [0.680, 0.756, 0.606, 0.507, 0.467],
        15: [1.456, 1.780, 1.347, 1.006, 0.854],
        25: [2.226, 2.781, 2.057, 1.502, 1.229],
    },
    # Table 10: battlefield, column band partition
    "table10_bf_colband": {
        5: [0.679, 0.666, 0.543, 0.465, 0.453],
        15: [1.463, 1.463, 1.112, 0.887, 0.820],
        25: [2.242, 2.245, 1.689, 1.286, 1.168],
    },
    # Table 11: battlefield, rectangular band partition
    "table11_bf_rectband": {
        5: [0.682, 0.663, 0.591, 0.503, 0.404],
        15: [1.456, 1.465, 1.260, 0.981, 0.679],
        25: [2.243, 2.247, 1.932, 1.464, 0.950],
    },
}
