"""Experiment runners: one function per family of tables/figures.

These are what the ``benchmarks/`` suite calls; they are also directly
usable from a REPL to regenerate any piece of the paper's evaluation::

    from repro.bench import run_hex_table
    print(run_hex_table(64).render())
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..apps.average import COARSE_GRAIN, FINE_GRAIN, make_average_fn
from ..apps.battlefield import BattlefieldApp, general_engagement
from ..apps.imbalance import ImbalanceSchedule, make_imbalanced_average_fn
from ..core.config import PlatformConfig
from ..mpi.faults import FaultPlan
from ..core.loadbalance import CentralizedHeuristicBalancer, GreedyPairBalancer
from ..core.phases import PhaseTimes
from ..core.platform import ICPlatform, PlatformResult
from ..graphs.generators import random_connected_graph
from ..graphs.graph import Graph
from ..graphs.hexgrid import hex32, hex64, hex96
from ..mpi.timing import ORIGIN2000, MachineModel
from ..partitioning.bands import (
    ColumnBandPartitioner,
    RectangularPartitioner,
    RowBandPartitioner,
)
from ..partitioning.base import Partitioner
from ..partitioning.graycode import GrayCodePartitioner
from ..partitioning.multilevel.kway import MetisLikePartitioner
from ..partitioning.pagrid import PaGridLikePartitioner
from ..partitioning.procgraph import ProcessorGraph
from .paperdata import PAPER_TABLES, PROCS
from .tables import ExperimentTable, SeriesFigure

__all__ = [
    "PROCS",
    "hex_graph",
    "run_average_once",
    "run_hex_table",
    "run_random_table",
    "run_speedup_figure",
    "run_metis_vs_pagrid",
    "run_static_vs_dynamic",
    "run_battlefield_table",
    "run_battlefield_speedups",
    "run_overheads",
    "run_recovery_comparison",
    "run_integrity_comparison",
    "RecoveryComparison",
    "RecoveryRun",
    "IntegrityComparison",
    "IntegrityWorkload",
    "IntegrityRun",
    "battlefield_partitioners",
    "PERSISTENT_IMBALANCE",
    "RECOVERY_IMBALANCE",
]

#: Persistent-imbalance schedule used by the static-vs-dynamic figures: the
#: heavy half of the domain never moves, so the static partitioner's
#: blindness to node weights is on full display while the dynamic balancer
#: has time to diffuse load (see EXPERIMENTS.md for why the paper's literal
#: rolling schedule cannot be rebalanced by its own one-task migrations).
PERSISTENT_IMBALANCE = ImbalanceSchedule(
    windows=((10**9, 0.0, 0.5),), heavy_grain=COARSE_GRAIN, light_grain=FINE_GRAIN
)

#: Imbalance schedule for the recovery-cost comparison: same persistent
#: heavy band, but fine-grained (heavy = the paper's fine grain, light a
#: third of it).  With per-iteration compute this small, the cost of
#: finishing on ``nprocs - 1`` survivors is tiny next to the fixed price
#: of acquiring and restarting a replacement processor -- the regime where
#: shrinking recovery is the right call.  (With coarse grain the verdict
#: flips: capacity loss dominates and rollback-with-restart wins; the
#: comparison harness lets you measure either by passing a schedule.)
RECOVERY_IMBALANCE = ImbalanceSchedule(
    windows=((10**9, 0.0, 0.5),), heavy_grain=FINE_GRAIN, light_grain=0.1e-3
)


def hex_graph(nodes: int) -> Graph:
    """The paper's hex grid of the given size (32, 64 or 96 nodes)."""
    if nodes == 32:
        return hex32()
    if nodes == 64:
        return hex64()
    if nodes == 96:
        return hex96()
    raise ValueError(f"the paper uses 32/64/96-node hex grids, got {nodes}")


def run_average_once(
    graph: Graph,
    nprocs: int,
    iterations: int,
    grain: float = FINE_GRAIN,
    partitioner: Partitioner | None = None,
    dynamic: bool = False,
    machine: MachineModel = ORIGIN2000,
    config_overrides: dict | None = None,
) -> PlatformResult:
    """One platform run of the neighbour-average application."""
    partitioner = partitioner or MetisLikePartitioner(seed=1)
    partition = partitioner.partition(graph, nprocs)
    config = PlatformConfig(
        iterations=iterations,
        dynamic_load_balancing=dynamic,
        **(config_overrides or {}),
    )
    platform = ICPlatform(graph, make_average_fn(grain), config=config)
    return platform.run(partition, machine=machine)


def _table(
    experiment_id: str,
    title: str,
    graphs: Sequence[Graph],
    iterations_list: Sequence[int],
    procs: Sequence[int],
    grain: float,
    partitioner: Partitioner,
    machine: MachineModel,
    row_label: str = "Iterations",
) -> ExperimentTable:
    """Shared machinery: average elapsed over the given graphs per cell."""
    rows: dict[int, list[float]] = {}
    partitions = {
        (id(g), p): partitioner.partition(g, p) for g in graphs for p in procs
    }
    for iters in iterations_list:
        row = []
        for p in procs:
            total = 0.0
            for g in graphs:
                config = PlatformConfig(iterations=iters)
                platform = ICPlatform(g, make_average_fn(grain), config=config)
                total += platform.run(partitions[(id(g), p)], machine=machine).elapsed
            row.append(total / len(graphs))
        rows[iters] = row
    return ExperimentTable(
        experiment_id=experiment_id,
        title=title,
        row_label=row_label,
        procs=procs,
        rows=rows,
        paper=PAPER_TABLES.get(experiment_id),
    )


def run_hex_table(
    nodes: int,
    iterations_list: Sequence[int] = (10, 15, 20),
    procs: Sequence[int] = PROCS,
    grain: float = FINE_GRAIN,
    seed: int = 1,
    machine: MachineModel = ORIGIN2000,
) -> ExperimentTable:
    """Tables 2/3/4: runtimes on hexagonal grids (Metis, fine grain)."""
    return _table(
        experiment_id=f"table{ {32: 2, 64: 3, 96: 4}[nodes] }_hex{nodes}",
        title=f"Execution time (s) on {nodes}-node hexagonal grids",
        graphs=[hex_graph(nodes)],
        iterations_list=iterations_list,
        procs=procs,
        grain=grain,
        partitioner=MetisLikePartitioner(seed=seed),
        machine=machine,
    )


def run_random_table(
    nodes: int,
    iterations_list: Sequence[int] = (10, 15, 20),
    procs: Sequence[int] = PROCS,
    grain: float = FINE_GRAIN,
    seeds: Sequence[int] = (0, 1, 2, 3, 4),
    machine: MachineModel = ORIGIN2000,
) -> ExperimentTable:
    """Tables 5/6: runtimes on random graphs, averaged over several graphs
    (the paper averages five)."""
    graphs = [
        random_connected_graph(nodes, avg_degree=4.0, seed=s, name=f"rand{nodes}-s{s}")
        for s in seeds
    ]
    return _table(
        experiment_id=f"table{ {32: 5, 64: 6}[nodes] }_rand{nodes}",
        title=f"Execution time (s) on {nodes}-node random graphs "
        f"(mean of {len(seeds)} graphs)",
        graphs=graphs,
        iterations_list=iterations_list,
        procs=procs,
        grain=grain,
        partitioner=MetisLikePartitioner(seed=1),
        machine=machine,
    )


def run_speedup_figure(
    tables: Sequence[ExperimentTable],
    iterations: int = 20,
    experiment_id: str = "fig_speedup",
    title: str = "Speed-up plots for static partition",
) -> SeriesFigure:
    """Figures 11/16: speedups derived from runtime tables."""
    if not tables:
        raise ValueError("need at least one table")
    fig = SeriesFigure(
        experiment_id=experiment_id, title=title, procs=list(tables[0].procs)
    )
    for table in tables:
        fig.add(table.title.split(" on ")[-1], table.speedups(iterations))
    return fig


def run_metis_vs_pagrid(
    graph: Graph,
    procs: Sequence[int] = PROCS,
    iterations: int = 20,
    rref: float = 0.45,
    seed: int = 1,
    machine: MachineModel = ORIGIN2000,
    experiment_id: str = "fig12_metis_vs_pagrid",
    topology_aware: bool = True,
) -> SeriesFigure:
    """Figures 12/17: Metis vs PaGrid speedups, fine and coarse grain.

    PaGrid maps onto a hypercube processor graph (the paper's setup) with
    the published ``Rref = 0.45``.  With ``topology_aware`` (default) every
    run -- both partitioners -- executes on a hypercube-topology machine
    model (per-hop latency), which is what lets PaGrid's mapping quality
    show up as runtime, exactly as on the real Origin-2000.
    """
    from ..mpi.timing import TopologyMachineModel

    fig = SeriesFigure(
        experiment_id=experiment_id,
        title=f"Metis vs PaGrid, fine/coarse grain on {graph.name}",
        procs=list(procs),
    )

    def machine_for(p: int) -> MachineModel:
        if not topology_aware or p == 1:
            return machine
        return TopologyMachineModel.wrap(machine, ProcessorGraph.hypercube(p))

    for grain, grain_label in ((FINE_GRAIN, "fine"), (COARSE_GRAIN, "coarse")):
        for maker, name in (
            (lambda p: MetisLikePartitioner(seed=seed), "metis"),
            (
                lambda p: PaGridLikePartitioner(
                    ProcessorGraph.hypercube(p), rref=rref, seed=seed
                ),
                "pagrid",
            ),
        ):
            times = []
            for p in procs:
                partitioner = (
                    MetisLikePartitioner(seed=seed) if p == 1 else maker(p)
                )
                result = run_average_once(
                    graph, p, iterations, grain=grain,
                    partitioner=partitioner, machine=machine_for(p),
                )
                times.append(result.elapsed)
            base = times[list(procs).index(1)] if 1 in procs else times[0]
            fig.add(f"{grain_label}-{name}", [base / t for t in times])
    return fig


def run_static_vs_dynamic(
    graph: Graph,
    procs: Sequence[int] = PROCS,
    iterations: int = 60,
    lb_period: int = 10,
    schedule: ImbalanceSchedule = PERSISTENT_IMBALANCE,
    seed: int = 1,
    machine: MachineModel = ORIGIN2000,
    experiment_id: str = "fig13_static_vs_dynamic",
    include_greedy: bool = True,
) -> SeriesFigure:
    """Figures 13/14/15/18/19: static partition vs dynamic load balancing.

    Three series: the static partition, the thesis's centralized heuristic
    (one task per busy-idle pair), and -- as the extension its section 7
    proposes -- a greedy balancer.  Values are speedups over the
    single-processor run of the same (imbalanced) workload.
    """
    partitioner = MetisLikePartitioner(seed=seed)
    node_fn = make_imbalanced_average_fn(schedule)
    fig = SeriesFigure(
        experiment_id=experiment_id,
        title=f"Static vs dynamic partitioning on {graph.name} "
        f"({iterations} iterations, LB every {lb_period})",
        procs=list(procs),
    )

    def elapsed(p: int, dynamic: bool, balancer=None) -> float:
        partition = partitioner.partition(graph, p)
        config = PlatformConfig(
            iterations=iterations,
            dynamic_load_balancing=dynamic,
            lb_period=lb_period,
        )
        platform = ICPlatform(graph, node_fn, config=config, balancer=balancer)
        return platform.run(partition, machine=machine).elapsed

    static_times = [elapsed(p, dynamic=False) for p in procs]
    base = static_times[list(procs).index(1)] if 1 in procs else static_times[0]
    fig.add("static", [base / t for t in static_times])
    centralized = [
        elapsed(p, dynamic=True, balancer=CentralizedHeuristicBalancer()) for p in procs
    ]
    fig.add("dynamic-centralized", [base / t for t in centralized])
    if include_greedy:
        greedy = [
            elapsed(p, dynamic=True, balancer=GreedyPairBalancer(0.25)) for p in procs
        ]
        fig.add("dynamic-greedy", [base / t for t in greedy])
    return fig


def battlefield_partitioners(rows: int = 32, cols: int = 32, seed: int = 0):
    """The five initial-partitioning schemes of section 5.3, by name."""
    return {
        "metis": MetisLikePartitioner(seed=seed, trials=4),
        "bf": GrayCodePartitioner(rows, cols),
        "rowband": RowBandPartitioner(rows, cols),
        "colband": ColumnBandPartitioner(rows, cols),
        "rectband": RectangularPartitioner(rows, cols),
    }


_BF_TABLE_IDS = {
    "metis": "table7_bf_metis",
    "bf": "table8_bf_graycode",
    "rowband": "table9_bf_rowband",
    "colband": "table10_bf_colband",
    "rectband": "table11_bf_rectband",
}


def run_battlefield_table(
    scheme: str,
    steps_list: Sequence[int] = (5, 15, 25),
    procs: Sequence[int] = PROCS,
    machine: MachineModel = ORIGIN2000,
    app: BattlefieldApp | None = None,
) -> ExperimentTable:
    """Tables 7-11: battlefield runtimes under one partitioning scheme."""
    app = app or BattlefieldApp(general_engagement())
    graph = app.graph()
    partitioner = battlefield_partitioners()[scheme]
    rows: dict[int, list[float]] = {}
    partitions = {p: partitioner.partition(graph, p) for p in procs}
    for steps in steps_list:
        row = []
        for p in procs:
            platform = ICPlatform(
                graph,
                app.node_fns(),
                init_value=app.init_value,
                config=app.platform_config(steps=steps),
            )
            row.append(platform.run(partitions[p], machine=machine).elapsed)
        rows[steps] = row
    experiment_id = _BF_TABLE_IDS[scheme]
    return ExperimentTable(
        experiment_id=experiment_id,
        title=f"Battlefield simulator, {scheme} partition",
        row_label="Simulation Steps",
        procs=procs,
        rows=rows,
        paper=PAPER_TABLES.get(experiment_id),
    )


def run_battlefield_speedups(
    steps: int = 25,
    procs: Sequence[int] = PROCS,
    machine: MachineModel = ORIGIN2000,
    schemes: Sequence[str] = ("metis", "bf", "rowband", "colband", "rectband"),
) -> SeriesFigure:
    """Figure 20: battlefield speedups across the five partitioners."""
    app = BattlefieldApp(general_engagement())
    fig = SeriesFigure(
        experiment_id="fig20_battlefield_speedup",
        title=f"Battlefield speedups, {steps} steps",
        procs=list(procs),
    )
    for scheme in schemes:
        table = run_battlefield_table(
            scheme, steps_list=(steps,), procs=procs, machine=machine, app=app
        )
        fig.add(scheme, table.speedups(steps))
    return fig


@dataclass
class OverheadResult:
    """Figures 21/22: mean per-rank phase breakdowns per processor count."""

    experiment_id: str
    title: str
    procs: Sequence[int]
    phases: dict[int, PhaseTimes]

    def render(self) -> str:
        from ..core.phases import PHASE_NAMES

        lines = [self.title, "-" * len(self.title)]
        header = "phase".ljust(26) + "".join(f"p={p}".ljust(12) for p in self.procs)
        lines.append(header)
        for name in PHASE_NAMES:
            cells = [f"{getattr(self.phases[p], name) * 1e3:.2f}ms" for p in self.procs]
            lines.append(name.ljust(26) + "".join(c.ljust(12) for c in cells))
        return "\n".join(lines)


@dataclass
class RecoveryRun:
    """Cost accounting for one platform run under one recovery policy."""

    policy: str
    elapsed: float
    recoveries: int
    dead_ranks: tuple[int, ...]
    recovery_phase_time: float
    detection_cost: float
    reconfiguration_cost: float
    nodes_redistributed: int
    values_match_baseline: bool

    def to_dict(self) -> dict:
        return {
            "policy": self.policy,
            "elapsed_s": self.elapsed,
            "recoveries": self.recoveries,
            "dead_ranks": list(self.dead_ranks),
            "recovery_phase_time_s": self.recovery_phase_time,
            "detection_cost_s": self.detection_cost,
            "reconfiguration_cost_s": self.reconfiguration_cost,
            "nodes_redistributed": self.nodes_redistributed,
            "values_match_baseline": self.values_match_baseline,
        }


@dataclass
class RecoveryComparison:
    """Rollback vs shrink on the same faulty workload.

    ``baseline`` is the fault-free run of the identical configuration;
    both policies must reproduce its final node values bit-for-bit (the
    transparency claim), they just pay for the crash differently.
    """

    experiment_id: str
    title: str
    baseline_elapsed: float
    runs: dict[str, RecoveryRun]

    @property
    def shrink_beats_rollback(self) -> bool:
        return self.runs["shrink"].elapsed < self.runs["rollback"].elapsed

    def to_dict(self) -> dict:
        return {
            "experiment_id": self.experiment_id,
            "title": self.title,
            "baseline_elapsed_s": self.baseline_elapsed,
            "policies": {name: run.to_dict() for name, run in self.runs.items()},
            "shrink_beats_rollback": self.shrink_beats_rollback,
        }

    def render(self) -> str:
        lines = [self.title, "-" * len(self.title)]
        lines.append(f"fault-free baseline: {self.baseline_elapsed:.4f}s")
        header = (
            "policy".ljust(10)
            + "elapsed".ljust(12)
            + "recovery".ljust(12)
            + "detect".ljust(12)
            + "reconfig".ljust(12)
            + "redistributed".ljust(15)
            + "values ok"
        )
        lines.append(header)
        for name, run in self.runs.items():
            lines.append(
                name.ljust(10)
                + f"{run.elapsed:.4f}s".ljust(12)
                + f"{run.recovery_phase_time * 1e3:.2f}ms".ljust(12)
                + f"{run.detection_cost * 1e3:.2f}ms".ljust(12)
                + f"{run.reconfiguration_cost * 1e3:.2f}ms".ljust(12)
                + str(run.nodes_redistributed).ljust(15)
                + ("yes" if run.values_match_baseline else "NO")
            )
        winner = "shrink" if self.shrink_beats_rollback else "rollback"
        lines.append(f"winner: {winner}")
        return "\n".join(lines)


def run_recovery_comparison(
    graph: Graph | None = None,
    nprocs: int = 4,
    iterations: int = 40,
    crash_rank: int = 2,
    crash_iteration: int | None = None,
    checkpoint_period: int = 5,
    schedule: ImbalanceSchedule = RECOVERY_IMBALANCE,
    seed: int = 1,
    machine: MachineModel = ORIGIN2000,
    experiment_id: str = "recovery_cost",
) -> RecoveryComparison:
    """Recovery-cost accounting: rollback vs shrink on one mid-run crash.

    Runs the imbalanced-average application three times on identical
    partitions -- fault-free, rollback, shrink -- with a single permanent
    crash (default: at ~50 % progress) and collects per-policy cost
    breakdowns from the execution trace.
    """
    graph = graph or hex_graph(64)
    if crash_iteration is None:
        crash_iteration = iterations // 2
    partition = MetisLikePartitioner(seed=seed).partition(graph, nprocs)
    node_fn = make_imbalanced_average_fn(schedule)

    def run_once(policy: str, plan: FaultPlan | None) -> PlatformResult:
        config = PlatformConfig(
            iterations=iterations,
            checkpoint_period=checkpoint_period,
            recovery_policy=policy,
            track_trace=True,
        )
        platform = ICPlatform(graph, node_fn, config=config)
        return platform.run(partition, machine=machine, faults=plan)

    baseline = run_once("rollback", None)
    plan = FaultPlan.parse(f"seed={seed},crash={crash_rank}@{crash_iteration}")
    runs: dict[str, RecoveryRun] = {}
    for policy in ("rollback", "shrink"):
        result = run_once(policy, plan)
        events = result.trace.reconfiguration_events()
        runs[policy] = RecoveryRun(
            policy=policy,
            elapsed=result.elapsed,
            recoveries=result.recoveries,
            dead_ranks=result.dead_ranks,
            recovery_phase_time=max(p.recovery for p in result.phases),
            detection_cost=sum(e.detection_cost for e in events),
            reconfiguration_cost=sum(e.reconfiguration_cost for e in events),
            nodes_redistributed=sum(e.nodes_redistributed for e in events),
            values_match_baseline=result.values == baseline.values,
        )
    return RecoveryComparison(
        experiment_id=experiment_id,
        title=(
            f"Recovery cost on {graph.name}: crash rank {crash_rank} @ "
            f"iteration {crash_iteration}/{iterations} ({nprocs} procs)"
        ),
        baseline_elapsed=baseline.elapsed,
        runs=runs,
    )


@dataclass
class IntegrityRun:
    """One platform run at one integrity level, fault-free or with a flip."""

    level: str
    elapsed: float
    overhead_pct: float | None
    repairs: int
    rollbacks: int
    values_match_baseline: bool

    def to_dict(self) -> dict:
        return {
            "level": self.level,
            "elapsed_s": self.elapsed,
            "overhead_pct": self.overhead_pct,
            "repairs": self.repairs,
            "rollbacks": self.rollbacks,
            "values_match_baseline": self.values_match_baseline,
        }


@dataclass
class IntegrityWorkload:
    """Integrity-protection accounting for one application workload.

    ``protection`` holds fault-free runs (the steady-state price of each
    integrity level); ``flip`` holds runs with one boundary-node memory
    flip injected mid-run (what each level does about it).
    """

    name: str
    flip_gid: int
    flip_iteration: int
    protection: dict[str, IntegrityRun]
    flip: dict[str, IntegrityRun]

    @property
    def repair_beats_rollback(self) -> bool:
        """Surgical replica repair must undercut the checkpoint rollback."""
        return self.flip["full"].elapsed < self.flip["digest"].elapsed

    @property
    def zero_escapes(self) -> bool:
        """Every digest-protected run lands on the fault-free values."""
        return (
            self.flip["digest"].values_match_baseline
            and self.flip["full"].values_match_baseline
        )

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "flip_gid": self.flip_gid,
            "flip_iteration": self.flip_iteration,
            "protection": {k: r.to_dict() for k, r in self.protection.items()},
            "flip": {k: r.to_dict() for k, r in self.flip.items()},
            "repair_beats_rollback": self.repair_beats_rollback,
            "zero_escapes": self.zero_escapes,
        }


@dataclass
class IntegrityComparison:
    """Unprotected vs checksum-only vs full integrity, across workloads."""

    experiment_id: str
    title: str
    workloads: dict[str, IntegrityWorkload]

    def to_dict(self) -> dict:
        return {
            "experiment_id": self.experiment_id,
            "title": self.title,
            "workloads": {k: w.to_dict() for k, w in self.workloads.items()},
        }

    def render(self) -> str:
        lines = [self.title, "-" * len(self.title)]
        for workload in self.workloads.values():
            lines.append("")
            lines.append(f"[{workload.name}] protection overhead (fault-free):")
            for run in workload.protection.values():
                pct = (
                    f"+{run.overhead_pct:.2f}%"
                    if run.overhead_pct is not None
                    else "baseline"
                )
                lines.append(
                    f"  {run.level:<10} {run.elapsed:.4f}s  {pct}"
                )
            lines.append(
                f"[{workload.name}] boundary flip: node {workload.flip_gid} "
                f"@ iteration {workload.flip_iteration}:"
            )
            for run in workload.flip.values():
                outcome = (
                    f"{run.repairs} repaired"
                    if run.repairs
                    else f"{run.rollbacks} rollbacks"
                    if run.rollbacks
                    else "undetected"
                )
                values = "values ok" if run.values_match_baseline else "CORRUPTED"
                lines.append(
                    f"  {run.level:<10} {run.elapsed:.4f}s  {outcome:<14} {values}"
                )
            verdict = "yes" if workload.repair_beats_rollback else "NO"
            lines.append(f"  repair beats rollback: {verdict}")
        return "\n".join(lines)


def _boundary_gid(graph: Graph, assignment: Sequence[int], rank: int) -> int:
    """Lowest node owned by ``rank`` with a neighbour on another rank."""
    for gid in sorted(graph.nodes()):
        if assignment[gid - 1] != rank:
            continue
        if any(assignment[nbr - 1] != rank for nbr in graph.neighbors(gid)):
            return gid
    raise ValueError(f"rank {rank} owns no boundary node")


def run_integrity_comparison(
    nprocs: int = 4,
    battlefield_steps: int = 10,
    plate_dims: tuple[int, int] = (16, 16),
    plate_iterations: int = 30,
    flip_rank: int = 1,
    checkpoint_period: int = 5,
    seed: int = 1,
    machine: MachineModel = ORIGIN2000,
    experiment_id: str = "integrity_overhead",
) -> IntegrityComparison:
    """End-to-end integrity accounting on two workloads.

    For the 1024-hex battlefield and a fine-grain Jacobi diffusion plate:

    * fault-free runs at ``off`` / ``checksum`` / ``full`` give the
      steady-state protection overhead of the checksummed transport and the
      per-superstep digests + claim exchange;
    * a single boundary-node memory flip mid-run, handled at ``off``
      (silent escape), ``digest`` (checkpoint rollback), and ``full``
      (surgical replica repair), gives the repair-vs-rollback cost gap.
    """
    from ..apps.diffusion import hot_edge_plate, make_jacobi_fn

    workloads: dict[str, IntegrityWorkload] = {}

    app = BattlefieldApp(general_engagement())
    bf_graph = app.graph()
    bf_config = app.platform_config(steps=battlefield_steps)
    bf_partition = MetisLikePartitioner(seed=seed).partition(bf_graph, nprocs)

    def run_battlefield(level: str, faults: FaultPlan | None) -> PlatformResult:
        config = bf_config.with_overrides(
            integrity=level,
            checkpoint_period=checkpoint_period if faults is not None else 0,
        )
        platform = ICPlatform(
            bf_graph, app.node_fns(), init_value=app.init_value, config=config
        )
        return platform.run(bf_partition, machine=machine, faults=faults)

    plate_graph, plate_boundary, plate_init = hot_edge_plate(*plate_dims)
    plate_partition = MetisLikePartitioner(seed=seed).partition(plate_graph, nprocs)

    def run_plate(level: str, faults: FaultPlan | None) -> PlatformResult:
        config = PlatformConfig(
            iterations=plate_iterations,
            integrity=level,
            checkpoint_period=checkpoint_period if faults is not None else 0,
        )
        platform = ICPlatform(
            plate_graph,
            make_jacobi_fn(plate_boundary),
            init_value=plate_init,
            config=config,
        )
        return platform.run(plate_partition, machine=machine, faults=faults)

    for name, run_once, graph, partition, iterations in (
        ("battlefield-1024hex", run_battlefield, bf_graph, bf_partition,
         bf_config.iterations),
        (f"diffusion-plate{plate_dims[0]}x{plate_dims[1]}", run_plate,
         plate_graph, plate_partition, plate_iterations),
    ):
        baseline = run_once("off", None)
        protection: dict[str, IntegrityRun] = {
            "off": IntegrityRun(
                level="off",
                elapsed=baseline.elapsed,
                overhead_pct=None,
                repairs=0,
                rollbacks=0,
                values_match_baseline=True,
            )
        }
        for level in ("checksum", "full"):
            result = run_once(level, None)
            protection[level] = IntegrityRun(
                level=level,
                elapsed=result.elapsed,
                overhead_pct=(result.elapsed / baseline.elapsed - 1.0) * 100.0,
                repairs=result.repairs,
                rollbacks=result.recoveries,
                values_match_baseline=result.values == baseline.values,
            )

        gid = _boundary_gid(graph, partition.assignment, flip_rank)
        flip_iteration = max(2, iterations // 2)
        plan = FaultPlan.parse(
            f"seed={seed},flip={flip_rank}@{flip_iteration}:{gid}"
        )
        flip: dict[str, IntegrityRun] = {}
        for level in ("off", "digest", "full"):
            result = run_once(level, plan)
            flip[level] = IntegrityRun(
                level=level,
                elapsed=result.elapsed,
                overhead_pct=None,
                repairs=result.repairs,
                rollbacks=result.recoveries,
                values_match_baseline=result.values == baseline.values,
            )
        workloads[name] = IntegrityWorkload(
            name=name,
            flip_gid=gid,
            flip_iteration=flip_iteration,
            protection=protection,
            flip=flip,
        )

    return IntegrityComparison(
        experiment_id=experiment_id,
        title=(
            f"Integrity protection: unprotected vs checksum vs "
            f"checksum+digest+replica ({nprocs} procs)"
        ),
        workloads=workloads,
    )


def run_overheads(
    graph: Graph,
    procs: Sequence[int] = (2, 4, 8, 16),
    iterations: int = 35,
    lb_period: int = 10,
    grain: float = FINE_GRAIN,
    seed: int = 1,
    machine: MachineModel = ORIGIN2000,
    experiment_id: str = "fig21_overheads",
) -> OverheadResult:
    """Figures 21/22: per-phase overheads (35 iterations, LB every 10)."""
    partitioner = MetisLikePartitioner(seed=seed)
    phases: dict[int, PhaseTimes] = {}
    for p in procs:
        result = run_average_once(
            graph,
            p,
            iterations,
            grain=grain,
            partitioner=partitioner,
            dynamic=True,
            machine=machine,
            config_overrides={"lb_period": lb_period},
        )
        phases[p] = result.mean_phases
    return OverheadResult(
        experiment_id=experiment_id,
        title=f"Phase overheads on {graph.name} ({iterations} iterations)",
        procs=list(procs),
        phases=phases,
    )
