"""Experiment runners: one function per family of tables/figures.

These are what the ``benchmarks/`` suite calls; they are also directly
usable from a REPL to regenerate any piece of the paper's evaluation::

    from repro.bench import run_hex_table
    print(run_hex_table(64).render())
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..apps.average import COARSE_GRAIN, FINE_GRAIN, make_average_fn
from ..apps.battlefield import BattlefieldApp, general_engagement
from ..apps.imbalance import ImbalanceSchedule, make_imbalanced_average_fn
from ..core.config import PlatformConfig
from ..mpi.faults import FaultPlan
from ..core.loadbalance import CentralizedHeuristicBalancer, GreedyPairBalancer
from ..core.phases import PhaseTimes
from ..core.platform import ICPlatform, PlatformResult
from ..graphs.generators import random_connected_graph
from ..graphs.graph import Graph
from ..graphs.hexgrid import hex32, hex64, hex96
from ..mpi.timing import ORIGIN2000, MachineModel
from ..partitioning.bands import (
    ColumnBandPartitioner,
    RectangularPartitioner,
    RowBandPartitioner,
)
from ..partitioning.base import Partitioner
from ..partitioning.graycode import GrayCodePartitioner
from ..partitioning.multilevel.kway import MetisLikePartitioner
from ..partitioning.pagrid import PaGridLikePartitioner
from ..partitioning.procgraph import ProcessorGraph
from .paperdata import PAPER_TABLES, PROCS
from .tables import ExperimentTable, SeriesFigure

__all__ = [
    "PROCS",
    "hex_graph",
    "run_average_once",
    "run_hex_table",
    "run_random_table",
    "run_speedup_figure",
    "run_metis_vs_pagrid",
    "run_static_vs_dynamic",
    "run_battlefield_table",
    "run_battlefield_speedups",
    "run_overheads",
    "run_recovery_comparison",
    "RecoveryComparison",
    "RecoveryRun",
    "battlefield_partitioners",
    "PERSISTENT_IMBALANCE",
    "RECOVERY_IMBALANCE",
]

#: Persistent-imbalance schedule used by the static-vs-dynamic figures: the
#: heavy half of the domain never moves, so the static partitioner's
#: blindness to node weights is on full display while the dynamic balancer
#: has time to diffuse load (see EXPERIMENTS.md for why the paper's literal
#: rolling schedule cannot be rebalanced by its own one-task migrations).
PERSISTENT_IMBALANCE = ImbalanceSchedule(
    windows=((10**9, 0.0, 0.5),), heavy_grain=COARSE_GRAIN, light_grain=FINE_GRAIN
)

#: Imbalance schedule for the recovery-cost comparison: same persistent
#: heavy band, but fine-grained (heavy = the paper's fine grain, light a
#: third of it).  With per-iteration compute this small, the cost of
#: finishing on ``nprocs - 1`` survivors is tiny next to the fixed price
#: of acquiring and restarting a replacement processor -- the regime where
#: shrinking recovery is the right call.  (With coarse grain the verdict
#: flips: capacity loss dominates and rollback-with-restart wins; the
#: comparison harness lets you measure either by passing a schedule.)
RECOVERY_IMBALANCE = ImbalanceSchedule(
    windows=((10**9, 0.0, 0.5),), heavy_grain=FINE_GRAIN, light_grain=0.1e-3
)


def hex_graph(nodes: int) -> Graph:
    """The paper's hex grid of the given size (32, 64 or 96 nodes)."""
    if nodes == 32:
        return hex32()
    if nodes == 64:
        return hex64()
    if nodes == 96:
        return hex96()
    raise ValueError(f"the paper uses 32/64/96-node hex grids, got {nodes}")


def run_average_once(
    graph: Graph,
    nprocs: int,
    iterations: int,
    grain: float = FINE_GRAIN,
    partitioner: Partitioner | None = None,
    dynamic: bool = False,
    machine: MachineModel = ORIGIN2000,
    config_overrides: dict | None = None,
) -> PlatformResult:
    """One platform run of the neighbour-average application."""
    partitioner = partitioner or MetisLikePartitioner(seed=1)
    partition = partitioner.partition(graph, nprocs)
    config = PlatformConfig(
        iterations=iterations,
        dynamic_load_balancing=dynamic,
        **(config_overrides or {}),
    )
    platform = ICPlatform(graph, make_average_fn(grain), config=config)
    return platform.run(partition, machine=machine)


def _table(
    experiment_id: str,
    title: str,
    graphs: Sequence[Graph],
    iterations_list: Sequence[int],
    procs: Sequence[int],
    grain: float,
    partitioner: Partitioner,
    machine: MachineModel,
    row_label: str = "Iterations",
) -> ExperimentTable:
    """Shared machinery: average elapsed over the given graphs per cell."""
    rows: dict[int, list[float]] = {}
    partitions = {
        (id(g), p): partitioner.partition(g, p) for g in graphs for p in procs
    }
    for iters in iterations_list:
        row = []
        for p in procs:
            total = 0.0
            for g in graphs:
                config = PlatformConfig(iterations=iters)
                platform = ICPlatform(g, make_average_fn(grain), config=config)
                total += platform.run(partitions[(id(g), p)], machine=machine).elapsed
            row.append(total / len(graphs))
        rows[iters] = row
    return ExperimentTable(
        experiment_id=experiment_id,
        title=title,
        row_label=row_label,
        procs=procs,
        rows=rows,
        paper=PAPER_TABLES.get(experiment_id),
    )


def run_hex_table(
    nodes: int,
    iterations_list: Sequence[int] = (10, 15, 20),
    procs: Sequence[int] = PROCS,
    grain: float = FINE_GRAIN,
    seed: int = 1,
    machine: MachineModel = ORIGIN2000,
) -> ExperimentTable:
    """Tables 2/3/4: runtimes on hexagonal grids (Metis, fine grain)."""
    return _table(
        experiment_id=f"table{ {32: 2, 64: 3, 96: 4}[nodes] }_hex{nodes}",
        title=f"Execution time (s) on {nodes}-node hexagonal grids",
        graphs=[hex_graph(nodes)],
        iterations_list=iterations_list,
        procs=procs,
        grain=grain,
        partitioner=MetisLikePartitioner(seed=seed),
        machine=machine,
    )


def run_random_table(
    nodes: int,
    iterations_list: Sequence[int] = (10, 15, 20),
    procs: Sequence[int] = PROCS,
    grain: float = FINE_GRAIN,
    seeds: Sequence[int] = (0, 1, 2, 3, 4),
    machine: MachineModel = ORIGIN2000,
) -> ExperimentTable:
    """Tables 5/6: runtimes on random graphs, averaged over several graphs
    (the paper averages five)."""
    graphs = [
        random_connected_graph(nodes, avg_degree=4.0, seed=s, name=f"rand{nodes}-s{s}")
        for s in seeds
    ]
    return _table(
        experiment_id=f"table{ {32: 5, 64: 6}[nodes] }_rand{nodes}",
        title=f"Execution time (s) on {nodes}-node random graphs "
        f"(mean of {len(seeds)} graphs)",
        graphs=graphs,
        iterations_list=iterations_list,
        procs=procs,
        grain=grain,
        partitioner=MetisLikePartitioner(seed=1),
        machine=machine,
    )


def run_speedup_figure(
    tables: Sequence[ExperimentTable],
    iterations: int = 20,
    experiment_id: str = "fig_speedup",
    title: str = "Speed-up plots for static partition",
) -> SeriesFigure:
    """Figures 11/16: speedups derived from runtime tables."""
    if not tables:
        raise ValueError("need at least one table")
    fig = SeriesFigure(
        experiment_id=experiment_id, title=title, procs=list(tables[0].procs)
    )
    for table in tables:
        fig.add(table.title.split(" on ")[-1], table.speedups(iterations))
    return fig


def run_metis_vs_pagrid(
    graph: Graph,
    procs: Sequence[int] = PROCS,
    iterations: int = 20,
    rref: float = 0.45,
    seed: int = 1,
    machine: MachineModel = ORIGIN2000,
    experiment_id: str = "fig12_metis_vs_pagrid",
    topology_aware: bool = True,
) -> SeriesFigure:
    """Figures 12/17: Metis vs PaGrid speedups, fine and coarse grain.

    PaGrid maps onto a hypercube processor graph (the paper's setup) with
    the published ``Rref = 0.45``.  With ``topology_aware`` (default) every
    run -- both partitioners -- executes on a hypercube-topology machine
    model (per-hop latency), which is what lets PaGrid's mapping quality
    show up as runtime, exactly as on the real Origin-2000.
    """
    from ..mpi.timing import TopologyMachineModel

    fig = SeriesFigure(
        experiment_id=experiment_id,
        title=f"Metis vs PaGrid, fine/coarse grain on {graph.name}",
        procs=list(procs),
    )

    def machine_for(p: int) -> MachineModel:
        if not topology_aware or p == 1:
            return machine
        return TopologyMachineModel.wrap(machine, ProcessorGraph.hypercube(p))

    for grain, grain_label in ((FINE_GRAIN, "fine"), (COARSE_GRAIN, "coarse")):
        for maker, name in (
            (lambda p: MetisLikePartitioner(seed=seed), "metis"),
            (
                lambda p: PaGridLikePartitioner(
                    ProcessorGraph.hypercube(p), rref=rref, seed=seed
                ),
                "pagrid",
            ),
        ):
            times = []
            for p in procs:
                partitioner = (
                    MetisLikePartitioner(seed=seed) if p == 1 else maker(p)
                )
                result = run_average_once(
                    graph, p, iterations, grain=grain,
                    partitioner=partitioner, machine=machine_for(p),
                )
                times.append(result.elapsed)
            base = times[list(procs).index(1)] if 1 in procs else times[0]
            fig.add(f"{grain_label}-{name}", [base / t for t in times])
    return fig


def run_static_vs_dynamic(
    graph: Graph,
    procs: Sequence[int] = PROCS,
    iterations: int = 60,
    lb_period: int = 10,
    schedule: ImbalanceSchedule = PERSISTENT_IMBALANCE,
    seed: int = 1,
    machine: MachineModel = ORIGIN2000,
    experiment_id: str = "fig13_static_vs_dynamic",
    include_greedy: bool = True,
) -> SeriesFigure:
    """Figures 13/14/15/18/19: static partition vs dynamic load balancing.

    Three series: the static partition, the thesis's centralized heuristic
    (one task per busy-idle pair), and -- as the extension its section 7
    proposes -- a greedy balancer.  Values are speedups over the
    single-processor run of the same (imbalanced) workload.
    """
    partitioner = MetisLikePartitioner(seed=seed)
    node_fn = make_imbalanced_average_fn(schedule)
    fig = SeriesFigure(
        experiment_id=experiment_id,
        title=f"Static vs dynamic partitioning on {graph.name} "
        f"({iterations} iterations, LB every {lb_period})",
        procs=list(procs),
    )

    def elapsed(p: int, dynamic: bool, balancer=None) -> float:
        partition = partitioner.partition(graph, p)
        config = PlatformConfig(
            iterations=iterations,
            dynamic_load_balancing=dynamic,
            lb_period=lb_period,
        )
        platform = ICPlatform(graph, node_fn, config=config, balancer=balancer)
        return platform.run(partition, machine=machine).elapsed

    static_times = [elapsed(p, dynamic=False) for p in procs]
    base = static_times[list(procs).index(1)] if 1 in procs else static_times[0]
    fig.add("static", [base / t for t in static_times])
    centralized = [
        elapsed(p, dynamic=True, balancer=CentralizedHeuristicBalancer()) for p in procs
    ]
    fig.add("dynamic-centralized", [base / t for t in centralized])
    if include_greedy:
        greedy = [
            elapsed(p, dynamic=True, balancer=GreedyPairBalancer(0.25)) for p in procs
        ]
        fig.add("dynamic-greedy", [base / t for t in greedy])
    return fig


def battlefield_partitioners(rows: int = 32, cols: int = 32, seed: int = 0):
    """The five initial-partitioning schemes of section 5.3, by name."""
    return {
        "metis": MetisLikePartitioner(seed=seed, trials=4),
        "bf": GrayCodePartitioner(rows, cols),
        "rowband": RowBandPartitioner(rows, cols),
        "colband": ColumnBandPartitioner(rows, cols),
        "rectband": RectangularPartitioner(rows, cols),
    }


_BF_TABLE_IDS = {
    "metis": "table7_bf_metis",
    "bf": "table8_bf_graycode",
    "rowband": "table9_bf_rowband",
    "colband": "table10_bf_colband",
    "rectband": "table11_bf_rectband",
}


def run_battlefield_table(
    scheme: str,
    steps_list: Sequence[int] = (5, 15, 25),
    procs: Sequence[int] = PROCS,
    machine: MachineModel = ORIGIN2000,
    app: BattlefieldApp | None = None,
) -> ExperimentTable:
    """Tables 7-11: battlefield runtimes under one partitioning scheme."""
    app = app or BattlefieldApp(general_engagement())
    graph = app.graph()
    partitioner = battlefield_partitioners()[scheme]
    rows: dict[int, list[float]] = {}
    partitions = {p: partitioner.partition(graph, p) for p in procs}
    for steps in steps_list:
        row = []
        for p in procs:
            platform = ICPlatform(
                graph,
                app.node_fns(),
                init_value=app.init_value,
                config=app.platform_config(steps=steps),
            )
            row.append(platform.run(partitions[p], machine=machine).elapsed)
        rows[steps] = row
    experiment_id = _BF_TABLE_IDS[scheme]
    return ExperimentTable(
        experiment_id=experiment_id,
        title=f"Battlefield simulator, {scheme} partition",
        row_label="Simulation Steps",
        procs=procs,
        rows=rows,
        paper=PAPER_TABLES.get(experiment_id),
    )


def run_battlefield_speedups(
    steps: int = 25,
    procs: Sequence[int] = PROCS,
    machine: MachineModel = ORIGIN2000,
    schemes: Sequence[str] = ("metis", "bf", "rowband", "colband", "rectband"),
) -> SeriesFigure:
    """Figure 20: battlefield speedups across the five partitioners."""
    app = BattlefieldApp(general_engagement())
    fig = SeriesFigure(
        experiment_id="fig20_battlefield_speedup",
        title=f"Battlefield speedups, {steps} steps",
        procs=list(procs),
    )
    for scheme in schemes:
        table = run_battlefield_table(
            scheme, steps_list=(steps,), procs=procs, machine=machine, app=app
        )
        fig.add(scheme, table.speedups(steps))
    return fig


@dataclass
class OverheadResult:
    """Figures 21/22: mean per-rank phase breakdowns per processor count."""

    experiment_id: str
    title: str
    procs: Sequence[int]
    phases: dict[int, PhaseTimes]

    def render(self) -> str:
        from ..core.phases import PHASE_NAMES

        lines = [self.title, "-" * len(self.title)]
        header = "phase".ljust(26) + "".join(f"p={p}".ljust(12) for p in self.procs)
        lines.append(header)
        for name in PHASE_NAMES:
            cells = [f"{getattr(self.phases[p], name) * 1e3:.2f}ms" for p in self.procs]
            lines.append(name.ljust(26) + "".join(c.ljust(12) for c in cells))
        return "\n".join(lines)


@dataclass
class RecoveryRun:
    """Cost accounting for one platform run under one recovery policy."""

    policy: str
    elapsed: float
    recoveries: int
    dead_ranks: tuple[int, ...]
    recovery_phase_time: float
    detection_cost: float
    reconfiguration_cost: float
    nodes_redistributed: int
    values_match_baseline: bool

    def to_dict(self) -> dict:
        return {
            "policy": self.policy,
            "elapsed_s": self.elapsed,
            "recoveries": self.recoveries,
            "dead_ranks": list(self.dead_ranks),
            "recovery_phase_time_s": self.recovery_phase_time,
            "detection_cost_s": self.detection_cost,
            "reconfiguration_cost_s": self.reconfiguration_cost,
            "nodes_redistributed": self.nodes_redistributed,
            "values_match_baseline": self.values_match_baseline,
        }


@dataclass
class RecoveryComparison:
    """Rollback vs shrink on the same faulty workload.

    ``baseline`` is the fault-free run of the identical configuration;
    both policies must reproduce its final node values bit-for-bit (the
    transparency claim), they just pay for the crash differently.
    """

    experiment_id: str
    title: str
    baseline_elapsed: float
    runs: dict[str, RecoveryRun]

    @property
    def shrink_beats_rollback(self) -> bool:
        return self.runs["shrink"].elapsed < self.runs["rollback"].elapsed

    def to_dict(self) -> dict:
        return {
            "experiment_id": self.experiment_id,
            "title": self.title,
            "baseline_elapsed_s": self.baseline_elapsed,
            "policies": {name: run.to_dict() for name, run in self.runs.items()},
            "shrink_beats_rollback": self.shrink_beats_rollback,
        }

    def render(self) -> str:
        lines = [self.title, "-" * len(self.title)]
        lines.append(f"fault-free baseline: {self.baseline_elapsed:.4f}s")
        header = (
            "policy".ljust(10)
            + "elapsed".ljust(12)
            + "recovery".ljust(12)
            + "detect".ljust(12)
            + "reconfig".ljust(12)
            + "redistributed".ljust(15)
            + "values ok"
        )
        lines.append(header)
        for name, run in self.runs.items():
            lines.append(
                name.ljust(10)
                + f"{run.elapsed:.4f}s".ljust(12)
                + f"{run.recovery_phase_time * 1e3:.2f}ms".ljust(12)
                + f"{run.detection_cost * 1e3:.2f}ms".ljust(12)
                + f"{run.reconfiguration_cost * 1e3:.2f}ms".ljust(12)
                + str(run.nodes_redistributed).ljust(15)
                + ("yes" if run.values_match_baseline else "NO")
            )
        winner = "shrink" if self.shrink_beats_rollback else "rollback"
        lines.append(f"winner: {winner}")
        return "\n".join(lines)


def run_recovery_comparison(
    graph: Graph | None = None,
    nprocs: int = 4,
    iterations: int = 40,
    crash_rank: int = 2,
    crash_iteration: int | None = None,
    checkpoint_period: int = 5,
    schedule: ImbalanceSchedule = RECOVERY_IMBALANCE,
    seed: int = 1,
    machine: MachineModel = ORIGIN2000,
    experiment_id: str = "recovery_cost",
) -> RecoveryComparison:
    """Recovery-cost accounting: rollback vs shrink on one mid-run crash.

    Runs the imbalanced-average application three times on identical
    partitions -- fault-free, rollback, shrink -- with a single permanent
    crash (default: at ~50 % progress) and collects per-policy cost
    breakdowns from the execution trace.
    """
    graph = graph or hex_graph(64)
    if crash_iteration is None:
        crash_iteration = iterations // 2
    partition = MetisLikePartitioner(seed=seed).partition(graph, nprocs)
    node_fn = make_imbalanced_average_fn(schedule)

    def run_once(policy: str, plan: FaultPlan | None) -> PlatformResult:
        config = PlatformConfig(
            iterations=iterations,
            checkpoint_period=checkpoint_period,
            recovery_policy=policy,
            track_trace=True,
        )
        platform = ICPlatform(graph, node_fn, config=config)
        return platform.run(partition, machine=machine, faults=plan)

    baseline = run_once("rollback", None)
    plan = FaultPlan.parse(f"seed={seed},crash={crash_rank}@{crash_iteration}")
    runs: dict[str, RecoveryRun] = {}
    for policy in ("rollback", "shrink"):
        result = run_once(policy, plan)
        events = result.trace.reconfiguration_events()
        runs[policy] = RecoveryRun(
            policy=policy,
            elapsed=result.elapsed,
            recoveries=result.recoveries,
            dead_ranks=result.dead_ranks,
            recovery_phase_time=max(p.recovery for p in result.phases),
            detection_cost=sum(e.detection_cost for e in events),
            reconfiguration_cost=sum(e.reconfiguration_cost for e in events),
            nodes_redistributed=sum(e.nodes_redistributed for e in events),
            values_match_baseline=result.values == baseline.values,
        )
    return RecoveryComparison(
        experiment_id=experiment_id,
        title=(
            f"Recovery cost on {graph.name}: crash rank {crash_rank} @ "
            f"iteration {crash_iteration}/{iterations} ({nprocs} procs)"
        ),
        baseline_elapsed=baseline.elapsed,
        runs=runs,
    )


def run_overheads(
    graph: Graph,
    procs: Sequence[int] = (2, 4, 8, 16),
    iterations: int = 35,
    lb_period: int = 10,
    grain: float = FINE_GRAIN,
    seed: int = 1,
    machine: MachineModel = ORIGIN2000,
    experiment_id: str = "fig21_overheads",
) -> OverheadResult:
    """Figures 21/22: per-phase overheads (35 iterations, LB every 10)."""
    partitioner = MetisLikePartitioner(seed=seed)
    phases: dict[int, PhaseTimes] = {}
    for p in procs:
        result = run_average_once(
            graph,
            p,
            iterations,
            grain=grain,
            partitioner=partitioner,
            dynamic=True,
            machine=machine,
            config_overrides={"lb_period": lb_period},
        )
        phases[p] = result.mean_phases
    return OverheadResult(
        experiment_id=experiment_id,
        title=f"Phase overheads on {graph.name} ({iterations} iterations)",
        procs=list(procs),
        phases=phases,
    )
