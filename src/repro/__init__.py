"""iC2mpi reproduction: parallel execution of graph-structured iterative
computations on a virtual-time simulated MPI substrate.

The package reproduces Botadra's iC2mpi platform (GSU M.S. thesis, 2006 /
IPPS 2007 workshop):

* :mod:`repro.mpi` -- the simulated MPI runtime (thread-per-rank, virtual
  clocks, Origin-2000-calibrated cost model),
* :mod:`repro.graphs` -- application graphs, hex grids, Chaco I/O, metrics,
* :mod:`repro.partitioning` -- Metis-like multilevel k-way, PaGrid-like
  architecture-aware, band/gray-code/spectral/simple partitioners,
* :mod:`repro.core` -- the platform itself: node stores, compute/communicate
  sweeps, dynamic load balancing, task migration,
* :mod:`repro.apps` -- the neighbour-average workloads and the battlefield
  management simulation,
* :mod:`repro.bench` -- the experiment harness regenerating every table and
  figure of the paper's evaluation.

Quickstart::

    from repro.graphs import hex64
    from repro.partitioning import MetisLikePartitioner
    from repro.core import ICPlatform, PlatformConfig
    from repro.apps import make_average_fn, FINE_GRAIN

    graph = hex64()
    partition = MetisLikePartitioner(seed=1).partition(graph, 8)
    platform = ICPlatform(graph, make_average_fn(FINE_GRAIN),
                          config=PlatformConfig(iterations=20))
    result = platform.run(partition)
    print(f"elapsed {result.elapsed:.4f} virtual seconds on 8 processors")
"""

__version__ = "0.1.0"

__all__ = ["__version__"]
