"""Band partitioners for grid-structured domains.

Section 5.3 evaluates the battlefield simulation under (iii) row band,
(iv) column band, and (v) rectangular band initial partitionings of the
32x32 hex terrain.  These partitioners need the grid geometry, so they are
constructed with ``(rows, cols)`` and assume row-major 1-based global IDs
(the convention of :class:`~repro.graphs.hexgrid.HexGrid`).
"""

from __future__ import annotations

from math import sqrt

from ..graphs.graph import Graph
from .base import Partition, Partitioner

__all__ = [
    "RowBandPartitioner",
    "ColumnBandPartitioner",
    "RectangularPartitioner",
    "balanced_factor_pair",
]


def balanced_factor_pair(nparts: int) -> tuple[int, int]:
    """Factor ``nparts = pr * pc`` with ``pr`` and ``pc`` as close as possible.

    Returns ``(pr, pc)`` with ``pr <= pc``.  Primes degrade gracefully to
    ``(1, nparts)`` (a column-band layout).
    """
    if nparts < 1:
        raise ValueError(f"nparts must be >= 1, got {nparts}")
    best = (1, nparts)
    for pr in range(1, int(sqrt(nparts)) + 1):
        if nparts % pr == 0:
            best = (pr, nparts // pr)
    return best


class _GridBandPartitioner(Partitioner):
    """Shared geometry checks for the band family."""

    def __init__(self, rows: int, cols: int) -> None:
        if rows < 1 or cols < 1:
            raise ValueError(f"grid must be at least 1x1, got {rows}x{cols}")
        self.rows = rows
        self.cols = cols

    def _check_graph(self, graph: Graph) -> None:
        if graph.num_nodes != self.rows * self.cols:
            raise ValueError(
                f"graph has {graph.num_nodes} nodes; {self.rows}x{self.cols} grid "
                f"needs {self.rows * self.cols}"
            )

    def _rc(self, gid: int) -> tuple[int, int]:
        return divmod(gid - 1, self.cols)

    @staticmethod
    def _band(index: int, extent: int, nbands: int) -> int:
        """Contiguous band id of ``index`` among ``nbands`` equal bands."""
        return min(index * nbands // extent, nbands - 1)


class RowBandPartitioner(_GridBandPartitioner):
    """Horizontal strips: processor ``p`` owns a contiguous block of rows."""

    name = "rowband"

    def partition(self, graph: Graph, nparts: int) -> Partition:
        self._check_nparts(graph, nparts)
        self._check_graph(graph)
        if (trivial := self._trivial(graph, nparts)) is not None:
            return trivial
        nbands = min(nparts, self.rows)
        assignment = [
            self._band(self._rc(gid)[0], self.rows, nbands) for gid in graph.nodes()
        ]
        return Partition.from_assignment(graph, assignment, nparts, method=self.name)


class ColumnBandPartitioner(_GridBandPartitioner):
    """Vertical strips: processor ``p`` owns a contiguous block of columns."""

    name = "colband"

    def partition(self, graph: Graph, nparts: int) -> Partition:
        self._check_nparts(graph, nparts)
        self._check_graph(graph)
        if (trivial := self._trivial(graph, nparts)) is not None:
            return trivial
        nbands = min(nparts, self.cols)
        assignment = [
            self._band(self._rc(gid)[1], self.cols, nbands) for gid in graph.nodes()
        ]
        return Partition.from_assignment(graph, assignment, nparts, method=self.name)


class RectangularPartitioner(_GridBandPartitioner):
    """A pr x pc checkerboard of rectangular blocks (pr * pc = nparts).

    The factorization picks the most square arrangement, so the perimeter
    (and hence the edge cut) is lower than either band scheme when nparts
    has a balanced factor pair -- the behaviour Figure 20 shows.
    """

    name = "rectband"

    def partition(self, graph: Graph, nparts: int) -> Partition:
        self._check_nparts(graph, nparts)
        self._check_graph(graph)
        if (trivial := self._trivial(graph, nparts)) is not None:
            return trivial
        pr, pc = balanced_factor_pair(nparts)
        # Orient the factor pair with the grid: more bands along the longer axis.
        if (self.rows >= self.cols) != (pr >= pc):
            pr, pc = pc, pr
        pr = min(pr, self.rows)
        pc = min(pc, self.cols)
        assignment = []
        for gid in graph.nodes():
            r, c = self._rc(gid)
            assignment.append(
                self._band(r, self.rows, pr) * pc + self._band(c, self.cols, pc)
            )
        return Partition.from_assignment(graph, assignment, nparts, method=self.name)
