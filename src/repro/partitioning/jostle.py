"""Jostle-like partitioner: multilevel with diffusive refinement.

Jostle [WC01] is the third partitioning package the thesis names alongside
Metis and PaGrid.  Its signature ingredient is *diffusive* load balancing
woven into the multilevel refinement: instead of enforcing balance with
hard caps during gain-driven moves, each refinement level first solves a
flow problem -- how much load should cross each pair of adjacent parts to
even them out -- and then selects boundary vertices to realize those flows
at minimum cut damage.

This implementation reuses the shared coarsening ladder and initial
partitioning, replacing the FM step with:

1. **flow step** -- repeated first-order diffusion on the *part* graph
   (load moves along part-adjacency edges proportionally to the load
   difference) yields a per-edge transfer schedule;
2. **selection step** -- boundary vertices move along scheduled flows in
   best-gain-first order until each flow is (approximately) satisfied;
3. a plain gain pass (zero balance impact moves only) polishes the cut.
"""

from __future__ import annotations

import random
from typing import Sequence

from ..graphs.graph import Graph
from .base import Partition, Partitioner
from .multilevel.coarsen import coarsen
from .multilevel.initial import recursive_bisection
from .multilevel.matching import heavy_edge_matching
from .multilevel.refine import move_gains

__all__ = ["JostleLikePartitioner"]


def _part_loads(graph: Graph, assignment: Sequence[int], nparts: int) -> list[float]:
    loads = [0.0] * nparts
    for gid in graph.nodes():
        loads[assignment[gid - 1]] += graph.node_weight(gid)
    return loads


def _part_adjacency(
    graph: Graph, assignment: Sequence[int], nparts: int
) -> set[tuple[int, int]]:
    """Adjacent part pairs (a < b)."""
    pairs: set[tuple[int, int]] = set()
    for u, v in graph.edges():
        pu, pv = assignment[u - 1], assignment[v - 1]
        if pu != pv:
            pairs.add((min(pu, pv), max(pu, pv)))
    return pairs


def diffusion_flows(
    loads: Sequence[float],
    adjacency: set[tuple[int, int]],
    rounds: int = 40,
    alpha: float = 0.4,
) -> dict[tuple[int, int], float]:
    """First-order diffusion schedule on the part graph.

    Returns ``(a, b) -> amount`` meaning "move ``amount`` of load from a to
    b" (negative = the other way), accumulated over ``rounds`` diffusion
    steps with mixing factor ``alpha / degree``.
    """
    nparts = len(loads)
    degree = [0] * nparts
    for a, b in adjacency:
        degree[a] += 1
        degree[b] += 1
    current = list(loads)
    flows = {pair: 0.0 for pair in adjacency}
    for _ in range(rounds):
        deltas = [0.0] * nparts
        for a, b in adjacency:
            weight = alpha / max(1, max(degree[a], degree[b]))
            flow = weight * (current[a] - current[b])
            flows[(a, b)] += flow
            deltas[a] -= flow
            deltas[b] += flow
        for p in range(nparts):
            current[p] += deltas[p]
    return flows


class JostleLikePartitioner(Partitioner):
    """Multilevel k-way partitioner with diffusive refinement.

    Args:
        seed: RNG seed (deterministic output).
        diffusion_rounds: Diffusion steps per refinement level.
        polish_passes: Zero-imbalance gain passes after the flow is realized.
        coarsen_to: Coarsening stop size (per the shared ladder).
    """

    name = "jostle"

    def __init__(
        self,
        seed: int = 0,
        diffusion_rounds: int = 40,
        polish_passes: int = 4,
        coarsen_to: int = 24,
    ) -> None:
        self.seed = seed
        self.diffusion_rounds = diffusion_rounds
        self.polish_passes = polish_passes
        self.coarsen_to = coarsen_to

    def partition(self, graph: Graph, nparts: int) -> Partition:
        self._check_nparts(graph, nparts)
        if (trivial := self._trivial(graph, nparts)) is not None:
            return trivial
        rng = random.Random(self.seed)
        levels = coarsen(
            graph,
            min_nodes=max(self.coarsen_to, 4 * nparts),
            rng=rng,
            matcher=heavy_edge_matching,
        )
        coarsest = levels[-1].graph if levels else graph
        assignment = recursive_bisection(coarsest, nparts, rng)
        self._refine(coarsest, assignment, nparts, rng)
        for idx in range(len(levels) - 1, -1, -1):
            fine_graph = graph if idx == 0 else levels[idx - 1].graph
            assignment = levels[idx].project(assignment)
            self._refine(fine_graph, assignment, nparts, rng)
        return Partition.from_assignment(graph, assignment, nparts, method=self.name)

    # ------------------------------------------------------------------ #

    def _refine(
        self, graph: Graph, assignment: list[int], nparts: int, rng: random.Random
    ) -> None:
        self._realize_flows(graph, assignment, nparts, rng)
        self._polish(graph, assignment, nparts, rng)

    def _realize_flows(
        self, graph: Graph, assignment: list[int], nparts: int, rng: random.Random
    ) -> None:
        """Move boundary vertices along the diffusion schedule."""
        loads = _part_loads(graph, assignment, nparts)
        adjacency = _part_adjacency(graph, assignment, nparts)
        if not adjacency:
            return
        flows = diffusion_flows(loads, adjacency, rounds=self.diffusion_rounds)
        # normalize to "move remaining[src->dst] >= 0"
        remaining: dict[tuple[int, int], float] = {}
        for (a, b), amount in flows.items():
            if amount > 0:
                remaining[(a, b)] = amount
            elif amount < 0:
                remaining[(b, a)] = -amount

        for _ in range(graph.num_nodes):  # hard bound
            moved = False
            for (src, dst), amount in sorted(
                remaining.items(), key=lambda kv: -kv[1]
            ):
                if amount <= 0:
                    continue
                best_gid = None
                best_key: tuple[float, int] | None = None
                for gid in graph.nodes():
                    if assignment[gid - 1] != src:
                        continue
                    gains = move_gains(graph, assignment, gid)
                    if dst not in gains:
                        continue  # not on the src/dst boundary
                    weight = graph.node_weight(gid)
                    if weight > amount + graph.node_weight(gid) / 2:
                        continue  # overshoot
                    key = (-gains[dst], gid)
                    if best_key is None or key < best_key:
                        best_key = key
                        best_gid = gid
                if best_gid is None:
                    remaining[(src, dst)] = 0.0
                    continue
                weight = graph.node_weight(best_gid)
                assignment[best_gid - 1] = dst
                remaining[(src, dst)] = amount - weight
                moved = True
            if not moved:
                break

    def _polish(
        self, graph: Graph, assignment: list[int], nparts: int, rng: random.Random
    ) -> None:
        """Strictly-positive-gain moves between equal-or-helping loads only."""
        loads = _part_loads(graph, assignment, nparts)
        for _ in range(self.polish_passes):
            boundary = [
                gid
                for gid in graph.nodes()
                if any(assignment[v - 1] != assignment[gid - 1] for v in graph.neighbors(gid))
            ]
            rng.shuffle(boundary)
            moved = 0
            for gid in boundary:
                own = assignment[gid - 1]
                weight = graph.node_weight(gid)
                if loads[own] <= weight:
                    continue
                for part, gain in move_gains(graph, assignment, gid).items():
                    if gain > 0 and loads[part] + weight <= loads[own]:
                        assignment[gid - 1] = part
                        loads[own] -= weight
                        loads[part] += weight
                        moved += 1
                        break
            if not moved:
                break
