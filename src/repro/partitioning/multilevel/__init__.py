"""Multilevel k-way partitioning (the Metis-like plug-in)."""

from .coarsen import CoarseLevel, coarsen, contract
from .initial import greedy_bisection, recursive_bisection
from .kway import MetisLikePartitioner
from .matching import heavy_edge_matching, random_matching
from .refine import fm_refine, move_gains, rebalance

__all__ = [
    "CoarseLevel",
    "MetisLikePartitioner",
    "coarsen",
    "contract",
    "fm_refine",
    "greedy_bisection",
    "heavy_edge_matching",
    "move_gains",
    "random_matching",
    "rebalance",
    "recursive_bisection",
]
