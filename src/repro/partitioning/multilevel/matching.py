"""Vertex matchings for the coarsening phase.

Multilevel partitioning repeatedly contracts a matching of the current
graph.  Heavy-edge matching (HEM) -- match each vertex with the unmatched
neighbour across its heaviest edge -- is the Metis default [KK98] because it
hides heavy edges inside coarse vertices, which directly lowers the cut the
refinement phase has to fight for.
"""

from __future__ import annotations

import random

from ...graphs.graph import Graph

__all__ = ["heavy_edge_matching", "random_matching"]


def heavy_edge_matching(graph: Graph, rng: random.Random) -> list[int]:
    """Heavy-edge matching.

    Returns ``match`` with ``match[gid - 1]`` = the partner's gid, or the
    node's own gid when it stays unmatched.  Vertices are visited in random
    order; among unmatched neighbours the heaviest edge wins, ties broken by
    the smaller neighbour id (deterministic given the RNG state).
    """
    n = graph.num_nodes
    match = [0] * n
    order = list(graph.nodes())
    rng.shuffle(order)
    for gid in order:
        if match[gid - 1]:
            continue
        best = gid  # stay single unless an unmatched neighbour exists
        best_weight = -1
        for v in graph.neighbors(gid):
            if match[v - 1]:
                continue
            w = graph.edge_weight(gid, v)
            if w > best_weight or (w == best_weight and v < best):
                best = v
                best_weight = w
        match[gid - 1] = best
        match[best - 1] = gid
    return match


def random_matching(graph: Graph, rng: random.Random) -> list[int]:
    """Random matching: each vertex pairs with a random unmatched neighbour."""
    n = graph.num_nodes
    match = [0] * n
    order = list(graph.nodes())
    rng.shuffle(order)
    for gid in order:
        if match[gid - 1]:
            continue
        candidates = [v for v in graph.neighbors(gid) if not match[v - 1]]
        best = rng.choice(candidates) if candidates else gid
        match[gid - 1] = best
        match[best - 1] = gid
    return match
