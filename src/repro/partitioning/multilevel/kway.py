"""The multilevel k-way driver (Metis-like partitioner).

Implements the classic [KK98] V-cycle:

1. **Coarsen** by repeated heavy-edge-matching contraction until the graph
   is small,
2. **initial-partition** the coarsest graph by recursive bisection with
   greedy graph growing, and
3. **uncoarsen**: project the partition up one level at a time, running
   FM boundary refinement (plus a rebalance sweep) at every level.

This is the library's stand-in for the Metis binary the thesis plugs in.
"""

from __future__ import annotations

import random
from typing import Callable, Sequence

from ...graphs.graph import Graph
from .coarsen import coarsen
from .initial import recursive_bisection
from .matching import heavy_edge_matching, random_matching
from .refine import fm_refine, rebalance
from ..base import Partition, Partitioner

__all__ = ["MetisLikePartitioner"]

_MATCHERS: dict[str, Callable] = {
    "heavy": heavy_edge_matching,
    "random": random_matching,
}


class MetisLikePartitioner(Partitioner):
    """Multilevel k-way graph partitioner.

    Args:
        seed: RNG seed (the whole pipeline is deterministic given it).
        matching: ``"heavy"`` (default, Metis-style HEM) or ``"random"``.
        refine_passes: FM passes per uncoarsening level.
        tolerance: Allowed load overshoot per part (1.05 = 5 %).
        proportions: Optional per-part weight shares (for heterogeneous
            targets); default uniform.
        coarsen_to: Stop coarsening near ``max(coarsen_to, 4 * nparts)``
            vertices.
        trials: Independent V-cycles to run; the lowest-edge-cut result
            wins (Metis similarly keeps the best of several initial
            partitions).
    """

    name = "metis"

    def __init__(
        self,
        seed: int = 0,
        matching: str = "heavy",
        refine_passes: int = 8,
        tolerance: float = 1.05,
        proportions: Sequence[float] | None = None,
        coarsen_to: int = 24,
        trials: int = 3,
    ) -> None:
        if matching not in _MATCHERS:
            raise ValueError(f"matching must be one of {sorted(_MATCHERS)}, got {matching!r}")
        if trials < 1:
            raise ValueError(f"trials must be >= 1, got {trials}")
        self.seed = seed
        self.matching = matching
        self.refine_passes = refine_passes
        self.tolerance = tolerance
        self.proportions = list(proportions) if proportions is not None else None
        self.coarsen_to = coarsen_to
        self.trials = trials

    def partition(self, graph: Graph, nparts: int) -> Partition:
        self._check_nparts(graph, nparts)
        if (trivial := self._trivial(graph, nparts)) is not None:
            return trivial
        best: Partition | None = None
        best_key: tuple[int, float] | None = None
        for trial in range(self.trials):
            candidate = self._one_vcycle(graph, nparts, seed=self.seed + 7919 * trial)
            key = (candidate.weighted_edge_cut(), candidate.imbalance())
            if best_key is None or key < best_key:
                best, best_key = candidate, key
        assert best is not None
        return best

    def _one_vcycle(self, graph: Graph, nparts: int, seed: int) -> Partition:
        rng = random.Random(seed)
        proportions = self.proportions or [1.0] * nparts
        if len(proportions) != nparts:
            raise ValueError(f"proportions needs {nparts} entries")
        share = sum(proportions)
        total = graph.total_node_weight()
        targets = [total * p / share for p in proportions]

        levels = coarsen(
            graph,
            min_nodes=max(self.coarsen_to, 4 * nparts),
            rng=rng,
            matcher=_MATCHERS[self.matching],
        )
        coarsest = levels[-1].graph if levels else graph
        assignment = recursive_bisection(coarsest, nparts, rng, proportions=proportions)

        coarse_targets_scale = coarsest.total_node_weight() / total
        # (coarse weight == fine weight by construction, but keep the math honest)
        coarse_targets = [t * coarse_targets_scale for t in targets]
        fm_refine(
            coarsest, assignment, nparts, coarse_targets, rng,
            max_passes=self.refine_passes, tolerance=self.tolerance,
        )

        for level in reversed(levels):
            fine_graph = self._finer_graph(levels, level, graph)
            assignment = level.project(assignment)
            scale = fine_graph.total_node_weight() / total
            level_targets = [t * scale for t in targets]
            fm_refine(
                fine_graph, assignment, nparts, level_targets, rng,
                max_passes=self.refine_passes, tolerance=self.tolerance,
            )
            rebalance(
                fine_graph, assignment, nparts, level_targets, rng,
                tolerance=self.tolerance,
            )
        return Partition.from_assignment(graph, assignment, nparts, method=self.name)

    @staticmethod
    def _finer_graph(levels, level, original: Graph) -> Graph:
        """The graph one rung finer than ``level``."""
        idx = levels.index(level)
        return original if idx == 0 else levels[idx - 1].graph
