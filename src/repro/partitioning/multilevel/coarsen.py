"""Graph contraction and the coarsening ladder."""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Sequence

from ...graphs.graph import Graph
from .matching import heavy_edge_matching

__all__ = ["CoarseLevel", "contract", "coarsen"]

#: Stop coarsening when the graph shrinks by less than this factor per step.
_MIN_SHRINK = 0.95


@dataclass(frozen=True)
class CoarseLevel:
    """One rung of the coarsening ladder.

    Attributes:
        graph: The coarse graph produced at this level.
        fine_to_coarse: ``fine_to_coarse[fine_gid - 1]`` is the coarse gid
            (1-based, into ``graph``) that the finer level's node collapsed
            into.
    """

    graph: Graph
    fine_to_coarse: tuple[int, ...]

    def project(self, coarse_assignment: Sequence[int]) -> list[int]:
        """Pull a coarse partition back to the finer level."""
        return [coarse_assignment[c - 1] for c in self.fine_to_coarse]


def contract(graph: Graph, match: Sequence[int]) -> CoarseLevel:
    """Contract a matching: matched pairs merge into one coarse vertex.

    Coarse node weights are the sums of their constituents; parallel edges
    between coarse vertices accumulate their weights (the invariant that
    makes coarse cuts equal fine cuts for projected partitions).
    """
    n = graph.num_nodes
    if len(match) != n:
        raise ValueError(f"match has {len(match)} entries for {n} nodes")
    fine_to_coarse = [0] * n
    coarse_weights: list[int] = []
    next_cid = 0
    for gid in graph.nodes():
        if fine_to_coarse[gid - 1]:
            continue
        partner = match[gid - 1]
        if not 1 <= partner <= n or match[partner - 1] != gid:
            raise ValueError(f"inconsistent matching at node {gid}")
        next_cid += 1
        fine_to_coarse[gid - 1] = next_cid
        weight = graph.node_weight(gid)
        if partner != gid:
            fine_to_coarse[partner - 1] = next_cid
            weight += graph.node_weight(partner)
        coarse_weights.append(weight)

    edge_accum: dict[tuple[int, int], int] = {}
    for u, v in graph.edges():
        cu, cv = fine_to_coarse[u - 1], fine_to_coarse[v - 1]
        if cu == cv:
            continue
        key = (min(cu, cv), max(cu, cv))
        edge_accum[key] = edge_accum.get(key, 0) + graph.edge_weight(u, v)

    adjacency: list[list[int]] = [[] for _ in range(next_cid)]
    for (cu, cv) in edge_accum:
        adjacency[cu - 1].append(cv)
        adjacency[cv - 1].append(cu)
    for lst in adjacency:
        lst.sort()
    coarse = Graph(
        adjacency,
        node_weights=coarse_weights,
        edge_weights=edge_accum,
        name=f"{graph.name}-c{next_cid}",
        validate=False,
    )
    return CoarseLevel(coarse, tuple(fine_to_coarse))


def coarsen(
    graph: Graph,
    min_nodes: int,
    rng: random.Random,
    matcher: Callable[[Graph, random.Random], list[int]] = heavy_edge_matching,
    max_levels: int = 40,
) -> list[CoarseLevel]:
    """Build the coarsening ladder down to roughly ``min_nodes`` vertices.

    Returns the levels top-down: ``levels[0]`` contracts the input graph,
    ``levels[-1].graph`` is the coarsest.  The ladder may be empty when the
    input is already small enough.  Coarsening also stops when a matching
    fails to shrink the graph meaningfully (e.g. star graphs).
    """
    levels: list[CoarseLevel] = []
    current = graph
    for _ in range(max_levels):
        if current.num_nodes <= min_nodes:
            break
        level = contract(current, matcher(current, rng))
        if level.graph.num_nodes >= current.num_nodes * _MIN_SHRINK:
            break
        levels.append(level)
        current = level.graph
    return levels
