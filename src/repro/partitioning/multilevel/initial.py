"""Initial partitioning of the coarsest graph.

At the bottom of the multilevel ladder the graph is small (tens of
vertices), so we can afford several randomized attempts: greedy graph
growing produces a bisection, FM refinement polishes it, and the best of a
few trials wins.  K-way partitions come from recursive bisection with
weight-proportional targets, which handles non-power-of-two ``nparts``.
"""

from __future__ import annotations

import random
from collections import deque
from typing import Sequence

from ...graphs.graph import Graph
from ...graphs import metrics
from .refine import fm_refine, rebalance

__all__ = ["greedy_bisection", "recursive_bisection"]


def greedy_bisection(
    graph: Graph,
    left_fraction: float,
    rng: random.Random,
    trials: int = 4,
) -> list[int]:
    """Bisect into parts {0, 1}; part 0 targets ``left_fraction`` of weight.

    Greedy graph growing: BFS-grow part 0 from a random seed until it holds
    its share of the node weight, then FM-refine.  The lowest-cut result of
    ``trials`` attempts is returned.
    """
    if not 0.0 < left_fraction < 1.0:
        raise ValueError(f"left_fraction must be in (0, 1), got {left_fraction}")
    n = graph.num_nodes
    total = graph.total_node_weight()
    target0 = total * left_fraction
    targets = [target0, total - target0]

    best_assignment: list[int] | None = None
    best_cut = float("inf")
    for _ in range(max(1, trials)):
        assignment = [1] * n
        seed = rng.randint(1, n)
        load = 0
        queue: deque[int] = deque([seed])
        queued = {seed}
        while load < target0:
            if not queue:
                remaining = [g for g in graph.nodes() if assignment[g - 1] == 1]
                if not remaining:
                    break
                nxt = rng.choice(remaining)
                queue.append(nxt)
                queued.add(nxt)
            gid = queue.popleft()
            if assignment[gid - 1] == 0:
                continue
            w = graph.node_weight(gid)
            if load > 0 and load + w > target0 + w / 2:
                # crossing the target by more than half this vertex: stop
                break
            assignment[gid - 1] = 0
            load += w
            for v in graph.neighbors(gid):
                if assignment[v - 1] == 1 and v not in queued:
                    queue.append(v)
                    queued.add(v)
        if all(p == 1 for p in assignment):  # degenerate: force the seed over
            assignment[seed - 1] = 0
        fm_refine(graph, assignment, 2, targets, rng)
        rebalance(graph, assignment, 2, targets, rng)
        cut = metrics.weighted_edge_cut(graph, assignment)
        if cut < best_cut:
            best_cut = cut
            best_assignment = list(assignment)
    assert best_assignment is not None
    return best_assignment


def recursive_bisection(
    graph: Graph,
    nparts: int,
    rng: random.Random,
    proportions: Sequence[float] | None = None,
) -> list[int]:
    """K-way partition by recursive bisection.

    Args:
        graph: Graph to partition.
        nparts: Number of parts (>= 1).
        proportions: Optional per-part weight shares (normalized internally);
            defaults to uniform.  This is what lets the PaGrid-style driver
            give faster processors bigger pieces.

    Returns:
        ``assignment[gid - 1] in range(nparts)``.
    """
    if nparts < 1:
        raise ValueError(f"nparts must be >= 1, got {nparts}")
    if proportions is None:
        proportions = [1.0] * nparts
    if len(proportions) != nparts:
        raise ValueError(f"proportions needs {nparts} entries")
    if any(p <= 0 for p in proportions):
        raise ValueError("proportions must be positive")

    assignment = [0] * graph.num_nodes

    def split(node_gids: list[int], part_lo: int, part_hi: int) -> None:
        """Assign ``node_gids`` (original gids) to parts ``[part_lo, part_hi)``."""
        count = part_hi - part_lo
        if count == 1 or not node_gids:
            for gid in node_gids:
                assignment[gid - 1] = part_lo
            return
        mid = part_lo + count // 2
        left_share = sum(proportions[part_lo:mid])
        right_share = sum(proportions[mid:part_hi])
        frac = left_share / (left_share + right_share)
        sub, remap = graph.subgraph(node_gids)
        inverse = {new: old for old, new in remap.items()}
        bis = greedy_bisection(sub, frac, rng)
        left = [inverse[i + 1] for i in range(sub.num_nodes) if bis[i] == 0]
        right = [inverse[i + 1] for i in range(sub.num_nodes) if bis[i] == 1]
        if not left or not right:
            # Bisection degenerated (tiny subgraph): split by id for progress.
            ordered = sorted(node_gids)
            cutoff = max(1, round(len(ordered) * frac))
            left, right = ordered[:cutoff], ordered[cutoff:]
        split(left, part_lo, mid)
        split(right, mid, part_hi)

    split(list(graph.nodes()), 0, nparts)
    return assignment
