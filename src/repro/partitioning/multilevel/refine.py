"""Boundary refinement (Fiduccia-Mattheyses flavoured, k-way).

After projecting a coarse partition to a finer level, boundary vertices are
greedily moved to the neighbouring part with the best *gain* (external minus
internal edge weight), subject to a balance constraint.  A second routine
restores balance when projection or greedy moves overfill a part.
"""

from __future__ import annotations

import random
from typing import Sequence

from ...graphs.graph import Graph

__all__ = ["move_gains", "fm_refine", "rebalance"]


def move_gains(
    graph: Graph, assignment: Sequence[int], gid: int
) -> dict[int, int]:
    """Gain of moving ``gid`` into each adjacent part.

    ``gain[part] = (edge weight into part) - (edge weight into own part)``.
    Positive gain means the cut shrinks by that amount.
    """
    own = assignment[gid - 1]
    external: dict[int, int] = {}
    internal = 0
    for v in graph.neighbors(gid):
        w = graph.edge_weight(gid, v)
        part = assignment[v - 1]
        if part == own:
            internal += w
        else:
            external[part] = external.get(part, 0) + w
    return {part: ext - internal for part, ext in external.items()}


def _loads(graph: Graph, assignment: Sequence[int], nparts: int) -> list[int]:
    loads = [0] * nparts
    for gid in graph.nodes():
        loads[assignment[gid - 1]] += graph.node_weight(gid)
    return loads


def fm_refine(
    graph: Graph,
    assignment: list[int],
    nparts: int,
    target_loads: Sequence[float],
    rng: random.Random,
    max_passes: int = 8,
    tolerance: float = 1.05,
) -> list[int]:
    """Greedy k-way boundary refinement, in place; returns ``assignment``.

    Each pass visits boundary vertices in random order and applies the best
    positive-gain move that keeps the destination under
    ``target * tolerance`` (zero-gain moves are taken only when they strictly
    improve balance).  Passes repeat until a pass makes no move.
    """
    if len(target_loads) != nparts:
        raise ValueError(f"target_loads needs {nparts} entries")
    loads = _loads(graph, assignment, nparts)
    # Caps need headroom for at least one vertex above the target, otherwise
    # exact-balance partitions (the common case with unit weights) freeze.
    w_max = max((graph.node_weight(g) for g in graph.nodes()), default=1)
    caps = [max(t * tolerance, t + w_max) for t in target_loads]

    for _ in range(max_passes):
        boundary = [
            gid
            for gid in graph.nodes()
            if any(assignment[v - 1] != assignment[gid - 1] for v in graph.neighbors(gid))
        ]
        rng.shuffle(boundary)
        moved = 0
        for gid in boundary:
            own = assignment[gid - 1]
            w = graph.node_weight(gid)
            if loads[own] <= w:
                continue  # never empty a part (the headroom cap would allow it)
            best_part = -1
            best_key: tuple[int, float] | None = None
            for part, gain in move_gains(graph, assignment, gid).items():
                if gain < 0:
                    continue
                fits = loads[part] + w <= caps[part]
                balance_delta = (loads[own] - target_loads[own]) - (
                    loads[part] + w - target_loads[part]
                )
                if gain == 0 and balance_delta <= 0:
                    continue  # zero gain must strictly help balance
                if not fits:
                    continue
                key = (gain, balance_delta)
                if best_key is None or key > best_key:
                    best_key = key
                    best_part = part
            if best_part >= 0:
                assignment[gid - 1] = best_part
                loads[own] -= w
                loads[best_part] += w
                moved += 1
        if moved == 0:
            break
    return assignment


def rebalance(
    graph: Graph,
    assignment: list[int],
    nparts: int,
    target_loads: Sequence[float],
    rng: random.Random,
    tolerance: float = 1.05,
) -> list[int]:
    """Push vertices out of overweight parts, cheapest cut damage first.

    Used after projection (coarse vertices are lumpy) and as the final step
    of the k-way driver so every part lands within ``tolerance`` of its
    target whenever vertex granularity allows.
    """
    loads = _loads(graph, assignment, nparts)
    w_max = max((graph.node_weight(g) for g in graph.nodes()), default=1)
    caps = [max(t * tolerance, t + w_max) for t in target_loads]

    for _ in range(graph.num_nodes):  # hard bound on total work
        over = [p for p in range(nparts) if loads[p] > caps[p]]
        if not over:
            break
        made_move = False
        for part in sorted(over, key=lambda p: loads[p] - caps[p], reverse=True):
            # candidate boundary vertices of this part
            best: tuple[float, int, int] | None = None  # (-gain, gid, dest)
            for gid in graph.nodes():
                if assignment[gid - 1] != part:
                    continue
                w = graph.node_weight(gid)
                gains = move_gains(graph, assignment, gid)
                for dest, gain in gains.items():
                    if loads[dest] + w > caps[dest] and loads[dest] >= target_loads[dest]:
                        continue
                    key = (-gain, gid, dest)
                    if best is None or key < best:
                        best = key
            if best is None:
                # No adjacent part can take anything; move the lightest
                # vertex to the globally least-loaded part (last resort,
                # keeps termination guaranteed on pathological graphs).
                members = [g for g in graph.nodes() if assignment[g - 1] == part]
                gid = min(members, key=lambda g: (graph.node_weight(g), g))
                dest = min(range(nparts), key=lambda p: loads[p] - target_loads[p])
                if dest == part:
                    continue
            else:
                _, gid, dest = best
            w = graph.node_weight(gid)
            assignment[gid - 1] = dest
            loads[part] -= w
            loads[dest] += w
            made_move = True
        if not made_move:
            break
    return assignment
