"""Baseline partitioners: round-robin, random, and BFS-greedy growing.

These are not in the paper's evaluation but serve as reference points in the
test suite and ablation benches (a good partitioner must beat them), and
BFS-greedy doubles as the initial-partition fallback of the multilevel code.
"""

from __future__ import annotations

import random
from collections import deque

from ..graphs.graph import Graph
from .base import Partition, Partitioner

__all__ = ["RoundRobinPartitioner", "RandomPartitioner", "BfsGreedyPartitioner"]


class RoundRobinPartitioner(Partitioner):
    """Node ``gid`` goes to processor ``(gid - 1) % nparts``.

    Maximally scatters the graph; on meshes this is close to the worst
    possible edge cut, making it a useful upper baseline.
    """

    name = "roundrobin"

    def partition(self, graph: Graph, nparts: int) -> Partition:
        self._check_nparts(graph, nparts)
        if (trivial := self._trivial(graph, nparts)) is not None:
            return trivial
        assignment = [(gid - 1) % nparts for gid in graph.nodes()]
        return Partition.from_assignment(graph, assignment, nparts, method=self.name)


class RandomPartitioner(Partitioner):
    """Uniformly random assignment (seeded, with approximate balance).

    Nodes are shuffled and dealt out in equal-size blocks, so the partition
    is balanced in node count but random in shape.
    """

    name = "random"

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed

    def partition(self, graph: Graph, nparts: int) -> Partition:
        self._check_nparts(graph, nparts)
        if (trivial := self._trivial(graph, nparts)) is not None:
            return trivial
        rng = random.Random(self.seed)
        order = list(graph.nodes())
        rng.shuffle(order)
        assignment = [0] * graph.num_nodes
        for idx, gid in enumerate(order):
            assignment[gid - 1] = idx * nparts // graph.num_nodes
        return Partition.from_assignment(graph, assignment, nparts, method=self.name)


class BfsGreedyPartitioner(Partitioner):
    """Grow contiguous, weight-balanced regions by breadth-first search.

    Seeds each part at the unassigned node of largest degree, then absorbs
    BFS frontier nodes until the part reaches its share of the total node
    weight.  Produces connected parts on connected graphs -- a solid cheap
    baseline and the coarsest-level seed partition for the multilevel code.
    """

    name = "bfsgreedy"

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed

    def partition(self, graph: Graph, nparts: int) -> Partition:
        self._check_nparts(graph, nparts)
        if (trivial := self._trivial(graph, nparts)) is not None:
            return trivial
        n = graph.num_nodes
        total = graph.total_node_weight()
        assignment = [-1] * n
        unassigned = set(graph.nodes())
        remaining_weight = total

        for part in range(nparts):
            if not unassigned:
                break
            parts_left = nparts - part
            target = remaining_weight / parts_left
            load = 0
            queue: deque[int] = deque()
            queued: set[int] = set()
            while unassigned and load < target and parts_left > 1:
                if not queue:
                    # Seed (or reseed after exhausting a region) at the
                    # highest-degree unassigned node; the seed is always
                    # absorbed, which guarantees forward progress.
                    seed_node = max(unassigned, key=lambda g: (graph.degree(g), -g))
                    gid = seed_node
                    force = True
                else:
                    gid = queue.popleft()
                    force = False
                    if assignment[gid - 1] != -1:
                        continue
                w = graph.node_weight(gid)
                if not force and load > 0 and load + w > target * 1.15:
                    continue  # would overfill noticeably; leave for later parts
                assignment[gid - 1] = part
                unassigned.discard(gid)
                load += w
                remaining_weight -= w
                for v in graph.neighbors(gid):
                    if assignment[v - 1] == -1 and v not in queued:
                        queue.append(v)
                        queued.add(v)
            if parts_left == 1:
                for gid in list(unassigned):
                    assignment[gid - 1] = part
                    remaining_weight -= graph.node_weight(gid)
                unassigned.clear()
        # Safety: any stragglers go to the least-loaded part.
        if unassigned:
            loads = [0] * nparts
            for gid in graph.nodes():
                if assignment[gid - 1] != -1:
                    loads[assignment[gid - 1]] += graph.node_weight(gid)
            for gid in sorted(unassigned):
                part = loads.index(min(loads))
                assignment[gid - 1] = part
                loads[part] += graph.node_weight(gid)
        return Partition.from_assignment(graph, assignment, nparts, method=self.name)
