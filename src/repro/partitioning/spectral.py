"""Recursive spectral bisection.

Not part of the paper's evaluation, but a classical baseline the test-bed
goal (Goal 3) calls for: partition-algorithm designers should be able to
plug in alternatives and compare.  Bisection uses the Fiedler vector of the
(weighted) graph Laplacian; k-way partitions come from recursion with a
median split, followed by the shared FM refinement for polish.
"""

from __future__ import annotations

import random

import numpy as np

from ..graphs.graph import Graph
from .base import Partition, Partitioner
from .multilevel.refine import fm_refine, rebalance

__all__ = ["SpectralPartitioner", "fiedler_vector"]

#: Above this size, use scipy's sparse Lanczos solver instead of dense numpy.
_DENSE_LIMIT = 600


def fiedler_vector(graph: Graph) -> np.ndarray:
    """The eigenvector of the second-smallest Laplacian eigenvalue.

    For disconnected graphs the vector separates components, which still
    produces a usable (if trivial) split.
    """
    n = graph.num_nodes
    if n < 2:
        raise ValueError("fiedler_vector needs at least 2 nodes")
    if n <= _DENSE_LIMIT:
        lap = np.zeros((n, n))
        for u, v in graph.edges():
            w = graph.edge_weight(u, v)
            lap[u - 1, v - 1] -= w
            lap[v - 1, u - 1] -= w
            lap[u - 1, u - 1] += w
            lap[v - 1, v - 1] += w
        _, vecs = np.linalg.eigh(lap)
        return vecs[:, 1]
    import scipy.sparse as sp
    import scipy.sparse.linalg as spla

    rows, cols, vals = [], [], []
    deg = np.zeros(n)
    for u, v in graph.edges():
        w = float(graph.edge_weight(u, v))
        rows += [u - 1, v - 1]
        cols += [v - 1, u - 1]
        vals += [-w, -w]
        deg[u - 1] += w
        deg[v - 1] += w
    rows += list(range(n))
    cols += list(range(n))
    vals += list(deg)
    lap = sp.csr_matrix((vals, (rows, cols)), shape=(n, n))
    _, vecs = spla.eigsh(lap, k=2, which="SM")
    return np.asarray(vecs[:, 1])


class SpectralPartitioner(Partitioner):
    """Recursive spectral bisection with FM polish.

    Args:
        seed: Seed for the refinement RNG.
        refine: Run FM refinement after each bisection (default True).
    """

    name = "spectral"

    def __init__(self, seed: int = 0, refine: bool = True) -> None:
        self.seed = seed
        self.refine = refine

    def partition(self, graph: Graph, nparts: int) -> Partition:
        self._check_nparts(graph, nparts)
        if (trivial := self._trivial(graph, nparts)) is not None:
            return trivial
        rng = random.Random(self.seed)
        assignment = [0] * graph.num_nodes

        def split(node_gids: list[int], part_lo: int, part_hi: int) -> None:
            count = part_hi - part_lo
            if count == 1 or not node_gids:
                for gid in node_gids:
                    assignment[gid - 1] = part_lo
                return
            mid = part_lo + count // 2
            frac = (mid - part_lo) / count
            if len(node_gids) == 1:
                assignment[node_gids[0] - 1] = part_lo
                return
            sub, remap = graph.subgraph(node_gids)
            inverse = {new: old for old, new in remap.items()}
            try:
                fv = fiedler_vector(sub)
            except Exception:
                fv = np.arange(sub.num_nodes, dtype=float)  # fallback: id order
            order = np.argsort(fv, kind="stable")
            # Split at the weighted quantile so part sizes track targets.
            weights = np.array([sub.node_weight(i + 1) for i in range(sub.num_nodes)])
            cum = np.cumsum(weights[order])
            total = cum[-1]
            cutoff = int(np.searchsorted(cum, total * frac, side="left")) + 1
            cutoff = min(max(cutoff, 1), sub.num_nodes - 1)
            local = [1] * sub.num_nodes
            for pos in order[:cutoff]:
                local[pos] = 0
            if self.refine:
                targets = [total * frac, total * (1 - frac)]
                fm_refine(sub, local, 2, targets, rng)
                rebalance(sub, local, 2, targets, rng)
            left = [inverse[i + 1] for i in range(sub.num_nodes) if local[i] == 0]
            right = [inverse[i + 1] for i in range(sub.num_nodes) if local[i] == 1]
            split(left, part_lo, mid)
            split(right, mid, part_hi)

        split(list(graph.nodes()), 0, nparts)
        return Partition.from_assignment(graph, assignment, nparts, method=self.name)
