"""Static graph partitioners (third-party plug-in slot of the platform).

Everything here implements :class:`~repro.partitioning.base.Partitioner`:

* :class:`MetisLikePartitioner` -- multilevel k-way ([KK98] family),
* :class:`PaGridLikePartitioner` -- architecture-aware with the ``Rref``
  estimated-execution-time objective ([WA04, HAB06] family),
* :class:`RowBandPartitioner`, :class:`ColumnBandPartitioner`,
  :class:`RectangularPartitioner` -- the battlefield band schemes,
* :class:`GrayCodePartitioner` -- the fine-grained mesh-to-hypercube
  gray-code embedding ("BF partition"),
* :class:`SpectralPartitioner` and the simple baselines.
"""

from .bands import (
    ColumnBandPartitioner,
    RectangularPartitioner,
    RowBandPartitioner,
    balanced_factor_pair,
)
from .base import Partition, Partitioner
from .graycode import GrayCodePartitioner, gray_code, gray_decode
from .jostle import JostleLikePartitioner
from .multilevel import MetisLikePartitioner
from .pagrid import PaGridLikePartitioner
from .procgraph import ProcessorGraph
from .simple import BfsGreedyPartitioner, RandomPartitioner, RoundRobinPartitioner
from .spectral import SpectralPartitioner, fiedler_vector

__all__ = [
    "BfsGreedyPartitioner",
    "ColumnBandPartitioner",
    "GrayCodePartitioner",
    "JostleLikePartitioner",
    "MetisLikePartitioner",
    "PaGridLikePartitioner",
    "Partition",
    "Partitioner",
    "ProcessorGraph",
    "RandomPartitioner",
    "RectangularPartitioner",
    "RoundRobinPartitioner",
    "RowBandPartitioner",
    "SpectralPartitioner",
    "balanced_factor_pair",
    "fiedler_vector",
    "gray_code",
    "gray_decode",
]
