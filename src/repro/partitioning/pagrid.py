"""PaGrid-like architecture-aware partitioner.

PaGrid [WA04, HAB06] differs from Metis in two ways the thesis leans on:

* it takes a *processor network graph* (heterogeneous speeds and link
  costs -- the "grid format"; the paper used a hypercube for its runs), and
* it minimizes an **estimated execution time** objective rather than the
  raw edge cut, tuned by ``Rref``, "the ratio of communication time to the
  computation time per node in the application graph" (the paper sets
  ``Rref = 0.45`` for its graph topologies).

Our implementation follows that recipe:

1. obtain a weight-proportional base partition with the multilevel code
   (faster processors get proportionally more nodes),
2. map parts onto processors to minimize total cut-weight x link-distance
   (greedy assignment + pairwise-swap hill climbing), and
3. refine boundaries against the estimated-execution-time objective
   ``T(p) = load(p) / speed(p) + Rref * sum_cut w(e) * dist(p, q)``,
   accepting moves that reduce the global maximum (with total cost as a
   tie-break).
"""

from __future__ import annotations

import random
from typing import Sequence

from ..graphs.graph import Graph
from .base import Partition, Partitioner
from .multilevel.kway import MetisLikePartitioner
from .multilevel.refine import move_gains
from .procgraph import ProcessorGraph

__all__ = ["PaGridLikePartitioner"]


class PaGridLikePartitioner(Partitioner):
    """Processor-graph-aware partitioner with the PaGrid cost objective.

    Args:
        procgraph: Target architecture; its size fixes the default part
            count (``partition`` still takes ``nparts`` and checks it).
        rref: Communication-to-computation ratio of the application
            (paper: 0.45 for the generic topologies).
        seed: RNG seed.
        refine_passes: Boundary refinement passes over the mapped partition.
    """

    name = "pagrid"

    def __init__(
        self,
        procgraph: ProcessorGraph,
        rref: float = 0.45,
        seed: int = 0,
        refine_passes: int = 6,
    ) -> None:
        if rref < 0:
            raise ValueError(f"rref must be >= 0, got {rref}")
        self.procgraph = procgraph
        self.rref = rref
        self.seed = seed
        self.refine_passes = refine_passes

    # ------------------------------------------------------------------ #

    def partition(self, graph: Graph, nparts: int) -> Partition:
        self._check_nparts(graph, nparts)
        if nparts != self.procgraph.nprocs:
            raise ValueError(
                f"nparts={nparts} does not match processor graph size "
                f"{self.procgraph.nprocs}"
            )
        if (trivial := self._trivial(graph, nparts)) is not None:
            return trivial
        rng = random.Random(self.seed)
        speeds = self.procgraph.speeds
        base = MetisLikePartitioner(
            seed=self.seed, proportions=list(speeds)
        ).partition(graph, nparts)
        assignment = list(base.assignment)

        mapping = self._map_parts(graph, assignment, nparts)
        assignment = [mapping[p] for p in assignment]

        self._refine(graph, assignment, nparts, rng)
        return Partition.from_assignment(graph, assignment, nparts, method=self.name)

    # ------------------------------------------------------------------ #
    # Step 2: part-to-processor mapping
    # ------------------------------------------------------------------ #

    def _part_traffic(
        self, graph: Graph, assignment: Sequence[int], nparts: int
    ) -> dict[tuple[int, int], int]:
        """Cut weight between each pair of parts."""
        traffic: dict[tuple[int, int], int] = {}
        for u, v in graph.edges():
            pu, pv = assignment[u - 1], assignment[v - 1]
            if pu == pv:
                continue
            key = (min(pu, pv), max(pu, pv))
            traffic[key] = traffic.get(key, 0) + graph.edge_weight(u, v)
        return traffic

    def _map_parts(
        self, graph: Graph, assignment: Sequence[int], nparts: int
    ) -> list[int]:
        """Permutation ``mapping[part] = processor`` minimizing
        ``sum traffic(a, b) * dist(mapping[a], mapping[b])`` by greedy
        placement plus pairwise-swap hill climbing.

        Processor speeds constrain the permutation: part sizes were chosen
        proportional to speeds, so parts are placed on the processor with
        the matching speed rank first, then swaps only exchange
        equal-speed processors (otherwise load balance would break).
        """
        traffic = self._part_traffic(graph, assignment, nparts)
        speeds = self.procgraph.speeds

        # Seed: rank parts by weight, processors by speed, pair them up.
        loads = [0] * nparts
        for gid in graph.nodes():
            loads[assignment[gid - 1]] += graph.node_weight(gid)
        part_order = sorted(range(nparts), key=lambda p: (-loads[p], p))
        proc_order = sorted(range(nparts), key=lambda q: (-speeds[q], q))
        mapping = [0] * nparts
        for part, proc in zip(part_order, proc_order):
            mapping[part] = proc

        def cost(mp: Sequence[int]) -> float:
            return sum(
                w * self.procgraph.distance(mp[a], mp[b])
                for (a, b), w in traffic.items()
            )

        current = cost(mapping)
        improved = True
        while improved:
            improved = False
            for a in range(nparts):
                for b in range(a + 1, nparts):
                    if speeds[mapping[a]] != speeds[mapping[b]]:
                        continue  # swapping unequal processors breaks balance
                    mapping[a], mapping[b] = mapping[b], mapping[a]
                    trial = cost(mapping)
                    if trial < current - 1e-12:
                        current = trial
                        improved = True
                    else:
                        mapping[a], mapping[b] = mapping[b], mapping[a]
        return mapping

    # ------------------------------------------------------------------ #
    # Step 3: estimated-execution-time boundary refinement
    # ------------------------------------------------------------------ #

    def _estimated_times(
        self, graph: Graph, assignment: Sequence[int], nparts: int
    ) -> list[float]:
        """Per-processor ``load/speed + Rref * remote-communication``."""
        times = [0.0] * nparts
        for gid in graph.nodes():
            times[assignment[gid - 1]] += graph.node_weight(gid) / self.procgraph.speed(
                assignment[gid - 1]
            )
        for u, v in graph.edges():
            pu, pv = assignment[u - 1], assignment[v - 1]
            if pu == pv:
                continue
            comm = self.rref * graph.edge_weight(u, v) * self.procgraph.distance(pu, pv)
            times[pu] += comm
            times[pv] += comm
        return times

    def _refine(
        self, graph: Graph, assignment: list[int], nparts: int, rng: random.Random
    ) -> None:
        """Greedy boundary passes on the estimated-execution-time objective."""
        times = self._estimated_times(graph, assignment, nparts)
        for _ in range(self.refine_passes):
            boundary = [
                gid
                for gid in graph.nodes()
                if any(assignment[v - 1] != assignment[gid - 1] for v in graph.neighbors(gid))
            ]
            rng.shuffle(boundary)
            moved = 0
            for gid in boundary:
                own = assignment[gid - 1]
                candidates = set(move_gains(graph, assignment, gid))
                best_part = -1
                best_key: tuple[float, float] | None = None
                objective = (max(times), sum(times))
                for part in candidates:
                    assignment[gid - 1] = part
                    trial_times = self._apply_move_times(graph, assignment, gid, own, part, times)
                    key = (max(trial_times), sum(trial_times))
                    if key < (best_key or objective):
                        best_key = key
                        best_part = part
                    assignment[gid - 1] = own
                if best_part >= 0 and best_key is not None and best_key < objective:
                    assignment[gid - 1] = best_part
                    times = self._apply_move_times(
                        graph, assignment, gid, own, best_part, times
                    )
                    moved += 1
            if moved == 0:
                break

    def _apply_move_times(
        self,
        graph: Graph,
        assignment: Sequence[int],
        gid: int,
        src: int,
        dest: int,
        times: list[float],
    ) -> list[float]:
        """Recompute estimated times after moving ``gid`` src -> dest.

        Only the terms touching ``gid`` change; recomputing them
        incrementally keeps refinement near-linear per pass.
        """
        out = list(times)
        w = graph.node_weight(gid)
        out[src] -= w / self.procgraph.speed(src)
        out[dest] += w / self.procgraph.speed(dest)
        for v in graph.neighbors(gid):
            pv = assignment[v - 1] if v != gid else dest
            ew = graph.edge_weight(gid, v)
            # remove the old edge contribution (gid was in src)
            if pv != src:
                old = self.rref * ew * self.procgraph.distance(src, pv)
                out[src] -= old
                out[pv] -= old
            # add the new contribution (gid now in dest)
            if pv != dest:
                new = self.rref * ew * self.procgraph.distance(dest, pv)
                out[dest] += new
                out[pv] += new
        return out
