"""Gray-code mesh-to-hypercube fine-grained embedding ("BF partition").

The original battlefield simulator [DMP98] was parallelized on hypercube
machines with a gray-code-based mesh-to-hypercube embedding, "wherein a hex
and its six neighbors are allocated to different processors" (section 5.3).

The embedding splits the hypercube's ``d = log2(p)`` address bits between
the two mesh axes and maps each axis coordinate through a reflected Gray
code, so stepping one hex in either direction flips exactly one address bit
-- i.e. moves to a *directly linked* hypercube neighbour.  That was ideal
for the original fine-grained message-passing design, but as an initial
partition for iC2mpi it scatters every hex away from its neighbours: almost
every edge is cut, and Table 8 shows the resulting collapse (2-processor
runs slower than sequential).
"""

from __future__ import annotations

from ..graphs.graph import Graph
from .base import Partition, Partitioner

__all__ = ["gray_code", "gray_decode", "GrayCodePartitioner"]


def gray_code(value: int) -> int:
    """Reflected binary Gray code of ``value``."""
    if value < 0:
        raise ValueError(f"value must be >= 0, got {value}")
    return value ^ (value >> 1)


def gray_decode(code: int) -> int:
    """Inverse of :func:`gray_code`."""
    if code < 0:
        raise ValueError(f"code must be >= 0, got {code}")
    value = 0
    while code:
        value ^= code
        code >>= 1
    return value


class GrayCodePartitioner(Partitioner):
    """Fine-grained gray-code embedding of a rows x cols mesh onto p = 2^d.

    The hypercube address bits are split ``d = d_r + d_c`` between the row
    and column axes (as evenly as possible); hex ``(r, c)`` maps to processor
    ``gray(r mod 2^d_r) << d_c | gray(c mod 2^d_c)``.

    Args:
        rows: Mesh rows (row-major 1-based global IDs assumed).
        cols: Mesh columns.
    """

    name = "bfpartition"

    def __init__(self, rows: int, cols: int) -> None:
        if rows < 1 or cols < 1:
            raise ValueError(f"grid must be at least 1x1, got {rows}x{cols}")
        self.rows = rows
        self.cols = cols

    def partition(self, graph: Graph, nparts: int) -> Partition:
        self._check_nparts(graph, nparts)
        if graph.num_nodes != self.rows * self.cols:
            raise ValueError(
                f"graph has {graph.num_nodes} nodes; {self.rows}x{self.cols} mesh "
                f"needs {self.rows * self.cols}"
            )
        if (trivial := self._trivial(graph, nparts)) is not None:
            return trivial
        if nparts & (nparts - 1):
            raise ValueError(
                f"gray-code embedding needs a power-of-two processor count, got {nparts}"
            )
        dim = nparts.bit_length() - 1
        d_r = dim // 2
        d_c = dim - d_r
        # Give the longer mesh axis the larger bit budget.
        if (self.rows >= self.cols) != (d_r >= d_c):
            d_r, d_c = d_c, d_r
        mask_r = (1 << d_r) - 1
        mask_c = (1 << d_c) - 1
        assignment = []
        for gid in graph.nodes():
            r, c = divmod(gid - 1, self.cols)
            proc = (gray_code(r & mask_r) << d_c) | gray_code(c & mask_c)
            assignment.append(proc)
        return Partition.from_assignment(graph, assignment, nparts, method=self.name)
