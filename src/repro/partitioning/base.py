"""Partitioner plug-in interface.

The platform treats static graph partitioners as third-party plug-ins (Goal
1 of the thesis): anything implementing :class:`Partitioner` can be handed
to the initialization phase.  A partitioner maps an application
:class:`~repro.graphs.graph.Graph` onto ``nparts`` processors and returns a
:class:`Partition` -- a thin wrapper around the thesis's ``output_arr``
(``assignment[gid - 1] == processor``) with quality accessors attached.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Sequence

from ..graphs.graph import Graph
from ..graphs import metrics

__all__ = ["Partition", "Partitioner"]


@dataclass(frozen=True)
class Partition:
    """A node-to-processor mapping for a specific graph.

    Attributes:
        graph: The application graph that was partitioned.
        assignment: ``assignment[gid - 1]`` is the owning processor of node
            ``gid`` (processors are ``0..nparts-1``).
        nparts: Number of processors the mapping targets.  Processors may be
            empty (e.g. partitioning 32 nodes over 16 processors can leave
            some idle under band schemes).
        method: Name of the partitioner that produced the mapping.
    """

    graph: Graph
    assignment: tuple[int, ...]
    nparts: int
    method: str = "unknown"

    def __post_init__(self) -> None:
        metrics.validate_assignment(self.graph, self.assignment, self.nparts)

    @classmethod
    def from_assignment(
        cls,
        graph: Graph,
        assignment: Sequence[int],
        nparts: int,
        method: str = "unknown",
    ) -> "Partition":
        """Build from any integer sequence (copied to a tuple)."""
        return cls(graph, tuple(int(p) for p in assignment), nparts, method)

    # ------------------------------------------------------------------ #
    # Quality metrics
    # ------------------------------------------------------------------ #

    def edge_cut(self) -> int:
        """Edges crossing processor boundaries."""
        return metrics.edge_cut(self.graph, self.assignment)

    def weighted_edge_cut(self) -> int:
        """Edge cut counting edge weights."""
        return metrics.weighted_edge_cut(self.graph, self.assignment)

    def communication_volume(self) -> int:
        """Total shadow copies (sum of platform comm-buffer lengths)."""
        return metrics.communication_volume(self.graph, self.assignment)

    def loads(self) -> list[int]:
        """Node weight hosted per processor."""
        return metrics.part_loads(self.graph, self.assignment, self.nparts)

    def imbalance(self) -> float:
        """``max_load / mean_load`` (1.0 = perfect)."""
        return metrics.load_imbalance(self.graph, self.assignment, self.nparts)

    def owner(self, gid: int) -> int:
        """Owning processor of node ``gid``."""
        return self.assignment[gid - 1]

    def nodes_of(self, proc: int) -> list[int]:
        """Global IDs owned by ``proc``."""
        return [gid for gid in self.graph.nodes() if self.assignment[gid - 1] == proc]

    def __str__(self) -> str:
        return (
            f"Partition({self.method}, k={self.nparts}, cut={self.edge_cut()}, "
            f"imbalance={self.imbalance():.3f})"
        )


class Partitioner(abc.ABC):
    """Abstract static graph partitioner (a third-party plug-in slot)."""

    #: Short name used in experiment tables ("metis", "pagrid", "rowband"...).
    name: str = "abstract"

    @abc.abstractmethod
    def partition(self, graph: Graph, nparts: int) -> Partition:
        """Map ``graph`` onto ``nparts`` processors."""

    def _check_nparts(self, graph: Graph, nparts: int) -> None:
        if nparts < 1:
            raise ValueError(f"nparts must be >= 1, got {nparts}")
        if graph.num_nodes == 0:
            raise ValueError("cannot partition an empty graph")

    def _trivial(self, graph: Graph, nparts: int) -> Partition | None:
        """Handle the k=1 shortcut shared by every implementation."""
        if nparts == 1:
            return Partition.from_assignment(
                graph, [0] * graph.num_nodes, 1, method=self.name
            )
        return None
