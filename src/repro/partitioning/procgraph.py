"""Processor network graphs.

PaGrid (unlike Metis) partitions *onto a machine*: it takes a weighted
processor network graph describing the target architecture -- processor
speeds on the vertices and communication costs on the links ([WA04]'s "grid
format").  The paper used a hypercube processor graph for its Origin-2000
runs.  The platform's dynamic load balancer also builds a (run-time,
measurement-weighted) processor graph each time it is invoked.

:class:`ProcessorGraph` covers both uses: static architecture descriptions
(hypercube / mesh / heterogeneous grids) with all-pairs distances, and the
grid-format text round-trip.
"""

from __future__ import annotations

from typing import Iterable, Sequence

__all__ = ["ProcessorGraph"]


class ProcessorGraph:
    """A weighted graph over processors ``0..p-1``.

    Args:
        nprocs: Number of processors.
        edges: Iterable of ``(i, j, cost)`` communication links; cost is the
            relative per-unit communication expense of the link (1.0 =
            nominal).  Links are undirected.
        speeds: Relative processor speeds (higher = faster); default 1.0.
    """

    def __init__(
        self,
        nprocs: int,
        edges: Iterable[tuple[int, int, float]],
        speeds: Sequence[float] | None = None,
    ) -> None:
        if nprocs < 1:
            raise ValueError(f"nprocs must be >= 1, got {nprocs}")
        self.nprocs = nprocs
        if speeds is None:
            self._speeds = [1.0] * nprocs
        else:
            if len(speeds) != nprocs:
                raise ValueError(f"speeds has {len(speeds)} entries for {nprocs} procs")
            if any(s <= 0 for s in speeds):
                raise ValueError("processor speeds must be positive")
            self._speeds = list(speeds)
        self._cost: dict[tuple[int, int], float] = {}
        self._adj: list[set[int]] = [set() for _ in range(nprocs)]
        for i, j, cost in edges:
            if not (0 <= i < nprocs and 0 <= j < nprocs):
                raise ValueError(f"link ({i}, {j}) outside [0, {nprocs})")
            if i == j:
                raise ValueError(f"self-link on processor {i}")
            if cost <= 0:
                raise ValueError(f"link cost must be positive, got {cost}")
            key = (min(i, j), max(i, j))
            self._cost[key] = float(cost)
            self._adj[i].add(j)
            self._adj[j].add(i)
        self._dist: list[list[float]] | None = None

    # ------------------------------------------------------------------ #
    # Presets
    # ------------------------------------------------------------------ #

    @classmethod
    def hypercube(cls, nprocs: int, link_cost: float = 1.0) -> "ProcessorGraph":
        """A hypercube of ``nprocs`` (power of two) processors.

        This models the Origin-2000's hypercube interconnect used for the
        paper's PaGrid runs.
        """
        if nprocs < 1 or nprocs & (nprocs - 1):
            raise ValueError(f"hypercube size must be a power of two, got {nprocs}")
        edges = []
        bit = 1
        while bit < nprocs:
            for i in range(nprocs):
                j = i ^ bit
                if i < j:
                    edges.append((i, j, link_cost))
            bit <<= 1
        return cls(nprocs, edges)

    @classmethod
    def mesh(cls, rows: int, cols: int, link_cost: float = 1.0) -> "ProcessorGraph":
        """A rows x cols processor mesh."""
        if rows < 1 or cols < 1:
            raise ValueError("mesh must be at least 1x1")
        edges = []
        for r in range(rows):
            for c in range(cols):
                i = r * cols + c
                if c + 1 < cols:
                    edges.append((i, i + 1, link_cost))
                if r + 1 < rows:
                    edges.append((i, i + cols, link_cost))
        return cls(rows * cols, edges)

    @classmethod
    def fully_connected(cls, nprocs: int, link_cost: float = 1.0) -> "ProcessorGraph":
        """Uniform all-to-all interconnect (what Metis implicitly assumes)."""
        edges = [
            (i, j, link_cost) for i in range(nprocs) for j in range(i + 1, nprocs)
        ]
        return cls(nprocs, edges)

    @classmethod
    def heterogeneous_grid(
        cls,
        cluster_sizes: Sequence[int],
        intra_cost: float = 1.0,
        inter_cost: float = 10.0,
        speeds: Sequence[float] | None = None,
    ) -> "ProcessorGraph":
        """Clusters of processors: cheap links inside, expensive between.

        Models the computational grids PaGrid targets ([HAB06]).
        """
        nprocs = sum(cluster_sizes)
        edges: list[tuple[int, int, float]] = []
        heads: list[int] = []
        offset = 0
        for size in cluster_sizes:
            if size < 1:
                raise ValueError("cluster sizes must be >= 1")
            members = list(range(offset, offset + size))
            heads.append(members[0])
            for a in range(len(members)):
                for b in range(a + 1, len(members)):
                    edges.append((members[a], members[b], intra_cost))
            offset += size
        for a in range(len(heads)):
            for b in range(a + 1, len(heads)):
                edges.append((heads[a], heads[b], inter_cost))
        return cls(nprocs, edges, speeds=speeds)

    # ------------------------------------------------------------------ #
    # Accessors
    # ------------------------------------------------------------------ #

    def speed(self, proc: int) -> float:
        """Relative speed of ``proc``."""
        self._check(proc)
        return self._speeds[proc]

    @property
    def speeds(self) -> tuple[float, ...]:
        """All processor speeds."""
        return tuple(self._speeds)

    def neighbors(self, proc: int) -> tuple[int, ...]:
        """Directly linked processors."""
        self._check(proc)
        return tuple(sorted(self._adj[proc]))

    def has_link(self, i: int, j: int) -> bool:
        """Whether a direct link exists."""
        self._check(i)
        self._check(j)
        return j in self._adj[i]

    def link_cost(self, i: int, j: int) -> float:
        """Cost of the direct link; raises if absent."""
        if not self.has_link(i, j):
            raise KeyError(f"no link ({i}, {j})")
        return self._cost[(min(i, j), max(i, j))]

    def links(self) -> list[tuple[int, int, float]]:
        """All undirected links as ``(i, j, cost)`` with ``i < j``."""
        return [(i, j, c) for (i, j), c in sorted(self._cost.items())]

    def _check(self, proc: int) -> None:
        if not 0 <= proc < self.nprocs:
            raise KeyError(f"processor {proc} outside [0, {self.nprocs})")

    # ------------------------------------------------------------------ #
    # Distances (Floyd-Warshall over link costs, cached)
    # ------------------------------------------------------------------ #

    def distance(self, i: int, j: int) -> float:
        """Cheapest-path communication cost between ``i`` and ``j``.

        Unreachable pairs report ``inf``; PaGrid-style mapping treats that as
        a hard wall.
        """
        self._check(i)
        self._check(j)
        if self._dist is None:
            self._dist = self._all_pairs()
        return self._dist[i][j]

    def _all_pairs(self) -> list[list[float]]:
        inf = float("inf")
        p = self.nprocs
        dist = [[inf] * p for _ in range(p)]
        for i in range(p):
            dist[i][i] = 0.0
        for (i, j), cost in self._cost.items():
            dist[i][j] = min(dist[i][j], cost)
            dist[j][i] = min(dist[j][i], cost)
        for k in range(p):
            dk = dist[k]
            for i in range(p):
                dik = dist[i][k]
                if dik == inf:
                    continue
                di = dist[i]
                for j in range(p):
                    alt = dik + dk[j]
                    if alt < di[j]:
                        di[j] = alt
        return dist

    # ------------------------------------------------------------------ #
    # Grid-format text I/O ([WA04] style)
    # ------------------------------------------------------------------ #

    def to_grid_format(self) -> str:
        """Render as grid-format text.

        Line 1: ``<nprocs> <nlinks>``.  Next ``nprocs`` lines: processor
        speeds.  Remaining lines: ``<i> <j> <cost>`` per link.
        """
        lines = [f"{self.nprocs} {len(self._cost)}"]
        lines += [f"{s:g}" for s in self._speeds]
        lines += [f"{i} {j} {c:g}" for i, j, c in self.links()]
        return "\n".join(lines) + "\n"

    @classmethod
    def from_grid_format(cls, text: str) -> "ProcessorGraph":
        """Parse grid-format text produced by :meth:`to_grid_format`."""
        lines = [ln for ln in text.splitlines() if ln.strip()]
        if not lines:
            raise ValueError("empty grid-format input")
        header = lines[0].split()
        nprocs, nlinks = int(header[0]), int(header[1])
        expected = 1 + nprocs + nlinks
        if len(lines) != expected:
            raise ValueError(f"grid format promises {expected} lines, found {len(lines)}")
        speeds = [float(lines[1 + k]) for k in range(nprocs)]
        edges = []
        for ln in lines[1 + nprocs:]:
            i, j, c = ln.split()
            edges.append((int(i), int(j), float(c)))
        return cls(nprocs, edges, speeds=speeds)

    def __repr__(self) -> str:
        return f"ProcessorGraph(nprocs={self.nprocs}, links={len(self._cost)})"
