"""The generic neighbour-average application (sections 2.1, 5.1, 5.2).

"Each node computes the average of the data maintained by all its
neighbors.  A dummy 'for loop' is used to inject the grain size.  A size of
0.3 ms is used for the fine grain and 3 ms is used for the coarse grain."

On the virtual-time substrate the dummy loop becomes ``ctx.work(grain)``.
"""

from __future__ import annotations

import numpy as np

from ..core.compute import ComputeContext, NodeFn, NodeView
from ..core.soastore import BulkView

__all__ = ["FINE_GRAIN", "COARSE_GRAIN", "make_average_fn", "neighbor_average"]

#: Fine grain size: 0.3 ms per node computation.
FINE_GRAIN = 0.3e-3

#: Coarse grain size: 3 ms per node computation.
COARSE_GRAIN = 3.0e-3


def neighbor_average(node: NodeView) -> float:
    """Average of the node's own value and its neighbours' values."""
    values = [node.value, *node.neighbor_values()]
    return sum(values) / len(values)


def make_average_fn(grain: float = FINE_GRAIN) -> NodeFn:
    """An application node function charging ``grain`` seconds per node.

    Args:
        grain: Injected compute cost, seconds (:data:`FINE_GRAIN` or
            :data:`COARSE_GRAIN` reproduce the paper's settings).
    """
    if grain < 0:
        raise ValueError(f"grain must be >= 0, got {grain}")

    def average_fn(node: NodeView, ctx: ComputeContext) -> float:
        ctx.work(grain)
        return neighbor_average(node)

    def average_bulk(view: BulkView) -> np.ndarray:
        # The closed-segment sum reduces [own, n1, n2, ...] left to right,
        # matching the scalar ``sum([node.value, *neighbours])`` exactly.
        return view.sum_closed() / (1 + view.degrees)

    average_bulk.node_grain = grain
    average_fn.bulk = average_bulk
    return average_fn
