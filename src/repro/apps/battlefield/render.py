"""Text rendering and battle analytics for battlefield states.

Terrain maps make the simulation's spatial dynamics inspectable: where the
front runs, how concentrated the combat zone is, how force density decays.
Used by the examples and handy in a REPL::

    print(render_map(app.scenario.grid, states))
"""

from __future__ import annotations

from typing import Mapping

from ...graphs.hexcoords import hex_distance
from ...graphs.hexgrid import HexGrid
from .state import HexState

__all__ = ["render_map", "front_line", "combat_report"]

#: Density glyphs, light to heavy.
_RED_GLYPHS = "rRM"
_BLUE_GLYPHS = "bBW"


def _glyph(state: HexState, scale: float) -> str:
    """One character summarizing a hex: side + density, 'x' for melee."""
    if state.contested:
        return "x"
    if state.red > 0:
        level = min(2, int(state.red / scale))
        return _RED_GLYPHS[level]
    if state.blue > 0:
        level = min(2, int(state.blue / scale))
        return _BLUE_GLYPHS[level]
    return "."


def render_map(
    grid: HexGrid, states: Mapping[int, HexState], density_scale: float | None = None
) -> str:
    """ASCII terrain map: rows of glyphs, odd rows indented half a hex.

    Legend: ``.`` empty, ``r/R/M`` red (rising density), ``b/B/W`` blue,
    ``x`` contested.
    """
    if density_scale is None:
        peak = max((s.total for s in states.values()), default=1.0)
        density_scale = max(peak / 3.0, 1e-9)
    lines = []
    for row in range(grid.rows):
        indent = " " if row % 2 else ""
        cells = [
            _glyph(states[grid.gid(row, col)], density_scale)
            for col in range(grid.cols)
        ]
        lines.append(indent + " ".join(cells))
    return "\n".join(lines)


def front_line(grid: HexGrid, states: Mapping[int, HexState]) -> list[tuple[int, int]]:
    """The contested hexes, as offset coordinates (the battle front)."""
    return [
        grid.rc(gid) for gid, state in sorted(states.items()) if state.contested
    ]


def combat_report(grid: HexGrid, states: Mapping[int, HexState]) -> dict[str, float]:
    """Aggregate battle statistics.

    Returns a dict with: red/blue surviving strength, red/blue destroyed,
    number of contested hexes, and the front's spatial extent (max pairwise
    hex distance between contested hexes; 0 when fewer than 2).
    """
    red, blue = HexState.total_strengths(states.values())
    destroyed_red = sum(s.destroyed_red for s in states.values())
    destroyed_blue = sum(s.destroyed_blue for s in states.values())
    front = front_line(grid, states)
    extent = 0
    for i in range(len(front)):
        for j in range(i + 1, len(front)):
            extent = max(extent, hex_distance(front[i], front[j]))
    return {
        "red": red,
        "blue": blue,
        "destroyed_red": destroyed_red,
        "destroyed_blue": destroyed_blue,
        "contested_hexes": float(len(front)),
        "front_extent": float(extent),
    }
