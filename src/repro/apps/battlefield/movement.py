"""Movement doctrine: where units march after combat.

Each side decides its departures from purely local (one-hop) information:

* **engage** -- enemy visible in a neighbouring hex: a fraction of the
  force advances into the neighbouring hex with the strongest enemy
  presence (mass against the threat);
* **advance** -- no enemy visible: a fraction marches toward the side's
  objective (red pushes east, blue pushes west), which is what makes the
  two fronts collide mid-terrain and the combat zone "form dynamically";
* **retreat** -- own hex overrun (enemy locally outnumbers the side by the
  retreat ratio): fall back to the friendliest neighbouring hex.

Only the hex itself computes its departures; neighbours merely read the
resulting ``departures`` tuple during the movement round, so no two-hop
knowledge is required anywhere.
"""

from __future__ import annotations

from typing import Callable, Sequence

from .state import BLUE, RED, Departure, HexState, Side

__all__ = ["MovementModel"]

#: Maps a global hex ID to its grid column (for objective-directed marches).
ColumnOf = Callable[[int], int]


class MovementModel:
    """Movement parameters and the departure decision.

    Attributes:
        advance_fraction: Share of a hex's force that marches when moving
            toward the objective or toward the enemy.
        retreat_fraction: Share that falls back when overrun.
        retreat_ratio: Local enemy:own strength ratio that triggers retreat.
        min_move: Strength below which a force stays put (stragglers hold).
    """

    def __init__(
        self,
        advance_fraction: float = 0.5,
        retreat_fraction: float = 0.75,
        retreat_ratio: float = 3.0,
        min_move: float = 0.25,
    ) -> None:
        if not 0.0 <= advance_fraction <= 1.0:
            raise ValueError(f"advance_fraction must be in [0, 1], got {advance_fraction}")
        if not 0.0 <= retreat_fraction <= 1.0:
            raise ValueError(f"retreat_fraction must be in [0, 1], got {retreat_fraction}")
        if retreat_ratio <= 1.0:
            raise ValueError(f"retreat_ratio must exceed 1, got {retreat_ratio}")
        if min_move < 0:
            raise ValueError(f"min_move must be >= 0, got {min_move}")
        self.advance_fraction = advance_fraction
        self.retreat_fraction = retreat_fraction
        self.retreat_ratio = retreat_ratio
        self.min_move = min_move

    def departures_for_side(
        self,
        side: Side,
        own_gid: int,
        own_strength: float,
        enemy_here: float,
        neighbors: Sequence[HexState],
        column_of: ColumnOf,
    ) -> list[Departure]:
        """Departures of ``side`` from hex ``own_gid`` holding ``own_strength``.

        Args:
            side: ``"red"`` or ``"blue"``.
            own_gid: Global ID of the deciding hex.
            own_strength: Post-combat strength of this side in the hex.
            enemy_here: Post-combat enemy strength sharing the hex.
            neighbors: Committed neighbour states (one-hop view).
            column_of: Grid-column lookup for the objective direction.
        """
        if own_strength <= self.min_move or not neighbors:
            return []
        enemy = BLUE if side == RED else RED

        # Retreat: locally overrun.
        if enemy_here > self.retreat_ratio * max(own_strength, 1e-9):
            dest = min(
                neighbors,
                key=lambda s: (s.strength(enemy) - s.strength(side), s.gid),
            )
            amount = self.retreat_fraction * own_strength
            if amount > self.min_move:
                return [Departure(dest.gid, side, amount)]
            return []

        # Engage: mass toward the strongest visible enemy concentration.
        hostile = [s for s in neighbors if s.strength(enemy) > 0]
        if hostile:
            dest = max(hostile, key=lambda s: (s.strength(enemy), -s.gid))
            # Do not charge into a hex that massively outguns the mover.
            amount = self.advance_fraction * own_strength
            if dest.strength(enemy) > self.retreat_ratio * amount:
                return []
            if amount > self.min_move:
                return [Departure(dest.gid, side, amount)]
            return []
        if enemy_here > 0:
            return []  # enemy in our own hex: stand and fight

        # Advance on the objective: red pushes to higher columns, blue lower.
        here = column_of(own_gid)
        if side == RED:
            dest = max(neighbors, key=lambda s: (column_of(s.gid), -s.gid))
            forward = column_of(dest.gid) > here
        else:
            dest = min(neighbors, key=lambda s: (column_of(s.gid), s.gid))
            forward = column_of(dest.gid) < here
        if not forward:
            return []  # at the map edge in the objective direction
        amount = self.advance_fraction * own_strength
        if amount > self.min_move:
            return [Departure(dest.gid, side, amount)]
        return []
