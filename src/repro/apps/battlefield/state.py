"""Per-hex battlefield state (the ``hex_node_data_struct`` of Figure 2).

The original simulator keeps, per hex: the units currently present
(``my_units``), buffers for the six neighbours' units, a target list per
unit, and ``destroyed[...]`` counters indexed by direction.  We carry the
same information at force-aggregate granularity: red and blue strength per
hex, per-step departures (units marching to a neighbouring hex), and
cumulative destruction bookkeeping.

States are immutable: the platform ships committed states between
processors by reference, so node functions must *return new objects* rather
than mutate -- exactly the double-buffering discipline the platform's
``data`` / ``most_recent_data`` split encodes.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Iterable

__all__ = ["Side", "RED", "BLUE", "Departure", "HexState"]

Side = str
RED: Side = "red"
BLUE: Side = "blue"


@dataclass(frozen=True)
class Departure:
    """A body of units leaving this hex for a neighbouring one.

    Attributes:
        target_gid: Global ID of the destination hex.
        side: ``"red"`` or ``"blue"``.
        strength: Strength (in assets) on the march.
    """

    target_gid: int
    side: Side
    strength: float

    def __post_init__(self) -> None:
        if self.side not in (RED, BLUE):
            raise ValueError(f"side must be 'red' or 'blue', got {self.side!r}")
        if self.strength < 0:
            raise ValueError(f"strength must be >= 0, got {self.strength}")


@dataclass(frozen=True)
class HexState:
    """Immutable state of one battlefield hex.

    Attributes:
        gid: Global hex ID (1-based, row-major in the terrain grid).
        red: Red strength currently in the hex.
        blue: Blue strength currently in the hex.
        departures: Units leaving this hex at the end of the current step
            (consumed by the movement round, then cleared).
        destroyed_red: Cumulative red assets destroyed *in this hex*.
        destroyed_blue: Cumulative blue assets destroyed in this hex.
        step: Simulation step this state belongs to.
    """

    gid: int
    red: float = 0.0
    blue: float = 0.0
    departures: tuple[Departure, ...] = ()
    destroyed_red: float = 0.0
    destroyed_blue: float = 0.0
    step: int = 0

    def __post_init__(self) -> None:
        if self.red < 0 or self.blue < 0:
            raise ValueError(
                f"hex {self.gid}: strengths must be >= 0 (red={self.red}, blue={self.blue})"
            )

    @property
    def nbytes(self) -> int:
        """Modelled wire size of this hex record.

        The original simulator ships the full ``hex_struct`` of Figure 2 --
        per-hex unit arrays, six neighbour buffers' worth of slots, target
        lists, and the ``destroyed[hex][2][units][7]`` counters -- on the
        order of a kilobyte per hex.  The cost model charges that, not the
        few floats of this aggregate representation.
        """
        return 1200

    @property
    def total(self) -> float:
        """Combined strength present (drives the compute grain)."""
        return self.red + self.blue

    @property
    def contested(self) -> bool:
        """Both sides present: a combat hex."""
        return self.red > 0 and self.blue > 0

    def strength(self, side: Side) -> float:
        """Strength of ``side`` in this hex."""
        if side == RED:
            return self.red
        if side == BLUE:
            return self.blue
        raise ValueError(f"unknown side {side!r}")

    def with_changes(self, **kwargs) -> "HexState":
        """Functional update (``dataclasses.replace`` wrapper)."""
        return replace(self, **kwargs)

    def departing(self, side: Side) -> float:
        """Total strength of ``side`` currently marching out."""
        return sum(d.strength for d in self.departures if d.side == side)

    @staticmethod
    def total_strengths(states: Iterable["HexState"]) -> tuple[float, float]:
        """(red, blue) totals over a collection of hexes, including units
        on the march (conservation checks in the tests rely on this)."""
        red = blue = 0.0
        for s in states:
            red += s.red + s.departing(RED)
            blue += s.blue + s.departing(BLUE)
        return red, blue
