"""Battlefield scenarios: terrain plus initial deployments.

Section 5.3 runs a 32x32-hex battlefield.  [DMP98]'s simulations oppose two
forces across the terrain; the canonical scenario here deploys red along
the western columns and blue along the eastern ones, so the advancing
fronts collide mid-map and combat zones "form dynamically" -- the load
characteristic that makes the application a load-balancing study target.
"""

from __future__ import annotations

from dataclasses import dataclass

from ...graphs.hexgrid import HexGrid
from .state import HexState

__all__ = [
    "Scenario",
    "opposing_fronts",
    "meeting_engagement",
    "single_combat_zone",
    "general_engagement",
]


@dataclass(frozen=True)
class Scenario:
    """A terrain grid and the initial state of every hex.

    Attributes:
        name: Scenario label for tables.
        grid: The hex terrain.
        initial: ``gid -> HexState`` at step 0.
    """

    name: str
    grid: HexGrid
    initial: dict[int, HexState]

    def init_value(self, gid: int) -> HexState:
        """Platform plug-in: initial node value for hex ``gid``."""
        return self.initial[gid]

    def total_strengths(self) -> tuple[float, float]:
        """Deployed (red, blue) totals."""
        return HexState.total_strengths(self.initial.values())


def _empty_states(grid: HexGrid) -> dict[int, HexState]:
    return {gid: HexState(gid=gid) for gid in range(1, grid.num_cells + 1)}


def opposing_fronts(
    grid: HexGrid | None = None,
    depth: int = 8,
    strength_per_hex: float = 8.0,
) -> Scenario:
    """Red deployed in the western ``depth`` columns, blue in the eastern.

    Args:
        grid: Terrain (default the paper's 32x32).
        depth: Deployment depth in columns per side.
        strength_per_hex: Initial strength in each deployed hex.
    """
    grid = grid or HexGrid(32, 32)
    if 2 * depth > grid.cols:
        raise ValueError(f"deployment depth {depth} overlaps on {grid.cols} columns")
    states = _empty_states(grid)
    for row in range(grid.rows):
        for col in range(grid.cols):
            gid = grid.gid(row, col)
            if col < depth:
                states[gid] = HexState(gid=gid, red=strength_per_hex)
            elif col >= grid.cols - depth:
                states[gid] = HexState(gid=gid, blue=strength_per_hex)
    return Scenario("opposing-fronts", grid, states)


def general_engagement(
    grid: HexGrid | None = None,
    strength_per_hex: float = 7.5,
) -> Scenario:
    """Interleaved deployment: red on even columns, blue on odd columns.

    The entire force is in contact from step one, producing the intense
    early attrition (and the falling per-step compute cost) that the
    paper's Tables 7-11 sequential column exhibits -- per-step runtime
    drops ~40 % once the opening exchanges burn down the forces.  This is
    the canonical scenario for the battlefield benchmarks.
    """
    grid = grid or HexGrid(32, 32)
    states = _empty_states(grid)
    for row in range(grid.rows):
        for col in range(grid.cols):
            gid = grid.gid(row, col)
            if col % 2 == 0:
                states[gid] = HexState(gid=gid, red=strength_per_hex)
            else:
                states[gid] = HexState(gid=gid, blue=strength_per_hex)
    return Scenario("general-engagement", grid, states)


def meeting_engagement(
    grid: HexGrid | None = None,
    gap: int = 4,
    strength_per_hex: float = 10.0,
) -> Scenario:
    """Both forces already deployed near the centre, ``gap`` columns apart.

    Combat starts almost immediately -- a stress case for the dynamic load
    balancer because the hot zone exists from step one.
    """
    grid = grid or HexGrid(32, 32)
    mid = grid.cols // 2
    red_col = max(0, mid - 1 - gap // 2)
    blue_col = min(grid.cols - 1, mid + gap // 2)
    states = _empty_states(grid)
    for row in range(grid.rows):
        states[grid.gid(row, red_col)] = HexState(
            gid=grid.gid(row, red_col), red=strength_per_hex
        )
        states[grid.gid(row, blue_col)] = HexState(
            gid=grid.gid(row, blue_col), blue=strength_per_hex
        )
    return Scenario("meeting-engagement", grid, states)


def single_combat_zone(
    grid: HexGrid | None = None,
    zone_rows: int = 8,
    strength_per_hex: float = 12.0,
) -> Scenario:
    """Both sides stacked into a small corner zone; the rest of the map is
    empty.  Maximum spatial load concentration from step one -- the
    pathological case for any static partition."""
    grid = grid or HexGrid(32, 32)
    zone_rows = min(zone_rows, grid.rows)
    states = _empty_states(grid)
    for row in range(zone_rows):
        for col in range(0, min(4, grid.cols)):
            gid = grid.gid(row, col)
            states[gid] = HexState(gid=gid, red=strength_per_hex)
        for col in range(min(4, grid.cols), min(8, grid.cols)):
            gid = grid.gid(row, col)
            states[gid] = HexState(gid=gid, blue=strength_per_hex)
    return Scenario("single-combat-zone", grid, states)
