"""Combat resolution: targeting and attrition.

Each unit engages every enemy-held hex it can see -- its own hex at full
intensity and the six neighbouring hexes at reduced intensity ([DMP98]'s
per-direction targeting, Figure 2's ``target``/``destroyed`` bookkeeping).
Attrition follows a Lanchester-style square law: the damage a hex's
defenders take is proportional to the firepower aimed at them.

Crucially, the damage a hex receives depends only on its own state and its
immediate neighbours' states, so every hex can resolve its own losses from
the platform's one-hop view -- no two-hop information is ever needed.
"""

from __future__ import annotations

from typing import Sequence

from .state import HexState

__all__ = ["CombatModel"]


class CombatModel:
    """Attrition parameters and the incoming-fire computation.

    Attributes:
        kill_rate: Fraction of aimed firepower converted to destroyed
            assets per step.
        adjacent_intensity: Fire intensity into neighbouring hexes relative
            to the unit's own hex (range attenuation).
    """

    def __init__(self, kill_rate: float = 0.04, adjacent_intensity: float = 0.5) -> None:
        if not 0.0 <= kill_rate <= 1.0:
            raise ValueError(f"kill_rate must be in [0, 1], got {kill_rate}")
        if not 0.0 <= adjacent_intensity <= 1.0:
            raise ValueError(
                f"adjacent_intensity must be in [0, 1], got {adjacent_intensity}"
            )
        self.kill_rate = kill_rate
        self.adjacent_intensity = adjacent_intensity

    def incoming_fire(
        self, own: HexState, neighbors: Sequence[HexState]
    ) -> tuple[float, float]:
        """Firepower aimed at ``own`` this step.

        Returns ``(fire_at_red, fire_at_blue)``: blue strength in and around
        the hex shoots at red defenders and vice versa.  Fire only counts
        when there is something to shoot at (units do not waste fire on
        empty hexes).
        """
        fire_at_red = 0.0
        fire_at_blue = 0.0
        if own.red > 0:
            fire_at_red = own.blue + self.adjacent_intensity * sum(
                s.blue for s in neighbors
            )
        if own.blue > 0:
            fire_at_blue = own.red + self.adjacent_intensity * sum(
                s.red for s in neighbors
            )
        return fire_at_red, fire_at_blue

    def resolve(
        self, own: HexState, neighbors: Sequence[HexState]
    ) -> tuple[float, float, float, float]:
        """Apply one step of attrition to ``own``.

        Returns ``(new_red, new_blue, red_losses, blue_losses)``; losses
        are capped at the strength present.
        """
        fire_at_red, fire_at_blue = self.incoming_fire(own, neighbors)
        red_losses = min(own.red, self.kill_rate * fire_at_red)
        blue_losses = min(own.blue, self.kill_rate * fire_at_blue)
        return own.red - red_losses, own.blue - blue_losses, red_losses, blue_losses

    def threat(self, own: HexState, neighbors: Sequence[HexState]) -> tuple[float, float]:
        """Visible enemy strength per side: ``(threat_to_red, threat_to_blue)``.

        Used by the movement rules to decide advance vs hold.
        """
        blue_visible = own.blue + sum(s.blue for s in neighbors)
        red_visible = own.red + sum(s.red for s in neighbors)
        return blue_visible, red_visible
