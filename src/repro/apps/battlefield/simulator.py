"""The battlefield simulator as an iC2mpi plug-in.

Each simulation step is two compute/communicate rounds ("the computation
and communication function sequence is called more than once, rather than
just once" -- section 2.2):

1. **combat round** -- every hex resolves the fire aimed at it, applies
   attrition, and decides its departures (units marching out);
2. **movement round** -- every hex removes nothing further (departures left
   in round 1 already excluded the marchers) and absorbs the arrivals its
   neighbours dispatched toward it.

The per-hex compute grain scales with the strength present, so combat zones
are computationally hot -- the "load dynamically changes with both time and
space" property the thesis cites as the reason battlefield simulation is an
interesting load-balancing subject.

A sequential reference implementation (:func:`simulate_sequential`) computes
the same evolution without the platform; tests assert that platform runs on
any processor count produce bit-identical states.
"""

from __future__ import annotations

from dataclasses import dataclass

from ...core.compute import ComputeContext, NodeFn, NodeView
from ...core.config import PlatformConfig
from .combat import CombatModel
from .movement import MovementModel
from .scenario import Scenario
from .state import BLUE, RED, HexState

__all__ = ["BattlefieldCosts", "BattlefieldApp", "simulate_sequential"]


@dataclass(frozen=True)
class BattlefieldCosts:
    """Virtual compute-grain constants per hex per round.

    Calibrated so a 32x32 battlefield runs ~0.09 s per step on one
    processor, matching Tables 7-11's sequential column.

    Attributes:
        combat_base: Fixed combat-round cost per hex.
        combat_per_strength: Additional combat cost per unit of strength
            present (targeting + attrition bookkeeping per unit).
        move_base: Fixed movement-round cost per hex.
        move_per_arrival: Cost per absorbed arrival record.
    """

    combat_base: float = 15e-6
    combat_per_strength: float = 9e-6
    move_base: float = 8e-6
    move_per_arrival: float = 4e-6


class BattlefieldApp:
    """Bundles the scenario, doctrine models, and the two node functions.

    Plug into the platform with::

        app = BattlefieldApp(opposing_fronts())
        platform = ICPlatform(
            app.graph(), app.node_fns(), init_value=app.init_value,
            config=app.platform_config(steps=25),
        )

    Args:
        scenario: Terrain + initial deployments.
        combat: Attrition model (default parameters give a multi-day fight
            on the canonical scenario rather than mutual annihilation).
        movement: Movement doctrine.
        costs: Compute-grain constants.
    """

    def __init__(
        self,
        scenario: Scenario,
        combat: CombatModel | None = None,
        movement: MovementModel | None = None,
        costs: BattlefieldCosts | None = None,
    ) -> None:
        self.scenario = scenario
        self.combat = combat or CombatModel()
        self.movement = movement or MovementModel()
        self.costs = costs or BattlefieldCosts()
        self._column_of = lambda gid: (gid - 1) % scenario.grid.cols

    # ------------------------------------------------------------------ #
    # Platform plug-ins
    # ------------------------------------------------------------------ #

    def graph(self):
        """The application program graph (the hex terrain)."""
        return self.scenario.grid.to_graph(name=f"battlefield-{self.scenario.name}")

    def init_value(self, gid: int) -> HexState:
        """Initial hex state plug-in."""
        return self.scenario.init_value(gid)

    def node_fns(self) -> tuple[NodeFn, NodeFn]:
        """The (combat, movement) node-function pair."""
        return (self.combat_round, self.movement_round)

    def platform_config(self, steps: int, **overrides) -> PlatformConfig:
        """A PlatformConfig with two communication rounds per step.

        The battlefield deployment uses the array-backed hex structures of
        Figures 2/3 rather than the generic global data node *list*, so the
        linear-scan overhead charged for the generic topologies does not
        apply: the scan cost constants are zeroed here (Tables 7-11's
        sequential runtimes confirm per-hex overheads far below an O(n)
        scan on 1024 hexes).
        """
        costs = PlatformConfig().costs.with_overrides(
            data_scan_item_cost=0.0, unpack_scan_item_cost=0.25e-6
        )
        overrides.setdefault("costs", costs)
        return PlatformConfig(iterations=steps, comm_rounds=2, **overrides)

    # ------------------------------------------------------------------ #
    # Round 1: combat + departure decisions
    # ------------------------------------------------------------------ #

    def combat_round(self, node: NodeView, ctx: ComputeContext) -> HexState:
        state: HexState = node.value
        neighbors: list[HexState] = node.neighbor_values()
        ctx.work(self.costs.combat_base + self.costs.combat_per_strength * state.total)

        red, blue, red_losses, blue_losses = self.combat.resolve(state, neighbors)
        departures = []
        departures += self.movement.departures_for_side(
            RED, state.gid, red, blue, neighbors, self._column_of
        )
        departures += self.movement.departures_for_side(
            BLUE, state.gid, blue, red, neighbors, self._column_of
        )
        red -= sum(d.strength for d in departures if d.side == RED)
        blue -= sum(d.strength for d in departures if d.side == BLUE)
        return state.with_changes(
            red=max(0.0, red),
            blue=max(0.0, blue),
            departures=tuple(departures),
            destroyed_red=state.destroyed_red + red_losses,
            destroyed_blue=state.destroyed_blue + blue_losses,
        )

    # ------------------------------------------------------------------ #
    # Round 2: absorb arrivals
    # ------------------------------------------------------------------ #

    def movement_round(self, node: NodeView, ctx: ComputeContext) -> HexState:
        state: HexState = node.value
        arrivals_red = 0.0
        arrivals_blue = 0.0
        count = 0
        for _, neighbor in node.neighbors:
            for dep in neighbor.departures:
                if dep.target_gid != state.gid:
                    continue
                count += 1
                if dep.side == RED:
                    arrivals_red += dep.strength
                else:
                    arrivals_blue += dep.strength
        ctx.work(self.costs.move_base + self.costs.move_per_arrival * count)
        return state.with_changes(
            red=state.red + arrivals_red,
            blue=state.blue + arrivals_blue,
            departures=(),
            step=state.step + 1,
        )


def simulate_sequential(app: BattlefieldApp, steps: int) -> dict[int, HexState]:
    """Reference implementation: the same evolution without the platform.

    Runs the combat and movement rounds with global synchronous state,
    returning ``gid -> HexState`` after ``steps`` steps.  Platform runs on
    any processor count must produce identical states (tested).
    """
    grid = app.scenario.grid
    graph = app.graph()

    class _NullCtx:
        """Cost-free context for the reference run."""

        num_nodes = grid.num_cells
        iteration = 0
        round = 0

        @staticmethod
        def work(seconds: float) -> None:
            return None

    ctx = _NullCtx()
    states = dict(app.scenario.initial)
    for step in range(steps):
        for round_fn in (app.combat_round, app.movement_round):
            new_states = {}
            for gid in range(1, grid.num_cells + 1):
                view = NodeView(
                    global_id=gid,
                    value=states[gid],
                    neighbors=tuple((v, states[v]) for v in graph.neighbors(gid)),
                    iteration=step + 1,
                )
                new_states[gid] = round_fn(view, ctx)  # type: ignore[arg-type]
            states = new_states
    return states
