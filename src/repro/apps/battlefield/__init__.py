"""Battlefield management simulation (the existing application of §2.2/§5.3)."""

from .arms import (
    ARMS,
    ArmsHexState,
    CombinedArmsApp,
    CombinedArmsModel,
    ForceMix,
    opposing_arms_fronts,
    simulate_arms_sequential,
)
from .combat import CombatModel
from .movement import MovementModel
from .scenario import (
    Scenario,
    general_engagement,
    meeting_engagement,
    opposing_fronts,
    single_combat_zone,
)
from .render import combat_report, front_line, render_map
from .simulator import BattlefieldApp, BattlefieldCosts, simulate_sequential
from .state import BLUE, RED, Departure, HexState

__all__ = [
    "ARMS",
    "ArmsHexState",
    "BLUE",
    "BattlefieldApp",
    "CombinedArmsApp",
    "CombinedArmsModel",
    "ForceMix",
    "opposing_arms_fronts",
    "simulate_arms_sequential",
    "BattlefieldCosts",
    "CombatModel",
    "Departure",
    "HexState",
    "MovementModel",
    "RED",
    "Scenario",
    "combat_report",
    "front_line",
    "general_engagement",
    "meeting_engagement",
    "render_map",
    "opposing_fronts",
    "simulate_sequential",
    "single_combat_zone",
]
