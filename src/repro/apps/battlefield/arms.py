"""Combined-arms battlefield variant: typed unit mixes per hex.

Figure 2's ``hex_struct`` stores individual units with per-unit target
lists; the aggregate model in :mod:`.simulator` collapses that to one
strength number per side.  This module restores the typed structure at the
arm level: each side fields **armor**, **infantry**, and **artillery**, with
a rock-paper-scissors effectiveness matrix and arm-specific mobility.

The update remains strictly one-hop (each hex resolves the fire aimed at
it from its own and neighbouring hexes' published mixes), so the variant
drops into the platform unchanged -- including the two-round step and the
sequential reference used for equivalence tests.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Mapping, Sequence

from ...core.compute import ComputeContext, NodeFn, NodeView
from ...core.config import PlatformConfig
from ...graphs.hexgrid import HexGrid
from .state import BLUE, RED, Side

__all__ = ["ARMS", "ForceMix", "ArmsHexState", "CombinedArmsModel", "CombinedArmsApp",
           "opposing_arms_fronts", "simulate_arms_sequential"]

#: The three arms of service.
ARMS = ("armor", "infantry", "artillery")

#: effectiveness[attacker_arm][defender_arm] -- the rock-paper-scissors:
#: armor overruns artillery, artillery shreds infantry, infantry (with
#: anti-tank weapons) ambushes armor.
EFFECTIVENESS: Mapping[str, Mapping[str, float]] = {
    "armor": {"armor": 1.0, "infantry": 1.2, "artillery": 2.0},
    "infantry": {"armor": 1.5, "infantry": 1.0, "artillery": 0.8},
    "artillery": {"armor": 0.8, "infantry": 2.0, "artillery": 1.0},
}

#: Fraction of an arm's strength that marches per movement order.
MOBILITY: Mapping[str, float] = {"armor": 0.7, "infantry": 0.4, "artillery": 0.25}


@dataclass(frozen=True)
class ForceMix:
    """Typed strength of one side in one hex."""

    armor: float = 0.0
    infantry: float = 0.0
    artillery: float = 0.0

    def __post_init__(self) -> None:
        for arm in ARMS:
            if getattr(self, arm) < 0:
                raise ValueError(f"{arm} strength must be >= 0")

    @property
    def total(self) -> float:
        """Combined strength across arms."""
        return self.armor + self.infantry + self.artillery

    def arm(self, name: str) -> float:
        """Strength of one arm."""
        if name not in ARMS:
            raise KeyError(f"unknown arm {name!r}")
        return getattr(self, name)

    def scaled(self, factor: float) -> "ForceMix":
        """Every arm multiplied by ``factor``."""
        return ForceMix(*(getattr(self, arm) * factor for arm in ARMS))

    def plus(self, other: "ForceMix") -> "ForceMix":
        """Element-wise sum."""
        return ForceMix(*(getattr(self, a) + getattr(other, a) for a in ARMS))

    def minus_clamped(self, other: "ForceMix") -> "ForceMix":
        """Element-wise difference, clamped at zero."""
        return ForceMix(*(max(0.0, getattr(self, a) - getattr(other, a)) for a in ARMS))

    def firepower_against(self, target: "ForceMix", intensity: float = 1.0) -> "ForceMix":
        """Damage mix this force aims at ``target``.

        Fire of each attacking arm is split across the target's arms in
        proportion to their presence, weighted by the effectiveness matrix.
        """
        if target.total <= 0:
            return ForceMix()
        damage = {arm: 0.0 for arm in ARMS}
        for attacker in ARMS:
            strength = getattr(self, attacker) * intensity
            if strength <= 0:
                continue
            weights = {
                defender: EFFECTIVENESS[attacker][defender] * getattr(target, defender)
                for defender in ARMS
            }
            weight_sum = sum(weights.values())
            if weight_sum <= 0:
                continue
            for defender in ARMS:
                damage[defender] += strength * weights[defender] / weight_sum
        return ForceMix(**damage)


@dataclass(frozen=True)
class ArmsHexState:
    """Immutable combined-arms state of one hex.

    Attributes:
        gid: Global hex ID.
        red: Red force mix present.
        blue: Blue force mix present.
        red_out: Red units marching out, keyed by destination gid.
        blue_out: Blue units marching out.
        step: Simulation step.
    """

    gid: int
    red: ForceMix = ForceMix()
    blue: ForceMix = ForceMix()
    red_out: tuple[tuple[int, ForceMix], ...] = ()
    blue_out: tuple[tuple[int, ForceMix], ...] = ()
    step: int = 0

    @property
    def nbytes(self) -> int:
        """Wire-size model (fat typed records, like the original structs)."""
        return 1600

    def side(self, side: Side) -> ForceMix:
        """The mix of ``side``."""
        return self.red if side == RED else self.blue

    @property
    def contested(self) -> bool:
        return self.red.total > 0 and self.blue.total > 0

    @staticmethod
    def totals(states) -> tuple[float, float]:
        """(red, blue) strength including units on the march."""
        red = blue = 0.0
        for s in states:
            red += s.red.total + sum(m.total for _, m in s.red_out)
            blue += s.blue.total + sum(m.total for _, m in s.blue_out)
        return red, blue


class CombinedArmsModel:
    """Combat + movement doctrine for typed mixes.

    Args:
        kill_rate: Fraction of aimed firepower converted to losses per step.
        adjacent_intensity: Range attenuation into neighbouring hexes
            (artillery ignores it -- indirect fire reaches neighbours at
            full intensity).
        advance_threshold: March toward the objective only while the local
            force exceeds this.
    """

    def __init__(
        self,
        kill_rate: float = 0.04,
        adjacent_intensity: float = 0.4,
        advance_threshold: float = 0.25,
    ) -> None:
        if not 0.0 <= kill_rate <= 1.0:
            raise ValueError(f"kill_rate must be in [0, 1], got {kill_rate}")
        self.kill_rate = kill_rate
        self.adjacent_intensity = adjacent_intensity
        self.advance_threshold = advance_threshold

    # ------------------------------------------------------------------ #

    def _fire_from(self, shooter: ForceMix, target: ForceMix, intensity: float) -> ForceMix:
        """Damage one source's mix aims at a target at the given intensity.

        Artillery is indirect fire: it always engages at full intensity, so
        its contribution is computed separately from the direct-fire arms.
        """
        direct = replace(shooter, artillery=0.0)
        arty = ForceMix(artillery=shooter.artillery)
        return direct.firepower_against(target, intensity).plus(
            arty.firepower_against(target, 1.0)
        )

    def incoming(
        self, own: ArmsHexState, neighbors: Sequence[ArmsHexState]
    ) -> tuple[ForceMix, ForceMix]:
        """(damage to red, damage to blue) aimed at ``own`` this step."""
        damage_red = ForceMix()
        damage_blue = ForceMix()
        sources = [(own, 1.0)] + [(s, self.adjacent_intensity) for s in neighbors]
        for source, intensity in sources:
            if own.red.total > 0 and source.blue.total > 0:
                damage_red = damage_red.plus(
                    self._fire_from(source.blue, own.red, intensity)
                )
            if own.blue.total > 0 and source.red.total > 0:
                damage_blue = damage_blue.plus(
                    self._fire_from(source.red, own.blue, intensity)
                )
        return damage_red.scaled(self.kill_rate), damage_blue.scaled(self.kill_rate)


class CombinedArmsApp:
    """Platform plug-in bundle for the combined-arms battlefield.

    Args:
        scenario_states: ``gid -> ArmsHexState`` at step 0.
        grid: The terrain.
        model: Doctrine parameters.
        combat_base: Fixed combat-round grain per hex (seconds).
        per_strength: Grain per unit of strength present.
    """

    def __init__(
        self,
        scenario_states: dict[int, ArmsHexState],
        grid: HexGrid,
        model: CombinedArmsModel | None = None,
        combat_base: float = 20e-6,
        per_strength: float = 10e-6,
    ) -> None:
        self.initial = scenario_states
        self.grid = grid
        self.model = model or CombinedArmsModel()
        self.combat_base = combat_base
        self.per_strength = per_strength
        self._cols = grid.cols

    def graph(self):
        """The terrain as an application graph."""
        return self.grid.to_graph(name="battlefield-arms")

    def init_value(self, gid: int) -> ArmsHexState:
        return self.initial[gid]

    def node_fns(self) -> tuple[NodeFn, NodeFn]:
        return (self.combat_round, self.movement_round)

    def platform_config(self, steps: int, **overrides) -> PlatformConfig:
        costs = PlatformConfig().costs.with_overrides(
            data_scan_item_cost=0.0, unpack_scan_item_cost=0.25e-6
        )
        overrides.setdefault("costs", costs)
        return PlatformConfig(iterations=steps, comm_rounds=2, **overrides)

    # ------------------------------------------------------------------ #

    def combat_round(self, node: NodeView, ctx: ComputeContext) -> ArmsHexState:
        state: ArmsHexState = node.value
        neighbors: list[ArmsHexState] = node.neighbor_values()
        ctx.work(self.combat_base + self.per_strength * (state.red.total + state.blue.total))

        damage_red, damage_blue = self.model.incoming(state, neighbors)
        red = state.red.minus_clamped(damage_red)
        blue = state.blue.minus_clamped(damage_blue)

        red_out = self._march(RED, state.gid, red, blue, neighbors)
        blue_out = self._march(BLUE, state.gid, blue, red, neighbors)
        for _, mix in red_out:
            red = red.minus_clamped(mix)
        for _, mix in blue_out:
            blue = blue.minus_clamped(mix)
        return replace(
            state, red=red, blue=blue, red_out=tuple(red_out), blue_out=tuple(blue_out)
        )

    def movement_round(self, node: NodeView, ctx: ComputeContext) -> ArmsHexState:
        state: ArmsHexState = node.value
        arrivals_red = ForceMix()
        arrivals_blue = ForceMix()
        count = 0
        for _, neighbor in node.neighbors:
            for target, mix in neighbor.red_out:
                if target == state.gid:
                    arrivals_red = arrivals_red.plus(mix)
                    count += 1
            for target, mix in neighbor.blue_out:
                if target == state.gid:
                    arrivals_blue = arrivals_blue.plus(mix)
                    count += 1
        ctx.work(self.combat_base / 2 + 3e-6 * count)
        return replace(
            state,
            red=state.red.plus(arrivals_red),
            blue=state.blue.plus(arrivals_blue),
            red_out=(),
            blue_out=(),
            step=state.step + 1,
        )

    def _march(
        self,
        side: Side,
        gid: int,
        own: ForceMix,
        enemy_here: ForceMix,
        neighbors: Sequence[ArmsHexState],
    ) -> list[tuple[int, ForceMix]]:
        """Movement orders: engage the strongest visible enemy, else advance
        on the objective; each arm marches at its own mobility."""
        if own.total <= self.advance_min or not neighbors:
            return []
        if enemy_here.total > 0:
            return []  # stand and fight
        enemy_side = BLUE if side == RED else RED
        hostile = [s for s in neighbors if s.side(enemy_side).total > 0]
        if hostile:
            dest = max(hostile, key=lambda s: (s.side(enemy_side).total, -s.gid))
        else:
            col = (gid - 1) % self._cols
            if side == RED:
                dest = max(neighbors, key=lambda s: ((s.gid - 1) % self._cols, -s.gid))
                if (dest.gid - 1) % self._cols <= col:
                    return []
            else:
                dest = min(neighbors, key=lambda s: ((s.gid - 1) % self._cols, s.gid))
                if (dest.gid - 1) % self._cols >= col:
                    return []
        moving = ForceMix(
            *(getattr(own, arm) * MOBILITY[arm] for arm in ARMS)
        )
        if moving.total <= self.advance_min:
            return []
        return [(dest.gid, moving)]

    @property
    def advance_min(self) -> float:
        return self.model.advance_threshold


def opposing_arms_fronts(
    grid: HexGrid | None = None,
    depth: int = 6,
    armor: float = 3.0,
    infantry: float = 4.0,
    artillery: float = 2.0,
) -> tuple[dict[int, ArmsHexState], HexGrid]:
    """Red combined-arms force west, blue east (mirror deployments)."""
    grid = grid or HexGrid(16, 16)
    if 2 * depth > grid.cols:
        raise ValueError(f"deployment depth {depth} overlaps on {grid.cols} columns")
    mix = ForceMix(armor=armor, infantry=infantry, artillery=artillery)
    states = {}
    for row in range(grid.rows):
        for col in range(grid.cols):
            gid = grid.gid(row, col)
            if col < depth:
                states[gid] = ArmsHexState(gid=gid, red=mix)
            elif col >= grid.cols - depth:
                states[gid] = ArmsHexState(gid=gid, blue=mix)
            else:
                states[gid] = ArmsHexState(gid=gid)
    return states, grid


def simulate_arms_sequential(app: CombinedArmsApp, steps: int) -> dict[int, ArmsHexState]:
    """Sequential reference, mirroring :func:`..simulator.simulate_sequential`."""
    graph = app.graph()

    class _NullCtx:
        num_nodes = graph.num_nodes
        iteration = 0
        round = 0

        @staticmethod
        def work(seconds: float) -> None:
            return None

    ctx = _NullCtx()
    states = dict(app.initial)
    for step in range(steps):
        for round_fn in (app.combat_round, app.movement_round):
            new_states = {}
            for gid in graph.nodes():
                view = NodeView(
                    global_id=gid,
                    value=states[gid],
                    neighbors=tuple((v, states[v]) for v in graph.neighbors(gid)),
                    iteration=step + 1,
                )
                new_states[gid] = round_fn(view, ctx)  # type: ignore[arg-type]
            states = new_states
    return states
