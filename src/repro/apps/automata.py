"""Cellular automata on the platform.

The introduction cites cellular automata [CCE01] as a member of the
iterative graph-structured class; this module deploys two of them as
platform plug-ins:

* **Game of Life** on a 4-neighbour... no -- on its proper 8-neighbour
  Moore grid (built here as a graph, demonstrating that the platform is
  agnostic to where the adjacency comes from), and
* a **majority-vote** automaton usable on *any* application graph (hex
  grids included), whose convergence to stable domains is a handy test
  invariant.

Both are pure functions of the one-hop view, so they drop straight into
the platform's node-function slot.
"""

from __future__ import annotations

from ..core.compute import ComputeContext, NodeFn, NodeView
from ..graphs.graph import Graph

__all__ = [
    "moore_grid",
    "make_life_fn",
    "life_step_reference",
    "make_majority_fn",
    "glider_board",
]

#: Default virtual compute grain per cell update.
CELL_GRAIN = 20e-6


def moore_grid(rows: int, cols: int) -> Graph:
    """A rows x cols grid with 8-neighbour (Moore) adjacency, 1-based
    row-major IDs -- the Game of Life's home turf."""
    if rows < 1 or cols < 1:
        raise ValueError("grid must be at least 1x1")
    edges = []

    def gid(r: int, c: int) -> int:
        return r * cols + c + 1

    for r in range(rows):
        for c in range(cols):
            for dr, dc in ((0, 1), (1, -1), (1, 0), (1, 1)):
                nr, nc = r + dr, c + dc
                if 0 <= nr < rows and 0 <= nc < cols:
                    edges.append((gid(r, c), gid(nr, nc)))
    return Graph.from_edges(rows * cols, edges, name=f"moore{rows}x{cols}")


def make_life_fn(grain: float = CELL_GRAIN) -> NodeFn:
    """Conway's Game of Life as an application node function.

    Cell values are 0/1.  B3/S23: a dead cell with exactly three live
    Moore neighbours is born; a live cell with two or three survives.
    """

    def life_fn(node: NodeView, ctx: ComputeContext) -> int:
        ctx.work(grain)
        live = sum(node.neighbor_values())
        if node.value:
            return 1 if live in (2, 3) else 0
        return 1 if live == 3 else 0

    return life_fn


def life_step_reference(graph: Graph, cells: dict[int, int]) -> dict[int, int]:
    """Synchronous reference step (for equivalence tests)."""
    out = {}
    for gid in graph.nodes():
        live = sum(cells[v] for v in graph.neighbors(gid))
        if cells[gid]:
            out[gid] = 1 if live in (2, 3) else 0
        else:
            out[gid] = 1 if live == 3 else 0
    return out


def glider_board(rows: int = 16, cols: int = 16) -> dict[int, int]:
    """A single glider in the top-left corner of a Moore grid."""
    def gid(r: int, c: int) -> int:
        return r * cols + c + 1

    cells = {g: 0 for g in range(1, rows * cols + 1)}
    for r, c in ((0, 1), (1, 2), (2, 0), (2, 1), (2, 2)):
        cells[gid(r, c)] = 1
    return cells


def make_majority_fn(grain: float = CELL_GRAIN) -> NodeFn:
    """Majority-vote automaton: adopt the majority state of self +
    neighbours (ties keep the current state).  Works on any graph."""

    def majority_fn(node: NodeView, ctx: ComputeContext) -> int:
        ctx.work(grain)
        votes = [node.value, *node.neighbor_values()]
        ones = sum(votes)
        zeros = len(votes) - ones
        if ones > zeros:
            return 1
        if zeros > ones:
            return 0
        return node.value

    return majority_fn
