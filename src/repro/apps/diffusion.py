"""Jacobi diffusion / difference-equation workloads.

The introduction motivates the platform with "mesh-structured computations,
such as difference equations [Q04]".  This module provides a weighted
Jacobi relaxation of the discrete Laplace/heat equation as a platform
plug-in, with Dirichlet boundary nodes held fixed -- plus the sequential
reference and a residual metric so convergence is testable.
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

from ..core.compute import ComputeContext, NodeFn, NodeView
from ..core.soastore import BulkView
from ..graphs.graph import Graph

__all__ = [
    "make_jacobi_fn",
    "jacobi_step_reference",
    "residual",
    "hot_edge_plate",
]

#: Default virtual compute grain per node update.
NODE_GRAIN = 25e-6


def make_jacobi_fn(
    boundary: Mapping[int, float],
    omega: float = 1.0,
    grain: float = NODE_GRAIN,
    quantize: int | None = None,
) -> NodeFn:
    """Weighted-Jacobi node function for the graph Laplace equation.

    Interior nodes relax toward the mean of their neighbours:
    ``x' = (1 - omega) * x + omega * mean(neighbours)``; nodes listed in
    ``boundary`` are Dirichlet-pinned to their given values.

    Args:
        boundary: ``gid -> fixed value`` for boundary nodes.
        omega: Relaxation weight in (0, 1]; 1.0 is plain Jacobi.
        grain: Virtual compute seconds charged per update.
        quantize: Round every update to this many decimal places.  Floats
            asymptote toward the fixed point without ever exactly reaching
            it; quantizing makes the iteration genuinely stationary, so
            change-driven execution (``activation="sparse"``) sees the
            frontier collapse and quiescence termination can fire.
    """
    if not 0.0 < omega <= 1.0:
        raise ValueError(f"omega must be in (0, 1], got {omega}")

    def jacobi_fn(node: NodeView, ctx: ComputeContext) -> float:
        ctx.work(grain)
        pinned = boundary.get(node.global_id)
        if pinned is not None:
            return pinned
        values = node.neighbor_values()
        if not values:
            return node.value
        mean = sum(values) / len(values)
        result = (1.0 - omega) * node.value + omega * mean
        if quantize is not None:
            result = round(result, quantize)
        return result

    def jacobi_bulk(view: BulkView) -> np.ndarray:
        masks = view.cache.get("jacobi")
        if masks is None or masks[0] is not view.gids:
            gids = view.gids.tolist()
            pin_mask = np.fromiter(
                (gid in boundary for gid in gids), dtype=bool, count=len(gids)
            )
            pin_values = np.asarray(
                [boundary.get(gid, 0.0) for gid in gids], dtype=np.float64
            )
            masks = view.cache["jacobi"] = (view.gids, pin_mask, pin_values)
        _, pin_mask, pin_values = masks
        degrees = view.degrees
        safe_degrees = np.where(degrees > 0, degrees, 1)
        mean = view.sum_neighbors() / safe_degrees
        out = (1.0 - omega) * view.values + omega * mean
        if quantize is not None:
            # numpy's round (scale + half-even) is not Python's
            # correctly-rounded ``round(float, ndigits)``; quantization must
            # match the scalar path bit-for-bit, so round per element.
            out = np.asarray(
                [round(value, quantize) for value in out.tolist()], dtype=out.dtype
            )
        # Isolated and pinned nodes bypass the relaxation (and the
        # quantization -- the scalar path returns before rounding).
        isolated = degrees == 0
        if isolated.any():
            out[isolated] = view.values[isolated]
        if pin_mask.any():
            out[pin_mask] = pin_values[pin_mask]
        return out

    jacobi_bulk.node_grain = grain
    jacobi_fn.bulk = jacobi_bulk
    return jacobi_fn


def jacobi_step_reference(
    graph: Graph,
    values: Mapping[int, float],
    boundary: Mapping[int, float],
    omega: float = 1.0,
) -> dict[int, float]:
    """One synchronous Jacobi step (reference implementation)."""
    out: dict[int, float] = {}
    for gid in graph.nodes():
        pinned = boundary.get(gid)
        if pinned is not None:
            out[gid] = pinned
            continue
        nbrs = graph.neighbors(gid)
        if not nbrs:
            out[gid] = values[gid]
            continue
        mean = sum(values[v] for v in nbrs) / len(nbrs)
        out[gid] = (1.0 - omega) * values[gid] + omega * mean
    return out


def residual(graph: Graph, values: Mapping[int, float], boundary: Mapping[int, float]) -> float:
    """Max |x - mean(neighbours)| over interior nodes (0 at the fixed point)."""
    worst = 0.0
    for gid in graph.nodes():
        if gid in boundary:
            continue
        nbrs = graph.neighbors(gid)
        if not nbrs:
            continue
        mean = sum(values[v] for v in nbrs) / len(nbrs)
        worst = max(worst, abs(values[gid] - mean))
    return worst


def hot_edge_plate(rows: int, cols: int, hot: float = 100.0, cold: float = 0.0):
    """A classic test problem on a rows x cols 4-neighbour plate.

    The top edge is held at ``hot``, the other three edges at ``cold``.

    Returns:
        ``(graph, boundary, init_value)`` ready for the platform:
        ``ICPlatform(graph, make_jacobi_fn(boundary), init_value=init_value)``.
    """
    from ..graphs.generators import grid2d

    graph = grid2d(rows, cols, name=f"plate{rows}x{cols}")

    def gid(r: int, c: int) -> int:
        return r * cols + c + 1

    boundary: dict[int, float] = {}
    for c in range(cols):
        boundary[gid(0, c)] = hot
        boundary[gid(rows - 1, c)] = cold
    for r in range(rows):
        boundary[gid(r, 0)] = cold
        boundary[gid(r, cols - 1)] = cold

    def init_value(node_gid: int) -> float:
        return boundary.get(node_gid, (hot + cold) / 2)

    return graph, boundary, init_value
