"""Dynamic load-imbalance workloads (section 5.5, Figure 23).

The thesis creates an imbalance "which couldn't have been captured by a
static partitioner in any way": the set of heavy nodes *moves* across the
computational domain every ten iterations --

* iterations 1-10:  nodes in the first 50 % of global IDs are heavy,
* iterations 11-20: nodes between 25 % and 75 %,
* iterations 21-30: nodes between 50 % and 100 %,
* beyond 30: everything light (the paper runs 35 iterations total for the
  overhead measurements and 25 for the static-vs-dynamic plots).

Heavy nodes run the coarse grain, light nodes the fine grain (the appendix
uses 100000- vs 1000-iteration dummy loops, a 100x gap; we default to the
paper's named grains, 3 ms vs 0.3 ms -- a 10x gap -- and expose the ratio).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.compute import ComputeContext, NodeFn, NodeView
from .average import COARSE_GRAIN, FINE_GRAIN, neighbor_average

__all__ = ["ImbalanceSchedule", "PAPER_SCHEDULE", "make_imbalanced_average_fn"]


@dataclass(frozen=True)
class ImbalanceSchedule:
    """A rolling-window heavy-region schedule over global IDs.

    Attributes:
        windows: ``(last_iteration, lo_fraction, hi_fraction)`` triples; the
            first window whose ``last_iteration`` >= the current iteration
            decides the heavy region ``[lo * n, hi * n]`` (inclusive ID
            band).  Iterations past every window have no heavy nodes.
        heavy_grain: Seconds charged by heavy nodes.
        light_grain: Seconds charged by light nodes.
    """

    windows: tuple[tuple[int, float, float], ...]
    heavy_grain: float = COARSE_GRAIN
    light_grain: float = FINE_GRAIN

    def __post_init__(self) -> None:
        if self.heavy_grain < 0 or self.light_grain < 0:
            raise ValueError("grains must be >= 0")
        last = 0
        for end, lo, hi in self.windows:
            if end <= last:
                raise ValueError("window boundaries must be strictly increasing")
            if not 0.0 <= lo <= hi <= 1.0:
                raise ValueError(f"bad window fractions ({lo}, {hi})")
            last = end

    def is_heavy(self, gid: int, iteration: int, num_nodes: int) -> bool:
        """Whether ``gid`` runs the heavy grain at ``iteration``."""
        for end, lo, hi in self.windows:
            if iteration <= end:
                return lo * num_nodes <= gid <= hi * num_nodes
        return False

    def grain(self, gid: int, iteration: int, num_nodes: int) -> float:
        """Grain charged by ``gid`` at ``iteration``."""
        return (
            self.heavy_grain
            if self.is_heavy(gid, iteration, num_nodes)
            else self.light_grain
        )

    def heavy_count(self, iteration: int, num_nodes: int) -> int:
        """How many nodes are heavy at ``iteration`` (for tests/benches)."""
        return sum(
            1
            for gid in range(1, num_nodes + 1)
            if self.is_heavy(gid, iteration, num_nodes)
        )


#: Figure 23's schedule: 50 % windows rolling right every 10 iterations.
PAPER_SCHEDULE = ImbalanceSchedule(
    windows=(
        (10, 0.00, 0.50),
        (20, 0.25, 0.75),
        (30, 0.50, 1.00),
    )
)


def make_imbalanced_average_fn(
    schedule: ImbalanceSchedule = PAPER_SCHEDULE,
) -> NodeFn:
    """Neighbour-average node function with the rolling imbalance grain."""

    def imbalanced_fn(node: NodeView, ctx: ComputeContext) -> float:
        ctx.work(schedule.grain(node.global_id, node.iteration, ctx.num_nodes))
        return neighbor_average(node)

    return imbalanced_fn
