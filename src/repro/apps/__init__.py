"""Applications deployed on the platform: the generic neighbour-average
workloads (fine/coarse grain, dynamic imbalance) and the battlefield
management simulation."""

from .automata import (
    glider_board,
    life_step_reference,
    make_life_fn,
    make_majority_fn,
    moore_grid,
)
from .average import COARSE_GRAIN, FINE_GRAIN, make_average_fn, neighbor_average
from .diffusion import (
    hot_edge_plate,
    jacobi_step_reference,
    make_jacobi_fn,
    residual,
)
from .imbalance import ImbalanceSchedule, PAPER_SCHEDULE, make_imbalanced_average_fn

__all__ = [
    "COARSE_GRAIN",
    "FINE_GRAIN",
    "ImbalanceSchedule",
    "PAPER_SCHEDULE",
    "glider_board",
    "hot_edge_plate",
    "jacobi_step_reference",
    "life_step_reference",
    "make_average_fn",
    "make_imbalanced_average_fn",
    "make_jacobi_fn",
    "make_life_fn",
    "make_majority_fn",
    "moore_grid",
    "neighbor_average",
    "residual",
]
