"""mpi4py-style communicator on top of the virtual-time runtime.

Lower-case methods (``send``/``recv``/``bcast``/...) transport arbitrary
Python objects, mirroring mpi4py's pickle-based interface; costs are charged
to the per-rank virtual clocks through the cluster's
:class:`~repro.mpi.timing.MachineModel`.

In addition to the MPI surface, a communicator exposes :meth:`work`, which
replaces the paper's dummy grain loops: ``comm.work(0.3e-3)`` charges a
0.3 ms fine-grain node computation to this rank's clock.

Determinism contract: every method reads and writes only the calling
rank's own ``RankState`` (clock, counters) plus the cluster transport
entry points (``deliver``/``take_matching``/``wait_for_message``/
``barrier``).  No cross-rank state is touched directly, which is what
lets the process scheduler run communicators in separate OS processes
(:mod:`repro.mpi.process`) while staying bit-identical to the in-thread
backends.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Sequence

from .errors import InvalidRankError, InvalidTagError, MessageLostError, ShrinkError
from .faults import corrupt_value
from .message import ANY_SOURCE, ANY_TAG, Message, RecvRequest, Request, SendRequest, Status
from .timing import estimate_nbytes

__all__ = ["Communicator", "ANY_SOURCE", "ANY_TAG"]

#: Tags at or above this value are reserved for internal collective traffic.
_COLL_TAG_BASE = 1 << 30


class Communicator:
    """A group of ranks exchanging messages on a private channel.

    Args:
        cluster: The owning :class:`~repro.mpi.runtime.SimCluster`.
        world_rank: This rank's id in the cluster (not in the group).
        group: Tuple of world ranks forming this communicator, in local-rank
            order (``group[local] == world``).
        comm_id: Hashable channel id; messages never cross channels.
    """

    def __init__(self, cluster: Any, world_rank: int, group: tuple[int, ...], comm_id: Any) -> None:
        self._cluster = cluster
        self._world_rank = world_rank
        self._group = group
        self._comm_id = comm_id
        self._rank = group.index(world_rank)
        self._coll_seq = 0
        self._child_seq = 0

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    @property
    def rank(self) -> int:
        """This process's rank within the communicator."""
        return self._rank

    @property
    def size(self) -> int:
        """Number of ranks in the communicator."""
        return len(self._group)

    def Get_rank(self) -> int:  # noqa: N802 - mpi4py spelling
        return self._rank

    def Get_size(self) -> int:  # noqa: N802 - mpi4py spelling
        return len(self._group)

    @property
    def machine(self):
        """The machine cost model this communicator charges against."""
        return self._cluster.machine

    @property
    def group(self) -> tuple[int, ...]:
        """World ranks of the members, in local-rank order."""
        return self._group

    def world_rank_of(self, local: int) -> int:
        """World rank of communicator-local rank ``local``."""
        self._check_peer(local)
        return self._group[local]

    def local_rank_of(self, world: int) -> int | None:
        """Local rank of world rank ``world`` (None if not a member)."""
        try:
            return self._group.index(world)
        except ValueError:
            return None

    @property
    def faults(self):
        """The cluster's per-run :class:`~repro.mpi.faults.FaultState`
        (None when no fault plan is armed).  The platform's recovery loop
        reads the plan's crash schedule through this."""
        return self._cluster.fault_state

    def __repr__(self) -> str:
        return f"Communicator(rank={self._rank}, size={self.size}, id={self._comm_id!r})"

    # ------------------------------------------------------------------ #
    # Virtual time
    # ------------------------------------------------------------------ #

    def Wtime(self) -> float:  # noqa: N802 - mpi4py spelling
        """This rank's virtual clock, seconds."""
        return self._state().clock

    def work(self, seconds: float) -> float:
        """Charge ``seconds`` of pure computation to this rank's clock.

        This is the substitute for the thesis's dummy ``for`` loops that
        injected the 0.3 ms / 3 ms node grains.  When a fault plan marks
        this rank as transiently slow, the charge is inflated by the active
        :class:`~repro.mpi.faults.SlowWindow` factor.

        Returns:
            The virtual seconds actually charged (>= ``seconds``).
        """
        if seconds < 0:
            raise ValueError(f"cannot charge negative work: {seconds}")
        return self._charge_cpu(seconds)

    charge = work  # alias

    def _state(self):
        return self._cluster.state(self._world_rank)

    def _charge_cpu(self, seconds: float) -> float:
        """Charge CPU time, inflated by any active slow-rank fault window."""
        state = self._state()
        faults = self._cluster.fault_state
        if faults is not None:
            seconds *= faults.compute_scale(self._world_rank, state.clock)
        state.clock += seconds
        return seconds

    # ------------------------------------------------------------------ #
    # Point-to-point
    # ------------------------------------------------------------------ #

    def _check_peer(self, peer: int) -> None:
        if not 0 <= peer < self.size:
            raise InvalidRankError(f"rank {peer} outside [0, {self.size})")

    def send(self, obj: Any, dest: int, tag: int = 0, nbytes: int | None = None) -> None:
        """Eagerly-buffered blocking send of a Python object.

        Args:
            obj: Payload (any Python object).
            dest: Destination local rank.
            tag: Message tag (non-negative).
            nbytes: Override the estimated wire size (drives the cost model).
        """
        self.isend(obj, dest, tag=tag, nbytes=nbytes)

    def isend(self, obj: Any, dest: int, tag: int = 0, nbytes: int | None = None) -> Request:
        """Nonblocking send; the returned request is already complete."""
        self._check_peer(dest)
        if tag < 0:
            raise InvalidTagError(f"tag must be >= 0, got {tag}")
        return self._inject(obj, dest, tag, nbytes)

    def _inject(self, obj: Any, dest: int, tag: int, nbytes: int | None) -> Request:
        size = estimate_nbytes(obj) if nbytes is None else nbytes
        state = self._state()
        machine = self._cluster.machine
        faults = self._cluster.fault_state
        checksums = self._cluster.checksums
        self._charge_cpu(machine.sender_cpu(size))
        if checksums:
            # Checksummed transport: the sender pays to checksum every
            # payload, fault plan or not -- that is the protection overhead.
            self._charge_cpu(machine.checksum_time(size))
        extra_flight = 0.0
        corrupt_attempts = 0
        if faults is not None and faults.plan.perturbs_messages:
            faults.count_message(self._world_rank)
            if faults.plan.drop is not None:
                # Send-side reliable delivery: every lost transmission
                # attempt costs an ack timeout (exponential backoff) plus
                # the resend CPU, all in virtual time.
                retry = faults.plan.retry
                attempt = 1
                while faults.next_drop(self._world_rank):
                    if attempt >= retry.max_attempts:
                        faults.count_lost(self._world_rank)
                        raise MessageLostError(
                            f"message to rank {dest} (tag {tag}) lost after "
                            f"{attempt} transmission attempts"
                        )
                    state.clock += retry.attempt_timeout(
                        attempt, machine.ack_timeout(size)
                    )
                    self._charge_cpu(machine.sender_cpu(size))
                    faults.count_retry(self._world_rank)
                    attempt += 1
            extra_flight = faults.next_delay(self._world_rank)
            if faults.plan.flip_msg is not None:
                # Silent-corruption draws happen on the *sending* rank in
                # program order (like drops), so outcomes are independent of
                # the host schedule.  On a checksummed link each corrupted
                # attempt is NACKed and retransmitted (the decision redraws
                # per attempt); unprotected, the flipped payload is simply
                # delivered.
                if checksums:
                    retry = faults.plan.retry
                    while corrupt_attempts < retry.max_attempts and faults.next_corrupt(
                        self._world_rank
                    ):
                        corrupt_attempts += 1
                    if corrupt_attempts >= retry.max_attempts:
                        faults.count_lost(self._world_rank)
                        raise MessageLostError(
                            f"message to rank {dest} (tag {tag}) corrupted on "
                            f"all {corrupt_attempts} transmission attempts"
                        )
                elif faults.next_corrupt(self._world_rank):
                    obj = corrupt_value(obj, faults.corrupt_token(self._world_rank))
        # src is the communicator-local rank (what the receiver matches on);
        # dest is the world rank (which mailbox to drop the message into).
        msg = Message(
            src=self._rank,
            dest=self._group[dest],
            tag=tag,
            comm_id=self._comm_id,
            payload=obj,
            nbytes=size,
            send_time=state.clock,
            arrival_time=state.clock
            + machine.transfer_time_between(
                size, self._group[self._rank], self._group[dest]
            )
            + extra_flight,
            corrupt_attempts=corrupt_attempts,
        )
        self._cluster.deliver(msg)
        return SendRequest(msg)

    def recv(
        self,
        source: int = ANY_SOURCE,
        tag: int = ANY_TAG,
        status: Status | None = None,
    ) -> Any:
        """Blocking receive; returns the payload object."""
        return self._complete_recv(source, tag, status)

    def irecv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> RecvRequest:
        """Nonblocking receive; complete it with ``req.wait()``.

        The receive is *matched at wait time*; posting is free.  Waiting
        advances the clock to ``max(now, arrival) + receiver_cpu`` which is
        how overlapped compute (Figure 8a) hides transfer latency.
        """
        if source != ANY_SOURCE:
            self._check_peer(source)
        return RecvRequest(self, source, tag)

    def _complete_recv(self, source: int, tag: int, status: Status | None) -> Any:
        if source != ANY_SOURCE:
            self._check_peer(source)
        msg = self._cluster.wait_for_message(self._world_rank, source, tag, self._comm_id)
        return self._finish_recv(msg, status)

    def _try_recv(self, source: int, tag: int, status: Status | None) -> tuple[Any, bool]:
        msg = self._cluster.take_matching(self._world_rank, source, tag, self._comm_id)
        if msg is None:
            return None, False
        return self._finish_recv(msg, status), True

    def _finish_recv(self, msg: Message, status: Status | None) -> Any:
        state = self._state()
        machine = self._cluster.machine
        state.clock = max(state.clock, msg.arrival_time)
        if self._cluster.checksums:
            # Verify-and-retransmit: each corrupted attempt costs a failed
            # verify, a NACK round trip, and the full resend (all waited out
            # on the receiver's clock -- sends are eager, so the sender has
            # long moved on); then one clean verify accepts the payload.
            faults = self._cluster.fault_state
            for _ in range(msg.corrupt_attempts):
                state.clock += machine.retransmit_penalty(msg.nbytes)
                if faults is not None:
                    faults.count_retransmit(self._world_rank)
            self._charge_cpu(machine.checksum_time(msg.nbytes))
        self._charge_cpu(machine.receiver_cpu(msg.nbytes))
        if status is not None:
            status.update_from(msg)
        return msg.payload

    def sendrecv(
        self,
        obj: Any,
        dest: int,
        sendtag: int = 0,
        source: int = ANY_SOURCE,
        recvtag: int = ANY_TAG,
        status: Status | None = None,
    ) -> Any:
        """Combined send+receive (deadlock-free thanks to eager sends)."""
        self.isend(obj, dest, tag=sendtag)
        return self.recv(source=source, tag=recvtag, status=status)

    def probe(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> Status:
        """Block until a matching message is available; do not consume it."""
        msg = self._cluster.wait_for_message(
            self._world_rank, source, tag, self._comm_id, consume=False
        )
        status = Status()
        status.update_from(msg)
        return status

    def iprobe(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> bool:
        """True when a matching message is already in the mailbox."""
        msg = self._cluster.take_matching(
            self._world_rank, source, tag, self._comm_id, consume=False
        )
        return msg is not None

    def pending_sources(self, tag: int) -> list[int]:
        """Local ranks with a queued message for ``tag`` on this channel.

        Sender discovery for the delta halo exchange: empty shadow sends are
        elided, so the receiver cannot post one receive per graph neighbour
        -- after the sweep barrier it asks which peers actually sent.  Sends
        are eagerly buffered at injection, so every message isent before a
        peer entered the barrier is already queued here; the result is a
        pure function of the program, never of the host schedule.
        """
        return self._cluster.pending_sources(self._world_rank, tag, self._comm_id)

    # ------------------------------------------------------------------ #
    # Collectives (binomial trees over p2p, so clocks propagate naturally)
    # ------------------------------------------------------------------ #

    def _next_coll_tag(self) -> int:
        tag = _COLL_TAG_BASE + self._coll_seq
        self._coll_seq += 1
        return tag

    def barrier(self) -> None:
        """Synchronize all ranks; clocks jump to the common release time."""
        key = (self._comm_id, "barrier")
        self._cluster.barrier(self._world_rank, self._group, key)

    Barrier = barrier  # mpi4py spelling

    def bcast(self, obj: Any, root: int = 0) -> Any:
        """Broadcast ``obj`` from ``root`` to everyone (binomial tree)."""
        self._check_peer(root)
        tag = self._next_coll_tag()
        size = self.size
        vrank = (self._rank - root) % size
        if vrank != 0:
            lowbit = vrank & -vrank
            parent = ((vrank ^ lowbit) + root) % size
            value = self.recv(source=parent, tag=tag)
        else:
            value = obj
            lowbit = 1
            while lowbit < size:
                lowbit <<= 1
        mask = lowbit >> 1
        while mask >= 1:
            if vrank + mask < size:
                child = ((vrank + mask) + root) % size
                self.isend(value, child, tag=tag)
            mask >>= 1
        return value

    def gather(self, obj: Any, root: int = 0) -> list[Any] | None:
        """Gather one object per rank at ``root`` (rank order)."""
        self._check_peer(root)
        tag = self._next_coll_tag()
        if self._rank != root:
            self.isend(obj, root, tag=tag)
            return None
        out: list[Any] = [None] * self.size
        out[root] = obj
        for r in range(self.size):
            if r != root:
                out[r] = self.recv(source=r, tag=tag)
        return out

    def scatter(self, objs: Sequence[Any] | None, root: int = 0) -> Any:
        """Scatter ``objs[i]`` to rank ``i`` from ``root``."""
        self._check_peer(root)
        tag = self._next_coll_tag()
        if self._rank == root:
            if objs is None or len(objs) != self.size:
                raise ValueError(f"scatter needs exactly {self.size} items at the root")
            for r in range(self.size):
                if r != root:
                    self.isend(objs[r], r, tag=tag)
            return objs[root]
        return self.recv(source=root, tag=tag)

    def allgather(self, obj: Any) -> list[Any]:
        """Gather at rank 0 then broadcast the assembled list."""
        gathered = self.gather(obj, root=0)
        return self.bcast(gathered, root=0)

    def reduce(
        self,
        obj: Any,
        op: Callable[[Any, Any], Any] | None = None,
        root: int = 0,
    ) -> Any | None:
        """Reduce values to ``root`` with ``op`` (default: addition).

        The combine order is fixed (ascending rank), so non-commutative
        operators behave deterministically.
        """
        self._check_peer(root)
        combine = op if op is not None else (lambda a, b: a + b)
        gathered = self.gather(obj, root=root)
        if self._rank != root:
            return None
        assert gathered is not None
        acc = gathered[0]
        for item in gathered[1:]:
            acc = combine(acc, item)
        return acc

    def allreduce(self, obj: Any, op: Callable[[Any, Any], Any] | None = None) -> Any:
        """Reduce then broadcast the result to all ranks.

        Integer sums on the world communicator take the process backend's
        shared-memory fast path when available (bit-identical clocks and
        result, no pipe traffic); every other case runs the gather+bcast
        trees above.
        """
        if op is None:
            fast = self._cluster.shm_allreduce(self, obj)
            if fast is not None:
                return fast[0]
        result = self.reduce(obj, op=op, root=0)
        return self.bcast(result, root=0)

    def scan(self, obj: Any, op: Callable[[Any, Any], Any] | None = None) -> Any:
        """Inclusive prefix reduction: rank i receives ``op`` over ranks 0..i.

        Implemented as a pipeline along the rank order (rank-ordered and
        deterministic for non-commutative operators).
        """
        combine = op if op is not None else (lambda a, b: a + b)
        tag = self._next_coll_tag()
        if self._rank == 0:
            acc = obj
        else:
            prefix = self.recv(source=self._rank - 1, tag=tag)
            acc = combine(prefix, obj)
        if self._rank + 1 < self.size:
            self.isend(acc, self._rank + 1, tag=tag)
        return acc

    def exscan(self, obj: Any, op: Callable[[Any, Any], Any] | None = None) -> Any:
        """Exclusive prefix reduction: rank i receives ``op`` over ranks
        0..i-1 (rank 0 receives ``None``, as in MPI)."""
        combine = op if op is not None else (lambda a, b: a + b)
        tag = self._next_coll_tag()
        prefix = None
        if self._rank > 0:
            prefix = self.recv(source=self._rank - 1, tag=tag)
        if self._rank + 1 < self.size:
            outgoing = obj if prefix is None else combine(prefix, obj)
            self.isend(outgoing, self._rank + 1, tag=tag)
        return prefix

    def reduce_scatter(
        self, objs: Sequence[Any], op: Callable[[Any, Any], Any] | None = None
    ) -> Any:
        """Element-wise reduce of per-destination contributions; rank i
        receives the reduction of everyone's ``objs[i]``."""
        if len(objs) != self.size:
            raise ValueError(f"reduce_scatter needs exactly {self.size} items")
        combine = op if op is not None else (lambda a, b: a + b)
        incoming = self.alltoall(list(objs))
        acc = incoming[0]
        for item in incoming[1:]:
            acc = combine(acc, item)
        return acc

    def alltoall(self, objs: Sequence[Any]) -> list[Any]:
        """Personalized all-to-all: rank i receives ``objs[i]`` of each peer."""
        if len(objs) != self.size:
            raise ValueError(f"alltoall needs exactly {self.size} items")
        tag = self._next_coll_tag()
        for r in range(self.size):
            if r != self._rank:
                self.isend(objs[r], r, tag=tag)
        out: list[Any] = [None] * self.size
        out[self._rank] = objs[self._rank]
        for r in range(self.size):
            if r != self._rank:
                out[r] = self.recv(source=r, tag=tag)
        return out

    # ------------------------------------------------------------------ #
    # Communicator management
    # ------------------------------------------------------------------ #

    def dup(self) -> "Communicator":
        """A new communicator over the same group on a private channel."""
        self._child_seq += 1
        new_id = (self._comm_id, "dup", self._child_seq)
        return Communicator(self._cluster, self._world_rank, self._group, new_id)

    def shrink(
        self, dead: Iterable[int], quarantine: bool = True
    ) -> "Communicator | None":
        """ULFM-style survivor communicator excluding ``dead`` local ranks.

        All *survivors* must call this collectively with the same ``dead``
        set (dead ranks, by definition, do not call anything).  No messages
        are exchanged: the survivor group, the new dense ranking (relative
        order preserved), and the channel id are all pure functions of the
        current group and the dead set, so every survivor derives the same
        communicator without synchronizing -- exactly what a recovery path
        needs when part of the machine is gone.

        Args:
            dead: Communicator-local ranks declared failed.
            quarantine: Also purge this rank's in-flight messages from the
                dead ranks on the *old* channel.  Pass ``False`` when the
                caller still needs to drain a dying rank's last messages
                (e.g. its final checkpoint) and quarantine explicitly later.

        Returns:
            The shrunken communicator, or ``None`` when called by a rank
            that is itself in ``dead`` (mirrors ``split(color=None)``).

        Raises:
            ShrinkError: Empty dead set, out-of-range ranks, or no survivors.
        """
        dead_set = frozenset(dead)
        if not dead_set:
            raise ShrinkError("shrink requires at least one dead rank")
        for r in dead_set:
            if not 0 <= r < self.size:
                raise ShrinkError(f"dead rank {r} outside [0, {self.size})")
        if len(dead_set) >= self.size:
            raise ShrinkError("shrink would leave an empty communicator")
        survivors = tuple(r for r in range(self.size) if r not in dead_set)
        new_group = tuple(self._group[r] for r in survivors)
        # Channel id derived from the dead set, not a counter: survivors may
        # have different _child_seq histories, but they agree on who died.
        new_id = (self._comm_id, "shrink", tuple(sorted(dead_set)))
        if quarantine:
            self.quarantine(dead_set)
        if self._rank in dead_set:
            return None
        return Communicator(self._cluster, self._world_rank, new_group, new_id)

    def quarantine(self, dead: Iterable[int]) -> int:
        """Purge in-flight messages from ``dead`` local ranks on this channel.

        Idempotent; returns the number of messages discarded.  Used after a
        shrink so stale traffic from the failed rank can never match a
        receive posted on the old communicator.
        """
        return self._cluster.quarantine(
            self._world_rank, frozenset(dead), self._comm_id
        )

    def split(self, color: int | None, key: int | None = None) -> "Communicator | None":
        """Partition ranks by ``color``; order new groups by ``(key, rank)``.

        Ranks passing ``color=None`` receive ``None`` (MPI_UNDEFINED).
        """
        self._child_seq += 1
        seq = self._child_seq
        sort_key = self._rank if key is None else key
        triples = self.allgather((color, sort_key, self._rank))
        if color is None:
            return None
        members = sorted(
            (k, r) for c, k, r in triples if c == color
        )
        group = tuple(self._group[r] for _, r in members)
        new_id = (self._comm_id, "split", seq, color)
        return Communicator(self._cluster, self._world_rank, group, new_id)
