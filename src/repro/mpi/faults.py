"""Deterministic fault injection for the virtual-time MPI substrate.

The paper's platform assumes a reliable Origin-2000 interconnect; a
production-scale runtime has to survive slow ranks, delayed or lost
messages, and whole-rank crashes.  On the virtual-time simulator failure can
be a *first-class, reproducible input*: a seeded :class:`FaultPlan`
describes every perturbation, and identical plans produce bit-identical
virtual clocks, traces, and results -- which is what makes robustness
regressions testable.

Four fault families are supported:

* **message delays** (:class:`DelaySpec`) -- with probability ``prob`` a
  message's flight time gains ``extra`` virtual seconds;
* **message drops** (:class:`DropSpec` + :class:`RetryPolicy`) -- with
  probability ``prob`` a transmission attempt is lost; the sending
  communicator waits out an ack timeout (exponential backoff) and resends,
  up to ``max_attempts`` transmissions, then raises
  :class:`~repro.mpi.errors.MessageLostError`;
* **transient slow ranks** (:class:`SlowWindow`) -- a rank's compute and
  per-message CPU charges are scaled by ``factor`` while its virtual clock
  is inside ``[start, end)``;
* **rank crashes** (:class:`CrashEvent`) -- a rank dies at the start of a
  chosen iteration/superstep; the platform's checkpoint/restart layer
  (:mod:`repro.core.checkpoint`) rolls every rank back to the last
  checkpoint and re-runs, charging the recovery to the virtual clocks;
* **silent data corruption** (:class:`MessageFlipSpec`,
  :class:`MemoryFlipEvent`) -- transient bit-flip faults.  A message flip
  corrupts a transmission attempt's payload in flight (absorbed by the
  transport's checksum/NACK/retransmit path when checksums are enabled,
  silently delivered otherwise); a memory flip corrupts one committed node
  value on a chosen rank at the start of a chosen iteration (detected and
  repaired by the platform's integrity layer, :mod:`repro.core.integrity`).

Randomized decisions (drop, delay) are drawn from *per-rank* PRNG streams
seeded from ``(plan seed, rank)``.  Each rank draws in its own program
order, so outcomes are independent of host-thread scheduling -- the same
FIFO-determinism argument the runtime makes for message matching.

A plan can be written as a compact spec string (the CLI's ``--faults``
flag)::

    seed=42,delay=0.05:0.002,drop=0.01,retry=6:0.001:2.0,slow=1:3.0:0.0:0.5,crash=2@40

See :meth:`FaultPlan.parse` for the clause grammar.
"""

from __future__ import annotations

import pickle
import random
import struct
import zlib
from dataclasses import dataclass, field, fields, is_dataclass, replace
from typing import Any

__all__ = [
    "DelaySpec",
    "DropSpec",
    "RetryPolicy",
    "SlowWindow",
    "CrashEvent",
    "MessageFlipSpec",
    "MemoryFlipEvent",
    "FaultPlan",
    "FaultState",
    "FaultReport",
    "corrupt_value",
    "state_digest",
]


def state_digest(value: Any) -> int:
    """Deterministic digest of a committed value (CRC-32 over its pickle).

    Used both by the checksummed transport model and by the platform's
    per-superstep partition digests: any single corrupt_value() flip changes
    the digest, so a digest mismatch is a reliable corruption detector.
    """
    try:
        blob = pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
    except Exception:
        blob = repr(value).encode("utf-8", errors="replace")
    return zlib.crc32(blob)


def corrupt_value(value: Any, token: int = 0) -> Any:
    """Deterministically bit-flip a value (the silent-corruption model).

    ``token`` selects which bit/element flips, so successive corruptions of
    the same value differ while staying reproducible.  Floats flip one
    mantissa bit (finite stays finite), ints flip one low bit, containers
    and dataclasses corrupt one element recursively; anything unrecognized
    is wrapped in a sentinel tuple so the result always differs from the
    original.
    """
    if isinstance(value, bool):
        return not value
    if isinstance(value, int):
        return value ^ (1 << (token % 32))
    if isinstance(value, float):
        bits = struct.unpack("<Q", struct.pack("<d", value))[0]
        bits ^= 1 << (token % 52)  # mantissa-only: finite stays finite
        return struct.unpack("<d", struct.pack("<Q", bits))[0]
    if isinstance(value, str):
        if not value:
            return "\x00"
        i = token % len(value)
        return value[:i] + chr(ord(value[i]) ^ 1) + value[i + 1 :]
    if isinstance(value, bytes | bytearray):
        if not value:
            return b"\x00"
        out = bytearray(value)
        out[token % len(out)] ^= 1
        return bytes(out) if isinstance(value, bytes) else out
    if isinstance(value, tuple | list) and value:
        i = token % len(value)
        items = list(value)
        items[i] = corrupt_value(items[i], token)
        return type(value)(items)
    if isinstance(value, dict) and value:
        key = list(value)[token % len(value)]
        out = dict(value)
        out[key] = corrupt_value(out[key], token)
        return out
    if is_dataclass(value) and not isinstance(value, type):
        names = [f.name for f in fields(value)]
        if names:
            name = names[token % len(names)]
            return replace(
                value, **{name: corrupt_value(getattr(value, name), token)}
            )
    return ("__bitflip__", token, value)


@dataclass(frozen=True)
class DelaySpec:
    """Random message-delay fault.

    Attributes:
        prob: Per-message probability of the delay firing.
        extra: Extra virtual flight seconds added when it does.
    """

    prob: float
    extra: float = 1e-3

    def __post_init__(self) -> None:
        if not 0.0 <= self.prob <= 1.0:
            raise ValueError(f"delay prob must be in [0, 1], got {self.prob}")
        if self.extra < 0:
            raise ValueError(f"delay extra must be >= 0, got {self.extra}")


@dataclass(frozen=True)
class DropSpec:
    """Random message-loss fault.

    Attributes:
        prob: Per-*transmission-attempt* probability of the attempt being
            lost (retries redraw).
    """

    prob: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.prob <= 1.0:
            raise ValueError(f"drop prob must be in [0, 1], got {self.prob}")


@dataclass(frozen=True)
class RetryPolicy:
    """Send-side reliable-delivery policy used when drops are enabled.

    Attributes:
        max_attempts: Total transmissions allowed per message (first send
            plus retries); exhausting them raises
            :class:`~repro.mpi.errors.MessageLostError`.
        timeout: Ack timeout charged before each resend, seconds.  ``None``
            uses the machine model's :meth:`~repro.mpi.timing.MachineModel.
            ack_timeout` for the message size.
        backoff: Timeout multiplier applied per successive retry
            (exponential backoff).
    """

    max_attempts: int = 6
    timeout: float | None = None
    backoff: float = 2.0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.timeout is not None and self.timeout < 0:
            raise ValueError(f"timeout must be >= 0, got {self.timeout}")
        if self.backoff < 1.0:
            raise ValueError(f"backoff must be >= 1, got {self.backoff}")

    def attempt_timeout(self, attempt: int, base: float) -> float:
        """Ack timeout before the ``attempt``-th retry (1-based)."""
        timeout = base if self.timeout is None else self.timeout
        return timeout * self.backoff ** (attempt - 1)


@dataclass(frozen=True)
class SlowWindow:
    """A transient slow rank: CPU charges scaled while the clock is in a
    virtual-time window.

    Attributes:
        rank: The affected world rank.
        factor: Multiplier (>= 1) on compute grains and per-message CPU
            overheads charged while active.
        start: Window start, virtual seconds (inclusive).
        end: Window end, virtual seconds (exclusive); ``None`` = rest of
            the run.

    A charge is scaled when it *starts* inside the window; charges are not
    split at the boundary.
    """

    rank: int
    factor: float
    start: float = 0.0
    end: float | None = None

    def __post_init__(self) -> None:
        if self.rank < 0:
            raise ValueError(f"rank must be >= 0, got {self.rank}")
        if self.factor < 1.0:
            raise ValueError(f"slow factor must be >= 1, got {self.factor}")
        if self.start < 0:
            raise ValueError(f"start must be >= 0, got {self.start}")
        if self.end is not None and self.end <= self.start:
            raise ValueError(f"window end {self.end} must exceed start {self.start}")

    def active(self, clock: float) -> bool:
        """Whether the window covers the given virtual time."""
        return clock >= self.start and (self.end is None or clock < self.end)


@dataclass(frozen=True)
class CrashEvent:
    """A whole-rank crash at the start of a chosen iteration.

    The platform's recovery loop (not the MPI layer) consumes these: every
    rank sees the same plan, detects the crash at the same deterministic
    point, and rolls back to the last checkpoint collectively.

    Attributes:
        rank: The crashing world rank.
        iteration: 1-based platform iteration (or BSP superstep) at whose
            start the rank dies.
    """

    rank: int
    iteration: int

    def __post_init__(self) -> None:
        if self.rank < 0:
            raise ValueError(f"rank must be >= 0, got {self.rank}")
        if self.iteration < 1:
            raise ValueError(f"iteration must be >= 1, got {self.iteration}")


@dataclass(frozen=True)
class MessageFlipSpec:
    """Random in-flight message-payload corruption (silent data corruption).

    With probability ``prob`` a *transmission attempt*'s payload is flipped.
    On a checksummed transport (``SimCluster(checksums=True)``) the receiver
    detects the mismatch, NACKs, and the attempt is retransmitted (redrawing
    the flip decision) -- corruption costs virtual time but never escapes.
    On an unprotected transport the corrupted payload is silently delivered.

    Attributes:
        prob: Per-transmission-attempt probability of the payload flipping.
    """

    prob: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.prob <= 1.0:
            raise ValueError(f"flipmsg prob must be in [0, 1], got {self.prob}")


@dataclass(frozen=True)
class MemoryFlipEvent:
    """One in-memory node-state corruption at a chosen rank/iteration.

    At the start of iteration ``iteration`` the owning rank's *committed*
    value of one node is flipped, bypassing the normal commit path -- a
    model of an undetected DRAM/SEU upset between supersteps.  Only the
    owner applies the flip; detection is the integrity layer's job (digest
    mismatch), never a read of the plan by other ranks.

    Attributes:
        rank: The affected world rank.
        iteration: 1-based platform iteration at whose start the bit flips.
        node: 1-based global node id to corrupt, or ``None`` to corrupt the
            rank's lowest-numbered owned node (deterministic either way).
    """

    rank: int
    iteration: int
    node: int | None = None

    def __post_init__(self) -> None:
        if self.rank < 0:
            raise ValueError(f"rank must be >= 0, got {self.rank}")
        if self.iteration < 1:
            raise ValueError(f"iteration must be >= 1, got {self.iteration}")
        if self.node is not None and self.node < 1:
            raise ValueError(f"node id must be >= 1, got {self.node}")


@dataclass(frozen=True)
class FaultPlan:
    """A complete, seeded description of every fault in a run.

    Attributes:
        seed: Seeds the per-rank decision streams; two runs with the same
            plan (and program) are bit-identical.
        delay: Message-delay fault, or None.
        drop: Message-loss fault, or None.
        retry: Reliable-delivery policy used when ``drop`` is set.
        slow: Transient slow-rank windows.
        crashes: Scheduled whole-rank crashes.
        flip_msg: Message-payload corruption fault, or None.
        flips: Scheduled in-memory node-state corruptions.
    """

    seed: int = 0
    delay: DelaySpec | None = None
    drop: DropSpec | None = None
    retry: RetryPolicy = field(default_factory=RetryPolicy)
    slow: tuple[SlowWindow, ...] = ()
    crashes: tuple[CrashEvent, ...] = ()
    flip_msg: MessageFlipSpec | None = None
    flips: tuple[MemoryFlipEvent, ...] = ()

    def __post_init__(self) -> None:
        # Normalize lists passed by hand.
        if not isinstance(self.slow, tuple):
            object.__setattr__(self, "slow", tuple(self.slow))
        if not isinstance(self.crashes, tuple):
            object.__setattr__(self, "crashes", tuple(self.crashes))
        if not isinstance(self.flips, tuple):
            object.__setattr__(self, "flips", tuple(self.flips))

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #

    def crashes_at(self, iteration: int) -> tuple[CrashEvent, ...]:
        """Crash events scheduled for the given 1-based iteration."""
        return tuple(e for e in self.crashes if e.iteration == iteration)

    def flips_at(self, iteration: int, rank: int | None = None) -> tuple[
        MemoryFlipEvent, ...
    ]:
        """Memory-flip events for the given iteration (optionally one rank)."""
        return tuple(
            e
            for e in self.flips
            if e.iteration == iteration and (rank is None or e.rank == rank)
        )

    def validate_ranks(self, nprocs: int) -> None:
        """Reject rank-targeted faults aimed at ranks that do not exist.

        A crash aimed at a nonexistent rank would otherwise still trigger a
        collective rollback (every rank reads the plan) while the fault
        report counts zero crashes -- a silently inconsistent run.
        """
        for c in self.crashes:
            if not 0 <= c.rank < nprocs:
                raise ValueError(
                    f"crash rank {c.rank} out of range for {nprocs} ranks"
                )
        for w in self.slow:
            if not 0 <= w.rank < nprocs:
                raise ValueError(
                    f"slow rank {w.rank} out of range for {nprocs} ranks"
                )
        for e in self.flips:
            if not 0 <= e.rank < nprocs:
                raise ValueError(
                    f"flip rank {e.rank} out of range for {nprocs} ranks"
                )

    def compute_scale(self, rank: int, clock: float) -> float:
        """CPU-charge multiplier for ``rank`` at virtual time ``clock``."""
        scale = 1.0
        for window in self.slow:
            if window.rank == rank and window.active(clock):
                scale *= window.factor
        return scale

    @property
    def perturbs_messages(self) -> bool:
        """Whether any per-message fault (delay/drop/flip) is configured."""
        return (
            self.delay is not None
            or self.drop is not None
            or self.flip_msg is not None
        )

    def with_overrides(self, **kwargs: Any) -> "FaultPlan":
        """Copy with selected fields replaced."""
        return replace(self, **kwargs)

    # ------------------------------------------------------------------ #
    # Spec strings
    # ------------------------------------------------------------------ #

    @classmethod
    def parse(cls, spec: str) -> "FaultPlan":
        """Build a plan from a compact spec string.

        Comma-separated clauses (whitespace ignored):

        * ``seed=N``
        * ``delay=PROB[:EXTRA]`` -- extra flight seconds (default 1 ms)
        * ``drop=PROB``
        * ``retry=MAX[:TIMEOUT[:BACKOFF]]`` -- ``TIMEOUT`` may be the word
          ``none`` for the machine model's adaptive ack timeout
        * ``slow=RANK:FACTOR[:START[:END]]`` -- virtual-second window
        * ``crash=RANK@ITERATION`` (repeatable)
        * ``flipmsg=PROB`` -- per-attempt message-payload corruption
        * ``flip=RANK@ITERATION[:NODE]`` -- memory corruption (repeatable)

        Raises:
            ValueError: On an unknown clause or malformed value.
        """
        seed = 0
        delay: DelaySpec | None = None
        drop: DropSpec | None = None
        retry = RetryPolicy()
        slow: list[SlowWindow] = []
        crashes: list[CrashEvent] = []
        flip_msg: MessageFlipSpec | None = None
        flips: list[MemoryFlipEvent] = []
        for raw in spec.replace(";", ",").split(","):
            clause = raw.strip()
            if not clause:
                continue
            key, sep, value = clause.partition("=")
            if not sep:
                raise ValueError(f"fault clause {clause!r} is not key=value")
            key = key.strip().lower()
            value = value.strip()
            try:
                if key == "seed":
                    seed = int(value)
                elif key == "delay":
                    parts = value.split(":")
                    delay = DelaySpec(
                        prob=float(parts[0]),
                        extra=float(parts[1]) if len(parts) > 1 else 1e-3,
                    )
                elif key == "drop":
                    drop = DropSpec(prob=float(value))
                elif key == "retry":
                    parts = value.split(":")
                    timeout: float | None = None
                    if len(parts) > 1 and parts[1].lower() != "none":
                        timeout = float(parts[1])
                    retry = RetryPolicy(
                        max_attempts=int(parts[0]),
                        timeout=timeout,
                        backoff=float(parts[2]) if len(parts) > 2 else 2.0,
                    )
                elif key == "slow":
                    parts = value.split(":")
                    if len(parts) < 2:
                        raise ValueError("slow needs RANK:FACTOR")
                    slow.append(
                        SlowWindow(
                            rank=int(parts[0]),
                            factor=float(parts[1]),
                            start=float(parts[2]) if len(parts) > 2 else 0.0,
                            end=float(parts[3]) if len(parts) > 3 else None,
                        )
                    )
                elif key == "crash":
                    rank_s, sep2, iter_s = value.partition("@")
                    if not sep2:
                        raise ValueError("crash needs RANK@ITERATION")
                    crashes.append(
                        CrashEvent(rank=int(rank_s), iteration=int(iter_s))
                    )
                elif key == "flipmsg":
                    flip_msg = MessageFlipSpec(prob=float(value))
                elif key == "flip":
                    rank_s, sep2, rest = value.partition("@")
                    if not sep2:
                        raise ValueError("flip needs RANK@ITERATION[:NODE]")
                    iter_s, sep3, node_s = rest.partition(":")
                    flips.append(
                        MemoryFlipEvent(
                            rank=int(rank_s),
                            iteration=int(iter_s),
                            node=int(node_s) if sep3 else None,
                        )
                    )
                else:
                    raise ValueError(f"unknown fault clause key {key!r}")
            except (IndexError, ValueError) as exc:
                raise ValueError(f"bad fault clause {clause!r}: {exc}") from None
        return cls(
            seed=seed,
            delay=delay,
            drop=drop,
            retry=retry,
            slow=tuple(slow),
            crashes=tuple(crashes),
            flip_msg=flip_msg,
            flips=tuple(flips),
        )

    def to_spec(self) -> str:
        """Render the plan as a canonical spec string.

        The inverse of :meth:`parse`: for every plan,
        ``FaultPlan.parse(plan.to_spec()) == plan``.  Float values are
        rendered with :func:`repr`, which round-trips exactly.
        """
        parts = [f"seed={self.seed}"]
        if self.delay is not None:
            parts.append(f"delay={self.delay.prob!r}:{self.delay.extra!r}")
        if self.drop is not None:
            parts.append(f"drop={self.drop.prob!r}")
        if self.retry != RetryPolicy():
            timeout = "none" if self.retry.timeout is None else repr(self.retry.timeout)
            parts.append(
                f"retry={self.retry.max_attempts}:{timeout}:{self.retry.backoff!r}"
            )
        for w in self.slow:
            clause = f"slow={w.rank}:{w.factor!r}:{w.start!r}"
            if w.end is not None:
                clause += f":{w.end!r}"
            parts.append(clause)
        for c in self.crashes:
            parts.append(f"crash={c.rank}@{c.iteration}")
        if self.flip_msg is not None:
            parts.append(f"flipmsg={self.flip_msg.prob!r}")
        for e in self.flips:
            clause = f"flip={e.rank}@{e.iteration}"
            if e.node is not None:
                clause += f":{e.node}"
            parts.append(clause)
        return ",".join(parts)

    def describe(self) -> str:
        """One-line human-readable summary of the plan."""
        parts = [f"seed={self.seed}"]
        if self.delay is not None:
            parts.append(f"delay {self.delay.prob:.0%} (+{self.delay.extra * 1e3:g}ms)")
        if self.drop is not None:
            parts.append(
                f"drop {self.drop.prob:.0%} (<= {self.retry.max_attempts} attempts)"
            )
        for w in self.slow:
            window = "" if w.end is None else f" until t={w.end:g}s"
            parts.append(f"rank {w.rank} slow x{w.factor:g} from t={w.start:g}s{window}")
        for c in self.crashes:
            parts.append(f"rank {c.rank} crashes at iteration {c.iteration}")
        if self.flip_msg is not None:
            parts.append(f"message flips {self.flip_msg.prob:.0%}")
        for e in self.flips:
            node = "lowest owned node" if e.node is None else f"node {e.node}"
            parts.append(f"rank {e.rank} flips {node} at iteration {e.iteration}")
        return ", ".join(parts)


@dataclass
class FaultReport:
    """Aggregated fault activity of one run (summed across ranks).

    Attributes:
        messages: Point-to-point messages injected while faults were armed.
        delayed: Messages whose flight time was perturbed.
        dropped: Transmission attempts that were lost.
        retries: Resends performed by the reliable-delivery layer.
        lost: Messages abandoned after exhausting the retry budget.
        crashes: Crash events consumed by the recovery layer.
        corrupted: Transmission attempts whose payload was flipped.
        retransmits: Resends triggered by a checksum NACK (counted on the
            receiving side, where the verify-and-retransmit path runs).
        flips: In-memory node-state corruptions applied.
        repairs: Corrupted nodes surgically repaired from a replica.
    """

    messages: int = 0
    delayed: int = 0
    dropped: int = 0
    retries: int = 0
    lost: int = 0
    crashes: int = 0
    corrupted: int = 0
    retransmits: int = 0
    flips: int = 0
    repairs: int = 0

    def summary(self) -> str:
        """Human-readable one-liner for CLI output."""
        line = (
            f"{self.messages} messages: {self.delayed} delayed, "
            f"{self.dropped} attempts dropped ({self.retries} retries, "
            f"{self.lost} lost), {self.crashes} crashes"
        )
        if self.corrupted or self.retransmits or self.flips or self.repairs:
            line += (
                f"; integrity: {self.corrupted} attempts corrupted "
                f"({self.retransmits} retransmits), {self.flips} memory flips "
                f"({self.repairs} repaired from replicas)"
            )
        return line


class _RankCounters:
    """Per-rank fault counters (owned by that rank's thread; no locking)."""

    __slots__ = (
        "messages",
        "delayed",
        "dropped",
        "retries",
        "lost",
        "crashes",
        "corrupted",
        "retransmits",
        "flips",
        "repairs",
    )

    def __init__(self) -> None:
        self.messages = 0
        self.delayed = 0
        self.dropped = 0
        self.retries = 0
        self.lost = 0
        self.crashes = 0
        self.corrupted = 0
        self.retransmits = 0
        self.flips = 0
        self.repairs = 0


class FaultState:
    """Per-run mutable runtime state for a :class:`FaultPlan`.

    One instance exists per :meth:`SimCluster.run <repro.mpi.runtime.
    SimCluster.run>` invocation.  Each rank owns a private PRNG stream and
    counter block, touched only from that rank's thread -- determinism and
    thread-safety both follow from the partitioning.
    """

    def __init__(self, plan: FaultPlan, nprocs: int) -> None:
        plan.validate_ranks(nprocs)
        self.plan = plan
        self.nprocs = nprocs
        self._rngs = [
            random.Random(plan.seed * 1_000_003 + rank + 1) for rank in range(nprocs)
        ]
        self._counters = [_RankCounters() for _ in range(nprocs)]

    # ------------------------------------------------------------------ #
    # Decision draws (called from the owning rank's thread only)
    # ------------------------------------------------------------------ #

    def count_message(self, rank: int) -> None:
        """Record one message injection by ``rank``."""
        self._counters[rank].messages += 1

    def next_drop(self, rank: int) -> bool:
        """Draw the drop decision for ``rank``'s next transmission attempt."""
        drop = self.plan.drop
        if drop is None or drop.prob == 0.0:
            return False
        fired = self._rngs[rank].random() < drop.prob
        if fired:
            self._counters[rank].dropped += 1
        return fired

    def next_delay(self, rank: int) -> float:
        """Extra flight seconds for ``rank``'s next delivered message."""
        delay = self.plan.delay
        if delay is None or delay.prob == 0.0:
            return 0.0
        if self._rngs[rank].random() < delay.prob:
            self._counters[rank].delayed += 1
            return delay.extra
        return 0.0

    def next_corrupt(self, rank: int) -> bool:
        """Draw the payload-flip decision for ``rank``'s next transmission
        attempt (drawn on the *sending* rank in program order, like drops)."""
        flip = self.plan.flip_msg
        if flip is None or flip.prob == 0.0:
            return False
        fired = self._rngs[rank].random() < flip.prob
        if fired:
            self._counters[rank].corrupted += 1
        return fired

    def corrupt_token(self, rank: int) -> int:
        """Deterministic bit-selection token for ``rank``'s latest flip
        (the per-rank corruption counter, which advances in program order)."""
        return self._counters[rank].corrupted

    def count_retry(self, rank: int) -> None:
        """Record one resend by ``rank``."""
        self._counters[rank].retries += 1

    def count_retransmit(self, rank: int) -> None:
        """Record one checksum-NACK retransmission absorbed by ``rank``."""
        self._counters[rank].retransmits += 1

    def count_flip(self, rank: int) -> None:
        """Record one memory corruption applied on ``rank``."""
        self._counters[rank].flips += 1

    def count_repair(self, rank: int) -> None:
        """Record one replica repair of a node owned by ``rank``."""
        self._counters[rank].repairs += 1

    def count_lost(self, rank: int) -> None:
        """Record one message abandoned by ``rank``."""
        self._counters[rank].lost += 1

    def count_crash(self, rank: int) -> None:
        """Record one crash event consumed for ``rank``."""
        self._counters[rank].crashes += 1

    def compute_scale(self, rank: int, clock: float) -> float:
        """Slow-rank CPU multiplier for ``rank`` at virtual time ``clock``.

        Early-out when the plan configures no slow windows: this sits on
        every ``work()`` charge, i.e. once per graph node per iteration.
        """
        if not self.plan.slow:
            return 1.0
        return self.plan.compute_scale(rank, clock)

    # ------------------------------------------------------------------ #
    # Reporting (call after the run has joined all rank threads)
    # ------------------------------------------------------------------ #

    def report(self) -> FaultReport:
        """Sum the per-rank counters into one :class:`FaultReport`."""
        out = FaultReport()
        for c in self._counters:
            out.messages += c.messages
            out.delayed += c.delayed
            out.dropped += c.dropped
            out.retries += c.retries
            out.lost += c.lost
            out.crashes += c.crashes
            out.corrupted += c.corrupted
            out.retransmits += c.retransmits
            out.flips += c.flips
            out.repairs += c.repairs
        return out
