"""Execution backends for :class:`~repro.mpi.runtime.SimCluster`.

The simulated cluster runs every rank's program on its own OS thread (rank
programs are ordinary blocking Python functions, so each needs its own
stack).  *How* those threads are interleaved is this module's job, and the
in-thread backends make opposite trade-offs:

:class:`EventScheduler` (the default)
    Event-driven cooperative scheduling: exactly one rank thread is
    runnable at any instant, and control is baton-passed directly between
    rank threads through per-task :class:`threading.Event` objects.  There
    is no shared lock to contend on, no condition-variable broadcast, and
    no polling -- a blocked rank sleeps until the event that can actually
    unblock it (its message delivery, its barrier's completion) puts it
    back on the run queue.  Deadlock detection is *exact*: the moment the
    run queue empties while unfinished ranks remain blocked, a
    :class:`~repro.mpi.errors.DeadlockError` is raised immediately -- no
    wall-clock timeout is ever waited out.

:class:`ThreadedScheduler`
    The preemptive original: all rank threads run concurrently under the
    GIL, blocked ranks wait on one shared condition variable with a 50 ms
    re-check poll, and deadlock is inferred from a real-time inactivity
    watchdog.  It is kept because its host-level nondeterminism is a
    *feature* for the schedule-fuzzing conformance suites: the
    ``sched_jitter`` hook perturbs genuine thread races to prove virtual
    time results are schedule-independent.  The event backend has no such
    races to perturb, so fuzzing defaults to this backend.

A third backend escapes the GIL entirely:
:class:`~repro.mpi.process.ProcessScheduler` (``scheduler="process"``)
forks one worker OS process per rank over shared-memory SoA stores, with
the parent as the deterministic control-plane arbiter -- see
:mod:`repro.mpi.process`.

All backends drive the same virtual-clock/mailbox/barrier machinery in
:mod:`repro.mpi.runtime`, and all must produce bit-identical virtual
results -- the cross-backend conformance suites in
``tests/mpi/test_scheduler.py`` and ``tests/mpi/test_process_backend.py``
hold them to that.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import TYPE_CHECKING, Any, Callable, Iterable

from .errors import DeadlockError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .runtime import SimCluster

__all__ = [
    "EventScheduler",
    "SCHEDULERS",
    "SchedulerBackend",
    "ThreadedScheduler",
    "make_scheduler",
    "resolve_scheduler_name",
]

#: Recognized ``SimCluster(scheduler=...)`` values.
SCHEDULERS = ("event", "threads", "process")


class _NullGuard:
    """Stand-in lock for the cooperative backend.

    With exactly one runnable rank thread, cluster state needs no mutual
    exclusion; the guard object only preserves the ``with`` structure of
    the runtime code shared with the threaded backend.
    """

    __slots__ = ()

    def __enter__(self) -> "_NullGuard":
        return self

    def __exit__(self, *exc: Any) -> bool:
        return False


class SchedulerBackend:
    """Interface the runtime uses to run, block, and wake rank threads.

    The runtime enters ``guard()`` around every cluster-state mutation,
    calls ``wait`` to block the calling rank until a readiness probe
    succeeds, and calls ``notify`` after any state change that could
    unblock the named ranks.  ``wait``/``notify`` are always invoked with
    the guard held.
    """

    name: str

    def execute(self, runner: Callable[[int], None], nprocs: int) -> None:
        """Run ``runner(rank)`` for every rank to completion."""
        raise NotImplementedError

    def guard(self) -> Any:
        """Context manager protecting cluster state."""
        raise NotImplementedError

    def wait(
        self,
        rank: int,
        ready: Callable[[], Any],
        describe: Callable[[], str],
    ) -> Any:
        """Block ``rank`` until ``ready()`` returns non-``None``; return it.

        ``describe`` renders the deadlock diagnostic naming what the rank
        is stuck on; it is only called when a deadlock is declared.
        """
        raise NotImplementedError

    def notify(self, ranks: Iterable[int] | None = None) -> None:
        """Record progress that may unblock ``ranks`` (``None`` = anyone)."""
        raise NotImplementedError


class ThreadedScheduler(SchedulerBackend):
    """Preemptive thread-per-rank execution (the legacy backend).

    All ranks run concurrently; a blocked rank re-checks its readiness
    probe whenever the shared progress counter moves, or every
    ``poll`` seconds.  Deadlock is detected by the real-time watchdog:
    ``deadlock_timeout`` seconds of global inactivity with every
    unfinished rank blocked.  Precision is traded away for genuine host
    nondeterminism, which the schedule-fuzz suites rely on.
    """

    name = "threads"

    def __init__(
        self, cluster: "SimCluster", deadlock_timeout: float, poll: float = 0.05
    ) -> None:
        self._cluster = cluster
        self.deadlock_timeout = deadlock_timeout
        self.poll = poll
        self._lock = threading.Lock()
        self._cond = threading.Condition(self._lock)
        self._progress = 0  # bumped on every event that could unblock a waiter

    def guard(self) -> Any:
        return self._cond

    def execute(self, runner: Callable[[int], None], nprocs: int) -> None:
        threads = [
            threading.Thread(target=runner, args=(r,), name=f"sim-rank-{r}", daemon=True)
            for r in range(nprocs)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

    def notify(self, ranks: Iterable[int] | None = None) -> None:
        # Wakeups are broadcast: precision is impossible without knowing
        # which host thread holds which wait, so every waiter re-checks.
        self._progress += 1
        self._cond.notify_all()

    def wait(
        self,
        rank: int,
        ready: Callable[[], Any],
        describe: Callable[[], str],
    ) -> Any:
        cluster = self._cluster
        state = cluster.state(rank)
        waited = 0.0
        while True:
            cluster._check_abort()
            value = ready()
            if value is not None:
                return value
            snapshot = self._progress
            state.blocked = True
            try:
                self._cond.wait(timeout=self.poll)
            finally:
                state.blocked = False
            if self._progress != snapshot:
                waited = 0.0
                continue
            waited += self.poll
            if waited >= self.deadlock_timeout and cluster._all_stuck(state):
                reason = describe()
                cluster._aborted = True
                cluster._abort_reason = reason
                self._cond.notify_all()
                raise DeadlockError(reason)


class _Task:
    """Cooperative-scheduling bookkeeping for one rank thread."""

    __slots__ = ("rank", "event", "finished", "blocked", "queued", "describe", "victim")

    def __init__(self, rank: int) -> None:
        self.rank = rank
        self.event = threading.Event()
        self.finished = False
        self.blocked = False   # parked in wait(), not on the run queue
        self.queued = False    # on the run queue awaiting the baton
        self.describe: Callable[[], str] | None = None
        self.victim = False    # designated to raise DeadlockError on resume

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        flags = "".join(
            f
            for f, on in (
                ("F", self.finished),
                ("B", self.blocked),
                ("Q", self.queued),
            )
            if on
        )
        return f"_Task(rank={self.rank}, {flags or 'running'})"


class EventScheduler(SchedulerBackend):
    """Event-driven cooperative execution of the rank threads.

    Invariant: at most one rank thread executes at any moment.  The baton
    is handed directly from the thread that blocks (or finishes) to the
    head of the FIFO run queue via that task's private event -- the only
    synchronization primitive in the whole backend.  Consequences:

    * cluster state needs no lock (``guard()`` is a no-op);
    * wakeups are precise: ``notify`` enqueues exactly the ranks that a
      delivery or barrier completion could unblock, and nobody else runs;
    * deadlock detection is exact and free: when a rank blocks (or
      finishes) with an empty run queue while unfinished ranks remain,
      *no* future event can occur -- eager sends never block, so every
      possible wakeup source is itself blocked.  The detecting waiter
      raises :class:`DeadlockError` on the spot and the abort cascade
      releases the rest.  The wall-clock watchdog and its 50 ms polls are
      gone entirely.

    The run-queue order is deterministic (seeded in rank order, appended
    in notification order), so execution -- and therefore every virtual
    outcome -- is bit-for-bit reproducible run over run.
    """

    name = "event"

    def __init__(self, cluster: "SimCluster") -> None:
        self._cluster = cluster
        self._guard = _NullGuard()
        self._tasks: list[_Task] = []
        self._run_queue: deque[int] = deque()
        self._done = threading.Event()

    def guard(self) -> Any:
        return self._guard

    # ------------------------------------------------------------------ #
    # Execution
    # ------------------------------------------------------------------ #

    def execute(self, runner: Callable[[int], None], nprocs: int) -> None:
        self._tasks = [_Task(r) for r in range(nprocs)]
        self._run_queue = deque(range(nprocs))
        for task in self._tasks:
            task.queued = True
        self._done.clear()
        threads = [
            threading.Thread(
                target=self._task_main,
                args=(task, runner),
                name=f"sim-rank-{task.rank}",
                daemon=True,
            )
            for task in self._tasks
        ]
        for t in threads:
            t.start()
        self._pass_baton()  # hand control to rank 0; all switching is task-to-task
        self._done.wait()
        for t in threads:
            t.join()

    def _task_main(self, task: _Task, runner: Callable[[int], None]) -> None:
        task.event.wait()  # first baton
        try:
            runner(task.rank)
        finally:
            task.finished = True
            task.blocked = False
            self._pass_baton()

    # ------------------------------------------------------------------ #
    # Blocking and wakeups
    # ------------------------------------------------------------------ #

    def notify(self, ranks: Iterable[int] | None = None) -> None:
        tasks = self._tasks if ranks is None else (self._tasks[r] for r in ranks)
        for task in tasks:
            if task.blocked and not task.queued:
                task.queued = True
                self._run_queue.append(task.rank)

    def wait(
        self,
        rank: int,
        ready: Callable[[], Any],
        describe: Callable[[], str],
    ) -> Any:
        cluster = self._cluster
        task = self._tasks[rank]
        state = cluster.state(rank)
        while True:
            if task.victim:
                task.victim = False
                raise DeadlockError(cluster._abort_reason or "deadlock")
            cluster._check_abort()
            value = ready()
            if value is not None:
                return value
            task.describe = describe
            task.event.clear()
            task.blocked = True
            state.blocked = True
            if not self._run_queue and self._everyone_stuck():
                # Exact deadlock: this rank just blocked, nobody is
                # runnable, and blocked ranks cannot generate events.
                task.blocked = False
                state.blocked = False
                reason = describe()
                cluster._aborted = True
                cluster._abort_reason = reason
                self.notify()  # queue the others; they resume after we raise
                raise DeadlockError(reason)
            self._pass_baton()
            task.event.wait()
            task.blocked = False
            state.blocked = False

    def _everyone_stuck(self) -> bool:
        return all(t.finished or t.blocked for t in self._tasks)

    def _pass_baton(self) -> None:
        """Hand control to the next runnable task, or wind the run down."""
        while self._run_queue:
            task = self._tasks[self._run_queue.popleft()]
            task.queued = False
            if task.finished:  # finished while queued (abort races cannot
                continue       # happen, but stay defensive)
            task.event.set()
            return
        if all(t.finished for t in self._tasks):
            self._done.set()
            return
        # A task finished (or aborted) leaving only blocked ranks behind:
        # that is a deadlock unless an abort is already draining them.
        cluster = self._cluster
        if not cluster._aborted:
            victim = next(t for t in self._tasks if not t.finished)
            reason = (
                victim.describe()
                if victim.describe is not None
                else f"deadlock: rank {victim.rank} blocked with no runnable ranks"
            )
            cluster._aborted = True
            cluster._abort_reason = reason
            victim.victim = True
        self.notify()
        if self._run_queue:
            self._pass_baton()
        else:  # pragma: no cover - unreachable: unfinished implies blocked
            self._done.set()


def resolve_scheduler_name(
    scheduler: str | None, sched_jitter: Callable[[], None] | None
) -> str:
    """Pick the backend: explicit choice wins; jitter fuzzing needs threads.

    The event backend's interleaving is deterministic by construction, so
    a ``sched_jitter`` hook would have nothing to perturb -- when the hook
    is armed and no backend was named, the preemptive backend (whose host
    races the hook exists to aggravate) is selected.
    """
    if scheduler is None:
        return "threads" if sched_jitter is not None else "event"
    if scheduler not in SCHEDULERS:
        raise ValueError(
            f"unknown scheduler {scheduler!r}; expected one of {SCHEDULERS}"
        )
    return scheduler


def make_scheduler(
    name: str, cluster: "SimCluster", deadlock_timeout: float
) -> SchedulerBackend:
    """Instantiate the named backend for ``cluster``."""
    if name == "event":
        return EventScheduler(cluster)
    if name == "threads":
        return ThreadedScheduler(cluster, deadlock_timeout)
    if name == "process":
        from .process import ProcessScheduler  # deferred: import cycle

        return ProcessScheduler(cluster, deadlock_timeout)
    raise ValueError(f"unknown scheduler {name!r}; expected one of {SCHEDULERS}")
