"""Exception types raised by the simulated MPI runtime."""

from __future__ import annotations


class MPIError(Exception):
    """Base class for all simulated-MPI errors."""


class InvalidRankError(MPIError):
    """A rank outside ``[0, size)`` was used as a source or destination."""


class InvalidTagError(MPIError):
    """A negative tag (other than ``ANY_TAG``) was used on a send."""


class DeadlockError(MPIError):
    """Every live rank is blocked and no message can make progress.

    The runtime watches a global progress counter; when all unfinished ranks
    sit in a blocking wait and the counter stops moving for the configured
    timeout, the wait is aborted with this error instead of hanging the
    test suite forever.
    """


class CommAbortedError(MPIError):
    """The cluster was aborted (peer raised, or ``Communicator.abort``)."""


class TruncationError(MPIError):
    """A received message was larger than the posted receive allows."""


class ShrinkError(MPIError):
    """``Communicator.shrink`` was called with an invalid dead-rank set
    (empty, out of range, or covering every member of the group)."""


class MessageLostError(MPIError):
    """A message was dropped by fault injection and the sender exhausted its
    retry budget (:class:`~repro.mpi.faults.RetryPolicy`) without getting a
    transmission through."""


class UnsupportedBackendError(MPIError):
    """A requested feature cannot run on the selected execution backend.

    The multiprocess backend (``scheduler="process"``) keeps node state in
    shared-memory float arrays and cannot host object-dtype stores,
    ``sched_jitter`` fuzz hooks (which cannot cross a process boundary), or
    platforms without ``fork``.  The error is raised *early* -- at cluster
    construction or platform launch -- rather than after a partial run has
    diverged from the shared segments."""
