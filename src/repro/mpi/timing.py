"""Virtual-time cost models for the simulated MPI substrate.

The paper's evaluation ran on an SGI Origin-2000 (hypercube cc-NUMA,
CRAY-link interconnect).  We do not have that machine; instead every rank of
the simulated cluster carries a *virtual clock*, and the functions here
decide how much virtual time each operation costs:

* compute grains are charged explicitly via :meth:`Communicator.work`
  (replacing the paper's dummy ``for`` loops),
* message transfers follow the classic alpha-beta (latency + size/bandwidth)
  model, plus small per-message CPU overheads on the sender and receiver
  (the "communication overhead" the thesis measures in section 5.4),
* collectives are built from point-to-point messages, so their cost emerges
  from the same model.

``ORIGIN2000`` is calibrated so that single-processor runtimes match the
paper's tables (those are pure ``grain x nodes x iterations``) and so that
fine-grained (0.3 ms) runs stop scaling around 8-16 processors, which is the
saturation the thesis observed.
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass, field, fields, is_dataclass
from math import ceil, log2
from typing import Any

__all__ = [
    "MachineModel",
    "TopologyMachineModel",
    "ORIGIN2000",
    "IDEAL",
    "ETHERNET_CLUSTER",
    "estimate_nbytes",
]

#: Nominal encoded size of a scalar (int/float/bool) in a message, bytes.
_SCALAR_NBYTES = 8

#: Flat per-container overhead used by :func:`estimate_nbytes`, bytes.
_CONTAINER_NBYTES = 16


def estimate_nbytes(obj: Any) -> int:
    """Estimate the wire size of a message payload in bytes.

    The estimate is intentionally simple and deterministic: scalars count 8
    bytes (as they would in the C structs the thesis commits with
    ``MPI_Type_struct``), containers add a small header plus their items,
    NumPy arrays report their true buffer size.  Anything unrecognized falls
    back to its pickle length, which is an upper bound on what a generic
    object transport would ship.
    """
    if obj is None:
        return 0
    if isinstance(obj, bool | int | float | complex):
        return _SCALAR_NBYTES
    if isinstance(obj, bytes | bytearray | memoryview):
        return len(obj)
    if isinstance(obj, str):
        return len(obj.encode("utf-8", errors="replace"))
    nbytes = getattr(obj, "nbytes", None)
    if isinstance(nbytes, int):  # numpy arrays and friends
        return nbytes
    if isinstance(obj, tuple | list | set | frozenset):
        return _CONTAINER_NBYTES + sum(estimate_nbytes(item) for item in obj)
    if isinstance(obj, dict):
        return _CONTAINER_NBYTES + sum(
            estimate_nbytes(k) + estimate_nbytes(v) for k, v in obj.items()
        )
    if is_dataclass(obj) and not isinstance(obj, type):
        return _CONTAINER_NBYTES + sum(
            estimate_nbytes(getattr(obj, f.name)) for f in fields(obj)
        )
    try:
        return len(pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL))
    except Exception:
        return _CONTAINER_NBYTES


@dataclass(frozen=True)
class MachineModel:
    """Cost model for one simulated parallel machine.

    Parameters mirror the usual LogP-style decomposition:

    Attributes:
        name: Human-readable preset name.
        latency: One-way network latency per message, seconds (alpha).
        bandwidth: Link bandwidth, bytes/second (1/beta).
        send_overhead: CPU time charged to the *sender* per message
            (argument marshalling, descriptor setup).
        recv_overhead: CPU time charged to the *receiver* per message.
        per_byte_cpu: CPU pack/unpack cost per payload byte, charged on both
            ends on top of the overheads (the thesis's dominant
            "communication overhead" category scales with buffer length).
        barrier_latency: Per-tree-level cost of a barrier.
        heartbeat_interval: Period of the (piggybacked) liveness heartbeats
            the failure detector rides on, seconds of virtual time.
        heartbeat_miss: Consecutive missed heartbeats before a rank is
            suspected dead (the detector's timeout is
            ``heartbeat_interval * heartbeat_miss``).
        checksum_overhead: Fixed CPU cost of computing or verifying one
            message checksum (the integrity layer's transport tier).
        checksum_byte_cpu: Per-payload-byte CPU cost of checksumming
            (CRC-class throughput, slower than a plain copy).
        digest_overhead: Fixed CPU cost of digesting one node's committed
            state for the per-superstep partition digest.
        digest_byte_cpu: Per-byte CPU cost of the state digest.
        repair_overhead: Fixed bookkeeping cost of splicing a replica's
            value over a corrupted node (on top of the priced fetch).
    """

    name: str = "generic"
    latency: float = 20e-6
    bandwidth: float = 100e6
    send_overhead: float = 8e-6
    recv_overhead: float = 8e-6
    per_byte_cpu: float = 4e-9
    barrier_latency: float = 15e-6
    heartbeat_interval: float = 2e-3
    heartbeat_miss: int = 3
    checksum_overhead: float = 0.5e-6
    checksum_byte_cpu: float = 1.5e-9
    digest_overhead: float = 0.5e-6
    digest_byte_cpu: float = 1.5e-9
    repair_overhead: float = 2e-6

    def transfer_time(self, nbytes: int) -> float:
        """Network flight time of a message of ``nbytes`` payload bytes."""
        return self.latency + nbytes / self.bandwidth

    def sender_cpu(self, nbytes: int) -> float:
        """CPU time the sender spends injecting a message."""
        return self.send_overhead + nbytes * self.per_byte_cpu

    def receiver_cpu(self, nbytes: int) -> float:
        """CPU time the receiver spends draining a message."""
        return self.recv_overhead + nbytes * self.per_byte_cpu

    def transfer_time_between(self, nbytes: int, src: int, dest: int) -> float:
        """Flight time from rank ``src`` to ``dest``.

        The base model is topology-blind; :class:`TopologyMachineModel`
        overrides this with hop-distance-dependent latency.
        """
        return self.transfer_time(nbytes)

    def barrier_time(self, nprocs: int) -> float:
        """Cost of a barrier across ``nprocs`` ranks (log-tree dissemination)."""
        if nprocs <= 1:
            return 0.0
        return self.barrier_latency * ceil(log2(nprocs))

    def detection_time(self, nprocs: int) -> float:
        """Virtual time for ``nprocs`` survivors to agree a rank is dead.

        Two additive terms, both deterministic:

        * the local timeout -- ``heartbeat_miss`` consecutive heartbeat
          periods must elapse before any single rank suspects the failure;
        * a dissemination round -- survivors confirm the suspicion with a
          log-tree exchange of small (one scalar) control messages, each
          paying the usual alpha-beta + overhead cost.

        Every survivor charges the same amount, which keeps the detector
        schedule-independent: detection is a property of the *plan*, not of
        which host thread happened to notice first.
        """
        timeout = self.heartbeat_interval * self.heartbeat_miss
        if nprocs <= 1:
            return timeout
        rounds = ceil(log2(nprocs))
        per_round = (
            self.transfer_time(_SCALAR_NBYTES)
            + self.sender_cpu(_SCALAR_NBYTES)
            + self.receiver_cpu(_SCALAR_NBYTES)
        )
        return timeout + rounds * per_round

    def checksum_time(self, nbytes: int) -> float:
        """CPU time to compute (sender) or verify (receiver) a message
        checksum over ``nbytes`` of payload."""
        return self.checksum_overhead + nbytes * self.checksum_byte_cpu

    def digest_time(self, nbytes: int) -> float:
        """CPU time to digest ``nbytes`` of committed node state."""
        return self.digest_overhead + nbytes * self.digest_byte_cpu

    def retransmit_penalty(self, nbytes: int) -> float:
        """Virtual time one corrupted transmission attempt costs the
        receiver: verify the bad checksum, NACK the sender (one scalar
        control message at the usual alpha-beta + overhead price), and wait
        out the full retransmission of the payload.
        """
        nack = (
            self.sender_cpu(_SCALAR_NBYTES)
            + self.transfer_time(_SCALAR_NBYTES)
            + self.receiver_cpu(_SCALAR_NBYTES)
        )
        resend = self.sender_cpu(nbytes) + self.transfer_time(nbytes)
        return self.checksum_time(nbytes) + nack + resend

    def repair_time(self, nbytes: int) -> float:
        """CPU time to splice a replica's value over a corrupted node and
        re-digest it (the point-to-point fetch itself is priced through the
        normal message path)."""
        return self.repair_overhead + self.digest_time(nbytes)

    def ack_timeout(self, nbytes: int) -> float:
        """Default per-attempt ack timeout of a reliable-delivery layer.

        When fault injection drops messages, the sending communicator waits
        this long (virtual time) before resending -- unless the
        :class:`~repro.mpi.faults.RetryPolicy` pins an explicit timeout.
        The classic rule of thumb: a round trip plus a generous margin of
        per-message latencies.
        """
        return 2.0 * self.transfer_time(nbytes) + 8.0 * self.latency

    def with_overrides(self, **kwargs: Any) -> "MachineModel":
        """Return a copy of this model with selected fields replaced."""
        current = {f.name: getattr(self, f.name) for f in fields(self)}
        current.update(kwargs)
        return MachineModel(**current)


@dataclass(frozen=True)
class TopologyMachineModel(MachineModel):
    """A machine whose message latency grows with interconnect distance.

    Wormhole-routed machines like the Origin-2000 hypercube add a modest
    per-hop latency; modelling it is what lets architecture-aware
    partitioners (PaGrid) convert a better part-to-processor *mapping* into
    actual runtime, which uniform-cost models hide.

    Attributes:
        distances: ``distances[src][dest]`` interconnect distance in hops
            (or weighted link cost); ranks beyond the table fall back to
            distance 1.
        hop_latency_factor: Extra latency fraction per hop beyond the first
            (0.35 means a 3-hop message pays 1.7x the base latency).
    """

    distances: tuple[tuple[float, ...], ...] = ()
    hop_latency_factor: float = 0.35

    @classmethod
    def wrap(
        cls,
        base: MachineModel,
        procgraph,
        hop_latency_factor: float = 0.35,
    ) -> "TopologyMachineModel":
        """Attach a processor network graph's distances to a base model.

        ``procgraph`` is anything with ``nprocs`` and ``distance(i, j)`` --
        in practice :class:`repro.partitioning.procgraph.ProcessorGraph`
        (taken duck-typed to keep this module free of upward imports).
        """
        p = procgraph.nprocs
        table = tuple(
            tuple(float(procgraph.distance(i, j)) for j in range(p)) for i in range(p)
        )
        values = {f.name: getattr(base, f.name) for f in fields(MachineModel)}
        values["name"] = f"{base.name}+topology"
        return cls(**values, distances=table, hop_latency_factor=hop_latency_factor)

    def hop_distance(self, src: int, dest: int) -> float:
        """Distance between two ranks (1 when outside the table)."""
        if src < len(self.distances) and dest < len(self.distances[src]):
            return self.distances[src][dest]
        return 1.0

    def transfer_time_between(self, nbytes: int, src: int, dest: int) -> float:
        hops = self.hop_distance(src, dest)
        scale = 1.0 + self.hop_latency_factor * max(0.0, hops - 1.0)
        return self.latency * scale + nbytes / self.bandwidth


#: Calibrated to the paper's SGI Origin-2000 results: ~20 us latency-class
#: interconnect with noticeable per-message software overhead, so 0.3 ms
#: grains stop scaling near p = 8..16 on 32..96-node graphs (Tables 2-6)
#: while 3 ms grains keep scaling (Figures 12/17).
ORIGIN2000 = MachineModel(
    name="origin2000",
    latency=30e-6,
    bandwidth=160e6,
    send_overhead=20e-6,
    recv_overhead=20e-6,
    per_byte_cpu=6e-9,
    barrier_latency=30e-6,
)

#: Zero-cost network: useful in unit tests to isolate compute accounting.
IDEAL = MachineModel(
    name="ideal",
    latency=0.0,
    bandwidth=float("inf"),
    send_overhead=0.0,
    recv_overhead=0.0,
    per_byte_cpu=0.0,
    barrier_latency=0.0,
    heartbeat_interval=0.0,
    checksum_overhead=0.0,
    checksum_byte_cpu=0.0,
    digest_overhead=0.0,
    digest_byte_cpu=0.0,
    repair_overhead=0.0,
)

#: A slower commodity-cluster profile for ablation studies.
ETHERNET_CLUSTER = MachineModel(
    name="ethernet",
    latency=60e-6,
    bandwidth=12.5e6,
    send_overhead=80e-6,
    recv_overhead=80e-6,
    per_byte_cpu=20e-9,
    barrier_latency=70e-6,
)
