"""Deterministic failure detection over the virtual-time substrate.

A real ULFM-style runtime discovers failures asynchronously: heartbeats stop
arriving, a timeout expires, survivors gossip the suspicion and agree.  On
the virtual-time simulator the *schedule* of crashes is part of the seeded
:class:`~repro.mpi.faults.FaultPlan`, so detection can be modelled exactly
without any host-time races: every rank consults the same plan at the same
BSP boundary and reaches the same verdict, while the *cost* of the
real-world protocol (heartbeat timeout + log-tree agreement round) is
charged to the virtual clocks through
:meth:`~repro.mpi.timing.MachineModel.detection_time`.

This keeps the two halves of failure detection cleanly separated:

* **what** failed and **when** -- a pure function of the plan, identical on
  every rank and every host schedule (the schedule-fuzz suite depends on
  this);
* **how long** noticing it takes -- a machine-model property, so detection
  latency shows up in the recovery phase accounting just like any other
  communication cost.
"""

from __future__ import annotations

from dataclasses import dataclass

from .faults import CrashEvent, FaultPlan

__all__ = ["FailureDetector", "DetectedFailure"]


@dataclass(frozen=True)
class DetectedFailure:
    """One failure verdict produced by the detector at a BSP boundary.

    Attributes:
        iteration: 1-based iteration at whose start the failure surfaced.
        events: The crash events detected, ascending by world rank.
        detection_cost: Virtual seconds each *survivor* charges for the
            heartbeat timeout plus the agreement round.
    """

    iteration: int
    events: tuple[CrashEvent, ...]
    detection_cost: float


class FailureDetector:
    """Replays a fault plan's crash schedule as deterministic detections.

    One instance lives on each rank (they are cheap and independent);
    because every instance reads the same plan and is polled at the same
    iteration boundaries, all ranks agree on every verdict without
    exchanging messages.  A crash aimed at an already-dead rank is ignored
    -- a rank can only die once.

    Args:
        plan: The armed fault plan (may be ``None``: detector never fires).
        machine: Cost model used to price detection latency.
        nprocs: World size the plan applies to; prices the agreement round.
    """

    def __init__(self, plan: FaultPlan | None, machine, nprocs: int) -> None:
        self._plan = plan
        self._machine = machine
        self._nprocs = nprocs
        self._dead: set[int] = set()
        # The plan's crash list is fixed, but poll() runs at every iteration
        # boundary on every rank; bucket the events by iteration once so a
        # quiet boundary is a single dict miss instead of a list scan.
        self._by_iteration: dict[int, list] = {}
        if plan is not None:
            for event in plan.crashes:
                self._by_iteration.setdefault(event.iteration, []).append(event)

    @property
    def dead_ranks(self) -> frozenset[int]:
        """World ranks detected dead so far."""
        return frozenset(self._dead)

    def poll(self, iteration: int) -> DetectedFailure | None:
        """Check the plan for new crashes at the start of ``iteration``.

        Returns ``None`` when nothing (new) failed.  Crashes of ranks that
        already died earlier are swallowed; the surviving-rank count used to
        price the agreement round excludes the newly dead.
        """
        scheduled = self._by_iteration.get(iteration)
        if not scheduled:
            return None
        fresh = tuple(
            sorted(
                (e for e in scheduled if e.rank not in self._dead),
                key=lambda e: e.rank,
            )
        )
        if not fresh:
            return None
        self._dead.update(e.rank for e in fresh)
        survivors = self._nprocs - len(self._dead)
        cost = self._machine.detection_time(max(1, survivors))
        return DetectedFailure(iteration=iteration, events=fresh, detection_cost=cost)
