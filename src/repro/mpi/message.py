"""Message, status, request, and mailbox objects for the simulated MPI
runtime."""

from __future__ import annotations

import itertools
from collections import deque
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Iterable

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .communicator import Communicator

__all__ = [
    "ANY_SOURCE",
    "ANY_TAG",
    "Mailbox",
    "Message",
    "Status",
    "Request",
    "SendRequest",
    "RecvRequest",
]

#: Wildcard source rank for receives (mirrors ``MPI_ANY_SOURCE``).
ANY_SOURCE = -1

#: Wildcard tag for receives (mirrors ``MPI_ANY_TAG``).
ANY_TAG = -1

_seq = itertools.count()


@dataclass
class Message:
    """One in-flight message inside the simulated network.

    Attributes:
        src: Sending rank (communicator-local).
        dest: Receiving rank (communicator-local).
        tag: User (or internal collective) tag.
        comm_id: Identifier of the communicator the message travels on, so
            split/dup'ed communicators never intercept each other's traffic.
        payload: The Python object being transported.
        nbytes: Estimated wire size, drives the cost model.
        send_time: Sender's virtual clock when the message was injected.
        arrival_time: Virtual time at which the payload is available at the
            destination (``send_time + transfer_time``).
        seq: Global injection sequence number; used only as a deterministic
            tie-break for ``ANY_SOURCE`` matching.
        corrupt_attempts: On a checksummed transport, how many consecutive
            transmission attempts of this message were corrupted in flight
            (each one costs the receiver a verify + NACK + retransmit round
            before the clean copy is accepted).  The payload itself stays
            clean -- corruption never escapes a checksummed link.
    """

    src: int
    dest: int
    tag: int
    comm_id: int
    payload: Any
    nbytes: int
    send_time: float
    arrival_time: float
    seq: int = field(default_factory=lambda: next(_seq))
    corrupt_attempts: int = 0

    def matches(self, source: int, tag: int, comm_id: int) -> bool:
        """Whether this message satisfies a receive posted with the triple."""
        if comm_id != self.comm_id:
            return False
        if source != ANY_SOURCE and source != self.src:
            return False
        if tag != ANY_TAG and tag != self.tag:
            return False
        return True


class Mailbox:
    """Indexed per-rank message store with O(1)-ish receive matching.

    Messages are bucketed into per-``(comm_id, src, tag)`` deques at
    delivery time, so the four receive-matching shapes cost:

    * named source, named tag -- head of one deque, O(1);
    * named source, ``ANY_TAG`` -- min over that source's *stream heads*
      by injection sequence (a sender's ``seq`` values are assigned in its
      program order, so this is exactly the sender's send order);
    * ``ANY_SOURCE`` -- min over per-source stream heads by
      ``(arrival_time, src)``, the runtime's deterministic wildcard rule.

    All costs scale with the number of *active streams*, never with the
    number of queued messages -- the flat-list predecessor rescanned every
    message on every wakeup, which dominated the runtime's profile on
    message-heavy workloads.  Matching results are bit-identical to the
    old linear scan: per-stream deque order is delivery order, which for a
    single ``(src, tag)`` stream is MPI's non-overtaking send order.
    """

    __slots__ = ("_comms", "_size")

    def __init__(self) -> None:
        # comm_id -> src -> tag -> deque[Message] (deques are never empty).
        self._comms: dict[Any, dict[int, dict[int, deque[Message]]]] = {}
        self._size = 0

    def __len__(self) -> int:
        return self._size

    def __bool__(self) -> bool:
        return self._size > 0

    def __iter__(self):
        """All queued messages (diagnostics only; no meaningful order)."""
        for by_src in self._comms.values():
            for by_tag in by_src.values():
                for stream in by_tag.values():
                    yield from stream

    def append(self, msg: Message) -> None:
        """File ``msg`` into its ``(comm_id, src, tag)`` stream."""
        self._comms.setdefault(msg.comm_id, {}).setdefault(msg.src, {}).setdefault(
            msg.tag, deque()
        ).append(msg)
        self._size += 1

    def clear(self) -> None:
        """Drop every queued message."""
        self._comms.clear()
        self._size = 0

    @staticmethod
    def _head(by_tag: dict[int, deque[Message]], tag: int) -> Message | None:
        """Earliest-sent message of one source matching ``tag``."""
        if tag != ANY_TAG:
            stream = by_tag.get(tag)
            return stream[0] if stream else None
        best: Message | None = None
        for stream in by_tag.values():
            head = stream[0]
            if best is None or head.seq < best.seq:
                best = head
        return best

    def take(
        self, source: int, tag: int, comm_id: Any, consume: bool = True
    ) -> Message | None:
        """Pop (or peek at, with ``consume=False``) the best match.

        Named source: FIFO within that source's streams.  ``ANY_SOURCE``:
        the per-source heads compete on ``(arrival_time, src)`` -- virtual
        time, never host time, so the choice is schedule-independent.
        """
        by_src = self._comms.get(comm_id)
        if not by_src:
            return None
        if source != ANY_SOURCE:
            by_tag = by_src.get(source)
            if not by_tag:
                return None
            msg = self._head(by_tag, tag)
        else:
            msg = None
            for by_tag in by_src.values():
                head = self._head(by_tag, tag)
                if head is not None and (
                    msg is None
                    or (head.arrival_time, head.src) < (msg.arrival_time, msg.src)
                ):
                    msg = head
        if msg is None or not consume:
            return msg
        self._pop(msg)
        return msg

    def _pop(self, msg: Message) -> None:
        """Remove the head of ``msg``'s stream (``msg`` itself) and prune
        emptied index levels so wildcard scans never visit dead streams."""
        by_src = self._comms[msg.comm_id]
        by_tag = by_src[msg.src]
        stream = by_tag[msg.tag]
        stream.popleft()
        self._size -= 1
        if not stream:
            del by_tag[msg.tag]
            if not by_tag:
                del by_src[msg.src]
                if not by_src:
                    del self._comms[msg.comm_id]

    def sources_with(self, comm_id: Any, tag: int) -> list[int]:
        """Sources holding at least one queued message for ``(comm_id, tag)``.

        The delta shadow exchange elides empty sends, so after a barrier a
        receiver cannot derive its sender set from the graph topology -- it
        asks the mailbox instead.  Sends are eagerly buffered at injection
        time, which makes this query deterministic once every peer's sends
        of the sweep happen-before the barrier release.
        """
        by_src = self._comms.get(comm_id)
        if not by_src:
            return []
        return sorted(src for src, by_tag in by_src.items() if tag in by_tag)

    def purge(self, comm_id: Any, srcs: Iterable[int]) -> int:
        """Drop every message from ``srcs`` on ``comm_id``; return count.

        Quarantine support: a whole source's bucket is unlinked in one
        dictionary pop instead of rebuilding a flat list."""
        by_src = self._comms.get(comm_id)
        if not by_src:
            return 0
        dropped = 0
        for src in srcs:
            by_tag = by_src.pop(src, None)
            if by_tag:
                dropped += sum(len(stream) for stream in by_tag.values())
        if not by_src:
            del self._comms[comm_id]
        self._size -= dropped
        return dropped


@dataclass
class Status:
    """Completion information for a receive (mirrors ``MPI_Status``)."""

    source: int = ANY_SOURCE
    tag: int = ANY_TAG
    nbytes: int = 0

    def update_from(self, msg: Message) -> None:
        """Populate the fields from a matched message."""
        self.source = msg.src
        self.tag = msg.tag
        self.nbytes = msg.nbytes


class Request:
    """Base class for nonblocking-operation handles."""

    def wait(self, status: Status | None = None) -> Any:
        """Block until the operation completes; return the received payload
        (receives) or ``None`` (sends)."""
        raise NotImplementedError

    def test(self, status: Status | None = None) -> tuple[bool, Any]:
        """Non-blocking completion probe: ``(done, payload-or-None)``."""
        raise NotImplementedError

    def cancel(self) -> None:
        """Cancel the request if it has not completed (best effort)."""
        raise NotImplementedError


class SendRequest(Request):
    """Handle for ``isend``.

    The simulated network is eagerly buffered: the payload is copied into the
    destination mailbox at injection time, so a send request is complete the
    moment it is created.  ``wait`` therefore never blocks -- exactly the
    behaviour the platform relies on when it fires ``MPI_Isend`` for every
    neighbouring processor before doing any receives (Figure 8).
    """

    def __init__(self, msg: Message) -> None:
        self._msg = msg

    def wait(self, status: Status | None = None) -> None:
        if status is not None:
            status.source = self._msg.src
            status.tag = self._msg.tag
            status.nbytes = self._msg.nbytes
        return None

    def test(self, status: Status | None = None) -> tuple[bool, Any]:
        self.wait(status)
        return True, None

    def cancel(self) -> None:  # already delivered; cancelling is a no-op
        return None


class RecvRequest(Request):
    """Handle for ``irecv``.

    Completion is deferred until ``wait``/``test``: the matching message (if
    any) is pulled from the mailbox at that point, and the receiver's clock
    advances to ``max(now, arrival)`` -- which is precisely what lets the
    overlapped Figure-8a pipeline hide transfer time behind the internal-node
    computation.
    """

    def __init__(self, comm: "Communicator", source: int, tag: int) -> None:
        self._comm = comm
        self._source = source
        self._tag = tag
        self._done = False
        self._payload: Any = None
        self._cancelled = False

    def wait(self, status: Status | None = None) -> Any:
        if self._cancelled:
            return None
        if not self._done:
            self._payload = self._comm._complete_recv(self._source, self._tag, status)
            self._done = True
        elif status is not None:
            # Status was already consumed on the first wait; re-waits keep it.
            pass
        return self._payload

    def test(self, status: Status | None = None) -> tuple[bool, Any]:
        if self._cancelled:
            return True, None
        if self._done:
            return True, self._payload
        payload, ok = self._comm._try_recv(self._source, self._tag, status)
        if ok:
            self._done = True
            self._payload = payload
            return True, payload
        return False, None

    def cancel(self) -> None:
        if not self._done:
            self._cancelled = True
