"""Message, status, and request objects for the simulated MPI runtime."""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .communicator import Communicator

__all__ = ["ANY_SOURCE", "ANY_TAG", "Message", "Status", "Request", "SendRequest", "RecvRequest"]

#: Wildcard source rank for receives (mirrors ``MPI_ANY_SOURCE``).
ANY_SOURCE = -1

#: Wildcard tag for receives (mirrors ``MPI_ANY_TAG``).
ANY_TAG = -1

_seq = itertools.count()


@dataclass
class Message:
    """One in-flight message inside the simulated network.

    Attributes:
        src: Sending rank (communicator-local).
        dest: Receiving rank (communicator-local).
        tag: User (or internal collective) tag.
        comm_id: Identifier of the communicator the message travels on, so
            split/dup'ed communicators never intercept each other's traffic.
        payload: The Python object being transported.
        nbytes: Estimated wire size, drives the cost model.
        send_time: Sender's virtual clock when the message was injected.
        arrival_time: Virtual time at which the payload is available at the
            destination (``send_time + transfer_time``).
        seq: Global injection sequence number; used only as a deterministic
            tie-break for ``ANY_SOURCE`` matching.
        corrupt_attempts: On a checksummed transport, how many consecutive
            transmission attempts of this message were corrupted in flight
            (each one costs the receiver a verify + NACK + retransmit round
            before the clean copy is accepted).  The payload itself stays
            clean -- corruption never escapes a checksummed link.
    """

    src: int
    dest: int
    tag: int
    comm_id: int
    payload: Any
    nbytes: int
    send_time: float
    arrival_time: float
    seq: int = field(default_factory=lambda: next(_seq))
    corrupt_attempts: int = 0

    def matches(self, source: int, tag: int, comm_id: int) -> bool:
        """Whether this message satisfies a receive posted with the triple."""
        if comm_id != self.comm_id:
            return False
        if source != ANY_SOURCE and source != self.src:
            return False
        if tag != ANY_TAG and tag != self.tag:
            return False
        return True


@dataclass
class Status:
    """Completion information for a receive (mirrors ``MPI_Status``)."""

    source: int = ANY_SOURCE
    tag: int = ANY_TAG
    nbytes: int = 0

    def update_from(self, msg: Message) -> None:
        """Populate the fields from a matched message."""
        self.source = msg.src
        self.tag = msg.tag
        self.nbytes = msg.nbytes


class Request:
    """Base class for nonblocking-operation handles."""

    def wait(self, status: Status | None = None) -> Any:
        """Block until the operation completes; return the received payload
        (receives) or ``None`` (sends)."""
        raise NotImplementedError

    def test(self, status: Status | None = None) -> tuple[bool, Any]:
        """Non-blocking completion probe: ``(done, payload-or-None)``."""
        raise NotImplementedError

    def cancel(self) -> None:
        """Cancel the request if it has not completed (best effort)."""
        raise NotImplementedError


class SendRequest(Request):
    """Handle for ``isend``.

    The simulated network is eagerly buffered: the payload is copied into the
    destination mailbox at injection time, so a send request is complete the
    moment it is created.  ``wait`` therefore never blocks -- exactly the
    behaviour the platform relies on when it fires ``MPI_Isend`` for every
    neighbouring processor before doing any receives (Figure 8).
    """

    def __init__(self, msg: Message) -> None:
        self._msg = msg

    def wait(self, status: Status | None = None) -> None:
        if status is not None:
            status.source = self._msg.src
            status.tag = self._msg.tag
            status.nbytes = self._msg.nbytes
        return None

    def test(self, status: Status | None = None) -> tuple[bool, Any]:
        self.wait(status)
        return True, None

    def cancel(self) -> None:  # already delivered; cancelling is a no-op
        return None


class RecvRequest(Request):
    """Handle for ``irecv``.

    Completion is deferred until ``wait``/``test``: the matching message (if
    any) is pulled from the mailbox at that point, and the receiver's clock
    advances to ``max(now, arrival)`` -- which is precisely what lets the
    overlapped Figure-8a pipeline hide transfer time behind the internal-node
    computation.
    """

    def __init__(self, comm: "Communicator", source: int, tag: int) -> None:
        self._comm = comm
        self._source = source
        self._tag = tag
        self._done = False
        self._payload: Any = None
        self._cancelled = False

    def wait(self, status: Status | None = None) -> Any:
        if self._cancelled:
            return None
        if not self._done:
            self._payload = self._comm._complete_recv(self._source, self._tag, status)
            self._done = True
        elif status is not None:
            # Status was already consumed on the first wait; re-waits keep it.
            pass
        return self._payload

    def test(self, status: Status | None = None) -> tuple[bool, Any]:
        if self._cancelled:
            return True, None
        if self._done:
            return True, self._payload
        payload, ok = self._comm._try_recv(self._source, self._tag, status)
        if ok:
            self._done = True
            self._payload = payload
            return True, payload
        return False, None

    def cancel(self) -> None:
        if not self._done:
            self._cancelled = True
