"""Shared-memory primitives for the multiprocess execution backend.

Three building blocks, all over named POSIX ``multiprocessing.shared_memory``
segments:

* :class:`SharedSegment` -- segment lifecycle.  The creator owns the name
  and unlinks it; attachers map an existing name read-write.  Both sides
  install :func:`weakref.finalize` guards so a segment cannot outlive the
  Python objects that know about it.  The whole fork tree shares one
  ``resource_tracker`` process (started eagerly via :func:`ensure_tracker`
  before the first fork) whose cache is a *set*, so the duplicate
  registration CPython 3.11 makes on attach collapses into the creator's
  and exactly one ``unlink`` -- from whichever process performs it --
  balances the books.

* :class:`ShadowRing` -- a single-producer/single-consumer ring of
  ``(gid, value)`` halo records, one per directed worker pair.  The
  producer copies the shadow payload into two parallel ``int64``/``float64``
  arrays and ships a tiny :class:`RingRef` descriptor through the control
  pipe instead of pickling the records; the consumer slices the arrays
  back out.  Two monotonically increasing sequence counters live in the
  segment header: ``head`` (records produced) and ``tail`` (records
  retired).  The descriptor travelling through the (synchronizing) pipe
  establishes the producer->consumer happens-before edge, so the counters
  only guard *space reclamation*: the producer refuses a put that would
  overrun un-retired records and the caller falls back to the pickle path.
  Consumption can complete out of order (a receiver may match tag B before
  tag A); the consumer retires spans and advances ``tail`` over the
  contiguous completed prefix.

* :class:`StoreBlock` / :class:`SharedStoreAllocator` -- one segment
  holding all of a rank's :class:`~repro.core.soastore.SoAStore` arrays,
  laid out back to back from the store's exported array specs.  The store
  constructs its numpy arrays directly over the segment buffer
  (construct-over-existing-buffer mode); growth allocates a new
  generation, copies, and releases the old one.  :meth:`StoreBlock.attach`
  rebuilds the same views from another process for inspection.

Crash safety: every creator registers its segment names with the parent
broker, and the parent force-unlinks every registered name (plus anything
matching the run prefix under ``/dev/shm``) after the workers are joined --
so a ``SIGKILL``-ed worker cannot leak segments.
"""

from __future__ import annotations

import os
import secrets
import time
import weakref
from dataclasses import dataclass
from multiprocessing import resource_tracker, shared_memory
from typing import Any, Callable, Iterable, Sequence

import numpy as np

from .errors import CommAbortedError

__all__ = [
    "CollectiveBlock",
    "RingRef",
    "SharedSegment",
    "SharedStoreAllocator",
    "ShadowRing",
    "StoreBlock",
    "ensure_tracker",
    "force_unlink",
    "is_shadow_payload",
    "leaked_segments",
    "make_run_prefix",
    "unlink_prefix",
]

#: Fewest records for which the ring fast path beats pickling the tuple.
FASTPATH_MIN_RECORDS = 4

#: Default per-edge ring capacity, records (16 bytes each -> 512 KiB).
DEFAULT_RING_CAPACITY = 1 << 15

_HEADER_SLOTS = 2  # head, tail -- int64 each
_HEADER_BYTES = _HEADER_SLOTS * 8


def make_run_prefix() -> str:
    """Unique, parseable segment-name prefix for one backend execution."""
    return f"ic2mpi-{os.getpid()}-{secrets.token_hex(4)}"


def ensure_tracker() -> None:
    """Start the ``resource_tracker`` daemon *before* forking workers.

    Forked children inherit the already-running tracker, so every
    register/unregister in the tree lands in one shared cache.  Without
    this, the first worker to create a segment would lazily spawn its own
    tracker, which then "cleans up" (unlinks!) the segment the moment the
    worker exits."""
    resource_tracker.ensure_running()


class SharedSegment:
    """One named shared-memory segment with deterministic cleanup.

    Args:
        name: Segment name (no leading slash).
        size: Byte size; required when creating.
        create: Create-and-own (the owner unlinks) vs attach-to-existing.
    """

    def __init__(self, name: str, size: int = 0, create: bool = False) -> None:
        self.name = name
        self.owner = create
        self._shm = shared_memory.SharedMemory(name=name, create=create, size=size)
        # CPython 3.11 registers on *attach* too; with one fork-shared
        # tracker whose cache is a set, the duplicate collapses into the
        # creator's registration and the single unlink retires it.
        self._finalizer = weakref.finalize(
            self, _finalize_segment, self._shm, create
        )

    @property
    def buf(self) -> memoryview:
        return self._shm.buf

    @property
    def size(self) -> int:
        return self._shm.size

    def close(self) -> None:
        """Drop this process's mapping (the name survives if owned elsewhere)."""
        self._finalizer.detach()
        try:
            self._shm.close()
        except Exception:
            pass

    def release(self) -> None:
        """Close and, when owning, unlink the name."""
        self._finalizer.detach()
        _finalize_segment(self._shm, self.owner)


def _finalize_segment(shm: shared_memory.SharedMemory, owner: bool) -> None:
    try:
        shm.close()
    except BufferError:
        # A numpy view over the buffer is still alive: leave the mapping to
        # process exit and neutralize ``SharedMemory.__del__`` so it does
        # not retry the close and print an ignored exception.
        shm._buf = None
        shm._mmap = None
    except Exception:
        pass
    if owner:
        try:
            shm.unlink()
        except FileNotFoundError:
            pass
        except Exception:
            pass


def force_unlink(name: str) -> bool:
    """Unlink a segment by name from any process; returns whether it existed.

    Used by the parent broker to reap segments created by workers (normal
    exit or crash): the fork tree shares one resource tracker, so the
    attach-and-unlink here also retires the dead creator's registration.
    """
    try:
        shm = shared_memory.SharedMemory(name=name)
    except FileNotFoundError:
        # Already unlinked -- whoever did it also retired the tracker entry.
        return False
    except Exception:
        return False
    _finalize_segment(shm, owner=True)
    return True


def leaked_segments(prefix: str = "ic2mpi-") -> list[str]:
    """Live ``/dev/shm`` entries from this platform (empty == no leaks)."""
    try:
        entries = os.listdir("/dev/shm")
    except OSError:
        return []
    return sorted(e for e in entries if e.startswith(prefix))


def unlink_prefix(prefix: str) -> int:
    """Force-unlink every ``/dev/shm`` segment carrying ``prefix``."""
    count = 0
    for name in leaked_segments(prefix):
        if force_unlink(name):
            count += 1
    return count


# --------------------------------------------------------------------- #
# Halo-exchange fast path
# --------------------------------------------------------------------- #


@dataclass(frozen=True)
class RingRef:
    """Pipe-sized descriptor of a span parked in a :class:`ShadowRing`."""

    name: str
    start: int
    count: int


def is_shadow_payload(payload: Any) -> bool:
    """Whether a payload is a halo batch the ring can carry losslessly:
    a tuple of ``(int gid, float value)`` pairs (the exact shape
    :func:`repro.core.compute` packs -- bools are excluded by the strict
    type checks, so reconstruction round-trips bit-for-bit)."""
    if type(payload) is not tuple or len(payload) < FASTPATH_MIN_RECORDS:
        return False
    for item in payload:
        if (
            type(item) is not tuple
            or len(item) != 2
            or type(item[0]) is not int
            or type(item[1]) is not float
        ):
            return False
        if not -(2**63) <= item[0] < 2**63:
            return False
    return True


class ShadowRing:
    """SPSC ring of halo records over one shared segment.

    Layout: ``int64 head | int64 tail | int64 gids[cap] | float64 vals[cap]``.
    ``head``/``tail`` are monotonically increasing record counts; positions
    wrap modulo ``capacity`` so a span may straddle the end (read/write as
    two slices).
    """

    def __init__(self, segment: SharedSegment, capacity: int) -> None:
        self.segment = segment
        self.capacity = capacity
        buf = segment.buf
        self._ctl = np.frombuffer(buf, dtype=np.int64, count=_HEADER_SLOTS)
        self._gids = np.frombuffer(
            buf, dtype=np.int64, count=capacity, offset=_HEADER_BYTES
        )
        self._vals = np.frombuffer(
            buf,
            dtype=np.float64,
            count=capacity,
            offset=_HEADER_BYTES + 8 * capacity,
        )
        # Consumer-side bookkeeping for out-of-order retirement.
        self._done_spans: dict[int, int] = {}

    @staticmethod
    def nbytes_for(capacity: int) -> int:
        return _HEADER_BYTES + 16 * capacity

    @classmethod
    def create(cls, name: str, capacity: int = DEFAULT_RING_CAPACITY) -> "ShadowRing":
        segment = SharedSegment(name, size=cls.nbytes_for(capacity), create=True)
        ring = cls(segment, capacity)
        ring._ctl[0] = 0
        ring._ctl[1] = 0
        return ring

    @classmethod
    def attach(cls, ref_name: str) -> "ShadowRing":
        segment = SharedSegment(ref_name, create=False)
        capacity = (segment.size - _HEADER_BYTES) // 16
        return cls(segment, capacity)

    # ------------------------------ producer -------------------------- #

    def try_put(self, payload: Sequence[tuple[int, float]]) -> RingRef | None:
        """Copy a shadow batch in; ``None`` when it does not fit (caller
        falls back to pickling through the pipe)."""
        n = len(payload)
        head = int(self._ctl[0])
        tail = int(self._ctl[1])
        if n > self.capacity - (head - tail):
            return None
        start = head % self.capacity
        gids = np.fromiter((p[0] for p in payload), dtype=np.int64, count=n)
        vals = np.fromiter((p[1] for p in payload), dtype=np.float64, count=n)
        first = min(n, self.capacity - start)
        self._gids[start : start + first] = gids[:first]
        self._vals[start : start + first] = vals[:first]
        if first < n:
            self._gids[: n - first] = gids[first:]
            self._vals[: n - first] = vals[first:]
        self._ctl[0] = head + n
        return RingRef(name=self.segment.name, start=head, count=n)

    # ------------------------------ consumer -------------------------- #

    def read(self, ref: RingRef) -> tuple[np.ndarray, np.ndarray]:
        """The span's ``(gids, values)`` as fresh (copied) arrays."""
        start = ref.start % self.capacity
        n = ref.count
        first = min(n, self.capacity - start)
        gids = np.empty(n, dtype=np.int64)
        vals = np.empty(n, dtype=np.float64)
        gids[:first] = self._gids[start : start + first]
        vals[:first] = self._vals[start : start + first]
        if first < n:
            gids[first:] = self._gids[: n - first]
            vals[first:] = self._vals[: n - first]
        return gids, vals

    def retire(self, ref: RingRef) -> None:
        """Mark the span consumed; advance ``tail`` over the contiguous
        retired prefix (spans may retire out of order)."""
        self._done_spans[ref.start] = ref.start + ref.count
        tail = int(self._ctl[1])
        while tail in self._done_spans:
            tail = self._done_spans.pop(tail)
        self._ctl[1] = tail

    def _drop_views(self) -> None:
        self._ctl = self._gids = self._vals = None  # type: ignore[assignment]

    def close(self) -> None:
        self._drop_views()
        self.segment.close()

    def release(self) -> None:
        self._drop_views()
        self.segment.release()


# --------------------------------------------------------------------- #
# SoA store backing
# --------------------------------------------------------------------- #


def _spec_layout(
    specs: Iterable[tuple[str, str, int]]
) -> tuple[list[tuple[str, str, int, int]], int]:
    """Append byte offsets to ``(name, dtype, count)`` specs (16-aligned)."""
    laid = []
    offset = 0
    for name, dtype, count in specs:
        itemsize = np.dtype(dtype).itemsize
        offset = (offset + 15) & ~15
        laid.append((name, dtype, count, offset))
        offset += itemsize * count
    return laid, max(offset, 1)


class StoreBlock:
    """All of one store generation's arrays in a single segment."""

    def __init__(
        self,
        segment: SharedSegment,
        layout: list[tuple[str, str, int, int]],
    ) -> None:
        self.segment = segment
        self.layout = layout
        self.arrays: dict[str, np.ndarray] = {
            name: np.frombuffer(
                segment.buf, dtype=dtype, count=count, offset=offset
            )
            for name, dtype, count, offset in layout
        }

    @classmethod
    def create(
        cls, name: str, specs: Iterable[tuple[str, str, int]]
    ) -> "StoreBlock":
        layout, nbytes = _spec_layout(specs)
        block = cls(SharedSegment(name, size=nbytes, create=True), layout)
        for arr in block.arrays.values():
            arr[:] = 0
        return block

    @classmethod
    def attach(
        cls, name: str, specs: Iterable[tuple[str, str, int]]
    ) -> "StoreBlock":
        layout, _ = _spec_layout(specs)
        return cls(SharedSegment(name, create=False), layout)

    def release(self) -> None:
        self.arrays.clear()
        self.segment.release()

    def close(self) -> None:
        self.arrays.clear()
        self.segment.close()


class SharedStoreAllocator:
    """Hands a :class:`~repro.core.soastore.SoAStore` shared-segment arrays.

    Each :meth:`allocate` call is one store *generation* (initial layout or
    a growth step) in its own named segment; the store copies and releases
    the previous generation.  ``register`` (the worker transport's
    segment-registration hook) tells the parent broker every name so a
    crashed worker's segments still get reaped.

    The allocator also decides the demotion policy: arrays living in a
    shared segment are necessarily ``float64``, so a store backed by one
    must refuse the object-dtype demotion path instead of silently
    diverging from the segment (:attr:`forbids_demotion`).
    """

    forbids_demotion = True

    def __init__(
        self,
        prefix: str,
        rank: int,
        register: Callable[[str], None] | None = None,
    ) -> None:
        self.prefix = prefix
        self.rank = rank
        self._register = register
        self._generation = 0

    def allocate(self, specs: Iterable[tuple[str, str, int]]) -> StoreBlock:
        name = f"{self.prefix}-soa{self.rank}g{self._generation}"
        self._generation += 1
        block = StoreBlock.create(name, specs)
        if self._register is not None:
            self._register(name)
        return block


# --------------------------------------------------------------------- #
# Shared-memory collective rendezvous
# --------------------------------------------------------------------- #

_COLL_GEN = 0  # completed-rendezvous counter (the "sense")
_COLL_ABORT = 1  # sticky abort flag; wakes every spinner
_COLL_BARRIERS = 2  # barrier releases completed here (parent folds in)
_COLL_MESSAGES = 3  # virtual messages the replayed collectives stand for
_COLL_COUNT0 = 4  # arrival count, even generations
_COLL_COUNT1 = 5  # arrival count, odd generations
_COLL_HDR_SLOTS = 6

#: Busy-spin iterations before the waiter starts sleeping between polls.
_COLL_HOT_SPINS = 2000
#: Poll sleep once the hot spin is exhausted.
_COLL_POLL_SLEEP = 0.0002
#: Real seconds of polling before the waiter parks in the broker (the
#: park is what makes all-parked deadlock detection see this rank).
_COLL_PARK_AFTER = 0.05


class CollectiveBlock:
    """Sense-reversing rendezvous for world-communicator collectives.

    One segment shared by every worker: a header of atomic-enough int64
    counters (all mutated under one fork-inherited lock) plus
    double-buffered per-rank ``(clock, value, parked)`` arrays indexed by
    generation parity.  Each rank's Nth call joins the Nth rendezvous;
    SPMD programs hit collectives in one global order, so a single
    generation stream serves barriers and allreduces alike.

    Arrival publishes the caller's clock and payload under the lock; the
    last arriver bumps the shared generation (the sense flip), folds the
    rendezvous's barrier/message tallies into the header, and -- only if
    some peer already gave up spinning and parked in the broker -- sends
    one fire-and-forget ``shmrelease`` so the broker unparks them.  The
    fast path therefore costs *zero* pipe traffic.  Waiters spin on the
    generation word, decaying to sleeps, and finally park via a
    ``shmwait`` request so the broker's exact all-parked deadlock proof
    still covers ranks stuck in a shared-memory barrier.

    Double buffering is safe without further handshakes: a buffer is
    reused at generation ``g+2``, which no rank can reach before every
    rank finished ``g+1``, which requires every rank to have consumed its
    ``g`` snapshot first.
    """

    def __init__(self, name: str, nranks: int, ctx: Any) -> None:
        self.nranks = nranks
        nbytes = 8 * (_COLL_HDR_SLOTS + 8 * nranks)
        self.segment = SharedSegment(name, size=nbytes, create=True)
        buf = self.segment.buf
        self._hdr = np.frombuffer(buf, dtype=np.int64, count=_COLL_HDR_SLOTS)
        offset = 8 * _COLL_HDR_SLOTS
        self._clocks = np.frombuffer(
            buf, dtype=np.float64, count=2 * nranks, offset=offset
        )
        offset += 16 * nranks
        self._values = np.frombuffer(
            buf, dtype=np.int64, count=2 * nranks, offset=offset
        )
        offset += 16 * nranks
        self._parked = np.frombuffer(
            buf, dtype=np.int64, count=2 * nranks, offset=offset
        )
        offset += 16 * nranks
        self._delivs = np.frombuffer(
            buf, dtype=np.int64, count=2 * nranks, offset=offset
        )
        self._hdr[:] = 0
        self._clocks[:] = 0.0
        self._values[:] = 0
        self._parked[:] = 0
        self._delivs[:] = 0
        self._lock = ctx.Lock()
        # Per-process rendezvous counter: forked workers each start at the
        # parent's 0 and count their own collective calls.
        self._gen = 0

    @property
    def barrier_count(self) -> int:
        return int(self._hdr[_COLL_BARRIERS])

    @property
    def msg_count(self) -> int:
        return int(self._hdr[_COLL_MESSAGES])

    def set_abort(self) -> None:
        """Sticky-abort the block; spinning waiters raise on next poll."""
        self._hdr[_COLL_ABORT] = 1

    def _snapshot(self, sl: slice, transport: Any) -> tuple[list[float], list[int]]:
        # The fire-and-forget delivers counted here were all piped before
        # their senders joined this rendezvous; telling the transport the
        # global total lets it sync the broker past them before its next
        # mailbox query (the ordering the pipe barrier used to provide).
        transport.note_deliver_watermark(int(self._delivs[sl].sum()))
        return self._clocks[sl].tolist(), self._values[sl].tolist()

    def exchange(
        self,
        rank: int,
        clock: float,
        value: int,
        transport: Any,
        describe: str,
        barriers: int,
        messages: int,
    ) -> tuple[list[float], list[int]]:
        """Join the next rendezvous; return every rank's (clocks, values).

        Args:
            rank: This worker's world rank.
            clock: Entry virtual clock to publish.
            value: Integer payload to publish (0 for plain barriers).
            transport: The worker's pipe transport (park/release channel).
            describe: Deadlock message should this rank end up the victim
                while parked.
            barriers: Barrier releases this rendezvous represents.
            messages: Virtual point-to-point messages it replaces.
        """
        gen = self._gen
        self._gen = gen + 1
        n = self.nranks
        base = (gen & 1) * n
        sl = slice(base, base + n)
        hdr = self._hdr
        last = False
        woken = False
        with self._lock:
            if hdr[_COLL_ABORT]:
                raise CommAbortedError("cluster aborted")
            self._clocks[base + rank] = clock
            self._values[base + rank] = value
            self._delivs[base + rank] = transport.delivers_sent
            count_slot = _COLL_COUNT0 + (gen & 1)
            hdr[count_slot] += 1
            if hdr[count_slot] == n:
                last = True
                hdr[count_slot] = 0
                hdr[_COLL_BARRIERS] += barriers
                hdr[_COLL_MESSAGES] += messages
                woken = bool(self._parked[sl].any())
                self._parked[sl] = 0
                hdr[_COLL_GEN] = gen + 1
        if last:
            if woken:
                transport.shm_release(gen)
            return self._snapshot(sl, transport)
        deadline = time.monotonic() + _COLL_PARK_AFTER
        spins = 0
        while True:
            if hdr[_COLL_GEN] > gen:
                return self._snapshot(sl, transport)
            if hdr[_COLL_ABORT]:
                raise CommAbortedError("cluster aborted")
            spins += 1
            if spins < _COLL_HOT_SPINS:
                continue
            if time.monotonic() >= deadline:
                break
            time.sleep(_COLL_POLL_SLEEP)
        with self._lock:
            if hdr[_COLL_GEN] > gen:
                return self._snapshot(sl, transport)
            if hdr[_COLL_ABORT]:
                raise CommAbortedError("cluster aborted")
            self._parked[base + rank] = 1
        # Blocks until the broker replies: released by the completer's
        # shmrelease, or raised as the deadlock victim / an abort peer.
        transport.shm_wait(gen, describe)
        return self._snapshot(sl, transport)

    def _drop_views(self) -> None:
        self._hdr = self._clocks = self._values = None  # type: ignore[assignment]
        self._parked = self._delivs = None  # type: ignore[assignment]

    def close(self) -> None:
        self._drop_views()
        self.segment.close()

    def release(self) -> None:
        self._drop_views()
        self.segment.release()
