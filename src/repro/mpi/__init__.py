"""Virtual-time simulated MPI substrate.

This package stands in for the real MPI library + SGI Origin-2000 testbed of
the thesis.  It provides:

* :class:`SimCluster` / :func:`run_mpi` -- ``mpirun``-style execution of a
  Python function on N simulated ranks, driven by a pluggable execution
  backend (``scheduler="event"`` for cooperative event-driven switching
  with exact deadlock detection -- the default -- ``"threads"`` for the
  preemptive thread-per-rank original used by schedule fuzzing, or
  ``"process"`` for one worker OS process per rank over shared memory),
* :class:`Communicator` -- an mpi4py-flavoured API (``send``/``recv``/
  ``isend``/``irecv``/``bcast``/``gather``/``barrier``/``Wtime``) whose costs
  are charged to deterministic per-rank *virtual clocks*,
* :class:`MachineModel` -- the alpha-beta communication cost model with an
  ``ORIGIN2000`` preset calibrated to the paper's tables,
* derived-datatype emulation for exact wire-size accounting.

Quick example::

    from repro.mpi import run_mpi

    def hello(comm):
        comm.work(1e-3)                      # 1 ms of "computation"
        total = comm.allreduce(comm.rank)
        return comm.Wtime(), total

    results = run_mpi(hello, nprocs=4)
"""

from .communicator import ANY_SOURCE, ANY_TAG, Communicator
from .datatypes import CHAR, DOUBLE, INT, Datatype, StructType
from .errors import (
    CommAbortedError,
    DeadlockError,
    InvalidRankError,
    InvalidTagError,
    MessageLostError,
    MPIError,
    ShrinkError,
    TruncationError,
    UnsupportedBackendError,
)
from .failure import DetectedFailure, FailureDetector
from .faults import (
    CrashEvent,
    DelaySpec,
    DropSpec,
    FaultPlan,
    FaultReport,
    FaultState,
    MemoryFlipEvent,
    MessageFlipSpec,
    RetryPolicy,
    SlowWindow,
    corrupt_value,
    state_digest,
)
from .message import Mailbox, Message, RecvRequest, Request, SendRequest, Status
from .runtime import RankState, SimCluster, run_mpi
from .scheduler import (
    SCHEDULERS,
    EventScheduler,
    SchedulerBackend,
    ThreadedScheduler,
)
from .timing import (
    ETHERNET_CLUSTER,
    IDEAL,
    ORIGIN2000,
    MachineModel,
    TopologyMachineModel,
    estimate_nbytes,
)

__all__ = [
    "ANY_SOURCE",
    "ANY_TAG",
    "CHAR",
    "Communicator",
    "CommAbortedError",
    "CrashEvent",
    "Datatype",
    "DeadlockError",
    "DelaySpec",
    "DetectedFailure",
    "DropSpec",
    "DOUBLE",
    "ETHERNET_CLUSTER",
    "EventScheduler",
    "FailureDetector",
    "FaultPlan",
    "FaultReport",
    "FaultState",
    "IDEAL",
    "INT",
    "InvalidRankError",
    "InvalidTagError",
    "MachineModel",
    "Mailbox",
    "MemoryFlipEvent",
    "Message",
    "MessageFlipSpec",
    "MessageLostError",
    "MPIError",
    "ORIGIN2000",
    "RankState",
    "RetryPolicy",
    "SCHEDULERS",
    "SchedulerBackend",
    "SlowWindow",
    "RecvRequest",
    "Request",
    "SendRequest",
    "ShrinkError",
    "SimCluster",
    "Status",
    "ThreadedScheduler",
    "StructType",
    "TopologyMachineModel",
    "TruncationError",
    "UnsupportedBackendError",
    "corrupt_value",
    "estimate_nbytes",
    "run_mpi",
    "state_digest",
]
