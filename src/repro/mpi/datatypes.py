"""Derived-datatype emulation.

The thesis commits a derived ``MPI_Type_struct`` for the two-int
``buffer_data_node`` records it ships between processors (Appendix B).  The
simulated substrate transports Python objects, so datatypes here only serve
the *cost model*: committing a :class:`StructType` yields an exact byte size
for each record, which the platform passes as the ``nbytes`` override on its
shadow-exchange sends instead of relying on the generic payload estimator.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["Datatype", "INT", "DOUBLE", "CHAR", "StructType"]


@dataclass(frozen=True)
class Datatype:
    """A basic wire datatype with a fixed extent in bytes."""

    name: str
    extent: int

    def size_of(self, count: int = 1) -> int:
        """Wire size of ``count`` elements."""
        if count < 0:
            raise ValueError(f"count must be >= 0, got {count}")
        return self.extent * count


INT = Datatype("int", 4)
DOUBLE = Datatype("double", 8)
CHAR = Datatype("char", 1)


@dataclass
class StructType:
    """A derived struct datatype (mirrors ``MPI_Type_struct`` + commit).

    Build it from ``(blockcount, basetype)`` pairs, then :meth:`commit` it
    before use, exactly as MPI requires:

        >>> buffer_record = StructType([(2, INT)], name="buffer_data_node")
        >>> buffer_record.commit()
        >>> buffer_record.size_of(count=5)
        40
    """

    blocks: list[tuple[int, Datatype]]
    name: str = "struct"
    _committed: bool = field(default=False, repr=False)

    @property
    def extent(self) -> int:
        """Byte extent of one struct instance."""
        return sum(count * dtype.extent for count, dtype in self.blocks)

    @property
    def committed(self) -> bool:
        """Whether :meth:`commit` was called."""
        return self._committed

    def commit(self) -> "StructType":
        """Mark the type ready for use in communication; returns self."""
        if not self.blocks:
            raise ValueError("cannot commit an empty struct type")
        for count, _ in self.blocks:
            if count <= 0:
                raise ValueError(f"block count must be positive, got {count}")
        self._committed = True
        return self

    def free(self) -> None:
        """Release the type (mirrors ``MPI_Type_free``)."""
        self._committed = False

    def size_of(self, count: int = 1) -> int:
        """Wire size of ``count`` struct instances; requires commit."""
        if not self._committed:
            raise RuntimeError(f"datatype {self.name!r} used before commit()")
        if count < 0:
            raise ValueError(f"count must be >= 0, got {count}")
        return self.extent * count
