"""Multiprocess execution backend: one OS process per rank.

The ``event`` and ``threads`` backends run every rank inside one Python
process, so all compute serializes on the GIL; the simulator can *model*
32-way parallelism but never exploits real cores.  This backend forks one
worker process per rank and splits the machinery the way the iC2mpi
platform splits its data:

Data plane (shared memory, no pickling on the hot path)
    Each worker's :class:`~repro.core.soastore.SoAStore` arrays live in a
    named ``multiprocessing.shared_memory`` segment handed out by a
    :class:`~repro.mpi.shm.SharedStoreAllocator`, and halo-exchange
    payloads travel through per-edge :class:`~repro.mpi.shm.ShadowRing`
    buffers: the sender copies its ``(gid, value)`` batch into the ring
    and ships only a 3-field :class:`~repro.mpi.shm.RingRef` descriptor;
    the receiver slice-copies the span back out and retires it.

Control plane (one duplex pipe per worker, parent = deterministic arbiter)
    Message-queue mutations, barriers, quarantine, and abort flow through
    the parent :class:`_Broker`, which owns the *authoritative* mailboxes
    and barrier states and replays exactly the same logic as
    :meth:`SimCluster.deliver <repro.mpi.runtime.SimCluster.deliver>` /
    :meth:`~repro.mpi.runtime.SimCluster.barrier`.  Virtual clocks and
    fault-decision PRNG streams are strictly per-rank, so each worker
    advances its own locally and ships the final values home in its
    ``finish`` record; the broker merges clocks, fault counters, and rank
    results so :meth:`SimCluster.run` sees exactly what the in-thread
    backends produce.

Determinism argument (why results are bit-identical to ``event``):

* every clock update is a function of the caller's own state plus message
  ``arrival_time`` fields computed sender-side -- nothing depends on host
  scheduling;
* wildcard receives match on ``(arrival_time, src)`` (virtual time), so
  the order in which the broker happens to file deliveries is irrelevant;
* barrier release clocks are ``max`` over entry clocks -- order-free;
* a worker's pipe is FIFO and a *parked* worker is blocked in
  ``conn.recv()``: once every unfinished rank is parked there can be no
  in-flight delivery anywhere, which makes the broker's deadlock
  detection exact, like the event backend's empty-run-queue test.  The
  victim choice mirrors it too: the rank whose park completed the
  deadlock (case A), or the lowest-indexed unfinished rank when a
  finishing rank strands the rest (case B).

Known, documented divergence: an abort cannot interrupt a send-only rank
mid-flight (delivery is fire-and-forget; the parent silently drops
post-abort messages), so a rank that never blocks again may ``finish``
normally where the in-thread backends would raise ``CommAbortedError``
in its next ``deliver``.  :meth:`SimCluster.run`'s raised primary error
is unaffected.

Unsupported features fail *early* with
:class:`~repro.mpi.errors.UnsupportedBackendError`: ``sched_jitter``
hooks (nothing to perturb, and a callable cannot meaningfully cross the
process boundary) and platforms without the ``fork`` start method (the
rank program is an arbitrary closure; it is inherited, never pickled).
"""

from __future__ import annotations

import dataclasses
import os
import pickle
from typing import TYPE_CHECKING, Any, Callable, Iterable

import multiprocessing
from multiprocessing import connection as mp_connection

from .errors import CommAbortedError, DeadlockError, UnsupportedBackendError
from .message import Message
from .scheduler import SchedulerBackend, _NullGuard
from .shm import (
    DEFAULT_RING_CAPACITY,
    CollectiveBlock,
    RingRef,
    ShadowRing,
    SharedStoreAllocator,
    ensure_tracker,
    force_unlink,
    is_shadow_payload,
    make_run_prefix,
    unlink_prefix,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .runtime import SimCluster

__all__ = ["ProcessScheduler"]


def _recv_describe(rank: int, source: int, tag: int) -> str:
    return (
        f"deadlock: rank {rank} waiting on (source={source}, "
        f"tag={tag}) with all ranks blocked"
    )


def _barrier_describe(rank: int) -> str:
    return f"deadlock: rank {rank} stuck in barrier"


# --------------------------------------------------------------------- #
# Worker side
# --------------------------------------------------------------------- #


class _WorkerTransport:
    """A worker's proxy to the parent broker (installed as
    ``cluster._worker``; the runtime's transport entry points branch to it).

    Protocol: ``deliver``/``abort``/``segment``/``finish`` are
    fire-and-forget; ``take``/``sources``/``recv``/``barrier``/
    ``quarantine`` are strict request/reply (``("ok", value)`` or
    ``("err", exc)``), so after sending a request the next object on the
    pipe is always its reply.
    """

    def __init__(
        self, conn: Any, rank: int, prefix: str, ring_capacity: int
    ) -> None:
        self._conn = conn
        self.rank = rank
        self.prefix = prefix
        self.ring_capacity = ring_capacity
        self._out_rings: dict[int, ShadowRing] = {}  # dest world rank -> ring
        self._in_rings: dict[str, ShadowRing] = {}  # segment name -> ring
        #: Fire-and-forget delivers piped so far (published at each shm
        #: rendezvous so peers can sync the broker past them).
        self.delivers_sent = 0
        self._deliver_watermark = 0  # global delivers known complete
        self._deliver_synced = 0  # watermark the broker last confirmed

    # ---------------------------- plumbing ----------------------------- #

    def _request(self, req: tuple) -> Any:
        self._conn.send(req)
        kind, value = self._conn.recv()
        if kind == "err":
            raise value
        return value

    def register_segment(self, name: str) -> None:
        """Tell the parent to reap ``name`` at run end (crash-safe)."""
        self._conn.send(("segment", name))

    def store_allocator(self) -> SharedStoreAllocator:
        """Allocator that backs this rank's SoA store with shared segments."""
        return SharedStoreAllocator(
            self.prefix, self.rank, register=self.register_segment
        )

    # --------------------------- ring fast path ------------------------ #

    def _ring_to(self, dest: int) -> ShadowRing:
        ring = self._out_rings.get(dest)
        if ring is None:
            name = f"{self.prefix}-r{self.rank}to{dest}"
            ring = ShadowRing.create(name, self.ring_capacity)
            self.register_segment(name)
            self._out_rings[dest] = ring
        return ring

    def _resolve(self, msg: Message | None, consume: bool) -> Message | None:
        """Materialize a ring descriptor back into the payload tuple.

        Peeks (``consume=False``) keep the descriptor: probes only read
        metadata, and the span must stay live for the eventual receive.
        """
        if msg is None or not consume or not isinstance(msg.payload, RingRef):
            return msg
        ref = msg.payload
        ring = self._in_rings.get(ref.name)
        if ring is None:
            ring = self._in_rings[ref.name] = ShadowRing.attach(ref.name)
        gids, vals = ring.read(ref)
        ring.retire(ref)
        msg.payload = tuple(zip(gids.tolist(), vals.tolist()))
        return msg

    # ------------------------- transport verbs ------------------------- #

    def deliver(self, msg: Message) -> None:
        if is_shadow_payload(msg.payload):
            ref = self._ring_to(msg.dest).try_put(msg.payload)
            if ref is not None:  # ring full -> fall back to pickling
                msg = dataclasses.replace(msg, payload=ref)
        self.delivers_sent += 1
        self._conn.send(("deliver", msg))

    def note_deliver_watermark(self, total: int) -> None:
        """A shm rendezvous proved ``total`` delivers precede this point.

        The pipe barrier used to serialize every deliver before the
        release reply; the shm path restores that ordering lazily -- the
        next mailbox *query* first makes the broker confirm it has
        processed ``total`` delivers.  Blocking receives need no sync
        (the broker parks them until the message lands).
        """
        if total > self._deliver_watermark:
            self._deliver_watermark = total

    def _sync_delivers(self) -> None:
        if self._deliver_watermark > self._deliver_synced:
            self._request(("flush", self._deliver_watermark))
            self._deliver_synced = self._deliver_watermark

    def take(
        self, source: int, tag: int, comm_id: Any, consume: bool
    ) -> Message | None:
        self._sync_delivers()
        msg = self._request(("take", source, tag, comm_id, consume))
        return self._resolve(msg, consume)

    def sources(self, tag: int, comm_id: Any) -> list[int]:
        self._sync_delivers()
        return self._request(("sources", tag, comm_id))

    def recv(
        self, source: int, tag: int, comm_id: Any, consume: bool
    ) -> Message:
        msg = self._request(("recv", source, tag, comm_id, consume))
        return self._resolve(msg, consume)

    def barrier(self, group: tuple[int, ...], comm_id: Any, clock: float) -> float:
        return self._request(("barrier", group, comm_id, clock))

    def shm_wait(self, gen: int, describe: str) -> None:
        """Park in the broker until shm rendezvous ``gen`` is released."""
        self._request(("shmwait", gen, describe))

    def shm_release(self, gen: int) -> None:
        """Fire-and-forget: rendezvous ``gen`` completed, unpark waiters."""
        self._conn.send(("shmrelease", gen))

    def quarantine(self, dead_srcs: frozenset[int], comm_id: Any) -> int:
        self._sync_delivers()
        return self._request(("quarantine", dead_srcs, comm_id))

    def abort(self, reason: str) -> None:
        self._conn.send(("abort", reason))

    def finish(
        self,
        result: Any,
        error: BaseException | None,
        counters: list[dict[str, int]] | None,
        clock: float,
    ) -> None:
        result, result_exc = _picklable(result)
        if result_exc is not None and error is None:
            error = RuntimeError(
                f"rank {self.rank} result is not picklable: {result_exc!r}"
            )
        if error is not None:
            safe, error_exc = _picklable(error)
            if error_exc is not None:
                error = RuntimeError(f"{type(error).__name__}: {error}")
        self._conn.send(("finish", result, error, counters, clock))


def _picklable(obj: Any) -> tuple[Any, Exception | None]:
    try:
        pickle.dumps(obj)
        return obj, None
    except Exception as exc:  # noqa: BLE001 - reported to the parent
        return None, exc


def _worker_main(
    cluster: "SimCluster",
    runner: Callable[[int], None],
    rank: int,
    conn: Any,
    prefix: str,
    ring_capacity: int,
) -> None:
    """Child-process entry: run one rank over the piped transport.

    ``cluster`` and ``runner`` arrive via fork inheritance (never
    pickled), so the closure in :meth:`SimCluster.run` works unchanged:
    it stores the result/error into ``cluster._ranks[rank]``, which here
    is the worker's private copy -- shipped home in the finish record.
    """
    transport = _WorkerTransport(conn, rank, prefix, ring_capacity)
    cluster._worker = transport
    state = cluster._ranks[rank]
    try:
        runner(rank)  # catches everything into state.error itself
    finally:
        counters = None
        if cluster.fault_state is not None:
            counters = [
                {slot: getattr(c, slot) for slot in type(c).__slots__}
                for c in cluster.fault_state._counters
            ]
        try:
            transport.finish(state.result, state.error, counters, state.clock)
            conn.close()
        finally:
            # Skip inherited atexit/multiprocessing finalizers: the worker
            # must never unlink segments (the parent reaps), and the
            # fork-shared resource tracker's books stay balanced.
            os._exit(0)


# --------------------------------------------------------------------- #
# Parent side
# --------------------------------------------------------------------- #


class _Parked:
    """One worker blocked in the broker (recv, barrier, or shm rendezvous)."""

    __slots__ = ("rank", "kind", "source", "tag", "comm_id", "consume", "key", "text")

    def __init__(self, rank: int, kind: str, **fields: Any) -> None:
        self.rank = rank
        self.kind = kind
        self.source = fields.get("source")
        self.tag = fields.get("tag")
        self.comm_id = fields.get("comm_id")
        self.consume = fields.get("consume", True)
        self.key = fields.get("key")
        self.text = fields.get("text")

    def describe(self) -> str:
        if self.kind == "shmwait":
            # The worker supplies the message (a shm barrier park must read
            # byte-identically to a pipe barrier park).
            return self.text
        if self.kind == "barrier":
            return _barrier_describe(self.rank)
        if self.kind == "flush":  # pragma: no cover - provably transient
            return f"deadlock: rank {self.rank} awaiting deliver flush"
        return _recv_describe(self.rank, self.source, self.tag)


class _Broker:
    """The parent arbiter: authoritative mailboxes, barriers, and faults.

    Single-threaded event loop over the worker pipes; every handler is a
    transcription of the corresponding ``SimCluster`` method with
    ``backend.wait`` replaced by parking the requesting worker.
    """

    def __init__(
        self,
        cluster: "SimCluster",
        conns: list[Any],
        procs: list[Any],
        shm_block: Any = None,
    ) -> None:
        self._cluster = cluster
        self._conns = conns
        self._procs = procs
        self._shm_block = shm_block
        self._shm_gen_done = -1
        self._delivers_processed = 0
        self._parked: dict[int, _Parked] = {}
        self._unfinished = set(range(cluster.nprocs))
        self.segments: list[str] = []
        self._seen_segments: set[str] = set()
        #: Worker->broker pipe messages handled (the traffic the
        #: shared-memory collective path eliminates).
        self.requests = 0

    # ----------------------------- event loop -------------------------- #

    def loop(self) -> None:
        while self._unfinished:
            waitees: list[Any] = [self._conns[r] for r in sorted(self._unfinished)]
            waitees += [self._procs[r].sentinel for r in sorted(self._unfinished)]
            mp_connection.wait(waitees)
            for r in sorted(self._unfinished):
                self._drain(r)
            for r in sorted(self._unfinished):
                if not self._procs[r].is_alive():
                    self._drain(r)  # a finish may have landed just before death
                    if r in self._unfinished:
                        self._worker_died(r)

    def _drain(self, rank: int) -> None:
        conn = self._conns[rank]
        try:
            while rank in self._unfinished and conn.poll():
                self._handle(rank, conn.recv())
        except (EOFError, OSError):
            pass

    def _handle(self, rank: int, req: tuple) -> None:
        kind = req[0]
        self.requests += 1
        if kind == "deliver":
            self._deliver(req[1])
        elif kind == "take":
            _, source, tag, comm_id, consume = req
            self._reply(rank, self._mailbox(rank).take(source, tag, comm_id, consume))
        elif kind == "sources":
            _, tag, comm_id = req
            self._reply(rank, self._mailbox(rank).sources_with(comm_id, tag))
        elif kind == "recv":
            self._recv(rank, *req[1:])
        elif kind == "barrier":
            self._barrier(rank, *req[1:])
        elif kind == "shmwait":
            self._shm_wait(rank, *req[1:])
        elif kind == "shmrelease":
            self._shm_release(req[1])
        elif kind == "flush":
            self._flush(rank, req[1])
        elif kind == "quarantine":
            self._quarantine(rank, *req[1:])
        elif kind == "abort":
            self._abort(req[1])
        elif kind == "segment":
            if req[1] not in self._seen_segments:
                self._seen_segments.add(req[1])
                self.segments.append(req[1])
        elif kind == "finish":
            self._finish(rank, *req[1:])
        else:  # pragma: no cover - protocol bug
            raise RuntimeError(f"unknown worker request {kind!r} from rank {rank}")

    # ------------------------------ helpers ---------------------------- #

    def _mailbox(self, rank: int):
        return self._cluster._ranks[rank].mailbox

    def _reply(self, rank: int, value: Any) -> None:
        self._send(rank, ("ok", value))

    def _reply_err(self, rank: int, exc: BaseException) -> None:
        self._send(rank, ("err", exc))

    def _send(self, rank: int, obj: Any) -> None:
        try:
            self._conns[rank].send(obj)
        except (BrokenPipeError, OSError):  # worker died; sentinel handles it
            pass

    # ----------------------------- transport --------------------------- #

    def _deliver(self, msg: Message) -> None:
        # Dropped delivers (abort, quarantine) still count: the sender
        # counted the pipe write, and flush watermarks track processing,
        # not mailbox appends.
        self._delivers_processed += 1
        self._release_flushes()
        cluster = self._cluster
        if cluster._aborted:
            # The in-thread backends raise CommAbortedError in the sender;
            # fire-and-forget delivery cannot, so post-abort traffic is
            # dropped (the run's outcome is already decided).
            return
        if (msg.comm_id, msg.src) in cluster._quarantined:
            return
        self._mailbox(msg.dest).append(msg)
        cluster.messages_delivered += 1
        parked = self._parked.get(msg.dest)
        if parked is not None and parked.kind == "recv":
            found = self._mailbox(msg.dest).take(
                parked.source, parked.tag, parked.comm_id, parked.consume
            )
            if found is not None:
                del self._parked[msg.dest]
                self._reply(msg.dest, found)

    def _recv(
        self, rank: int, source: int, tag: int, comm_id: Any, consume: bool
    ) -> None:
        if self._cluster._aborted:
            self._reply_err(rank, CommAbortedError(self._abort_reason()))
            return
        found = self._mailbox(rank).take(source, tag, comm_id, consume)
        if found is not None:
            self._reply(rank, found)
            return
        self._parked[rank] = _Parked(
            rank, "recv", source=source, tag=tag, comm_id=comm_id, consume=consume
        )
        self._maybe_deadlock(victim=rank)

    def _barrier(
        self, rank: int, group: tuple[int, ...], comm_id: Any, clock: float
    ) -> None:
        from .runtime import _BarrierState

        cluster = self._cluster
        if cluster._aborted:
            self._reply_err(rank, CommAbortedError(self._abort_reason()))
            return
        key = (comm_id, group)
        bar = cluster._barriers.setdefault(key, _BarrierState())
        bar.max_clock = max(bar.max_clock, clock)
        bar.count += 1
        if bar.count == len(group):
            bar.release_clock = bar.max_clock + cluster.machine.barrier_time(len(group))
            bar.count = 0
            bar.max_clock = 0.0
            bar.generation += 1
            cluster.barriers += 1
            for member in group:
                parked = self._parked.get(member)
                if parked is not None and parked.kind == "barrier" and parked.key == key:
                    del self._parked[member]
                    self._reply(member, bar.release_clock)
            self._reply(rank, bar.release_clock)
        else:
            self._parked[rank] = _Parked(rank, "barrier", key=key)
            self._maybe_deadlock(victim=rank)

    def _shm_wait(self, rank: int, gen: int, describe: str) -> None:
        """A worker gave up spinning on shm rendezvous ``gen``: park it.

        The release may already have arrived (shmrelease and shmwait race
        on different pipes); the generation watermark disambiguates.
        """
        if self._cluster._aborted:
            self._reply_err(rank, CommAbortedError(self._abort_reason()))
            return
        if gen <= self._shm_gen_done:
            self._reply(rank, None)
            return
        self._parked[rank] = _Parked(rank, "shmwait", key=gen, text=describe)
        self._maybe_deadlock(victim=rank)

    def _flush(self, rank: int, watermark: int) -> None:
        """Reply once ``watermark`` delivers have been processed.

        A shm rendezvous proved that many delivers were piped before every
        rank passed it, so they are all in flight already: the park below
        is always released by pipe traffic and can never join a deadlock
        (any rank that parks for good has its prior delivers processed
        first -- pipe FIFO -- so an all-parked state satisfies every
        flush watermark).
        """
        if self._cluster._aborted:
            self._reply_err(rank, CommAbortedError(self._abort_reason()))
            return
        if self._delivers_processed >= watermark:
            self._reply(rank, None)
            return
        self._parked[rank] = _Parked(rank, "flush", key=watermark)

    def _release_flushes(self) -> None:
        for rank in list(self._parked):
            parked = self._parked[rank]
            if parked.kind == "flush" and parked.key <= self._delivers_processed:
                del self._parked[rank]
                self._reply(rank, None)

    def _shm_release(self, gen: int) -> None:
        """Rendezvous ``gen`` completed in shared memory: unpark waiters."""
        if gen > self._shm_gen_done:
            self._shm_gen_done = gen
        for rank in list(self._parked):
            parked = self._parked[rank]
            if parked.kind == "shmwait" and parked.key <= self._shm_gen_done:
                del self._parked[rank]
                self._reply(rank, None)

    def _quarantine(
        self, rank: int, dead_srcs: frozenset[int], comm_id: Any
    ) -> None:
        cluster = self._cluster
        for src in dead_srcs:
            cluster._quarantined.add((comm_id, src))
        self._reply(rank, self._mailbox(rank).purge(comm_id, dead_srcs))

    # --------------------------- run lifecycle ------------------------- #

    def _finish(
        self,
        rank: int,
        result: Any,
        error: BaseException | None,
        counters: list[dict[str, int]] | None,
        clock: float,
    ) -> None:
        cluster = self._cluster
        state = cluster._ranks[rank]
        state.result = result
        state.error = error
        state.finished = True
        state.clock = clock
        if counters is not None and cluster.fault_state is not None:
            # Fault events are counted in exactly one worker (draws happen
            # on the owning rank), so summing the shipped deltas
            # reproduces the single-process tallies.
            for idx, shipped in enumerate(counters):
                mine = cluster.fault_state._counters[idx]
                for slot, value in shipped.items():
                    setattr(mine, slot, getattr(mine, slot) + value)
        self._unfinished.discard(rank)
        self._parked.pop(rank, None)
        if error is not None and not cluster._aborted:
            self._abort(f"rank {rank} raised {type(error).__name__}: {error}")
        elif not cluster._aborted:
            # Case B: a finishing rank may strand every survivor parked.
            self._maybe_deadlock(victim=None)

    def _worker_died(self, rank: int) -> None:
        proc = self._procs[rank]
        error = RuntimeError(
            f"rank {rank} worker process died unexpectedly "
            f"(exitcode {proc.exitcode})"
        )
        state = self._cluster._ranks[rank]
        state.error = error
        state.finished = True
        self._unfinished.discard(rank)
        self._parked.pop(rank, None)
        if not self._cluster._aborted:
            self._abort(f"rank {rank} raised RuntimeError: {error}")

    # ------------------------- abort and deadlock ---------------------- #

    def _abort_reason(self) -> str:
        return self._cluster._abort_reason or "cluster aborted"

    def _abort(self, reason: str) -> None:
        cluster = self._cluster
        if not cluster._aborted:
            cluster._aborted = True
            cluster._abort_reason = reason
        if self._shm_block is not None:
            self._shm_block.set_abort()  # wake spinners in shm rendezvous
        exc = CommAbortedError(self._abort_reason())
        for rank in list(self._parked):
            del self._parked[rank]
            self._reply_err(rank, exc)

    def _maybe_deadlock(self, victim: int | None) -> None:
        """Exact deadlock test, mirroring the event backend's two cases.

        Sound because parked workers are blocked in ``conn.recv()`` and
        cannot send: all-unfinished-parked implies no delivery can be in
        flight on any pipe (a worker's sends are FIFO-ordered before its
        own park request, hence already processed).
        """
        if self._cluster._aborted or not self._unfinished:
            return
        if any(r not in self._parked for r in self._unfinished):
            return
        if victim is None:  # case B: lowest unfinished rank, like _pass_baton
            victim = min(self._unfinished)
        reason = self._parked[victim].describe()
        cluster = self._cluster
        cluster._aborted = True
        cluster._abort_reason = reason
        if self._shm_block is not None:
            self._shm_block.set_abort()
        del self._parked[victim]
        self._reply_err(victim, DeadlockError(reason))
        peer_exc = CommAbortedError(reason)
        for rank in list(self._parked):
            del self._parked[rank]
            self._reply_err(rank, peer_exc)


# --------------------------------------------------------------------- #
# The backend
# --------------------------------------------------------------------- #


class ProcessScheduler(SchedulerBackend):
    """One worker OS process per rank over shared-memory stores.

    Inside a worker the cluster's transport entry points are proxied to
    the parent broker, so ``guard``/``notify`` degenerate exactly as on
    the event backend (single thread, no shared state); ``wait`` is never
    reached.
    """

    name = "process"

    def __init__(self, cluster: "SimCluster", deadlock_timeout: float) -> None:
        if cluster._sched_jitter is not None:
            raise UnsupportedBackendError(
                "scheduler='process' cannot host sched_jitter hooks: worker "
                "ranks run in separate processes with nothing to perturb "
                "(use scheduler='threads' for schedule fuzzing)"
            )
        if "fork" not in multiprocessing.get_all_start_methods():
            raise UnsupportedBackendError(
                "scheduler='process' requires the fork start method (rank "
                "programs are closures, inherited rather than pickled); "
                "this platform does not support fork"
            )
        self._cluster = cluster
        self._guard = _NullGuard()
        self.ring_capacity = DEFAULT_RING_CAPACITY

    def guard(self) -> Any:
        return self._guard

    def notify(self, ranks: Iterable[int] | None = None) -> None:
        return None

    def wait(
        self,
        rank: int,
        ready: Callable[[], Any],
        describe: Callable[[], str],
    ) -> Any:  # pragma: no cover - all blocking paths are intercepted
        raise RuntimeError("process backend workers block in the broker, not here")

    def execute(self, runner: Callable[[int], None], nprocs: int) -> None:
        ensure_tracker()  # one fork-shared tracker for the whole tree
        ctx = multiprocessing.get_context("fork")
        prefix = make_run_prefix()
        pipes = [ctx.Pipe(duplex=True) for _ in range(nprocs)]
        procs = []
        broker = None
        shm_block = None
        cluster = self._cluster
        if cluster.shm_collectives and nprocs > 1:
            # Created before forking so every worker inherits the mapping
            # and the lock; installed on the cluster so the runtime's
            # barrier/allreduce fast paths find it inside the workers.
            shm_block = CollectiveBlock(f"{prefix}-coll", nprocs, ctx)
            cluster._shm_coll = shm_block
        try:
            for rank in range(nprocs):
                proc = ctx.Process(
                    target=_worker_main,
                    args=(
                        self._cluster,
                        runner,
                        rank,
                        pipes[rank][1],
                        prefix,
                        self.ring_capacity,
                    ),
                    name=f"sim-rank-{rank}",
                    daemon=True,
                )
                proc.start()
                procs.append(proc)
            for _, child_end in pipes:
                child_end.close()
            broker = _Broker(
                self._cluster, [p for p, _ in pipes], procs, shm_block=shm_block
            )
            broker.loop()
            for proc in procs:
                proc.join(timeout=10.0)
        finally:
            for proc in procs:
                if proc.is_alive():
                    proc.terminate()
                    proc.join(timeout=5.0)
            for parent_end, _ in pipes:
                parent_end.close()
            if broker is not None:
                cluster.pipe_requests = broker.requests
            if shm_block is not None:
                # Fold the rendezvous tallies into the cluster counters the
                # in-thread backends maintain natively, so the observability
                # surface is backend-independent.
                cluster.barriers += shm_block.barrier_count
                cluster.messages_delivered += shm_block.msg_count
                cluster._shm_coll = None
                shm_block.release()
            # Reap every shared segment, registered or stray: workers never
            # unlink (a receiver may attach after the producer exited), so
            # the parent is the single point of truth for cleanup.
            if broker is not None:
                for name in broker.segments:
                    force_unlink(name)
            unlink_prefix(prefix)
