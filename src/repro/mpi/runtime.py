"""The simulated cluster: virtual clocks over pluggable execution backends.

``SimCluster.run(fn, ...)`` plays the role of ``mpirun -np N``: it executes
``fn`` once per rank, hands each invocation a :class:`~repro.mpi.
communicator.Communicator` (its ``COMM_WORLD``), and collects the results.
Real time is irrelevant; every rank owns a *virtual clock* that advances
only through

* explicit compute charges (``comm.work(seconds)``), and
* the communication cost model (:mod:`repro.mpi.timing`).

Because the Python GIL serializes actual execution, the only way to study
parallel *performance* on this substrate is through those virtual clocks --
which is exactly how the benchmark harness reproduces the paper's tables.

How the rank programs are interleaved on the host is delegated to a
:mod:`~repro.mpi.scheduler` backend, selected by ``scheduler=``:

* ``"event"`` (default) -- cooperative event-driven scheduling: one rank
  runs at a time, blocked ranks are woken precisely by the event that
  unblocks them, and deadlock is detected *exactly* (and instantly) when
  the run queue empties with unfinished ranks blocked;
* ``"threads"`` -- the preemptive original with a condition-variable poll
  and a real-time deadlock watchdog, retained for the ``sched_jitter``
  schedule-fuzzing suites (and selected automatically when a jitter hook
  is armed);
* ``"process"`` -- one worker OS process per rank over shared-memory SoA
  stores (:mod:`repro.mpi.process`): real multi-core execution with the
  parent process as the deterministic control-plane arbiter.  Inside a
  worker, the transport entry points below branch to the worker's pipe
  transport (``self._worker``) instead of the local mailboxes.

Correctness properties the runtime guarantees on either backend:

* per-(source, dest, tag-stream) FIFO message ordering, so virtual results
  are deterministic for named-source receives regardless of host thread
  scheduling;
* deadlock surfaces as :class:`DeadlockError` instead of a hang;
* exception propagation: if any rank raises, all blocked peers are woken
  with :class:`CommAbortedError` and the original exception is re-raised
  from :meth:`SimCluster.run`, with any *other* ranks' original failures
  attached as ``__notes__`` so a genuine multi-rank bug is not masked.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

from .communicator import Communicator
from .errors import CommAbortedError, DeadlockError  # noqa: F401 - re-export
from .faults import FaultPlan, FaultState
from .message import Mailbox, Message
from .scheduler import make_scheduler, resolve_scheduler_name
from .timing import ORIGIN2000, MachineModel, estimate_nbytes

__all__ = ["RankState", "SimCluster", "run_mpi"]


@dataclass
class RankState:
    """Mutable per-rank bookkeeping owned by the cluster."""

    rank: int
    clock: float = 0.0
    mailbox: Mailbox = field(default_factory=Mailbox)
    finished: bool = False
    blocked: bool = False
    result: Any = None
    error: BaseException | None = None


class _BarrierState:
    """Rendezvous bookkeeping for one ``(comm_id, group)`` barrier.

    Keyed by the *group* as well as the channel id: two sub-communicators
    that happen to share a channel id (hand-built communicators, or
    disjoint groups on a reused id) must never count each other's arrivals
    or cross-release.
    """

    __slots__ = ("count", "generation", "max_clock", "release_clock")

    def __init__(self) -> None:
        self.count = 0
        self.generation = 0
        self.max_clock = 0.0
        self.release_clock = 0.0


class SimCluster:
    """A simulated MPI machine with ``nprocs`` ranks.

    Args:
        nprocs: Number of ranks in ``COMM_WORLD``.
        machine: Cost model used for every communication operation.
        deadlock_timeout: Real-time seconds of global inactivity after which
            blocked ranks abort with :class:`DeadlockError` -- only
            meaningful on the ``"threads"`` backend; the event backend
            detects deadlock exactly and ignores this knob.
        faults: Optional seeded :class:`~repro.mpi.faults.FaultPlan`; a
            fresh per-run :class:`~repro.mpi.faults.FaultState` is built at
            every :meth:`run`, so re-running the same plan replays the same
            faults.
        sched_jitter: Test hook: a callable invoked (outside any runtime
            lock) at every transport entry point -- deliver, receive wait,
            barrier.  The schedule-fuzzing determinism suite injects small
            real-time sleeps here to perturb host-thread interleavings
            without touching virtual time.  Arming it selects the
            ``"threads"`` backend unless ``scheduler`` says otherwise.
        checksums: Arm the checksummed transport: every message pays a
            sender-side checksum and receiver-side verify (virtual time),
            and payload corruption injected by a
            :class:`~repro.mpi.faults.MessageFlipSpec` is absorbed by a
            priced NACK + retransmit path instead of escaping silently.
        shm_collectives: On the ``"process"`` backend, arbitrate world
            barriers and integer-sum allreduces through a shared-memory
            rendezvous block instead of the per-worker command pipe
            (cutting two pipe round-trips per platform superstep);
            virtual-time results are identical either way.  Ignored by
            the in-thread backends.
        scheduler: Execution backend: ``"event"`` (cooperative, precise
            wakeups, exact deadlock detection -- the default),
            ``"threads"`` (preemptive, polling watchdog), or ``"process"``
            (one worker OS process per rank over shared-memory stores --
            real multi-core execution, identical virtual results).
            ``None`` picks ``"event"``, or ``"threads"`` when
            ``sched_jitter`` is armed.
    """

    def __init__(
        self,
        nprocs: int,
        machine: MachineModel = ORIGIN2000,
        deadlock_timeout: float = 10.0,
        faults: FaultPlan | None = None,
        sched_jitter: Callable[[], None] | None = None,
        checksums: bool = False,
        scheduler: str | None = None,
        shm_collectives: bool = True,
    ) -> None:
        if nprocs < 1:
            raise ValueError(f"nprocs must be >= 1, got {nprocs}")
        self.nprocs = nprocs
        self.machine = machine
        self.deadlock_timeout = deadlock_timeout
        self.faults = faults
        self.checksums = checksums
        self.shm_collectives = shm_collectives
        self.fault_state: FaultState | None = (
            FaultState(faults, nprocs) if faults is not None else None
        )
        self._sched_jitter = sched_jitter
        self.scheduler = resolve_scheduler_name(scheduler, sched_jitter)
        self._backend = make_scheduler(self.scheduler, self, deadlock_timeout)
        self._ranks = [RankState(r) for r in range(nprocs)]
        self._barriers: dict[Any, _BarrierState] = {}
        #: Point-to-point messages accepted into a mailbox this run (host
        #: observability for the delta-exchange benchmark; quarantined and
        #: dropped messages never count).
        self.messages_delivered = 0
        #: Barrier releases executed this run (host observability for the
        #: hybrid-execution benchmark: interior sweeps are barrier-free).
        self.barriers = 0
        #: Pipe request/reply messages the process-backend broker handled
        #: last run (0 on in-thread backends) -- what shm collectives cut.
        self.pipe_requests = 0
        self._world_group = tuple(range(nprocs))
        # Shared-memory collective rendezvous block (process backend only):
        # created by ProcessScheduler before forking so workers inherit it.
        self._shm_coll: Any = None
        self._aborted = False
        self._abort_reason: str | None = None
        # (comm_id, local src) pairs condemned by quarantine(): a dead rank's
        # host thread may still be running when survivors shrink, so its late
        # sends must be filtered at delivery time, not just purged once.
        self._quarantined: set[tuple[Any, int]] = set()
        # Inside a process-backend worker this holds the worker's pipe
        # transport to the parent broker; every transport entry point
        # branches to it.  Always None in the parent / in-thread backends.
        self._worker: Any = None

    # ------------------------------------------------------------------ #
    # Execution
    # ------------------------------------------------------------------ #

    def run(
        self,
        fn: Callable[..., Any],
        *args: Any,
        per_rank_args: Sequence[tuple[Any, ...]] | None = None,
    ) -> list[Any]:
        """Execute ``fn(comm, *args)`` on every rank; return per-rank results.

        Args:
            fn: The "MPI program". Its first argument is the rank's world
                communicator.
            *args: Extra positional arguments passed identically to all ranks.
            per_rank_args: Optional per-rank extra arguments, appended after
                ``args``; must have exactly ``nprocs`` entries.

        Returns:
            ``[fn(comm_0, ...), ..., fn(comm_{n-1}, ...)]`` in rank order.

        Raises:
            The first exception raised by any rank (other ranks are
            aborted).  When several ranks fail with their own original
            errors, the re-raised exception carries one ``__notes__`` line
            per additional failed rank (Python >= 3.11), so a genuine
            two-rank bug is visible from the single traceback.
        """
        if per_rank_args is not None and len(per_rank_args) != self.nprocs:
            raise ValueError(
                f"per_rank_args must have {self.nprocs} entries, got {len(per_rank_args)}"
            )
        # Every run() starts from a clean machine: zeroed clocks, empty
        # mailboxes, no stale abort/finished flags (a poisoned flag from a
        # failed run would trip the watchdog), and -- when a fault plan is
        # armed -- fresh per-rank decision streams, so the same plan replays
        # the same faults even if the cluster object is reused.
        for state in self._ranks:
            state.clock = 0.0
            state.mailbox.clear()
            state.finished = False
            state.blocked = False
            state.result = None
            state.error = None
        self._barriers.clear()
        self.messages_delivered = 0
        self.barriers = 0
        self.pipe_requests = 0
        self._aborted = False
        self._abort_reason = None
        # Quarantine filters installed by a previous shrink recovery would
        # silently swallow a reused channel id's traffic; a fresh run starts
        # with every rank trusted again (the failure detector re-derives dead
        # ranks from the new fault state below).
        self._quarantined.clear()
        if self.faults is not None:
            self.fault_state = FaultState(self.faults, self.nprocs)

        backend = self._backend

        def runner(rank: int) -> None:
            state = self._ranks[rank]
            comm = Communicator(self, rank, tuple(range(self.nprocs)), comm_id=0)
            extra = per_rank_args[rank] if per_rank_args is not None else ()
            try:
                state.result = fn(comm, *args, *extra)
            except BaseException as exc:  # noqa: BLE001 - reraised in run()
                state.error = exc
                with backend.guard():
                    self._aborted = True
                    self._abort_reason = f"rank {rank} raised {type(exc).__name__}: {exc}"
                    backend.notify()
            finally:
                with backend.guard():
                    state.finished = True
                    backend.notify()

        backend.execute(runner, self.nprocs)

        # A rank's own failure outranks the CommAbortedError its peers get
        # from the abort cascade.  The first original failure is re-raised;
        # any further ranks' original failures are attached as notes so
        # they are not silently masked.
        primary: BaseException | None = None
        for state in self._ranks:
            if state.error is None or isinstance(state.error, CommAbortedError):
                continue
            if primary is None:
                primary = state.error
            elif hasattr(primary, "add_note"):  # Python >= 3.11
                primary.add_note(
                    f"[simulated cluster] rank {state.rank} also failed: "
                    f"{type(state.error).__name__}: {state.error}"
                )
        if primary is not None:
            raise primary
        for state in self._ranks:  # only abort errors remain, surface the first
            if state.error is not None:
                raise state.error
        return [state.result for state in self._ranks]

    # ------------------------------------------------------------------ #
    # State accessors used by Communicator
    # ------------------------------------------------------------------ #

    def state(self, rank: int) -> RankState:
        """The mutable state record of ``rank`` (world-rank indexed)."""
        return self._ranks[rank]

    def clock(self, rank: int) -> float:
        """Current virtual clock of ``rank``."""
        return self._ranks[rank].clock

    def max_clock(self) -> float:
        """Maximum virtual clock across all ranks (the makespan so far)."""
        return max(state.clock for state in self._ranks)

    def shared_store_allocator(self) -> Any:
        """Shared-segment allocator for this rank's SoA store, or ``None``.

        Non-``None`` only inside a process-backend worker: the platform
        migrates the freshly built store's arrays into a named
        shared-memory segment so peers (and the parent) address the same
        bytes.  In-thread backends return ``None`` and the store keeps its
        private heap arrays.
        """
        if self._worker is None:
            return None
        return self._worker.store_allocator()

    def abort(self, reason: str) -> None:
        """Abort the whole cluster; wakes all blocked ranks.

        Must be called from a rank's own thread (any transport entry point
        qualifies) -- on the cooperative backend only the running rank may
        touch cluster state.
        """
        if self._worker is not None:
            self._aborted = True
            self._abort_reason = reason
            self._worker.abort(reason)
            return
        with self._backend.guard():
            self._aborted = True
            self._abort_reason = reason
            self._backend.notify()

    def quarantine(self, rank: int, dead_srcs: frozenset[int], comm_id: Any) -> int:
        """Drop ``rank``'s in-flight messages from dead peers on one comm.

        ULFM-style hygiene after a shrink: any message a dead rank injected
        before crashing must not be matched by a later receive on the old
        communicator (the survivor would consume stale data and, worse,
        *when* it got consumed would depend on host-thread timing).  Each
        survivor purges its own mailbox; the operation is idempotent and
        keyed to one ``comm_id`` so unrelated communicators are untouched.

        Args:
            rank: World rank whose mailbox is purged (the caller's own).
            dead_srcs: Communicator-*local* source ranks to discard
                (message ``src`` fields are comm-local).
            comm_id: Channel whose traffic is purged.

        Returns:
            Number of messages discarded.
        """
        if self._worker is not None:
            return self._worker.quarantine(dead_srcs, comm_id)
        with self._backend.guard():
            for src in dead_srcs:
                self._quarantined.add((comm_id, src))
            dropped = self._ranks[rank].mailbox.purge(comm_id, dead_srcs)
            if dropped:
                # Removals can unblock nobody; the empty wake set still
                # re-arms the threaded backend's inactivity watchdog.
                self._backend.notify(())
            return dropped

    # ------------------------------------------------------------------ #
    # Message transport (called by Communicator)
    # ------------------------------------------------------------------ #

    def _jitter(self) -> None:
        """Invoke the schedule-fuzzing hook (never while holding the lock)."""
        if self._sched_jitter is not None:
            self._sched_jitter()

    def deliver(self, msg: Message) -> None:
        """Place ``msg`` into the destination mailbox and wake waiters.

        Messages from quarantined (comm, source) pairs are dropped on the
        floor: a condemned rank's thread can still execute sends after the
        survivors shrank, and those stragglers must never reach a mailbox.
        """
        if self._worker is not None:
            self._check_abort()
            self._worker.deliver(msg)
            return
        self._jitter()
        with self._backend.guard():
            self._check_abort()
            if (msg.comm_id, msg.src) in self._quarantined:
                return
            self._ranks[msg.dest].mailbox.append(msg)
            self.messages_delivered += 1
            self._backend.notify((msg.dest,))

    def take_matching(
        self, rank: int, source: int, tag: int, comm_id: Any, consume: bool = True
    ) -> Message | None:
        """Pop (or peek at) the best matching message in ``rank``'s mailbox.

        Matching is FIFO per (source, tag) stream; for wildcard receives
        the per-source stream heads compete on the earliest virtual arrival
        time with the source rank as a deterministic tie-break.  The index
        lookup itself is delegated to :class:`~repro.mpi.message.Mailbox`.
        """
        if self._worker is not None:
            return self._worker.take(source, tag, comm_id, consume)
        with self._backend.guard():
            return self._ranks[rank].mailbox.take(source, tag, comm_id, consume)

    def pending_sources(self, rank: int, tag: int, comm_id: Any) -> list[int]:
        """Comm-local sources with a queued ``(comm_id, tag)`` message for
        ``rank`` (the delta halo exchange's post-barrier sender discovery)."""
        if self._worker is not None:
            return self._worker.sources(tag, comm_id)
        with self._backend.guard():
            return self._ranks[rank].mailbox.sources_with(comm_id, tag)

    def wait_for_message(
        self, rank: int, source: int, tag: int, comm_id: Any, consume: bool = True
    ) -> Message:
        """Block ``rank`` until a matching message exists, then pop it."""
        if self._worker is not None:
            return self._worker.recv(source, tag, comm_id, consume)
        self._jitter()
        mailbox = self._ranks[rank].mailbox
        with self._backend.guard():
            return self._backend.wait(
                rank,
                lambda: mailbox.take(source, tag, comm_id, consume),
                lambda: (
                    f"deadlock: rank {rank} waiting on (source={source}, "
                    f"tag={tag}) with all ranks blocked"
                ),
            )

    def _all_stuck(self, caller: RankState) -> bool:
        """True when every unfinished rank is blocked (deadlock candidate).

        The caller just woke from its own wait (clearing its flag) purely to
        run this check, so it counts as stuck.  Only the threaded backend's
        watchdog consults this; the event backend tracks runnability
        exactly in its own task records.
        """
        return all(s.finished or s.blocked or s is caller for s in self._ranks)

    def _check_abort(self) -> None:
        if self._aborted:
            raise CommAbortedError(self._abort_reason or "cluster aborted")

    # ------------------------------------------------------------------ #
    # Barrier (native, for efficiency and exact max-clock semantics)
    # ------------------------------------------------------------------ #

    def barrier(self, rank: int, group: tuple[int, ...], comm_id: Any) -> float:
        """Synchronize ``group``; returns the common release clock.

        All participants' clocks are advanced to
        ``max(entry clocks) + barrier_time(len(group))``.  The last rank to
        arrive releases exactly the ``group`` members -- a precise wakeup
        on the event backend, a broadcast re-check on the threaded one.
        """
        if self._worker is not None:
            state = self._ranks[rank]
            self._check_abort()
            block = self._shm_coll
            if (
                block is not None
                and comm_id == (0, "barrier")
                and group == self._world_group
                and self.fault_state is None
            ):
                # Shared-memory rendezvous: publish the entry clock, wait
                # for the generation to flip, and derive the release clock
                # locally from the published clocks -- identical to the
                # broker's max+barrier_time, without the pipe round-trip.
                clocks, _ = block.exchange(
                    rank,
                    state.clock,
                    0,
                    self._worker,
                    describe=f"deadlock: rank {rank} stuck in barrier",
                    barriers=1,
                    messages=0,
                )
                release = max(clocks) + self.machine.barrier_time(len(group))
                state.clock = max(state.clock, release)
                return release
            release = self._worker.barrier(group, comm_id, state.clock)
            state.clock = max(state.clock, release)
            return release
        self._jitter()
        state = self._ranks[rank]
        with self._backend.guard():
            self._check_abort()
            bar = self._barriers.setdefault((comm_id, group), _BarrierState())
            my_generation = bar.generation
            bar.max_clock = max(bar.max_clock, state.clock)
            bar.count += 1
            if bar.count == len(group):
                bar.release_clock = bar.max_clock + self.machine.barrier_time(len(group))
                bar.count = 0
                bar.max_clock = 0.0
                bar.generation += 1
                self.barriers += 1
                self._backend.notify(group)
            else:
                self._backend.wait(
                    rank,
                    lambda: True if bar.generation != my_generation else None,
                    lambda: f"deadlock: rank {rank} stuck in barrier",
                )
            release = bar.release_clock
            state.clock = max(state.clock, release)
            return release

    def shm_allreduce(self, comm: Any, value: Any) -> tuple[int] | None:
        """World-communicator integer-sum allreduce over shared memory.

        The process-backend fast path: every rank publishes its (clock,
        value) pair into the collective block, the rendezvous completes,
        and each rank *replays* the pipe implementation's exact charge
        sequence (gather-to-root-0 + binomial bcast) locally over the
        published clocks -- bit-identical virtual time, zero pipe traffic.

        Returns ``(total,)`` (wrapped so a legitimate 0 survives the
        caller's None test), or ``None`` whenever the fast path does not
        apply: in-thread backends, sub-communicators, non-int payloads, or
        an armed fault plan (fault draws live in per-rank PRNG streams the
        replay cannot consult).
        """
        block = self._shm_coll
        if (
            block is None
            or self._worker is None
            or comm._comm_id != 0
            or comm._group != self._world_group
            or self.fault_state is not None
            or type(value) is not int
            or not -(2**62) < value < 2**62
        ):
            return None
        self._check_abort()
        rank = comm._world_rank
        state = self._ranks[rank]
        n = len(self._world_group)
        clocks, values = block.exchange(
            rank,
            state.clock,
            value,
            self._worker,
            describe=f"deadlock: rank {rank} stuck in allreduce",
            barriers=0,
            messages=2 * (n - 1),
        )
        new_clocks, total = _replay_world_allreduce(
            self.machine, self.checksums, clocks, values
        )
        state.clock = new_clocks[rank]
        # The pipe path consumes two collective tags (reduce + bcast);
        # stay in lockstep so later collectives match across backends.
        comm._coll_seq += 2
        return (total,)


def _replay_world_allreduce(
    machine: MachineModel,
    checksums: bool,
    clocks: Sequence[float],
    values: Sequence[int],
) -> tuple[list[float], int]:
    """Charge-exact replay of ``allreduce`` on the world communicator.

    Transcribes :meth:`Communicator.reduce` (gather to root 0: non-roots
    isend, root receives ranks 1..n-1 in source order, combine ascending)
    followed by :meth:`Communicator.bcast` (binomial tree from root 0,
    children messaged in decreasing-mask order), with the world-rank
    identity mapping (local rank == world rank).  Returns the post-call
    clock of every rank plus the summed total.
    """
    n = len(clocks)
    c = list(clocks)
    sizes = [estimate_nbytes(v) for v in values]
    arrival = [0.0] * n
    # reduce: gather to root 0 (eager isends, then ordered receives).
    for r in range(1, n):
        c[r] += machine.sender_cpu(sizes[r])
        if checksums:
            c[r] += machine.checksum_time(sizes[r])
        arrival[r] = c[r] + machine.transfer_time_between(sizes[r], r, 0)
    for r in range(1, n):
        if arrival[r] > c[0]:
            c[0] = arrival[r]
        if checksums:
            c[0] += machine.checksum_time(sizes[r])
        c[0] += machine.receiver_cpu(sizes[r])
    total = values[0]
    for r in range(1, n):
        total = total + values[r]
    # bcast from root 0: ascending vrank order is a valid execution order
    # because every parent index is smaller than its children's.
    bsize = estimate_nbytes(total)
    for v in range(n):
        if v == 0:
            lowbit = 1
            while lowbit < n:
                lowbit <<= 1
        else:
            lowbit = v & -v
            if arrival[v] > c[v]:
                c[v] = arrival[v]
            if checksums:
                c[v] += machine.checksum_time(bsize)
            c[v] += machine.receiver_cpu(bsize)
        mask = lowbit >> 1
        while mask >= 1:
            child = v + mask
            if child < n:
                c[v] += machine.sender_cpu(bsize)
                if checksums:
                    c[v] += machine.checksum_time(bsize)
                arrival[child] = c[v] + machine.transfer_time_between(bsize, v, child)
            mask >>= 1
    return c, total


def run_mpi(
    fn: Callable[..., Any],
    nprocs: int,
    *args: Any,
    machine: MachineModel = ORIGIN2000,
    deadlock_timeout: float = 10.0,
    per_rank_args: Sequence[tuple[Any, ...]] | None = None,
    faults: FaultPlan | None = None,
    sched_jitter: Callable[[], None] | None = None,
    checksums: bool = False,
    scheduler: str | None = None,
) -> list[Any]:
    """One-shot convenience wrapper: build a cluster, run ``fn``, return results."""
    cluster = SimCluster(
        nprocs,
        machine=machine,
        deadlock_timeout=deadlock_timeout,
        faults=faults,
        sched_jitter=sched_jitter,
        checksums=checksums,
        scheduler=scheduler,
    )
    return cluster.run(fn, *args, per_rank_args=per_rank_args)
