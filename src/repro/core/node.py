"""Node-level data structures (Figures 1 and 7 of the thesis).

Two records exist per node, mirroring the C structs:

* :class:`NodeData` -- the *data node list* entry: the user-visible value,
  double-buffered (``data`` is what neighbours read this iteration,
  ``most_recent_data`` is where the node's new value lands before being
  committed).
* :class:`OwnNode` -- the *node information* entry kept in the internal or
  peripheral list: node type, owning processor, neighbour IDs, the
  ``shadow_for_procs`` set that drives communication-buffer construction,
  and a direct reference to the node's :class:`NodeData` (the C code's
  ``data_location`` pointer).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

__all__ = ["NodeKind", "NodeData", "OwnNode", "INTERNAL", "PERIPHERAL"]

#: Node-type flags, matching the thesis's ``internal_or_peripheral`` char.
INTERNAL = "i"
PERIPHERAL = "p"

NodeKind = str  # "i" | "p"


@dataclass
class NodeData:
    """One entry of the data node list.

    Attributes:
        global_id: 1-based global node identifier.
        data: The committed value neighbours may read this iteration.
        most_recent_data: The freshly computed value; promoted to ``data``
            by :meth:`commit` once the whole sweep is done (the old value
            "might still be required for the computation purposes of the
            neighboring nodes").
        version: How many times the committed value has *changed* since
            initialization.  Owners bump it in :meth:`commit`, shadow
            holders in :meth:`~repro.core.nodestore.NodeStore.update_shadow`
            -- only when the value actually differs, so owner and replica
            counters stay in lockstep whether every value is re-sent (dense
            exchange) or only the changed ones (delta exchange).
        halted: Whether the node has voted to halt (vertex-program style).
            Halted peripherals are excluded from the load-balance
            communication statistics (``buffer_sizes`` / ``neighbor_procs``)
            -- they still receive shadow updates so a later wake-up resumes
            with consistent data.
    """

    global_id: int
    data: Any
    most_recent_data: Any = None
    version: int = 0
    halted: bool = False

    def commit(self) -> bool:
        """Promote the freshly computed value to the readable slot.

        The pending slot is consumed (reset to ``None``): a node skipped by
        the next sweep must not re-promote a stale value.  Returns whether
        the committed value actually changed (and bumped :attr:`version`).
        """
        if self.most_recent_data is None:
            return False
        changed = self.most_recent_data != self.data
        self.data = self.most_recent_data
        self.most_recent_data = None
        if changed:
            self.version += 1
        return changed

    def __repr__(self) -> str:
        return f"NodeData(gid={self.global_id}, data={self.data!r}, v{self.version})"


@dataclass
class OwnNode:
    """One entry of the internal or peripheral node list.

    Attributes:
        global_id: 1-based global node identifier.
        kind: ``"i"`` (internal: all neighbours local) or ``"p"``
            (peripheral: at least one neighbour on another processor).
        owning_proc: The processor that owns (computes) this node.
        data: Reference into the data node list (``data_location``).
        neighboring_nodes: Global IDs of the node's graph neighbours.
        shadow_for_procs: Processors holding this node as a shadow -- i.e.
            remote processors owning at least one neighbour.  Non-empty only
            for peripheral nodes; it tells the communication phase exactly
            who needs this node's updates.
    """

    global_id: int
    kind: NodeKind
    owning_proc: int
    data: NodeData
    neighboring_nodes: tuple[int, ...]
    shadow_for_procs: tuple[int, ...] = ()

    def __post_init__(self) -> None:
        if self.kind not in (INTERNAL, PERIPHERAL):
            raise ValueError(f"kind must be '{INTERNAL}' or '{PERIPHERAL}', got {self.kind!r}")
        if self.kind == INTERNAL and self.shadow_for_procs:
            raise ValueError(
                f"internal node {self.global_id} cannot be a shadow for anyone"
            )

    @property
    def is_peripheral(self) -> bool:
        """Whether the node sits on a processor boundary."""
        return self.kind == PERIPHERAL

    def __repr__(self) -> str:
        return (
            f"OwnNode(gid={self.global_id}, kind={self.kind!r}, "
            f"proc={self.owning_proc}, shadows={list(self.shadow_for_procs)})"
        )
