"""Survivor-based shrinking recovery (ULFM-style) for the platform loop.

The rollback policy of :mod:`repro.core.checkpoint` resurrects a crashed
rank and re-runs everyone.  This module implements the alternative a real
deployment usually wants: **keep computing on the survivors**.  When the
failure detector fires, the survivors

1. fetch the dead rank's last checkpoint -- modelled as the dying rank's
   final message to the lowest-ranked survivor (the coordinator), so the
   transfer pays normal alpha-beta cost as if pulled from stable storage;
2. shrink the communicator (:meth:`~repro.mpi.communicator.Communicator.
   shrink`) into a dense re-ranked survivor world and quarantine any
   in-flight traffic from the dead rank;
3. restore their own checkpoints, merge in the dead rank's checkpointed
   partition, and redistribute the lost nodes across survivors with a
   deterministic edge-cut-aware greedy (the same affinity criterion task
   migration uses, applied in bulk);
4. rebuild their :class:`~repro.core.nodestore.NodeStore` from carried-over
   committed values -- the ``repartition_phase`` idiom, which keeps final
   results bit-identical to a fault-free run -- and resume the BSP loop on
   ``nprocs - 1`` ranks.

Every step is a pure function of (checkpoint state, dead set, graph), so
the reconfiguration is identical across host thread schedules; the
schedule-fuzz suite pins this down.
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass
from typing import Any

from ..graphs.graph import Graph
from ..mpi.communicator import Communicator
from .checkpoint import Checkpointer
from .compute import ComputeContext
from .nodestore import NodeStore

__all__ = ["TAG_RECOVERY", "ShrinkOutcome", "redistribute_lost_nodes", "shrink_reconfigure", "send_dying_checkpoint"]

#: Tag for recovery-protocol messages (dead-rank checkpoint hand-off).
TAG_RECOVERY = 3


@dataclass
class ShrinkOutcome:
    """What :func:`shrink_reconfigure` hands back to the platform loop.

    Attributes:
        comm: The dense re-ranked survivor communicator.
        store: The rebuilt node store (owned by the calling rank).
        saved_iteration: Checkpoint iteration everyone rolled back to.
        extras: This rank's checkpointed loop extras (verbatim).
        survivors: Surviving *world* ranks in new-local-rank order.
        nodes_redistributed: Graph nodes reassigned away from dead ranks.
    """

    comm: Communicator
    store: NodeStore
    saved_iteration: int
    extras: dict[str, Any]
    survivors: tuple[int, ...]
    nodes_redistributed: int


def redistribute_lost_nodes(
    graph: Graph,
    assignment: list[int],
    lost_gids: list[int],
    survivor_ranks: list[int],
) -> dict[int, int]:
    """Greedily reassign ``lost_gids`` across ``survivor_ranks``.

    The criterion is the one task migration uses, applied in bulk: place
    each node where it has the most already-placed neighbours (minimizing
    new edge cut), breaking ties toward the least-loaded survivor and then
    the lowest rank.  Nodes are processed in ascending gid order and
    placements feed back into later affinity counts, so the result is a
    pure function of its inputs -- no PRNG, no host-schedule dependence.

    Args:
        graph: The application graph.
        assignment: Current node-to-rank map (1-based gid indexing); values
            for ``lost_gids`` are ignored, survivors' entries must already
            be in the target rank space.  Mutated in place as nodes are
            placed.
        lost_gids: Nodes whose owner died (any order; processed sorted).
        survivor_ranks: Candidate ranks, in the target rank space.

    Returns:
        ``gid -> adopting rank`` for every lost node.
    """
    if not survivor_ranks:
        raise ValueError("cannot redistribute nodes with no survivors")
    lost = set(lost_gids)
    load = {r: 0 for r in survivor_ranks}
    for gid in graph.nodes():
        if gid not in lost and assignment[gid - 1] in load:
            load[assignment[gid - 1]] += 1
    placed: dict[int, int] = {}
    for gid in sorted(lost):
        affinity = {r: 0 for r in survivor_ranks}
        for v in graph.neighbors(gid):
            owner = placed.get(v, assignment[v - 1] if v not in lost else None)
            if owner in affinity:
                affinity[owner] += 1
        best = min(
            survivor_ranks, key=lambda r: (-affinity[r], load[r], r)
        )
        placed[gid] = best
        assignment[gid - 1] = best
        load[best] += 1
    return placed


def send_dying_checkpoint(comm: Communicator, checkpointer: Checkpointer, dead_locals: list[int]) -> None:
    """Dying rank's last act: ship its checkpoint to the coordinator.

    Models the survivors fetching the victim's snapshot from stable
    storage: the payload travels as an ordinary message (paying alpha-beta
    transfer cost for its full serialized size) to the lowest-ranked
    survivor, who later broadcasts it on the shrunken communicator.  Must
    be called *before* the rank returns; the eager-buffered send completes
    immediately, so the dying thread never blocks.
    """
    ck = checkpointer.last
    if ck is None:
        raise RuntimeError("dying rank has no checkpoint to hand off")
    dead = set(dead_locals)
    coordinator = next(r for r in range(comm.size) if r not in dead)
    comm.isend(
        (ck.iteration, ck.payload),
        coordinator,
        tag=TAG_RECOVERY,
        nbytes=ck.nbytes,
    )


def shrink_reconfigure(
    comm: Communicator,
    store: NodeStore,
    ctx: ComputeContext,
    checkpointer: Checkpointer,
    dead_locals: list[int],
) -> ShrinkOutcome:
    """Survivor side of the shrink protocol (collective over survivors).

    Ordering is load-bearing for determinism: the coordinator drains the
    dying ranks' checkpoint messages on the *old* communicator first, the
    shrink itself exchanges nothing, the broadcast of the dead payloads on
    the *new* communicator happens-after that drain for every survivor,
    and only then is the old channel quarantined -- so no survivor can
    purge a checkpoint message the coordinator still needs, regardless of
    host thread interleaving.

    Args:
        comm: The communicator the failure occurred on.
        store: This rank's node store (restored and rebuilt; the shared
            assignment list is remapped into the new dense rank space).
        ctx: Compute context; its ``comm`` is left untouched (the platform
            swaps communicators after charging phase costs).
        checkpointer: Holds this rank's own snapshots.
        dead_locals: Comm-local ranks that died (all survivors agree).

    Returns:
        A :class:`ShrinkOutcome`; virtual cost of the restore/rebuild has
        been charged to this rank's clock.
    """
    costs = ctx.costs
    dead = sorted(set(dead_locals))
    survivors_old = [r for r in range(comm.size) if r not in set(dead)]

    # ---- 1. coordinator drains the dying ranks' checkpoint hand-off ----
    dead_payloads: list[tuple[int, bytes]] | None = None
    if comm.rank == survivors_old[0]:
        dead_payloads = [
            comm.recv(source=d, tag=TAG_RECOVERY) for d in dead
        ]

    # ---- 2. shrink (pure local derivation) + broadcast the payloads ----
    new_comm = comm.shrink(dead, quarantine=False)
    assert new_comm is not None  # survivors only
    dead_payloads = new_comm.bcast(dead_payloads, root=0)

    # ---- 3. old channel is now safe to quarantine ----------------------
    comm.quarantine(dead)

    # ---- 4. everyone rolls back to the common checkpoint ---------------
    saved_iteration, extras = checkpointer.restore(store)
    comm.work(costs.restore_item_cost * len(store.data_records))

    # ---- 5. merge the dead partitions into a full value map ------------
    lost_gids: list[int] = []
    dead_values: dict[int, Any] = {}
    for (ck_iteration, payload), d in zip(dead_payloads, dead):
        snap = pickle.loads(payload)["store"]
        if ck_iteration != saved_iteration:
            raise RuntimeError(
                f"dead rank {comm.world_rank_of(d)} checkpointed iteration "
                f"{ck_iteration}, survivors restored {saved_iteration}: "
                "checkpoint schedules diverged"
            )
        for gid, (value, _most_recent, _version) in snap["records"].items():
            if snap["assignment"][gid - 1] == snap["rank"]:
                lost_gids.append(gid)
                dead_values[gid] = value
    all_values = dict(dead_values)
    for chunk in new_comm.allgather(store.owned_values()):
        all_values.update(chunk)

    # ---- 6. remap survivors into the dense rank space, adopt the lost --
    remap = {old: new for new, old in enumerate(survivors_old)}
    new_assignment = [
        remap.get(owner, -1) for owner in store.assignment
    ]
    placed = redistribute_lost_nodes(
        store.graph,
        new_assignment,
        lost_gids,
        list(range(new_comm.size)),
    )

    # ---- 7. rebuild the store from carried-over committed values -------
    store.assignment[:] = new_assignment
    new_store = type(store)(
        new_comm.rank,
        store.graph,
        store.assignment,
        init_value=lambda gid: all_values[gid],
        hash_table_length=store.hash_table.length,
    )
    # Backend plumbing (e.g. the process backend's shared-segment
    # allocator) is not logical node state; carry it across the rebuild.
    new_store.adopt_runtime_policy(store)
    adopted = sum(1 for r in placed.values() if r == new_comm.rank)
    comm.work(
        costs.init_node_cost * new_store.num_owned()
        + costs.init_shadow_cost * len(new_store.shadow_gids())
        + costs.migrate_item_cost * adopted
    )
    new_comm.barrier()
    return ShrinkOutcome(
        comm=new_comm,
        store=new_store,
        saved_iteration=saved_iteration,
        extras=extras,
        survivors=tuple(comm.world_rank_of(r) for r in survivors_old),
        nodes_redistributed=len(placed),
    )
