"""Per-phase virtual-time accounting (section 5.4's six categories)."""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["PhaseTimes", "PHASE_NAMES"]

#: Display order matching Figures 21/22; ``recovery`` (fault-injection
#: checkpoint/restart costs) is our extension, appended after the paper's
#: six categories.
PHASE_NAMES = (
    "initialization",
    "computation_overhead",
    "compute",
    "communication_overhead",
    "communicate",
    "load_balancing",
    "recovery",
)


@dataclass
class PhaseTimes:
    """Accumulated virtual seconds per platform phase on one rank.

    Attributes:
        initialization: Setting up node lists, data lists, hash tables.
        computation_overhead: Forming node+neighbour lists and committing
            updated data.
        compute: Actual application node computation (the injected grain).
        communication_overhead: Packing/unpacking communication buffers and
            updating the data node lists with received shadows.
        communicate: Shipping and receiving shadow-node messages.
        load_balancing: Gathering imbalance statistics and migrating tasks.
        recovery: Taking checkpoints, detecting crashes, and restoring
            state after a fault-injected rank failure -- under the shrink
            policy this also covers communicator reconfiguration and the
            redistribution of the dead rank's partition (re-executed
            iterations land in their usual categories; this bucket holds
            only the fault-tolerance machinery itself).
    """

    initialization: float = 0.0
    computation_overhead: float = 0.0
    compute: float = 0.0
    communication_overhead: float = 0.0
    communicate: float = 0.0
    load_balancing: float = 0.0
    recovery: float = 0.0

    def total(self) -> float:
        """Sum across all categories."""
        return sum(getattr(self, name) for name in PHASE_NAMES)

    def add(self, other: "PhaseTimes") -> None:
        """Accumulate another record into this one (in place)."""
        for name in PHASE_NAMES:
            setattr(self, name, getattr(self, name) + getattr(other, name))

    def as_dict(self) -> dict[str, float]:
        """Phase name -> seconds, in display order."""
        return {name: getattr(self, name) for name in PHASE_NAMES}

    @classmethod
    def mean(cls, records: list["PhaseTimes"]) -> "PhaseTimes":
        """Element-wise mean across ranks (what the overhead figures plot)."""
        if not records:
            return cls()
        out = cls()
        for name in PHASE_NAMES:
            setattr(out, name, sum(getattr(r, name) for r in records) / len(records))
        return out

    @classmethod
    def maximum(cls, records: list["PhaseTimes"]) -> "PhaseTimes":
        """Element-wise maximum across ranks."""
        if not records:
            return cls()
        out = cls()
        for name in PHASE_NAMES:
            setattr(out, name, max(getattr(r, name) for r in records))
        return out
