"""The node-data hash table (section 4.1).

"Hash tables are implemented as an array of pointers to sorted linked lists
which contain the locations for node data.  A modulo hash function is
applied on the node global ID (key) to obtain the location for node data."

The table plays the thesis's dual role: amortized O(1) access to any node's
:class:`~repro.core.node.NodeData` during computation (owned *and* shadow
nodes alike), and the lookup path for updating shadow data after
communication.  The hash function follows the appendix code,
``(3 ** gid) mod table_length``, computed with modular exponentiation.

A plain dict would do the same job in Python; the explicit bucket structure
is kept because the thesis treats bucket behaviour as part of the design
(and the tests exercise it directly).
"""

from __future__ import annotations

from typing import Iterator

from .node import NodeData

__all__ = ["NodeHashTable", "DEFAULT_TABLE_LENGTH"]

#: The appendix header uses 10; larger keeps buckets short for big graphs.
DEFAULT_TABLE_LENGTH = 64


class NodeHashTable:
    """Bucketed modulo-hash table mapping global IDs to node data records.

    Args:
        length: Number of buckets (the appendix's ``HASH_TABLE_LENGTH``).
    """

    def __init__(self, length: int = DEFAULT_TABLE_LENGTH) -> None:
        if length < 1:
            raise ValueError(f"table length must be >= 1, got {length}")
        self._length = length
        self._buckets: list[list[NodeData]] = [[] for _ in range(length)]
        self._count = 0

    @property
    def length(self) -> int:
        """Number of buckets."""
        return self._length

    def hash_index(self, gid: int) -> int:
        """The appendix's hash: ``(3 ** gid) mod length``."""
        if gid < 1:
            raise KeyError(f"global IDs are 1-based, got {gid}")
        return pow(3, gid, self._length)

    def insert(self, record: NodeData) -> bool:
        """Insert a record; returns False (no-op) if the gid is present.

        Mirrors the appendix's duplicate check when inserting shadows that
        several peripheral nodes reference.
        """
        bucket = self._buckets[self.hash_index(record.global_id)]
        for existing in bucket:
            if existing.global_id == record.global_id:
                return False
        # Buckets are kept sorted by gid ("sorted linked lists").
        lo, hi = 0, len(bucket)
        while lo < hi:
            mid = (lo + hi) // 2
            if bucket[mid].global_id < record.global_id:
                lo = mid + 1
            else:
                hi = mid
        bucket.insert(lo, record)
        self._count += 1
        return True

    def get(self, gid: int) -> NodeData | None:
        """Look up the data record for ``gid`` (None when absent)."""
        for record in self._buckets[self.hash_index(gid)]:
            if record.global_id == gid:
                return record
            if record.global_id > gid:  # sorted bucket: early exit
                return None
        return None

    def __getitem__(self, gid: int) -> NodeData:
        record = self.get(gid)
        if record is None:
            raise KeyError(f"node {gid} not in hash table")
        return record

    def __contains__(self, gid: int) -> bool:
        return self.get(gid) is not None

    def remove(self, gid: int) -> bool:
        """Remove the record for ``gid``; returns whether it was present."""
        bucket = self._buckets[self.hash_index(gid)]
        for idx, record in enumerate(bucket):
            if record.global_id == gid:
                bucket.pop(idx)
                self._count -= 1
                return True
            if record.global_id > gid:
                return False
        return False

    def __len__(self) -> int:
        return self._count

    def __iter__(self) -> Iterator[NodeData]:
        for bucket in self._buckets:
            yield from bucket

    def gids(self) -> list[int]:
        """All stored global IDs (ascending)."""
        return sorted(record.global_id for record in self)

    def bucket_lengths(self) -> list[int]:
        """Per-bucket occupancy, for distribution tests."""
        return [len(bucket) for bucket in self._buckets]

    def clear(self) -> None:
        """Drop every record."""
        self._buckets = [[] for _ in range(self._length)]
        self._count = 0
