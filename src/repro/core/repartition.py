"""Load-aware repartitioning from scratch (the migration alternative).

Section 4.3 frames the trade-off: "Invoking the initialization phase for
re-partitioning from scratch can be very costly" -- which is why the thesis
migrates single tasks instead.  Section 8 promises a "comprehensive
evaluation of static and dynamic partitioners".  This module implements the
costly alternative so the platform can actually run that comparison:

1. every rank reports the *measured* per-node compute seconds of the last
   window (tracked by :class:`~repro.core.compute.ComputeContext`),
2. rank 0 builds a node-weighted copy of the application graph and runs a
   static partitioner plug-in on it (weights make the partitioner
   load-aware, which the original static partition was not),
3. the new assignment is broadcast, committed values are allgathered, and
   every rank rebuilds its :class:`NodeStore` from scratch -- paying the
   full initialization cost again, exactly the expense the thesis warns
   about.

The rebuild is semantically invisible: committed values are carried over,
so results are bit-identical with and without repartitioning.
"""

from __future__ import annotations

from typing import Any, Callable

from ..graphs.graph import Graph
from ..mpi.communicator import Communicator
from ..partitioning.base import Partitioner
from .compute import ComputeContext
from .nodestore import NodeStore

__all__ = ["measured_node_weights", "repartition_phase"]

#: Weight resolution: measured seconds are quantized to this many buckets
#: relative to the cheapest node (integer weights for the partitioners).
_WEIGHT_SCALE = 20


def measured_node_weights(
    graph: Graph, loads: dict[int, float], default: float | None = None
) -> list[int]:
    """Convert measured per-node seconds into integer partitioner weights.

    Nodes without measurements (e.g. a window with zero grain) get the
    median measured load, or 1 when nothing was measured at all.

    Args:
        graph: The application graph (defines the id range).
        loads: ``gid -> seconds`` merged across ranks.
        default: Load assumed for unmeasured nodes (None = median).
    """
    if not loads:
        return [1] * graph.num_nodes
    values = sorted(loads.values())
    if default is None:
        default = values[len(values) // 2]
    floor = min(values)
    if floor <= 0:
        floor = max(values) or 1.0
    weights = []
    for gid in graph.nodes():
        seconds = loads.get(gid, default)
        weights.append(max(1, round(seconds / floor * _WEIGHT_SCALE / 10)))
    return weights


def repartition_phase(
    comm: Communicator,
    store: NodeStore,
    repartitioner: Partitioner,
    ctx: ComputeContext,
    init_cost_fn: Callable[[NodeStore], float] | None = None,
) -> tuple[NodeStore, bool]:
    """Re-partition from scratch using measured node loads (collective).

    Args:
        comm: World communicator.
        store: The current node store (consumed; a fresh one is returned).
        repartitioner: Static partitioner plug-in to re-run.
        ctx: Compute context carrying the per-node load window.
        init_cost_fn: Optional virtual-cost charge for the rebuild; default
            charges ``init_node_cost``/``init_shadow_cost`` like the
            platform's initialization phase.

    Returns:
        ``(new store, changed)`` -- ``changed`` is False when the new
        assignment equals the old one (store returned unchanged).
    """
    graph = store.graph

    # ---- 1. gather measured loads ------------------------------------
    gathered = comm.gather(dict(ctx.node_compute), root=0)
    new_assignment: list[int] | None = None
    if comm.rank == 0:
        merged: dict[int, float] = {}
        assert gathered is not None
        for chunk in gathered:
            merged.update(chunk)
        weights = measured_node_weights(graph, merged)
        weighted = graph.with_node_weights(weights)
        partition = repartitioner.partition(weighted, comm.size)
        new_assignment = list(partition.assignment)
    new_assignment = comm.bcast(new_assignment, root=0)
    assert new_assignment is not None

    if new_assignment == store.assignment:
        return store, False

    # ---- 2. carry committed values over (full exchange) ---------------
    own_values = store.owned_values()
    all_values: dict[int, Any] = {}
    for chunk in comm.allgather(own_values):
        all_values.update(chunk)

    # ---- 3. rebuild the store from scratch ----------------------------
    # Mutate the shared assignment list in place so any aliases (the
    # platform hands the same list to the store) stay consistent.
    store.assignment[:] = new_assignment
    new_store = type(store)(
        comm.rank,
        graph,
        store.assignment,
        init_value=lambda gid: all_values[gid],
        hash_table_length=store.hash_table.length,
    )
    if init_cost_fn is not None:
        comm.work(init_cost_fn(new_store))
    else:
        costs = ctx.costs
        comm.work(
            costs.init_node_cost * new_store.num_owned()
            + costs.init_shadow_cost * len(new_store.shadow_gids())
        )
    comm.barrier()
    return new_store, True
