"""Per-iteration execution traces.

Goal 4 of the thesis is "carrying out of refinements and performance tuning
for efficient computation and communication on the platform itself" -- which
needs visibility beyond end-to-end totals.  When
``PlatformConfig(track_trace=True)`` is set, every rank records one
:class:`IterationRecord` per iteration: the virtual-clock window and the
compute / communication-overhead split inside it.

:class:`ExecutionTrace` aggregates the records: per-iteration makespans,
per-rank utilization, an imbalance time-series (watch the dynamic load
balancer actually flatten it), and a text timeline rendering.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

__all__ = [
    "IterationRecord",
    "ReconfigurationRecord",
    "IntegrityRecord",
    "QuiescenceRecord",
    "ExecutionTrace",
]


@dataclass(frozen=True)
class IterationRecord:
    """One rank's accounting for one iteration.

    Attributes:
        rank: The processor.
        iteration: 1-based iteration number.
        start: Virtual clock when the iteration's first sweep began.
        end: Virtual clock when its last sweep ended.
        compute: Application grain seconds charged during the iteration.
        comm_overhead: Pack/unpack bookkeeping seconds.
        migrations: Tasks this rank sent or received in the trailing
            load-balance phase (0 outside LB iterations).
        attempt: Recovery generation: 0 until the first fault-injected
            crash rolls the loop back, then +1 per rollback.  Records of an
            iteration re-executed after a rollback carry a higher attempt
            than the (rolled-back) originals.
    """

    rank: int
    iteration: int
    start: float
    end: float
    compute: float
    comm_overhead: float
    migrations: int = 0
    attempt: int = 0

    @property
    def duration(self) -> float:
        """Wall (virtual) time the iteration occupied on this rank."""
        return self.end - self.start


@dataclass(frozen=True)
class ReconfigurationRecord:
    """One recovery event as one survivor saw it.

    Every survivor records the same logical content (dead ranks, survivor
    re-ranking, redistribution counts) because recovery is collective and
    deterministic; only ``rank`` differs across the copies the platform
    aggregates.

    Attributes:
        rank: The *world* rank that recorded this (a survivor).
        iteration: 1-based iteration at whose start the failure surfaced.
        policy: ``"rollback"`` or ``"shrink"``.
        dead_ranks: World ranks lost in this event, ascending.
        survivors: Surviving world ranks in their new dense-rank order
            (``survivors[new_local_rank] == world_rank``); under rollback
            this is simply the full world, unchanged.
        nodes_redistributed: Graph nodes reassigned from the dead ranks to
            survivors (0 under rollback -- the dead rank is resurrected).
        detection_cost: Virtual seconds each survivor charged to notice and
            agree on the failure.
        reconfiguration_cost: Virtual seconds this rank spent on everything
            after detection: checkpoint restore, communicator shrink, state
            redistribution, store rebuild.
        resumed_iteration: First iteration (re-)executed after recovery.
    """

    rank: int
    iteration: int
    policy: str
    dead_ranks: tuple[int, ...]
    survivors: tuple[int, ...]
    nodes_redistributed: int
    detection_cost: float
    reconfiguration_cost: float
    resumed_iteration: int


@dataclass(frozen=True)
class IntegrityRecord:
    """One silent-corruption recovery event as one rank saw it.

    Like :class:`ReconfigurationRecord`, every rank records the same logical
    content (the claim exchange is collective), so only ``rank`` differs
    across the copies; :meth:`ExecutionTrace.integrity_events` collapses
    them back to the per-event view.

    Attributes:
        rank: The *world* rank that recorded this copy.
        iteration: 1-based iteration at whose start the corruption was
            confirmed by the digest exchange.
        gid: Global id of the corrupted node.
        owner: World rank that owned the corrupted node.
        flip_iteration: Iteration at whose start the flip was injected.
        latency: Supersteps between injection and the collective decision
            (``iteration - flip_iteration``); 0 means the corruption was
            caught before any sweep consumed it.
        mode: ``"repair"`` (surgical replica re-fetch, no rollback) or
            ``"rollback"`` (checkpoint restore past the injection).
        replica: World rank whose shadow copy supplied the repair value
            (None for rollbacks).
        cost: Virtual seconds this rank charged to the detection + recovery
            (digest re-check, claim exchange, and the repair fetch or the
            checkpoint restore).
        resumed_iteration: First iteration (re-)executed after recovery --
            equals ``iteration`` for repairs (no work is redone).
    """

    rank: int
    iteration: int
    gid: int
    owner: int
    flip_iteration: int
    latency: int
    mode: str
    replica: int | None
    cost: float
    resumed_iteration: int


@dataclass(frozen=True)
class QuiescenceRecord:
    """Early termination because the computation reached its fixed point.

    Recorded once per rank when ``PlatformConfig(converge="quiescence")``
    observes, through a collective reduction, that no node's committed
    value changed during an iteration.  All ranks record the same logical
    content (the decision is collective); only ``rank`` differs, and
    :meth:`ExecutionTrace.quiescence_events` collapses the copies.

    Attributes:
        rank: The *world* rank that recorded this copy.
        iteration: 1-based iteration whose sweeps produced zero changes --
            the last iteration actually executed.
        configured_iterations: The ``iterations`` the run was configured
            for.
        saved_iterations: Sweeps skipped thanks to early termination
            (``configured_iterations - iteration``).
    """

    rank: int
    iteration: int
    configured_iterations: int
    saved_iterations: int


class ExecutionTrace:
    """All ranks' iteration records for one platform run."""

    def __init__(
        self,
        records: Iterable[IterationRecord] = (),
        reconfigurations: Iterable[ReconfigurationRecord] = (),
        integrity: Iterable[IntegrityRecord] = (),
        quiescence: Iterable[QuiescenceRecord] = (),
    ) -> None:
        self._records: list[IterationRecord] = list(records)
        self._reconfigurations: list[ReconfigurationRecord] = list(reconfigurations)
        self._integrity: list[IntegrityRecord] = list(integrity)
        self._quiescence: list[QuiescenceRecord] = list(quiescence)

    def add(self, record: IterationRecord) -> None:
        """Append one record."""
        self._records.append(record)

    def extend(self, records: Iterable[IterationRecord]) -> None:
        """Append many records."""
        self._records.extend(records)

    def __len__(self) -> int:
        return len(self._records)

    @property
    def records(self) -> tuple[IterationRecord, ...]:
        return tuple(self._records)

    @property
    def reconfigurations(self) -> tuple[ReconfigurationRecord, ...]:
        """All recovery events, in (iteration, rank) order."""
        return tuple(
            sorted(self._reconfigurations, key=lambda r: (r.iteration, r.rank))
        )

    def add_reconfiguration(self, record: ReconfigurationRecord) -> None:
        """Append one recovery event record."""
        self._reconfigurations.append(record)

    def reconfiguration_events(self) -> list[ReconfigurationRecord]:
        """One representative record per recovery event (lowest rank's copy).

        Survivors record identical logical content, so collapsing by
        iteration + dead set gives the per-event view without double
        counting the per-rank copies.
        """
        seen: dict[tuple[int, tuple[int, ...]], ReconfigurationRecord] = {}
        for r in self.reconfigurations:
            seen.setdefault((r.iteration, r.dead_ranks), r)
        return [seen[key] for key in sorted(seen)]

    @property
    def integrity(self) -> tuple[IntegrityRecord, ...]:
        """All silent-corruption events, in (iteration, gid, rank) order."""
        return tuple(
            sorted(self._integrity, key=lambda r: (r.iteration, r.gid, r.rank))
        )

    def add_integrity(self, record: IntegrityRecord) -> None:
        """Append one silent-corruption event record."""
        self._integrity.append(record)

    def integrity_events(self) -> list[IntegrityRecord]:
        """One representative record per corruption event (lowest rank's
        copy), collapsing the identical per-rank copies of each collective
        decision."""
        seen: dict[tuple[int, int, str], IntegrityRecord] = {}
        for r in self.integrity:
            seen.setdefault((r.iteration, r.gid, r.mode), r)
        return [seen[key] for key in sorted(seen)]

    @property
    def quiescence(self) -> tuple[QuiescenceRecord, ...]:
        """All quiescence records, in (iteration, rank) order."""
        return tuple(
            sorted(self._quiescence, key=lambda r: (r.iteration, r.rank))
        )

    def add_quiescence(self, record: QuiescenceRecord) -> None:
        """Append one quiescence record."""
        self._quiescence.append(record)

    def quiescence_events(self) -> list[QuiescenceRecord]:
        """One representative record per quiescence event (lowest rank's
        copy), collapsing the identical per-rank copies."""
        seen: dict[int, QuiescenceRecord] = {}
        for r in self.quiescence:
            seen.setdefault(r.iteration, r)
        return [seen[key] for key in sorted(seen)]

    # ------------------------------------------------------------------ #
    # Aggregations
    # ------------------------------------------------------------------ #

    def iterations(self) -> list[int]:
        """Sorted iteration numbers present in the trace."""
        return sorted({r.iteration for r in self._records})

    def ranks(self) -> list[int]:
        """Sorted ranks present in the trace."""
        return sorted({r.rank for r in self._records})

    def of_iteration(self, iteration: int) -> list[IterationRecord]:
        """All ranks' *committed* records for one iteration (rank order).

        When checkpoint/restart rolled an iteration back and re-ran it,
        only each rank's latest attempt is returned; the superseded records
        stay in :attr:`records` and feed :meth:`recovery_overhead`.
        """
        best: dict[int, IterationRecord] = {}
        for r in self._records:
            if r.iteration != iteration:
                continue
            current = best.get(r.rank)
            if current is None or r.attempt > current.attempt:
                best[r.rank] = r
        return [best[rank] for rank in sorted(best)]

    def rolled_back(self) -> list[IterationRecord]:
        """Records superseded by a post-recovery re-execution.

        A record is rolled back when a *later attempt* exists for the same
        (rank, iteration) -- the virtual time it covers was wasted work that
        a crash fault forced the platform to redo.
        """
        latest: dict[tuple[int, int], int] = {}
        for r in self._records:
            key = (r.rank, r.iteration)
            latest[key] = max(latest.get(key, 0), r.attempt)
        return [r for r in self._records if r.attempt < latest[(r.rank, r.iteration)]]

    def recovery_overhead(self) -> float:
        """Virtual seconds of work that crashes forced the platform to redo
        (summed across ranks; the checkpoint/restore machinery itself is
        accounted separately in ``PhaseTimes.recovery``)."""
        return sum(r.duration for r in self.rolled_back())

    def makespan(self, iteration: int) -> float:
        """Latest end minus earliest start across ranks for one iteration."""
        records = self.of_iteration(iteration)
        if not records:
            raise KeyError(f"no records for iteration {iteration}")
        return max(r.end for r in records) - min(r.start for r in records)

    def compute_imbalance(self, iteration: int) -> float:
        """``max(compute) / mean(compute)`` across ranks (1.0 = balanced).

        Iterations where nothing computed report 1.0.
        """
        records = self.of_iteration(iteration)
        values = [r.compute for r in records]
        total = sum(values)
        if total == 0:
            return 1.0
        return max(values) / (total / len(values))

    def imbalance_series(self) -> list[tuple[int, float]]:
        """Per-iteration compute imbalance -- the curve the dynamic load
        balancer is supposed to pull toward 1.0."""
        return [(it, self.compute_imbalance(it)) for it in self.iterations()]

    def utilization(self, rank: int) -> float:
        """Fraction of the rank's traced window spent in application compute."""
        records = [r for r in self._records if r.rank == rank]
        if not records:
            raise KeyError(f"no records for rank {rank}")
        window = sum(r.duration for r in records)
        if window == 0:
            return 0.0
        return sum(r.compute for r in records) / window

    def total_migrations(self) -> int:
        """Tasks moved across the whole run (counted on the sending side)."""
        return sum(r.migrations for r in self._records)

    # ------------------------------------------------------------------ #
    # Rendering
    # ------------------------------------------------------------------ #

    def render(self, max_iterations: int = 40, bar_width: int = 30) -> str:
        """Text timeline: one line per iteration with an imbalance bar.

        Iterations that were rolled back and re-executed after a crash
        fault are flagged with ``R``, and a recovery summary line reports
        the total redone virtual time.
        """
        redone = {(r.rank, r.iteration) for r in self.rolled_back()}
        redone_iters = {it for _, it in redone}
        lines = ["iter   makespan    imbalance"]
        for it in self.iterations()[:max_iterations]:
            imbalance = self.compute_imbalance(it)
            span = self.makespan(it)
            # Bar shows the overload fraction above perfect balance.
            filled = min(bar_width, round((imbalance - 1.0) * bar_width))
            bar = "#" * filled + "." * (bar_width - filled)
            flag = " R" if it in redone_iters else ""
            lines.append(f"{it:4d}  {span * 1e3:8.3f}ms   {imbalance:6.3f} |{bar}|{flag}")
        remaining = len(self.iterations()) - max_iterations
        if remaining > 0:
            lines.append(f"... {remaining} more iterations")
        overhead = self.recovery_overhead()
        if overhead:
            lines.append(
                f"recovery: {len(redone)} iteration records rolled back, "
                f"{overhead * 1e3:.3f}ms re-executed"
            )
        for event in self.reconfiguration_events():
            lines.append(
                f"reconfiguration @ iter {event.iteration} [{event.policy}]: "
                f"dead={','.join(str(r) for r in event.dead_ranks)}, "
                f"{len(event.survivors)} survivors, "
                f"{event.nodes_redistributed} nodes redistributed, "
                f"detect {event.detection_cost * 1e3:.3f}ms + "
                f"reconfigure {event.reconfiguration_cost * 1e3:.3f}ms"
            )
        for event in self.integrity_events():
            source = (
                f"replica on rank {event.replica}"
                if event.mode == "repair"
                else f"rollback to iter {event.resumed_iteration - 1}"
            )
            lines.append(
                f"integrity @ iter {event.iteration} [{event.mode}]: "
                f"node {event.gid} on rank {event.owner} "
                f"(flipped @ iter {event.flip_iteration}, "
                f"latency {event.latency}), {source}, "
                f"cost {event.cost * 1e3:.3f}ms"
            )
        for event in self.quiescence_events():
            lines.append(
                f"quiescence @ iter {event.iteration}: fixed point reached, "
                f"{event.saved_iterations} of "
                f"{event.configured_iterations} iterations saved"
            )
        return "\n".join(lines)
