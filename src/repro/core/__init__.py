"""The iC2mpi platform core: node stores, compute/communicate sweeps,
dynamic load balancing, task migration, and the platform driver."""

from .bsp import VertexContext, VertexProgram, run_bsp, run_vertex_program
from .buffers import BUFFER_RECORD_TYPE, CommBuffers
from .checkpoint import Checkpoint, CheckpointError, Checkpointer
from .directory import DistributedDirectory
from .compute import (
    ComputeContext,
    NodeFn,
    NodeView,
    TAG_SHADOW,
    sweep_basic,
    sweep_overlapped,
)
from .config import PlatformConfig, PlatformCosts
from .hashtable import DEFAULT_TABLE_LENGTH, NodeHashTable
from .integrity import (
    TAG_INTEGRITY,
    CorruptionClaim,
    IntegrityDecision,
    IntegrityGuard,
    inject_memory_flips,
)
from .loadbalance import (
    BusyIdlePair,
    CentralizedHeuristicBalancer,
    DiffusionBalancer,
    GreedyPairBalancer,
    LoadBalancer,
    build_processor_edges,
)
from .migration import (
    MigrationEvent,
    TAG_MIGRATE,
    load_balance_phase,
    migrate_node,
    select_migrating_node,
)
from .node import INTERNAL, PERIPHERAL, NodeData, OwnNode
from .nodestore import NodeStore
from .soastore import BulkView, SoAStore
from .phases import PHASE_NAMES, PhaseTimes
from .platform import ICPlatform, PlatformResult, RankOutcome, run_platform
from .recovery import (
    TAG_RECOVERY,
    ShrinkOutcome,
    redistribute_lost_nodes,
    send_dying_checkpoint,
    shrink_reconfigure,
)
from .repartition import measured_node_weights, repartition_phase
from .trace import (
    ExecutionTrace,
    IntegrityRecord,
    IterationRecord,
    ReconfigurationRecord,
)

__all__ = [
    "BUFFER_RECORD_TYPE",
    "BulkView",
    "BusyIdlePair",
    "CentralizedHeuristicBalancer",
    "Checkpoint",
    "CheckpointError",
    "Checkpointer",
    "CommBuffers",
    "ComputeContext",
    "CorruptionClaim",
    "DEFAULT_TABLE_LENGTH",
    "DiffusionBalancer",
    "DistributedDirectory",
    "ExecutionTrace",
    "IntegrityDecision",
    "IntegrityGuard",
    "IntegrityRecord",
    "IterationRecord",
    "GreedyPairBalancer",
    "ICPlatform",
    "INTERNAL",
    "LoadBalancer",
    "MigrationEvent",
    "NodeData",
    "NodeFn",
    "NodeHashTable",
    "NodeStore",
    "NodeView",
    "OwnNode",
    "PERIPHERAL",
    "PHASE_NAMES",
    "PhaseTimes",
    "PlatformConfig",
    "PlatformCosts",
    "PlatformResult",
    "RankOutcome",
    "ReconfigurationRecord",
    "ShrinkOutcome",
    "SoAStore",
    "TAG_INTEGRITY",
    "TAG_MIGRATE",
    "TAG_RECOVERY",
    "TAG_SHADOW",
    "VertexContext",
    "VertexProgram",
    "build_processor_edges",
    "inject_memory_flips",
    "measured_node_weights",
    "redistribute_lost_nodes",
    "repartition_phase",
    "run_bsp",
    "run_vertex_program",
    "load_balance_phase",
    "migrate_node",
    "run_platform",
    "select_migrating_node",
    "send_dying_checkpoint",
    "shrink_reconfigure",
    "sweep_basic",
    "sweep_overlapped",
]
