"""Struct-of-arrays node store: contiguous numpy state behind the NodeStore API.

The object store keeps one :class:`~repro.core.node.NodeData` instance per
node -- flexible, but at 100k+ nodes the per-record attribute traffic and
hash-bucket scans dominate wall time.  :class:`SoAStore` keeps the same
*logical* state in parallel numpy arrays (values, pending values, version
counters, halt flags), in the style of gpaw's grid descriptors:

::

    slot:            0      1      2      3    ...
    _values     [ 12.5 | 17.0 |  3.25 |  8.0 | ... ]   float64 (or object)
    _pending    [  --  | 16.5 |  --   |  7.5 | ... ]   valid where mask set
    _pend_mask  [  F   |  T   |  F    |  T   | ... ]   bool
    _versions   [  3   |  5   |  0    |  2   | ... ]   int64
    _halted     [  F   |  F   |  T    |  F   | ... ]   bool
    _gids       [  7   |  12  |  31   |  40  | ... ]   int64
                   ^ slot assignment via the _slot_of dict

Everything above the record layer is inherited unchanged: ownership
surgery, checkpoint capture/restore, integrity repair, and migration all go
through the same :meth:`NodeStore._add_record` seam and see per-record
*proxy* objects (:class:`_ArrayRecord`) that read and write the arrays.
Proxies are cached one-per-gid so the object-identity invariants of the
base class (``hash_table.get(gid) is data_records[gid]``) keep holding.

Exactness rules (the differential oracle demands byte-identical results
against the object store):

* Reads return the *exact* Python objects the object store would hold:
  ``float(arr[slot])`` is lossless for float64, versions come back as
  Python ints.  Checkpoint payloads, wire records, and integrity digests
  therefore pickle identically.
* The float64 fast path only engages while every stored value is exactly
  of type :class:`float`.  The first non-float write demotes the whole
  store to object dtype (preserving the original objects), so arbitrary
  application values (battlefield dicts, ints, numpy scalars) behave
  exactly as in the object store.
* Bulk kernels (:class:`BulkView`) sum neighbour segments over a *closed*
  adjacency (self value prepended per segment) with a column-sweep
  accumulation that reproduces the scalar left-to-right summation order
  bit-for-bit (``np.add.reduceat`` would reduce pairwise -- off by an
  ulp).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterator

import numpy as np

from .nodestore import NodeStore

__all__ = ["SoAStore", "BulkView"]

#: Retained sparse gather geometries per topology epoch, evicted LRU
#: (delta and hybrid frontiers often alternate between a small number of
#: stable active sets).
_SPARSE_GEOMETRY_SLOTS = 8


# --------------------------------------------------------------------- #
# Exact segmented sums
# --------------------------------------------------------------------- #


def _ranges_sum(flat: np.ndarray, starts: np.ndarray, ends: np.ndarray) -> np.ndarray:
    """Per-range sums ``sum(flat[starts[i]:ends[i]])``, left-to-right.

    ``np.add.reduceat`` is the obvious tool but it reduces segments
    *pairwise* (``(a+b)+(c+d)``), which differs from Python's sequential
    ``((a+b)+c)+d`` in the last ulp -- enough to flip a ``round()`` and
    break the differential oracle.  Instead the segments are accumulated
    column by column: pass ``k`` adds the ``k``-th element of every range
    still that long, so each range is summed strictly left to right, bit
    for bit like the scalar path's ``sum([...])``.  The pass count is the
    maximum range length (a graph degree), while each pass is one
    vectorized gather-add over all ranges.  Empty ranges sum to ``0.0``
    (matching ``sum([]) == 0``).
    """
    k = len(starts)
    out = np.zeros(k, dtype=flat.dtype)
    if k == 0:
        return out
    lens = np.asarray(ends) - np.asarray(starts)
    for col in range(int(lens.max())):
        sel = np.nonzero(lens > col)[0]
        out[sel] += flat[starts[sel] + col]
    return out


# --------------------------------------------------------------------- #
# Bulk view (what a vectorized node kernel sees)
# --------------------------------------------------------------------- #


@dataclass
class BulkView:
    """A batch of nodes presented to a bulk kernel as arrays.

    The neighbourhood is a *closed* CSR: segment ``i`` of
    ``closed_values`` is ``[own value, neighbour 1, neighbour 2, ...]`` --
    exactly the list the scalar path passes to ``sum(...)``, in the same
    order, so segmented sums match the scalar results bit-for-bit.

    Attributes:
        gids: Global IDs of the nodes in this view (sweep order).
        values: Committed own values, aligned with ``gids``.
        closed_values: Concatenated closed neighbourhood segments.
        indptr: ``len(gids)+1`` segment offsets into ``closed_values``.
        degrees: Neighbour counts, aligned with ``gids``.
        iteration: Current platform iteration (0-based).
        round: Current communication round.
        cache: Kernel scratch dict.  For dense views it persists across
            sweeps until ownership surgery invalidates the topology, so
            kernels can stash per-node constants (boundary masks etc.).
    """

    gids: np.ndarray
    values: np.ndarray
    closed_values: np.ndarray
    indptr: np.ndarray
    degrees: np.ndarray
    iteration: int
    round: int
    cache: dict[str, Any]

    def __len__(self) -> int:
        return len(self.gids)

    def sum_closed(self) -> np.ndarray:
        """``sum([own value, *neighbour values])`` per node, scalar order."""
        return _ranges_sum(self.closed_values, self.indptr[:-1], self.indptr[1:])

    def sum_neighbors(self) -> np.ndarray:
        """``sum(neighbour values)`` per node (0 for isolated nodes)."""
        return _ranges_sum(self.closed_values, self.indptr[:-1] + 1, self.indptr[1:])


@dataclass
class _BulkTopo:
    """Cached sweep-order topology of the owned set (one per surgery epoch)."""

    order_gids: list[int]
    order_gids_arr: np.ndarray
    slot_of_order: np.ndarray
    internal_count: int
    indptr: np.ndarray
    flat_slots: np.ndarray
    degrees: np.ndarray
    pos: dict[int, int]
    view_caches: dict[str, tuple] = field(default_factory=dict)
    #: Anonymous sparse gather geometries keyed by the positions bytes
    #: (bounded LRU over dict insertion order; see
    #: :meth:`SoAStore.bulk_view`).
    sparse_cache: dict[bytes, tuple] = field(default_factory=dict)


# --------------------------------------------------------------------- #
# Per-record proxy
# --------------------------------------------------------------------- #


class _ArrayRecord:
    """A NodeData-shaped window onto one slot of the arrays.

    Cached one-per-gid by the store so identity checks
    (``data_records[gid] is hash_table.get(gid)``) behave exactly as with
    real :class:`~repro.core.node.NodeData` instances.
    """

    __slots__ = ("_store", "global_id")

    def __init__(self, store: "SoAStore", gid: int) -> None:
        self._store = store
        self.global_id = gid

    @property
    def data(self) -> Any:
        return self._store._read_value(self._store._slot_of[self.global_id])

    @data.setter
    def data(self, value: Any) -> None:
        self._store._write_value(self._store._slot_of[self.global_id], value)

    @property
    def most_recent_data(self) -> Any:
        return self._store._read_pending(self._store._slot_of[self.global_id])

    @most_recent_data.setter
    def most_recent_data(self, value: Any) -> None:
        self._store._write_pending(self._store._slot_of[self.global_id], value)

    @property
    def version(self) -> int:
        return int(self._store._versions[self._store._slot_of[self.global_id]])

    @version.setter
    def version(self, value: int) -> None:
        self._store._versions[self._store._slot_of[self.global_id]] = value

    @property
    def halted(self) -> bool:
        return bool(self._store._halted[self._store._slot_of[self.global_id]])

    @halted.setter
    def halted(self, value: bool) -> None:
        self._store._halted[self._store._slot_of[self.global_id]] = bool(value)

    def commit(self) -> bool:
        """Mirror :meth:`NodeData.commit` on the array slots."""
        pending = self.most_recent_data
        if pending is None:
            return False
        changed = pending != self.data
        self.data = pending
        self.most_recent_data = None
        if changed:
            self.version += 1
        return changed

    def __repr__(self) -> str:
        return f"NodeData(gid={self.global_id}, data={self.data!r}, v{self.version})"


# --------------------------------------------------------------------- #
# dict / hash-table facades
# --------------------------------------------------------------------- #


class _SoARecords:
    """``data_records`` facade: a gid-keyed mapping over the arrays."""

    __slots__ = ("_store",)

    def __init__(self, store: "SoAStore") -> None:
        self._store = store

    def __getitem__(self, gid: int) -> _ArrayRecord:
        if gid not in self._store._slot_of:
            raise KeyError(gid)
        return self._store._proxy(gid)

    def get(self, gid: int, default: Any = None) -> Any:
        if gid not in self._store._slot_of:
            return default
        return self._store._proxy(gid)

    def __contains__(self, gid: int) -> bool:
        return gid in self._store._slot_of

    def __len__(self) -> int:
        return len(self._store._slot_of)

    def __iter__(self) -> Iterator[int]:
        return iter(list(self._store._order))

    def keys(self) -> list[int]:
        return list(self._store._order)

    def values(self) -> Iterator[_ArrayRecord]:
        for gid in list(self._store._order):
            yield self._store._proxy(gid)

    def items(self) -> Iterator[tuple[int, _ArrayRecord]]:
        for gid in list(self._store._order):
            yield gid, self._store._proxy(gid)

    def __delitem__(self, gid: int) -> None:
        self._store._remove_record(gid)

    def clear(self) -> None:
        for gid in list(self._store._order):
            self._store._remove_record(gid)


class _SoAHashTable:
    """``hash_table`` facade with the :class:`NodeHashTable` read API.

    Lookups are O(1) dict hits; the modulo-hash bucket *accounting*
    (``hash_index`` / ``bucket_lengths``) is still answered for
    diagnostics, computed from the same appendix hash function.
    """

    __slots__ = ("_store",)

    def __init__(self, store: "SoAStore") -> None:
        self._store = store

    @property
    def length(self) -> int:
        return self._store._table_length

    def hash_index(self, gid: int) -> int:
        if gid < 1:
            raise KeyError(f"global IDs are 1-based, got {gid}")
        return pow(3, gid, self._store._table_length)

    def get(self, gid: int) -> _ArrayRecord | None:
        if gid not in self._store._slot_of:
            return None
        return self._store._proxy(gid)

    def __getitem__(self, gid: int) -> _ArrayRecord:
        if gid not in self._store._slot_of:
            raise KeyError(f"node {gid} not in hash table")
        return self._store._proxy(gid)

    def __contains__(self, gid: int) -> bool:
        return gid in self._store._slot_of

    def insert(self, record: Any) -> bool:
        raise TypeError(
            "SoAStore manages its hash index internally; "
            "add records through the store API"
        )

    def remove(self, gid: int) -> bool:
        if gid not in self._store._slot_of:
            return False
        self._store._remove_record(gid)
        return True

    def __len__(self) -> int:
        return len(self._store._slot_of)

    def __iter__(self) -> Iterator[_ArrayRecord]:
        # Bucket order, sorted within buckets -- same order as the real table.
        buckets: dict[int, list[int]] = {}
        for gid in self._store._slot_of:
            buckets.setdefault(self.hash_index(gid), []).append(gid)
        for index in sorted(buckets):
            for gid in sorted(buckets[index]):
                yield self._store._proxy(gid)

    def gids(self) -> list[int]:
        return sorted(self._store._slot_of)

    def bucket_lengths(self) -> list[int]:
        lengths = [0] * self._store._table_length
        for gid in self._store._slot_of:
            lengths[self.hash_index(gid)] += 1
        return lengths


# --------------------------------------------------------------------- #
# The store
# --------------------------------------------------------------------- #


class SoAStore(NodeStore):
    """Struct-of-arrays drop-in for :class:`NodeStore`.

    Same constructor, same API, same observable behaviour (the
    differential oracle in ``tests/core/test_store_conformance.py`` pins
    this); node state lives in contiguous numpy arrays and the hot
    commit/shadow-update paths run vectorized.
    """

    # -------------------------- record layer -------------------------- #

    def _init_record_storage(self, hash_table_length: int) -> None:
        self._table_length = hash_table_length
        self._slot_of: dict[int, int] = {}
        self._order: list[int] = []
        self._free: list[int] = []
        self._high_water = 0
        self._float_mode = True
        self._values = np.empty(0, dtype=np.float64)
        self._pending = np.empty(0, dtype=np.float64)
        self._pending_mask = np.zeros(0, dtype=bool)
        self._versions = np.zeros(0, dtype=np.int64)
        self._halted = np.zeros(0, dtype=bool)
        self._gids = np.zeros(0, dtype=np.int64)
        self._proxies: dict[int, _ArrayRecord] = {}
        self._topo: _BulkTopo | None = None
        # Process-backend plumbing: a SharedStoreAllocator when the arrays
        # live in a named shared-memory segment (one StoreBlock generation
        # at a time), else None and the arrays are private heap numpy.
        self._shared_allocator: Any = None
        self._block: Any = None
        # Sparse gather-geometry memo telemetry (benchmarked by
        # benchmarks/soa_scaling.py).
        self.sparse_geom_hits = 0
        self.sparse_geom_misses = 0
        self.data_records = _SoARecords(self)  # type: ignore[assignment]
        self.hash_table = _SoAHashTable(self)  # type: ignore[assignment]

    def _capacity(self) -> int:
        return len(self._values)

    def _grow(self, minimum: int) -> None:
        new_cap = max(64, 2 * self._capacity(), minimum)
        if self._shared_allocator is not None:
            self._grow_shared(new_cap)
            return
        pad = new_cap - self._capacity()
        value_dtype = self._values.dtype
        self._values = np.concatenate([self._values, np.zeros(pad, dtype=value_dtype)])
        self._pending = np.concatenate([self._pending, np.zeros(pad, dtype=value_dtype)])
        if value_dtype == object:
            self._pending[-pad:] = None
        self._pending_mask = np.concatenate([self._pending_mask, np.zeros(pad, dtype=bool)])
        self._versions = np.concatenate([self._versions, np.zeros(pad, dtype=np.int64)])
        self._halted = np.concatenate([self._halted, np.zeros(pad, dtype=bool)])
        self._gids = np.concatenate([self._gids, np.zeros(pad, dtype=np.int64)])

    def _new_slot(self) -> int:
        if self._free:
            return self._free.pop()
        if self._high_water == self._capacity():
            self._grow(self._high_water + 1)
        slot = self._high_water
        self._high_water += 1
        return slot

    def _demote(self) -> None:
        """Switch from the float64 fast path to object dtype, preserving
        every stored value exactly (float64 entries become Python floats,
        as the object store would hold them)."""
        if self._shared_allocator is not None:
            from ..mpi.errors import UnsupportedBackendError

            raise UnsupportedBackendError(
                f"rank {self.rank} store would demote to object dtype, but "
                "its arrays live in a shared-memory segment (process "
                "backend) that can only hold float64 values; keep node "
                "values as Python floats, or run with --scheduler "
                "event/threads for object-valued workloads"
            )
        values = np.empty(self._capacity(), dtype=object)
        values[:] = self._values.tolist()
        pending = np.empty(self._capacity(), dtype=object)
        pending[:] = None
        pending_list = self._pending.tolist()
        for slot in np.flatnonzero(self._pending_mask):
            pending[slot] = pending_list[slot]
        self._values = values
        self._pending = pending
        self._float_mode = False

    # --------------------- shared-segment backing ---------------------- #

    def array_specs(self, capacity: int) -> list[tuple[str, str, int]]:
        """``(name, dtype, count)`` layout of the record arrays at
        ``capacity`` slots -- the construct-over-existing-buffer contract
        shared with :class:`~repro.mpi.shm.StoreBlock`."""
        return [
            ("values", "float64", capacity),
            ("pending", "float64", capacity),
            ("pending_mask", "bool", capacity),
            ("versions", "int64", capacity),
            ("halted", "bool", capacity),
            ("gids", "int64", capacity),
        ]

    def use_shared_arrays(self, allocator: Any) -> None:
        """Migrate the record arrays into a shared-memory segment.

        ``allocator`` is a :class:`~repro.mpi.shm.SharedStoreAllocator`
        (or anything with ``allocate(specs) -> block`` yielding named
        arrays); every later growth step allocates a fresh generation
        through it and releases the previous one.  Only the float64 fast
        path can be shared -- a store already demoted to object dtype is
        rejected up front, and any later demotion attempt raises
        :class:`~repro.mpi.errors.UnsupportedBackendError` instead of
        silently diverging from the segment peers read.
        """
        if not self._float_mode:
            from ..mpi.errors import UnsupportedBackendError

            raise UnsupportedBackendError(
                f"rank {self.rank} store holds object-dtype values and "
                "cannot be backed by a shared-memory segment (process "
                "backend supports float node values only)"
            )
        self._shared_allocator = allocator
        self._grow_shared(max(self._capacity(), 64))

    def _grow_shared(self, new_cap: int) -> None:
        """Allocate a new shared generation and copy the live arrays in."""
        old_block = self._block
        block = self._shared_allocator.allocate(self.array_specs(new_cap))
        arrays = block.arrays
        n = self._capacity()
        arrays["values"][:n] = self._values
        arrays["pending"][:n] = self._pending
        arrays["pending_mask"][:n] = self._pending_mask
        arrays["versions"][:n] = self._versions
        arrays["halted"][:n] = self._halted
        arrays["gids"][:n] = self._gids
        self._values = arrays["values"]
        self._pending = arrays["pending"]
        self._pending_mask = arrays["pending_mask"]
        self._versions = arrays["versions"]
        self._halted = arrays["halted"]
        self._gids = arrays["gids"]
        self._block = block
        if old_block is not None:
            old_block.release()

    def adopt_runtime_policy(self, other: NodeStore) -> None:
        """Carry a rebuild source's shared-segment allocator (recovery)."""
        allocator = getattr(other, "_shared_allocator", None)
        if allocator is not None:
            self.use_shared_arrays(allocator)

    def _read_value(self, slot: int) -> Any:
        value = self._values[slot]
        return float(value) if self._float_mode else value

    def _write_value(self, slot: int, value: Any) -> None:
        if self._float_mode and type(value) is not float:
            self._demote()
        self._values[slot] = value

    def _read_pending(self, slot: int) -> Any:
        if not self._pending_mask[slot]:
            return None
        value = self._pending[slot]
        return float(value) if self._float_mode else value

    def _write_pending(self, slot: int, value: Any) -> None:
        if value is None:
            self._pending_mask[slot] = False
            if not self._float_mode:
                self._pending[slot] = None
            return
        if self._float_mode and type(value) is not float:
            self._demote()
        self._pending[slot] = value
        self._pending_mask[slot] = True

    def _proxy(self, gid: int) -> _ArrayRecord:
        proxy = self._proxies.get(gid)
        if proxy is None:
            proxy = self._proxies[gid] = _ArrayRecord(self, gid)
        return proxy

    def _add_record(
        self,
        gid: int,
        value: Any,
        most_recent: Any = None,
        version: int = 0,
        halted: bool = False,
    ) -> _ArrayRecord:
        if gid in self._slot_of:
            raise KeyError(f"rank {self.rank} already holds a record for node {gid}")
        slot = self._new_slot()
        self._slot_of[gid] = slot
        self._order.append(gid)
        self._gids[slot] = gid
        self._versions[slot] = version
        self._halted[slot] = bool(halted)
        self._pending_mask[slot] = False
        self._write_value(slot, value)
        self._write_pending(slot, most_recent)
        self._topo = None
        return self._proxy(gid)

    def _remove_record(self, gid: int) -> None:
        slot = self._slot_of.pop(gid)
        self._order.remove(gid)
        self._free.append(slot)
        self._pending_mask[slot] = False
        self._halted[slot] = False
        if not self._float_mode:
            self._values[slot] = None
            self._pending[slot] = None
        self._proxies.pop(gid, None)
        self._topo = None

    def _reset_records(self, hash_table_length: int) -> None:
        # The shared-segment policy survives a checkpoint-restore wipe: the
        # old generation is released and the next growth reallocates
        # through the same allocator.
        allocator = self._shared_allocator
        block = self._block
        self._init_record_storage(hash_table_length)
        self._shared_allocator = allocator
        if block is not None:
            block.release()

    def _invalidate_topology_cache(self) -> None:
        super()._invalidate_topology_cache()
        self._topo = None

    # ------------------------- vectorized ops ------------------------- #

    def commit_owned(self) -> list[int]:
        topo = self.bulk_topology()
        slots = topo.slot_of_order
        if len(slots) == 0:
            return []
        pending_here = self._pending_mask[slots]
        if not pending_here.any():
            return []
        sel = np.flatnonzero(pending_here)
        sel_slots = slots[sel]
        if self._float_mode:
            changed_here = self._pending[sel_slots] != self._values[sel_slots]
        else:
            changed_here = np.fromiter(
                (
                    self._pending[slot] != self._values[slot]
                    for slot in sel_slots.tolist()
                ),
                dtype=bool,
                count=len(sel_slots),
            )
        self._values[sel_slots] = self._pending[sel_slots]
        self._pending_mask[sel_slots] = False
        if not self._float_mode:
            self._pending[sel_slots] = None
        bumped = sel_slots[changed_here]
        self._versions[bumped] += 1
        return topo.order_gids_arr[sel[changed_here]].tolist()

    def update_shadow(self, gid: int, value: Any) -> bool:
        slot = self._slot_of.get(gid)
        if slot is None:
            raise KeyError(f"rank {self.rank} received shadow for unknown node {gid}")
        if self._read_value(slot) == value:
            return False
        self._write_value(slot, value)
        self._versions[slot] += 1
        return True

    # --------------------------- bulk views --------------------------- #

    def bulk_topology(self) -> _BulkTopo:
        """The sweep-order owned set as arrays (cached per surgery epoch)."""
        topo = self._topo
        if topo is not None:
            return topo
        gids = [*self.internal, *self.peripheral]
        slot_of = self._slot_of
        slots = np.fromiter(
            (slot_of[gid] for gid in gids), dtype=np.int64, count=len(gids)
        )
        indptr = np.zeros(len(gids) + 1, dtype=np.intp)
        flat: list[int] = []
        degrees = np.zeros(len(gids), dtype=np.int64)
        for i, gid in enumerate(gids):
            neighbors = self.graph.neighbors(gid)
            degrees[i] = len(neighbors)
            flat.append(slot_of[gid])
            for v in neighbors:
                flat.append(slot_of[v])
            indptr[i + 1] = len(flat)
        topo = _BulkTopo(
            order_gids=gids,
            order_gids_arr=np.asarray(gids, dtype=np.int64),
            slot_of_order=slots,
            internal_count=len(self.internal),
            indptr=indptr,
            flat_slots=np.asarray(flat, dtype=np.int64),
            degrees=degrees,
            pos={gid: i for i, gid in enumerate(gids)},
        )
        self._topo = topo
        return topo

    def bulk_view(
        self,
        positions: np.ndarray | None,
        iteration: int,
        round_idx: int,
        key: str | None = None,
    ) -> BulkView:
        """Gather a :class:`BulkView` for the given sweep positions.

        ``positions=None`` means the full owned set in sweep order.  When
        ``key`` is given, the gather geometry and the kernel cache dict are
        memoized on the topology (reused until the next ownership surgery).
        Anonymous sparse views (``positions`` given, no ``key`` -- the
        change-driven sweeps, whose active frontier varies) are memoized
        too, keyed by the positions bytes in a small LRU per topology
        epoch: once the frontier stabilizes (or alternates between a few
        working sets), the CSR slice geometry is reused across supersteps
        instead of being rebuilt every sweep.  Hybrid execution leans on
        this hardest -- a converging interior frontier revisits the same
        position sets across inner sweeps.
        """
        topo = self.bulk_topology()
        cached = topo.view_caches.get(key) if key is not None else None
        memo_key: bytes | None = None
        if cached is None and key is None and positions is not None:
            positions = np.asarray(positions, dtype=np.intp)
            memo_key = positions.tobytes()
            cached = topo.sparse_cache.get(memo_key)
            if cached is not None:
                self.sparse_geom_hits += 1
                # Move-to-end: dict insertion order + oldest-first eviction
                # below makes the memo a true LRU.
                topo.sparse_cache[memo_key] = topo.sparse_cache.pop(memo_key)
        if cached is None:
            if positions is None:
                geometry = (
                    topo.order_gids_arr,
                    topo.slot_of_order,
                    topo.flat_slots,
                    topo.indptr,
                    topo.degrees,
                    {},
                )
            else:
                positions = np.asarray(positions, dtype=np.intp)
                starts = topo.indptr[positions]
                lens = topo.indptr[positions + 1] - starts
                offsets = np.zeros(len(positions) + 1, dtype=np.intp)
                np.cumsum(lens, out=offsets[1:])
                total = int(offsets[-1])
                flat_idx = (
                    np.arange(total, dtype=np.intp)
                    - np.repeat(offsets[:-1], lens)
                    + np.repeat(starts, lens)
                )
                geometry = (
                    topo.order_gids_arr[positions],
                    topo.slot_of_order[positions],
                    topo.flat_slots[flat_idx],
                    offsets,
                    lens - 1,
                    {},
                )
            if key is not None:
                topo.view_caches[key] = geometry
            elif memo_key is not None:
                self.sparse_geom_misses += 1
                if len(topo.sparse_cache) >= _SPARSE_GEOMETRY_SLOTS:
                    topo.sparse_cache.pop(next(iter(topo.sparse_cache)))
                topo.sparse_cache[memo_key] = geometry
        else:
            geometry = cached
        gids_arr, own_slots, flat_slots, indptr, degrees, kernel_cache = geometry
        return BulkView(
            gids=gids_arr,
            values=self._values[own_slots],
            closed_values=self._values[flat_slots],
            indptr=indptr,
            degrees=degrees,
            iteration=iteration,
            round=round_idx,
            cache=kernel_cache,
        )

    def scatter_pending(self, positions: np.ndarray | None, out: np.ndarray) -> list:
        """Install a bulk kernel's results as the pending values.

        Returns the stored values as exact Python objects (the packing
        path reuses them for wire payloads).
        """
        topo = self.bulk_topology()
        slots = (
            topo.slot_of_order
            if positions is None
            else topo.slot_of_order[np.asarray(positions, dtype=np.intp)]
        )
        if self._float_mode:
            arr = np.asarray(out, dtype=np.float64)
            self._pending[slots] = arr
            self._pending_mask[slots] = True
            return arr.tolist()
        normalized = [
            value.item() if isinstance(value, np.generic) else value
            for value in (out.tolist() if isinstance(out, np.ndarray) else out)
        ]
        for slot, value in zip(slots.tolist(), normalized):
            self._pending[slot] = value
            self._pending_mask[slot] = value is not None
        return normalized
