"""Distributed data directory (section 7.1's proposed extension).

"Distributed data directory could be built which would help the processor
locate off-processor data.  Currently, the processor is able to get all the
required shadow node information, but by the use of distributed
directories, it might have a possible access to the data of far off
processors (which are not neighbors of the current processor)."

The directory assigns every global ID a *home* rank by modulo hashing; the
home tracks the node's current owner, and owners re-register after task
migrations.  Resolution is **collective**: every rank enters
:meth:`collective_fetch` with the (possibly empty) set of far-off nodes it
wants, and two all-to-all rounds return the values --

1. ask each gid's home rank for the current owner,
2. ask each owner for the committed value.

Collective rounds keep the protocol deadlock-free on the simulated MPI
without a background service thread; the platform extension calls it
between iterations, exactly where the thesis envisioned the directory.
"""

from __future__ import annotations

from typing import Any, Iterable

from ..mpi.communicator import Communicator
from .nodestore import NodeStore

__all__ = ["DistributedDirectory"]


class DistributedDirectory:
    """Rendezvous-hashed ownership directory over a communicator.

    Args:
        comm: The communicator the directory lives on (usually the
            platform's world).
        store: This rank's node store; owned nodes are registered at
            construction.
    """

    def __init__(self, comm: Communicator, store: NodeStore) -> None:
        self.comm = comm
        self.store = store
        #: gid -> owner, for the gids homed on this rank.
        self._home_table: dict[int, int] = {}
        self.register_owned()

    # ------------------------------------------------------------------ #
    # Home hashing
    # ------------------------------------------------------------------ #

    def home_of(self, gid: int) -> int:
        """The rank responsible for tracking ``gid``'s owner."""
        if gid < 1:
            raise KeyError(f"global IDs are 1-based, got {gid}")
        return (gid - 1) % self.comm.size

    def homed_here(self) -> list[int]:
        """The gids whose ownership this rank tracks (sorted)."""
        return sorted(self._home_table)

    # ------------------------------------------------------------------ #
    # Registration (collective)
    # ------------------------------------------------------------------ #

    def register_owned(self) -> None:
        """(Re)announce this rank's owned nodes to their home ranks.

        Collective; call at startup and after any task-migration round.
        Stale entries for nodes this rank no longer owns are overwritten by
        the new owner's registration in the same round.
        """
        batches: list[list[int]] = [[] for _ in range(self.comm.size)]
        for node in self.store.owned_nodes():
            batches[self.home_of(node.global_id)].append(node.global_id)
        incoming = self.comm.alltoall(batches)
        for owner_rank, gids in enumerate(incoming):
            for gid in gids:
                self._home_table[gid] = owner_rank

    def rebind(self, comm: Communicator, store: NodeStore | None = None) -> None:
        """Rebuild the directory on a different communicator (collective).

        After a shrinking recovery the world changed size, which moves
        every gid's modulo home; the old home table is discarded and all
        survivors re-register their (possibly enlarged) ownership on the
        new communicator.  Also used after repartitioning when the caller
        swapped in a fresh store.
        """
        self.comm = comm
        if store is not None:
            self.store = store
        self._home_table.clear()
        self.register_owned()

    # ------------------------------------------------------------------ #
    # Collective resolution
    # ------------------------------------------------------------------ #

    def collective_lookup(self, gids: Iterable[int]) -> dict[int, int]:
        """Resolve current owners for ``gids`` (collective).

        Every rank must call this, each with its own (possibly empty)
        request set.  Returns ``gid -> owner`` for the requested gids.

        Raises:
            KeyError: A requested gid is not registered anywhere.
        """
        wanted = sorted(set(gids))
        requests: list[list[int]] = [[] for _ in range(self.comm.size)]
        for gid in wanted:
            requests[self.home_of(gid)].append(gid)
        incoming = self.comm.alltoall(requests)
        replies = [
            [(gid, self._home_table.get(gid)) for gid in asked]
            for asked in incoming
        ]
        answered = self.comm.alltoall(replies)
        out: dict[int, int] = {}
        for batch in answered:
            for gid, owner in batch:
                if owner is None:
                    raise KeyError(f"node {gid} is not registered in the directory")
                out[gid] = owner
        return out

    def collective_fetch(self, gids: Iterable[int]) -> dict[int, Any]:
        """Fetch committed values of arbitrary (far-off) nodes (collective).

        Locally held data (owned or shadow) is answered without messaging;
        the rest resolves through the directory and the owners.  Every rank
        must participate.
        """
        wanted = sorted(set(gids))
        local: dict[int, Any] = {}
        remote: list[int] = []
        for gid in wanted:
            record = self.store.hash_table.get(gid)
            if record is not None:
                local[gid] = record.data
            else:
                remote.append(gid)

        owners = self.collective_lookup(remote)
        requests: list[list[int]] = [[] for _ in range(self.comm.size)]
        for gid in remote:
            requests[owners[gid]].append(gid)
        incoming = self.comm.alltoall(requests)
        replies = [
            [(gid, self.store.value_of(gid)) for gid in asked] for asked in incoming
        ]
        answered = self.comm.alltoall(replies)
        for batch in answered:
            for gid, value in batch:
                local[gid] = value
        return local
