"""Platform configuration and overhead cost constants.

The thesis measures six phase/overhead categories (section 5.4).  On the
real machine those overheads arise from pointer chasing through the node
lists; on the virtual-time substrate they are charged explicitly through the
:class:`PlatformCosts` constants below, which were calibrated so that

* single-processor totals track Tables 2-4 (grain dominates, with the
  platform's per-node bookkeeping adding the observed ~8-10 %), and
* fine-grain (0.3 ms) speedups flatten around 8-16 processors, as every
  speedup figure in the paper shows.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field, replace
from typing import Any

__all__ = ["PlatformCosts", "PlatformConfig"]


@dataclass(frozen=True)
class PlatformCosts:
    """Virtual-time cost constants for the platform's own bookkeeping.

    Attributes:
        list_item_cost: Forming one entry of the node+neighbours list handed
            to the application node function (computation overhead).
        update_cost: Committing one node's ``most_recent_data`` (computation
            overhead).
        hash_lookup_cost: One hash-table access (computation overhead).
        pack_cost: Appending one record to a communication buffer
            (communication overhead).
        unpack_cost: Draining one received record into the data node list
            via the hash table (communication overhead).
        data_scan_item_cost: Per-list-item cost of the appendix's *linear
            scan of the global data node list* that its SimulatorFunction
            performs for every node computation (the global list holds all
            ``n`` graph nodes on every rank, so this charges
            ``n/2 * data_scan_item_cost`` per node computed) -- the source
            of the paper's superlinear single-processor times.
        unpack_scan_item_cost: Same linear scan, performed per *received*
            record when updating shadow data after communication -- the
            dominant "communication overhead" of Figures 21/22.
        recv_setup_cost: Per neighbouring-processor fixed cost of the
            receive path each sweep: the appendix allocates and initializes
            a fresh ``MAX_SIZE_FOR_RECVBUFFER`` receive buffer per neighbour
            per CommunicateShadows call.
        init_node_cost: Initialization-phase cost per owned node.
        init_shadow_cost: Initialization-phase cost per shadow insertion.
        lb_stat_cost: Per-processor cost of assembling load statistics when
            the balancer runs.
        migrate_fixed_cost: Fixed data-structure surgery cost charged to the
            busy and idle processors per migration.
        migrate_item_cost: Per neighbour-record cost of a migration transfer.
        checkpoint_item_cost: Serializing one data-node record into a
            checkpoint snapshot.
        restore_item_cost: Rebuilding one data-node record (plus its hash
            table slot) while restoring a checkpoint.
        crash_detect_cost: Fixed failure-detection + coordination latency
            every rank pays when a crash fault fires under the ``rollback``
            policy (the ``shrink`` policy prices detection through the
            machine model's heartbeat parameters instead).
        restart_fixed_cost: Extra fixed cost the *crashed* rank pays to
            respawn before it can restore its checkpoint (rollback policy
            only -- it covers process re-launch, MPI re-initialization, and
            rejoining the world communicator, which is why shrinking past
            the failure is usually cheaper).
    """

    list_item_cost: float = 2.0e-6
    update_cost: float = 2.0e-6
    hash_lookup_cost: float = 1.0e-6
    pack_cost: float = 6.0e-6
    unpack_cost: float = 10.0e-6
    data_scan_item_cost: float = 0.8e-6
    unpack_scan_item_cost: float = 0.8e-6
    recv_setup_cost: float = 100.0e-6
    init_node_cost: float = 40.0e-6
    init_shadow_cost: float = 25.0e-6
    lb_stat_cost: float = 20.0e-6
    migrate_fixed_cost: float = 120.0e-6
    migrate_item_cost: float = 15.0e-6
    checkpoint_item_cost: float = 4.0e-6
    restore_item_cost: float = 6.0e-6
    crash_detect_cost: float = 2.0e-3
    restart_fixed_cost: float = 0.5

    def with_overrides(self, **kwargs: Any) -> "PlatformCosts":
        """Copy with selected constants replaced."""
        return replace(self, **kwargs)


@dataclass(frozen=True)
class PlatformConfig:
    """Run-time switches of the iC2mpi platform.

    Attributes:
        iterations: Number of compute/communicate sweeps to run.
        dynamic_load_balancing: Enable the periodic load balancer + task
            migration phase (off = pure static partition, the paper's
            "Static Partition" series).
        lb_period: Invoke the balancer every this many iterations (the
            paper uses 10).
        lb_threshold: Relative-work threshold for declaring a processor
            busy (the paper's 25 % -> 0.25).
        overlap_communication: Use the Figure-8a pipeline (peripheral nodes
            first, Isend/Irecv, internals overlap the transfer) instead of
            the basic Figure-8 sequence.
        comm_rounds: Compute/communicate sub-rounds per iteration; the
            battlefield application sets this > 1 ("the computation and
            communication function sequence is called more than once").
        hash_table_length: Buckets in each processor's node hash table.
        costs: Bookkeeping cost constants.
        max_migrations_per_pair: Tasks to migrate per busy-idle pair per
            balancer invocation (the thesis ships exactly one; its section 7
            calls a multi-task policy future work, so > 1 is our extension).
        rebalance_mode: ``"migrate"`` (the thesis's task migration) or
            ``"repartition"`` (re-run a static partitioner on measured node
            loads and rebuild from scratch -- the costly alternative section
            4.3 warns about, implemented for the section-8 comparison).
        checkpoint_period: Serialize every rank's node store every this many
            iterations (0 = off).  When a fault plan schedules crashes, a
            post-initialization baseline checkpoint is always taken, so
            recovery works even with periodic checkpoints disabled (it just
            replays from iteration 1).
        checkpoint_keep: Snapshots retained per rank (older ones pruned);
            bounds checkpoint memory on long runs with small periods.
        recovery_policy: What to do when a crash fault fires:
            ``"rollback"`` (all ranks restore the last checkpoint and
            re-execute, the dead rank resurrected -- PR 1 behaviour) or
            ``"shrink"`` (survivors drop the dead rank from the
            communicator, adopt its checkpointed partition, and continue on
            ``nprocs - 1`` processors).
        integrity: Protection against silent data corruption:
            ``"off"`` (unprotected -- injected flips escape), ``"checksum"``
            (checksummed transport only: message flips are absorbed by a
            priced NACK/retransmit path, memory flips still escape),
            ``"digest"`` (per-superstep partition-state digests detect
            memory flips; every corruption recovers by checkpoint rollback),
            or ``"full"`` (checksums + digests + shadow-replica surgical
            repair: a corrupted *boundary* node is re-fetched point-to-point
            from the neighbor rank that mirrors it, no rollback needed).
        integrity_period: Exchange corruption claims collectively every
            this many iterations (>= 1); digests are still refreshed and
            diffed locally each iteration.  With 1 a flip is agreed on the
            superstep it fires and boundary repair is exact; larger values
            cheapen the exchange at the price of detection latency -- a
            flip detected late
            has contaminated downstream state, so recovery falls back to a
            rollback past the injection point regardless of replicas.
        execution: Superstep structure: ``"bsp"`` (every sweep is globally
            synchronous -- the thesis's behaviour) or ``"hybrid"`` (the
            GraphHP split: each superstep first runs a *boundary phase*
            that computes cut-adjacent nodes and exchanges their deltas
            exactly as BSP does, then an *interior phase* where each rank
            iterates its interior active set locally -- no messages, no
            barrier -- until the local frontier drains or
            ``hybrid_inner_cap`` inner sweeps have run, charging virtual
            compute cost per inner sweep).  Hybrid execution requires node
            functions that are *pure per round* (like sparse activation)
            and is only value-equivalent to BSP for order-insensitive
            (chaotic-relaxation) algorithms such as Jacobi/diffusion: the
            fixed point is identical, the trajectory is not.  Hybrid mode
            is inherently change-driven (it supersedes ``activation``) and
            inherently overlaps interior compute with the boundary
            exchange (``overlap_communication`` is ignored).  The default
            honours the ``REPRO_EXECUTION`` environment variable.
        hybrid_inner_cap: Most interior sweeps one rank may run inside a
            single superstep in hybrid mode (>= 1); bounds the asynchrony
            so a rank cannot spin its interior forever while peers wait at
            the boundary barrier.
        activation: Which owned nodes each sweep recomputes: ``"dense"``
            (every owned node, every sweep -- the thesis's behaviour) or
            ``"sparse"`` (change-driven: a node is recomputed only when its
            own or a neighbour's committed value changed since it was last
            evaluated; the first sweep of each comm round is always dense).
            Sparse activation requires node functions that are *pure per
            round* -- the returned value must depend only on the node's own
            and neighbours' values.
        store: Node-state representation: ``"object"`` (one
            :class:`~repro.core.node.NodeData` instance per node -- the
            conformance oracle) or ``"soa"`` (struct-of-arrays: contiguous
            numpy arrays for values, versions, and halt flags, with
            vectorized sweeps whenever the node functions carry bulk
            kernels).  Results are bit-identical across stores.  The
            default honours the ``REPRO_STORE`` environment variable, so a
            CI matrix axis can flip the whole suite.  The multiprocess
            execution backend (``scheduler="process"``) requires ``"soa"``:
            worker processes share the store arrays through named
            shared-memory segments, which only the float64 array layout
            can inhabit (see :meth:`validate_for_scheduler`).
        converge: Termination rule: ``"fixed"`` (run exactly
            ``iterations`` sweeps) or ``"quiescence"`` (additionally stop as
            soon as a global reduction observes that *no* node's committed
            value changed during an iteration -- the computation has reached
            its fixed point and further sweeps cannot alter any value).
        track_phases: Record per-phase virtual-time breakdowns.
        track_trace: Record a per-iteration :class:`~repro.core.trace.
            ExecutionTrace` (makespans, compute imbalance, migrations).
        validate_each_iteration: Run (expensive) data-structure invariant
            checks every iteration -- for tests.
    """

    iterations: int = 20
    dynamic_load_balancing: bool = False
    lb_period: int = 10
    lb_threshold: float = 0.25
    overlap_communication: bool = False
    comm_rounds: int = 1
    hash_table_length: int = 64
    costs: PlatformCosts = field(default_factory=PlatformCosts)
    max_migrations_per_pair: int = 1
    rebalance_mode: str = "migrate"
    checkpoint_period: int = 0
    checkpoint_keep: int = 2
    recovery_policy: str = "rollback"
    integrity: str = "off"
    integrity_period: int = 1
    store: str = field(
        default_factory=lambda: os.environ.get("REPRO_STORE", "object")
    )
    execution: str = field(
        default_factory=lambda: os.environ.get("REPRO_EXECUTION", "bsp")
    )
    hybrid_inner_cap: int = 32
    activation: str = "dense"
    converge: str = "fixed"
    track_phases: bool = True
    track_trace: bool = False
    validate_each_iteration: bool = False

    def __post_init__(self) -> None:
        if self.iterations < 0:
            raise ValueError(f"iterations must be >= 0, got {self.iterations}")
        if self.lb_period < 1:
            raise ValueError(f"lb_period must be >= 1, got {self.lb_period}")
        if self.lb_threshold < 0:
            raise ValueError(f"lb_threshold must be >= 0, got {self.lb_threshold}")
        if self.comm_rounds < 1:
            raise ValueError(f"comm_rounds must be >= 1, got {self.comm_rounds}")
        if self.max_migrations_per_pair < 1:
            raise ValueError(
                f"max_migrations_per_pair must be >= 1, got {self.max_migrations_per_pair}"
            )
        if self.checkpoint_period < 0:
            raise ValueError(
                f"checkpoint_period must be >= 0, got {self.checkpoint_period}"
            )
        if self.checkpoint_keep < 1:
            raise ValueError(
                f"checkpoint_keep must be >= 1, got {self.checkpoint_keep}"
            )
        if self.recovery_policy not in ("rollback", "shrink"):
            raise ValueError(
                f"recovery_policy must be 'rollback' or 'shrink', "
                f"got {self.recovery_policy!r}"
            )
        if self.integrity not in ("off", "checksum", "digest", "full"):
            raise ValueError(
                f"integrity must be 'off', 'checksum', 'digest', or 'full', "
                f"got {self.integrity!r}"
            )
        if self.integrity_period < 1:
            raise ValueError(
                f"integrity_period must be >= 1, got {self.integrity_period}"
            )
        if self.store not in ("object", "soa"):
            raise ValueError(
                f"store must be 'object' or 'soa', got {self.store!r}"
            )
        if self.execution not in ("bsp", "hybrid"):
            raise ValueError(
                f"execution must be 'bsp' or 'hybrid', got {self.execution!r}"
            )
        if self.hybrid_inner_cap < 1:
            raise ValueError(
                f"hybrid_inner_cap must be >= 1, got {self.hybrid_inner_cap}"
            )
        if self.activation not in ("dense", "sparse"):
            raise ValueError(
                f"activation must be 'dense' or 'sparse', got {self.activation!r}"
            )
        if self.converge not in ("fixed", "quiescence"):
            raise ValueError(
                f"converge must be 'fixed' or 'quiescence', got {self.converge!r}"
            )
        if self.rebalance_mode not in ("migrate", "repartition"):
            raise ValueError(
                f"rebalance_mode must be 'migrate' or 'repartition', "
                f"got {self.rebalance_mode!r}"
            )

    def validate_for_scheduler(self, scheduler: str | None) -> None:
        """Reject switch combinations the execution backend cannot honour.

        The multiprocess backend keeps node state in shared float64
        segments, so only the struct-of-arrays store can run on it.  The
        platform calls this before building the cluster, so an unsupported
        pairing fails fast -- no workers forked, no segments allocated --
        with :class:`~repro.mpi.errors.UnsupportedBackendError` instead of
        a mid-run divergence.
        """
        if scheduler == "process" and self.store != "soa":
            from ..mpi.errors import UnsupportedBackendError

            raise UnsupportedBackendError(
                "scheduler='process' requires store='soa': worker processes "
                "share the node arrays through float64 shared-memory "
                f"segments, which the {self.store!r} store cannot inhabit"
            )

    def with_overrides(self, **kwargs: Any) -> "PlatformConfig":
        """Copy with selected fields replaced."""
        return replace(self, **kwargs)
