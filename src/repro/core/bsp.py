"""BSP execution layer (the thesis's closing future-work item).

"We will also explore extending it to applications that use the BSP model
[HMS98], as this model essentially divides the computation from
communication phases as iC2mpi does."

Two levels are provided:

* :func:`run_bsp` -- raw BSPlib-flavoured supersteps over a communicator:
  a step function computes locally and emits addressed messages; the layer
  exchanges them (one combined message per destination rank, like BSPlib's
  message combining) and barriers.

* :class:`VertexProgram` / :func:`run_vertex_program` -- a Pregel-style
  vertex-centric API on top: each graph vertex receives its inbox, updates
  its value, sends messages along edges, and may vote to halt; execution
  stops when every vertex halts and no messages are in flight, or after
  ``max_supersteps``.  Vertices are distributed by a
  :class:`~repro.partitioning.base.Partition`, re-using the platform's
  partitioner plug-ins.
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass
from typing import Any, Callable, Protocol

import numpy as np

from ..graphs.graph import Graph
from ..mpi.communicator import Communicator
from ..mpi.runtime import SimCluster
from ..mpi.timing import ORIGIN2000, MachineModel
from ..partitioning.base import Partition

__all__ = ["BspMessage", "run_bsp", "VertexProgram", "VertexContext", "run_vertex_program"]

#: Tag for superstep exchanges.
TAG_BSP = 20

BspMessage = tuple[int, Any]  # (destination rank, payload)

StepFn = Callable[[int, Any, list[Any], "Communicator"], tuple[Any, list[BspMessage], bool]]


def run_bsp(
    comm: Communicator,
    step_fn: StepFn,
    initial_state: Any,
    max_supersteps: int = 1000,
    checkpoint_every: int = 0,
) -> tuple[Any, int]:
    """Run BSP supersteps until global quiescence.

    Args:
        comm: The communicator.
        step_fn: ``(superstep, state, inbox, comm) -> (state, outgoing,
            active)``; ``outgoing`` is a list of ``(dest_rank, payload)``;
            ``active=False`` votes to halt.  Execution ends when every rank
            votes to halt AND no messages were sent in the superstep.
        initial_state: Rank-local starting state.
        max_supersteps: Safety bound.
        checkpoint_every: Snapshot ``(state, inbox)`` every this many
            supersteps (0 = only the pre-superstep-0 baseline).  When the
            cluster carries a :class:`~repro.mpi.faults.FaultPlan` with
            crash events (``iteration`` = 1-based superstep number), the
            loop rolls every rank back to the last snapshot and re-runs --
            the same coordinated recovery the platform layer performs.

    Returns:
        ``(final state, supersteps executed)`` -- the count is the logical
        superstep number, not inflated by crash-forced re-execution.
    """
    state = initial_state
    inbox: list[Any] = []

    fault_state = getattr(comm, "faults", None)
    plan = fault_state.plan if fault_state is not None else None
    has_crashes = plan is not None and bool(plan.crashes)
    snapshot: tuple[int, bytes] | None = None
    if has_crashes or checkpoint_every:
        snapshot = (0, pickle.dumps((state, inbox), protocol=pickle.HIGHEST_PROTOCOL))
    handled_crashes: set[tuple[int, int]] = set()

    superstep = 0
    while superstep < max_supersteps:
        if has_crashes:
            crashes = [
                c
                for c in plan.crashes_at(superstep + 1)
                if (c.rank, c.iteration) not in handled_crashes
            ]
            if crashes:
                for c in crashes:
                    handled_crashes.add((c.rank, c.iteration))
                    if c.rank == comm.rank and fault_state is not None:
                        fault_state.count_crash(comm.rank)
                # Noticing the failure is not free: every rank charges the
                # heartbeat-timeout + agreement-round latency the machine
                # model prices for this world size.
                comm.work(comm.machine.detection_time(comm.size))
                saved_superstep, payload = snapshot
                state, inbox = pickle.loads(payload)
                comm.barrier()
                superstep = saved_superstep
                continue
        state, outgoing, active = step_fn(superstep, state, inbox, comm)
        # Combine per destination (BSPlib-style) and exchange via alltoall,
        # which doubles as the superstep barrier.
        combined: list[list[Any]] = [[] for _ in range(comm.size)]
        for dest, payload in outgoing:
            combined[dest].append(payload)
        arrived = comm.alltoall(combined)
        inbox = [payload for batch in arrived for payload in batch]
        still_going = comm.allreduce(1 if (outgoing or active) else 0) > 0
        if not still_going:
            return state, superstep + 1
        if checkpoint_every and (superstep + 1) % checkpoint_every == 0:
            snapshot = (
                superstep + 1,
                pickle.dumps((state, inbox), protocol=pickle.HIGHEST_PROTOCOL),
            )
        superstep += 1
    return state, max_supersteps


# --------------------------------------------------------------------- #
# Vertex-centric (Pregel-flavoured) layer
# --------------------------------------------------------------------- #


class VertexContext:
    """Per-vertex API handed to the vertex program each superstep."""

    def __init__(self, gid: int, superstep: int, neighbors: tuple[int, ...]) -> None:
        self.gid = gid
        self.superstep = superstep
        self.neighbors = neighbors
        self._outgoing: list[tuple[int, Any]] = []
        self._halted = False

    def send_to(self, target_gid: int, payload: Any) -> None:
        """Queue a message for ``target_gid`` (delivered next superstep)."""
        self._outgoing.append((target_gid, payload))

    def send_to_neighbors(self, payload: Any) -> None:
        """Queue the same message along every incident edge."""
        for v in self.neighbors:
            self._outgoing.append((v, payload))

    def vote_to_halt(self) -> None:
        """Become inactive until a message wakes this vertex."""
        self._halted = True


class VertexProgram(Protocol):
    """A Pregel-style vertex program."""

    def initial_value(self, gid: int, graph: Graph) -> Any:
        """Value of ``gid`` before superstep 0."""
        ...

    def compute(self, value: Any, inbox: list[Any], ctx: VertexContext) -> Any:
        """One superstep for one vertex; returns the new value."""
        ...


@dataclass
class _VertexState:
    value: Any
    halted: bool = False


def run_vertex_program(
    graph: Graph,
    partition: Partition,
    program: VertexProgram,
    max_supersteps: int = 100,
    machine: MachineModel = ORIGIN2000,
    compute_grain: float = 0.0,
    scheduler: str | None = None,
    store: str = "object",
) -> tuple[dict[int, Any], int]:
    """Execute a vertex program over a partitioned graph.

    Args:
        graph: The application graph (messages travel along its edges or to
            arbitrary gids via ``send_to``).
        partition: Vertex-to-rank mapping (any partitioner plug-in output).
        program: The vertex program.
        max_supersteps: Bound on supersteps.
        machine: Virtual-machine cost model.
        compute_grain: Seconds charged per vertex compute call.
        scheduler: Simulated-cluster execution backend (see
            :class:`~repro.mpi.runtime.SimCluster`).
        store: Vertex-state representation: ``"object"`` (one
            :class:`_VertexState` per vertex) or ``"soa"`` (struct of
            arrays: an object-dtype value array plus a boolean halt-flag
            array indexed by owned position).  Iteration order, message
            traffic, and results are identical.

    Returns:
        ``(gid -> final value, supersteps executed)``.
    """
    if store not in ("object", "soa"):
        raise ValueError(f"store must be 'object' or 'soa', got {store!r}")
    assignment = partition.assignment

    def rank_main(comm: Communicator):
        owned = [gid for gid in graph.nodes() if assignment[gid - 1] == comm.rank]
        if store == "soa":
            pos = {gid: i for i, gid in enumerate(owned)}
            value_arr = np.empty(len(owned), dtype=object)
            for i, gid in enumerate(owned):
                value_arr[i] = program.initial_value(gid, graph)
            halted_arr = np.zeros(len(owned), dtype=bool)

            def get_value(gid):
                return value_arr[pos[gid]]

            def set_value(gid, value):
                value_arr[pos[gid]] = value

            def is_halted(gid):
                return bool(halted_arr[pos[gid]])

            def set_halted(gid, halted):
                halted_arr[pos[gid]] = halted

            def is_owned(gid):
                return gid in pos
        else:
            states = {
                gid: _VertexState(program.initial_value(gid, graph))
                for gid in owned
            }

            def get_value(gid):
                return states[gid].value

            def set_value(gid, value):
                states[gid].value = value

            def is_halted(gid):
                return states[gid].halted

            def set_halted(gid, halted):
                states[gid].halted = halted

            def is_owned(gid):
                return gid in states
        # Sparse inboxes: only vertices with pending messages hold an entry,
        # so the halted-vertex fast path below is a dict-membership test --
        # no per-vertex empty-list churn on supersteps where most of the
        # graph has gone quiet.
        inboxes: dict[int, list[Any]] = {}

        def step(superstep, state, rank_inbox, comm_):
            # deliver messages that arrived last superstep
            for gid, payload in rank_inbox:
                inboxes.setdefault(gid, []).append(payload)
                if is_owned(gid):
                    set_halted(gid, False)
            outgoing: list[BspMessage] = []
            active = False
            for gid in owned:
                if is_halted(gid) and gid not in inboxes:
                    continue
                inbox = inboxes.pop(gid, [])
                ctx = VertexContext(gid, superstep, graph.neighbors(gid))
                if compute_grain:
                    comm_.work(compute_grain)
                set_value(gid, program.compute(get_value(gid), inbox, ctx))
                set_halted(gid, ctx._halted)
                if not ctx._halted:
                    active = True
                for target_gid, payload in ctx._outgoing:
                    outgoing.append(
                        (assignment[target_gid - 1], (target_gid, payload))
                    )
            return state, outgoing, active

        _, supersteps = run_bsp(comm, step, None, max_supersteps=max_supersteps)
        return {gid: get_value(gid) for gid in owned}, supersteps

    cluster = SimCluster(
        partition.nparts, machine=machine, deadlock_timeout=30.0, scheduler=scheduler
    )
    results = cluster.run(rank_main)
    values: dict[int, Any] = {}
    supersteps = 0
    for rank_values, rank_steps in results:
        values.update(rank_values)
        supersteps = max(supersteps, rank_steps)
    return values, supersteps
