"""Checkpoint/restart layer for the platform's BSP loop.

Every ``checkpoint_period`` iterations each rank serializes its
:class:`~repro.core.nodestore.NodeStore` (data node list + hash table
geometry + node-to-processor map), the iteration counter, and the platform
loop's rollback-sensitive extras (load window, migration log) into an
in-memory pickle.  When the fault plan crashes a rank, *every* rank restores
the last checkpoint and the loop re-runs from there -- coordinated rollback
recovery, with the detection, restore, and re-execution costs all charged to
the virtual clocks so :class:`~repro.core.trace.ExecutionTrace` shows the
true overhead of surviving the failure.

Checkpoints are rank-local by design: because all ranks checkpoint at the
same (deterministic) iterations, the per-rank snapshots together form a
consistent global cut, with no message in flight across it (the sweep's
shadow exchange has completed when a checkpoint is taken).
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass
from typing import Any

from .nodestore import NodeStore

__all__ = ["Checkpoint", "CheckpointError", "Checkpointer"]


class CheckpointError(RuntimeError):
    """No checkpoint is available to restore, or (de)serialization failed."""


@dataclass(frozen=True)
class Checkpoint:
    """One serialized recovery point.

    Attributes:
        iteration: The iteration whose *completed* state the payload holds
            (0 = the post-initialization baseline).
        payload: Pickled ``{"iteration", "store", "extras"}`` blob.
    """

    iteration: int
    payload: bytes

    @property
    def nbytes(self) -> int:
        """Serialized size, bytes (drives the checkpoint cost model)."""
        return len(self.payload)


class Checkpointer:
    """Per-rank checkpoint schedule + storage.

    Args:
        period: Take a checkpoint after every ``period`` completed
            iterations (0 disables periodic checkpoints; the baseline taken
            via :meth:`take` at iteration 0 still allows restart-from-
            scratch recovery).
        keep: Retain at most this many snapshots; older ones are pruned as
            new ones arrive, so long runs with small periods hold bounded
            memory.  Rollback always restores the newest snapshot; keeping
            one spare guards against a checkpoint interrupted by the next
            failure.  Must be >= 1.
    """

    def __init__(self, period: int = 0, keep: int = 2) -> None:
        if period < 0:
            raise ValueError(f"checkpoint period must be >= 0, got {period}")
        if keep < 1:
            raise ValueError(f"checkpoint keep must be >= 1, got {keep}")
        self.period = period
        self.keep = keep
        self.snapshots: list[Checkpoint] = []
        self.taken = 0

    @property
    def last(self) -> Checkpoint | None:
        """The newest retained snapshot (None before the first take)."""
        return self.snapshots[-1] if self.snapshots else None

    def due(self, iteration: int) -> bool:
        """Whether a periodic checkpoint is owed after ``iteration``."""
        return self.period > 0 and iteration % self.period == 0

    def take(self, iteration: int, store: NodeStore, **extras: Any) -> Checkpoint:
        """Serialize the store (plus loop extras) as the new recovery point.

        Args:
            iteration: The just-completed iteration number (0 = baseline).
            store: The rank's node store.
            **extras: Additional picklable loop state restored verbatim
                (e.g. ``window_exec_time``, the migration log).

        Raises:
            CheckpointError: If any node value refuses to pickle.
        """
        state = {
            "iteration": iteration,
            "store": store.capture_state(),
            "extras": extras,
        }
        try:
            payload = pickle.dumps(state, protocol=pickle.HIGHEST_PROTOCOL)
        except Exception as exc:
            raise CheckpointError(
                f"iteration-{iteration} checkpoint failed to serialize: {exc}"
            ) from exc
        checkpoint = Checkpoint(iteration=iteration, payload=payload)
        self.snapshots.append(checkpoint)
        del self.snapshots[: -self.keep]
        self.taken += 1
        return checkpoint

    def discard_since(self, iteration: int) -> int:
        """Drop every retained snapshot taken at or after ``iteration``.

        Silent-corruption recovery needs this: a memory flip injected at the
        start of iteration *j* taints every checkpoint taken at the end of
        *j* or later (the corrupted value fed those sweeps), so rolling back
        must fall through to an older retained snapshot -- which is why
        ``keep > 1`` matters when detection can lag injection.

        Returns:
            The number of snapshots discarded.  :meth:`restore` afterwards
            uses the newest *surviving* snapshot (and raises
            :class:`CheckpointError` if none survived).
        """
        keep = [s for s in self.snapshots if s.iteration < iteration]
        dropped = len(self.snapshots) - len(keep)
        self.snapshots = keep
        return dropped

    def restore(self, store: NodeStore) -> tuple[int, dict[str, Any]]:
        """Rebuild ``store`` from the last checkpoint.

        Returns:
            ``(iteration, extras)`` -- the checkpointed iteration number and
            the extras dict passed to :meth:`take`.

        Raises:
            CheckpointError: When no checkpoint has been taken.
        """
        if self.last is None:
            raise CheckpointError("no checkpoint available to restore")
        try:
            state = pickle.loads(self.last.payload)
        except Exception as exc:  # pragma: no cover - symmetric guard
            raise CheckpointError(f"checkpoint failed to deserialize: {exc}") from exc
        store.restore_state(state["store"])
        return state["iteration"], state["extras"]
