"""Communication buffers for the shadow exchange.

"An array of pointers to an array of structures, one for each neighbouring
processor, is used for the communication buffers" (section 4.2).  Here each
outgoing buffer is a list of ``(global_id, value)`` records; the committed
struct datatype gives the exact wire size the cost model charges.
"""

from __future__ import annotations

from typing import Any, Iterator

from ..mpi.datatypes import INT, StructType
from ..mpi.timing import estimate_nbytes

__all__ = ["ShadowRecord", "CommBuffers", "BUFFER_RECORD_TYPE"]

#: The thesis's ``buffer_data_node``: two ints (globalID, data), committed.
BUFFER_RECORD_TYPE = StructType([(2, INT)], name="buffer_data_node").commit()

ShadowRecord = tuple[int, Any]  # (global_id, value)


class CommBuffers:
    """Per-destination outgoing shadow buffers for one rank.

    Args:
        nprocs: Number of processors (buffer slots, including self; the
            self slot stays empty).
    """

    def __init__(self, nprocs: int) -> None:
        if nprocs < 1:
            raise ValueError(f"nprocs must be >= 1, got {nprocs}")
        self.nprocs = nprocs
        self._out: list[list[ShadowRecord]] = [[] for _ in range(nprocs)]

    def reset(self) -> None:
        """Empty every buffer (start of a sweep)."""
        for buf in self._out:
            buf.clear()

    def pack(self, proc: int, gid: int, value: Any) -> None:
        """Append an updated peripheral record to ``proc``'s buffer."""
        if not 0 <= proc < self.nprocs:
            raise IndexError(f"processor {proc} outside [0, {self.nprocs})")
        self._out[proc].append((gid, value))

    def outgoing(self, proc: int) -> list[ShadowRecord]:
        """The records queued for ``proc``."""
        return self._out[proc]

    def nonempty_procs(self) -> list[int]:
        """Destinations with queued records, ascending."""
        return [q for q, buf in enumerate(self._out) if buf]

    def total_records(self) -> int:
        """Records queued across all destinations."""
        return sum(len(buf) for buf in self._out)

    def nbytes(self, proc: int) -> int:
        """Wire size of ``proc``'s buffer.

        Integer-valued records cost exactly the committed struct size; other
        payloads fall back to the generic estimator (plus 4 bytes for the
        id), so the battlefield's fat hex records are charged realistically.
        """
        total = 0
        for _, value in self._out[proc]:
            if isinstance(value, bool | int):
                total += BUFFER_RECORD_TYPE.size_of()
            else:
                total += INT.size_of() + estimate_nbytes(value)
        return total

    def __iter__(self) -> Iterator[tuple[int, list[ShadowRecord]]]:
        for q, buf in enumerate(self._out):
            if buf:
                yield q, buf
