"""Per-processor node store: the initialization phase's data structures.

Each rank keeps (section 4.1):

* the **internal node list** -- owned nodes with every neighbour local,
* the **peripheral node list** -- owned nodes with >= 1 remote neighbour,
* the **data node list** -- :class:`NodeData` records for owned nodes *and*
  shadow nodes (remote neighbours of peripherals), and
* the **hash table** -- modulo-hash index into the data node list.

The store also implements the data-structure surgery of task migration
(section 4.3): demoting a migrated node to a shadow on the busy side,
adopting it on the idle side, promoting/demoting internal and peripheral
nodes, and rebuilding ``shadow_for_procs`` after ownership changes.
"""

from __future__ import annotations

import copy
from typing import Any, Callable, Iterator, Sequence

from ..graphs.graph import Graph
from .hashtable import NodeHashTable
from .node import INTERNAL, PERIPHERAL, NodeData, OwnNode

__all__ = ["NodeStore"]

InitValueFn = Callable[[int], Any]


class NodeStore:
    """All node bookkeeping for one rank.

    Args:
        rank: This processor's id.
        graph: The application program graph (shared, read-only).
        assignment: The node-to-processor map (the thesis's ``output_arr``);
            this list is *owned by the caller* and mutated during task
            migration -- the store reads it on demand.
        init_value: ``gid -> initial node value`` (the thesis initializes
            ``data = globalID``; applications plug in their own).
        hash_table_length: Buckets in the node hash table.
    """

    def __init__(
        self,
        rank: int,
        graph: Graph,
        assignment: list[int],
        init_value: InitValueFn,
        hash_table_length: int = 64,
    ) -> None:
        self.rank = rank
        self.graph = graph
        self.assignment = assignment
        self.internal: dict[int, OwnNode] = {}
        self.peripheral: dict[int, OwnNode] = {}
        self._init_record_storage(hash_table_length)
        # Memoized communication topology (cleared by ownership surgery
        # *and* by halt-flag changes -- see :meth:`set_halted`).
        self._buffer_sizes_cache: dict[int, list[int]] = {}
        self._neighbor_procs_cache: list[int] | None = None
        self._build(init_value)

    # ------------------------------------------------------------------ #
    # Initialization phase
    # ------------------------------------------------------------------ #

    def _shadow_procs_of(self, gid: int) -> tuple[int, ...]:
        """Distinct remote processors owning neighbours of ``gid``."""
        own = self.assignment[gid - 1]
        procs = {
            self.assignment[v - 1]
            for v in self.graph.neighbors(gid)
            if self.assignment[v - 1] != own
        }
        return tuple(sorted(procs))

    def _make_own_node(self, gid: int) -> OwnNode:
        shadows = self._shadow_procs_of(gid)
        kind = PERIPHERAL if shadows else INTERNAL
        return OwnNode(
            global_id=gid,
            kind=kind,
            owning_proc=self.rank,
            data=self.data_records[gid],
            neighboring_nodes=self.graph.neighbors(gid),
            shadow_for_procs=shadows,
        )

    def _build(self, init_value: InitValueFn) -> None:
        owned = [gid for gid in self.graph.nodes() if self.assignment[gid - 1] == self.rank]
        # Data records for owned nodes first (the global data list pass).
        for gid in owned:
            self._add_record(gid, init_value(gid))
        # Internal / peripheral classification.
        for gid in owned:
            node = self._make_own_node(gid)
            (self.peripheral if node.is_peripheral else self.internal)[gid] = node
        # Shadow records: remote neighbours of peripheral nodes.
        for node in self.peripheral.values():
            for v in node.neighboring_nodes:
                if self.assignment[v - 1] != self.rank and v not in self.data_records:
                    self._add_record(v, init_value(v))

    # ------------------------------------------------------------------ #
    # Record layer (overridden by the struct-of-arrays store)
    # ------------------------------------------------------------------ #

    def _init_record_storage(self, hash_table_length: int) -> None:
        """Create empty record containers (data node list + hash table)."""
        self.data_records: dict[int, NodeData] = {}
        self.hash_table = NodeHashTable(hash_table_length)

    def _add_record(
        self,
        gid: int,
        value: Any,
        most_recent: Any = None,
        version: int = 0,
        halted: bool = False,
    ) -> NodeData:
        """Create the data record for ``gid`` and index it.

        The single seam through which every record enters the store:
        initialization, migration adoption, and checkpoint restore all pass
        through here, so a subclass can swap the record representation
        (the struct-of-arrays store) without touching those flows.
        """
        record = NodeData(gid, value, most_recent, version=version, halted=halted)
        self.data_records[gid] = record
        self.hash_table.insert(record)
        return record

    def _reset_records(self, hash_table_length: int) -> None:
        """Drop every record and start empty (checkpoint restore)."""
        self._init_record_storage(hash_table_length)

    def adopt_runtime_policy(self, other: "NodeStore") -> None:
        """Carry execution-backend policy from ``other`` into this store.

        Recovery rebuilds stores via ``type(store)(...)`` and then calls
        this hook so backend plumbing that is not part of the logical node
        state -- e.g. the struct-of-arrays store's shared-segment
        allocator under the process backend -- survives the rebuild.  The
        object store has no such policy; this is a no-op seam.
        """

    # ------------------------------------------------------------------ #
    # Accessors
    # ------------------------------------------------------------------ #

    def owned_nodes(self) -> Iterator[OwnNode]:
        """Internal nodes first, then peripheral (the Figure-8 sweep order)."""
        yield from self.internal.values()
        yield from self.peripheral.values()

    def num_owned(self) -> int:
        """Count of nodes this rank computes."""
        return len(self.internal) + len(self.peripheral)

    def own_node(self, gid: int) -> OwnNode:
        """The OwnNode record for an owned gid."""
        node = self.internal.get(gid) or self.peripheral.get(gid)
        if node is None:
            raise KeyError(f"rank {self.rank} does not own node {gid}")
        return node

    def owns(self, gid: int) -> bool:
        """Whether this rank owns ``gid``."""
        return gid in self.internal or gid in self.peripheral

    def shadow_gids(self) -> list[int]:
        """Global IDs present as shadows (data held, not owned)."""
        return sorted(gid for gid in self.data_records if not self.owns(gid))

    def owned_values(self) -> dict[int, Any]:
        """``gid -> committed value`` for every owned node.

        The currency of every store rebuild (repartitioning, shrink
        recovery): committed values are partition-independent, so carrying
        them into a fresh store reproduces results bit-identically under a
        different ownership map.
        """
        return {node.global_id: node.data.data for node in self.owned_nodes()}

    def owned_versions(self) -> dict[int, int]:
        """``gid -> version counter`` for every owned node (sweep order)."""
        return {node.global_id: node.data.version for node in self.owned_nodes()}

    def value_of(self, gid: int) -> Any:
        """Committed value of any locally known node (via the hash table)."""
        record = self.hash_table.get(gid)
        if record is None:
            raise KeyError(f"rank {self.rank} holds no data for node {gid}")
        return record.data

    def buffer_sizes(self, nprocs: int) -> list[int]:
        """Shadow records owed to each processor.

        ``sizes[q]`` = number of this rank's *active* peripheral nodes that
        are shadows for processor ``q`` -- exactly the thesis's
        ``buffer_size_for_communication`` array.  Halted peripherals are
        excluded: a halted node publishes no updates, so counting it would
        overstate the communication load the balancer reasons about.  The
        scan result is memoized (the load-balance phase asks every period
        but the answer only changes when ownership or halt flags do);
        migration surgery *and* :meth:`set_halted` invalidate it via
        :meth:`_invalidate_topology_cache`.
        """
        cached = self._buffer_sizes_cache.get(nprocs)
        if cached is None:
            cached = [0] * nprocs
            for node in self.peripheral.values():
                if node.data.halted:
                    continue
                for proc in node.shadow_for_procs:
                    cached[proc] += 1
            self._buffer_sizes_cache[nprocs] = cached
        return list(cached)

    def neighbor_procs(self) -> list[int]:
        """Processors this rank pushes shadow updates to (memoized).

        Like :meth:`buffer_sizes`, halted peripherals do not count: they
        produce no updates, so a processor reachable only through halted
        boundary nodes is not a communication neighbour for load-balance
        purposes.
        """
        if self._neighbor_procs_cache is None:
            procs: set[int] = set()
            for node in self.peripheral.values():
                if node.data.halted:
                    continue
                procs.update(node.shadow_for_procs)
            self._neighbor_procs_cache = sorted(procs)
        return list(self._neighbor_procs_cache)

    def _invalidate_topology_cache(self) -> None:
        """Drop memoized buffer sizes / neighbour procs.

        Must run after ownership surgery (release/adopt/refresh/restore)
        *and* after any halt-flag change -- both inputs feed the memoized
        scans.  (Halt flags originally bypassed this, so a halted vertex
        kept its stale buffer accounting across migrations.)
        """
        self._buffer_sizes_cache.clear()
        self._neighbor_procs_cache = None

    # ------------------------------------------------------------------ #
    # Halt flags
    # ------------------------------------------------------------------ #

    def is_halted(self, gid: int) -> bool:
        """Whether the locally known node ``gid`` has voted to halt."""
        record = self.hash_table.get(gid)
        if record is None:
            raise KeyError(f"rank {self.rank} holds no data for node {gid}")
        return record.halted

    def set_halted(self, gid: int, halted: bool = True) -> bool:
        """Set the halt flag of a locally known node.

        Returns whether the flag actually changed.  A change invalidates
        the memoized communication topology: halted peripherals are
        excluded from :meth:`buffer_sizes` / :meth:`neighbor_procs`, so the
        memo is stale the moment a flag flips.
        """
        record = self.hash_table.get(gid)
        if record is None:
            raise KeyError(f"rank {self.rank} holds no data for node {gid}")
        if bool(record.halted) == bool(halted):
            return False
        record.halted = bool(halted)
        self._invalidate_topology_cache()
        return True

    def halted_gids(self) -> list[int]:
        """Global IDs of locally known halted nodes (ascending)."""
        return sorted(
            gid for gid, record in self.data_records.items() if record.halted
        )

    # ------------------------------------------------------------------ #
    # Commit (end of a compute sweep)
    # ------------------------------------------------------------------ #

    def commit_owned(self) -> list[int]:
        """Promote ``most_recent_data`` for every owned node.

        Returns the gids whose committed value actually *changed* (in sweep
        order) -- the raw material of the delta halo exchange and the
        quiescence count.  Each change bumps the node's version counter.
        """
        changed: list[int] = []
        for node in self.owned_nodes():
            if node.data.commit():
                changed.append(node.global_id)
        return changed

    def update_shadow(self, gid: int, value: Any) -> bool:
        """Install a received shadow value (post-communication update).

        Returns whether the shadow actually changed; the version counter is
        bumped only then, keeping replica versions identical to the owner's
        under both the dense (every value re-sent) and delta (changed values
        only) exchanges.
        """
        record = self.hash_table.get(gid)
        if record is None:
            raise KeyError(f"rank {self.rank} received shadow for unknown node {gid}")
        if record.data == value:
            return False
        record.data = value
        record.version += 1
        return True

    # ------------------------------------------------------------------ #
    # Task-migration surgery (section 4.3)
    # ------------------------------------------------------------------ #

    def release_node(self, gid: int) -> OwnNode:
        """Busy side: stop owning ``gid``; its data record *stays* (the node
        becomes a shadow here).  Returns the removed OwnNode."""
        node = self.peripheral.pop(gid, None)
        if node is None:
            node = self.internal.pop(gid, None)
        if node is None:
            raise KeyError(f"rank {self.rank} cannot release unowned node {gid}")
        self._invalidate_topology_cache()
        return node

    def adopt_node(
        self, gid: int, neighbor_values: Sequence[tuple[int, ...]]
    ) -> OwnNode:
        """Idle side: take ownership of ``gid``.

        ``neighbor_values`` carries the data of the migrating node's
        neighbours shipped by the busy processor -- ``(gid, value)`` pairs,
        or ``(gid, value, version)`` triples when the sender ships its
        delta-exchange version counters; records are created or refreshed so
        the next compute sweep finds everything locally.  The caller must
        already have updated ``assignment``.
        """
        if self.owns(gid):
            raise KeyError(f"rank {self.rank} already owns node {gid}")
        for ngid, value, *rest in neighbor_values:
            version = rest[0] if rest else 0
            record = self.data_records.get(ngid)
            if record is None:
                self._add_record(ngid, value, version=version)
            else:
                record.data = value
                if rest:
                    record.version = version
        if gid not in self.data_records:
            raise KeyError(
                f"rank {self.rank} adopting node {gid} without its data record"
            )
        node = self._make_own_node(gid)
        (self.peripheral if node.is_peripheral else self.internal)[gid] = node
        self._invalidate_topology_cache()
        return node

    def ensure_record(self, gid: int, value: Any, version: int | None = None) -> NodeData:
        """Create (or return) the data record for ``gid``."""
        record = self.data_records.get(gid)
        if record is None:
            record = self._add_record(gid, value, version=version or 0)
        elif version is not None:
            record.version = version
        return record

    def refresh_ownership(self) -> None:
        """Re-derive node kinds and shadow lists from the current assignment.

        Called on *every* rank after a migration: on the busy processor
        internal nodes neighbouring the migrated one become peripheral; on
        the idle processor peripheral nodes may turn internal; every other
        shadow-holding processor updates ``shadow_for_procs`` (the thesis
        rebuilds these arrays in ``task_migrate``).
        """
        owned = list(self.owned_nodes())
        self.internal.clear()
        self.peripheral.clear()
        for old in owned:
            node = self._make_own_node(old.global_id)
            (self.peripheral if node.is_peripheral else self.internal)[
                node.global_id
            ] = node
        self._invalidate_topology_cache()

    def prune_stale_shadows(self) -> list[int]:
        """Drop shadow records no longer adjacent to any owned node.

        The thesis never prunes (the migrated node's data must stay; other
        stale entries are simply never read again).  Pruning is an optional
        hygiene extension used by long-running dynamic workloads; returns
        the dropped gids.
        """
        needed: set[int] = set()
        for node in self.owned_nodes():
            needed.add(node.global_id)
            needed.update(node.neighboring_nodes)
        stale = [gid for gid in self.data_records if gid not in needed]
        for gid in stale:
            del self.data_records[gid]
            self.hash_table.remove(gid)
        return stale

    # ------------------------------------------------------------------ #
    # Checkpoint support (used by :mod:`repro.core.checkpoint`)
    # ------------------------------------------------------------------ #

    def capture_state(self) -> dict[str, Any]:
        """Snapshot every mutable piece of the store into plain data.

        The snapshot covers the node-to-processor map, the full data node
        list (committed *and* in-flight values), and the hash-table
        geometry; node values are deep-copied so later sweeps cannot mutate
        the snapshot through shared references.  The result is picklable
        whenever the application's node values are.
        """
        return {
            "rank": self.rank,
            "assignment": list(self.assignment),
            "records": {
                gid: (
                    copy.deepcopy(record.data),
                    copy.deepcopy(record.most_recent_data),
                    record.version,
                )
                for gid, record in self.data_records.items()
            },
            "halted": self.halted_gids(),
            "hash_table_length": self.hash_table.length,
        }

    def restore_state(self, state: dict[str, Any]) -> None:
        """Rebuild the store from a :meth:`capture_state` snapshot.

        The shared ``assignment`` list is patched in place (it is owned by
        the caller, exactly as during migration), the data node list and
        hash table are rebuilt record by record, and the internal/peripheral
        classification is re-derived -- leaving the store exactly as it was
        at snapshot time.
        """
        if state["rank"] != self.rank:
            raise ValueError(
                f"rank {self.rank} cannot restore a checkpoint of rank {state['rank']}"
            )
        self.assignment[:] = state["assignment"]
        self._reset_records(state["hash_table_length"])
        halted = set(state.get("halted", ()))
        for gid, (data, most_recent, version) in state["records"].items():
            self._add_record(
                gid,
                copy.deepcopy(data),
                copy.deepcopy(most_recent),
                version=version,
                halted=gid in halted,
            )
        self.internal.clear()
        self.peripheral.clear()
        for gid in self.graph.nodes():
            if self.assignment[gid - 1] == self.rank:
                node = self._make_own_node(gid)
                (self.peripheral if node.is_peripheral else self.internal)[gid] = node
        self._invalidate_topology_cache()

    # ------------------------------------------------------------------ #
    # Invariants (test hook)
    # ------------------------------------------------------------------ #

    def check_invariants(self) -> None:
        """Raise AssertionError on any broken store invariant."""
        for gid, node in self.internal.items():
            assert node.kind == INTERNAL, f"node {gid} in internal list with kind {node.kind}"
            assert not node.shadow_for_procs
            assert self.assignment[gid - 1] == self.rank, f"internal {gid} not owned"
            for v in node.neighboring_nodes:
                assert self.assignment[v - 1] == self.rank, (
                    f"internal node {gid} has remote neighbour {v}"
                )
        for gid, node in self.peripheral.items():
            assert node.kind == PERIPHERAL
            assert self.assignment[gid - 1] == self.rank, f"peripheral {gid} not owned"
            expected = self._shadow_procs_of(gid)
            assert node.shadow_for_procs == expected, (
                f"node {gid}: shadow_for_procs {node.shadow_for_procs} != {expected}"
            )
            assert expected, f"peripheral node {gid} has no remote neighbours"
        assert not (set(self.internal) & set(self.peripheral)), "node in both lists"
        # Every owned node and every neighbour of a peripheral node has data.
        for node in self.owned_nodes():
            assert node.global_id in self.data_records
            for v in node.neighboring_nodes:
                assert v in self.data_records, (
                    f"rank {self.rank}: no data for neighbour {v} of {node.global_id}"
                )
        # Hash table mirrors the data node list exactly (same objects).
        assert len(self.hash_table) == len(self.data_records)
        for gid, record in self.data_records.items():
            assert self.hash_table.get(gid) is record, f"hash table desync at {gid}"
        # OwnNode.data aliases the data record.
        for node in self.owned_nodes():
            assert node.data is self.data_records[node.global_id]
