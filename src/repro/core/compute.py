"""The computation & communication phase (Figures 8 and 8a).

The platform invokes the user's *application node function* through a
pointer it maintains -- here, a plain callable.  For each owned node it
forms "a list with the current node's data as the head, followed by the
data of the neighbors" (:class:`NodeView`), calls the function, and stores
the returned value in ``most_recent_data``.  Updated peripheral data is
packed into per-destination communication buffers as the sweep proceeds, so
"by the time the computation routine returns, the communication buffers are
all set up".

Two pipelines are provided:

* :func:`sweep_basic` -- Figure 8: internals, then peripherals (packing),
  commit, then ``Isend`` everything and blocking-receive the shadows.
* :func:`sweep_overlapped` -- Figure 8a: peripherals first, ``Isend`` +
  ``Irecv``, internals computed *while the transfers are in flight*, then
  wait and unpack.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

from ..mpi.communicator import Communicator
from .buffers import CommBuffers
from .config import PlatformCosts
from .node import OwnNode
from .nodestore import NodeStore

__all__ = ["NodeView", "ComputeContext", "NodeFn", "sweep_basic", "sweep_overlapped", "TAG_SHADOW"]

#: Tag for shadow-exchange messages.
TAG_SHADOW = 1


@dataclass(frozen=True)
class NodeView:
    """The node+neighbours list handed to the application node function.

    Attributes:
        global_id: The node being computed.
        value: Its committed value (head of the list).
        neighbors: ``(neighbour_gid, committed value)`` pairs, in adjacency
            order.
        iteration: 1-based sweep number (the appendix's ``index``), which
            the dynamic-imbalance workload keys its grain schedule on.
        round: 0-based communication sub-round within the iteration
            (non-zero only for multi-round applications like the
            battlefield simulation).
    """

    global_id: int
    value: Any
    neighbors: tuple[tuple[int, Any], ...]
    iteration: int
    round: int = 0

    def neighbor_values(self) -> list[Any]:
        """Just the neighbour values, in adjacency order."""
        return [v for _, v in self.neighbors]


class ComputeContext:
    """Per-rank execution context passed to the node function.

    Carries the virtual-clock charging interface (:meth:`work` replaces the
    thesis's dummy grain loops) and the counters that let the platform split
    wall time into the *compute* vs *overhead* buckets of section 5.4.
    """

    def __init__(self, comm: Communicator, costs: PlatformCosts, num_nodes: int) -> None:
        self.comm = comm
        self.costs = costs
        self.num_nodes = num_nodes
        self.iteration = 0
        self.round = 0
        self.compute_time = 0.0
        self.comm_overhead_time = 0.0
        self.bookkeeping_time = 0.0
        #: Per-node compute seconds since the last reset -- measured node
        #: weights for load-aware repartitioning (window-scoped).
        self.node_compute: dict[int, float] = {}

    def reset_node_loads(self) -> None:
        """Start a new load-measurement window."""
        self.node_compute.clear()

    @property
    def rank(self) -> int:
        """This processor's rank."""
        return self.comm.rank

    @property
    def nprocs(self) -> int:
        """Number of processors."""
        return self.comm.size

    def work(self, seconds: float) -> None:
        """Charge application compute time (the node's grain).

        Accumulates the *charged* seconds -- a fault-injected slow window
        (:class:`~repro.mpi.faults.SlowWindow`) inflates them, so the load
        balancer sees the degraded rank as genuinely busier.
        """
        self.compute_time += self.comm.work(seconds)

    def _bookkeeping(self, seconds: float) -> None:
        """Charge platform bookkeeping (lands in computation overhead)."""
        self.bookkeeping_time += self.comm.work(seconds)

    def _comm_overhead(self, seconds: float) -> None:
        """Charge pack/unpack bookkeeping (lands in communication overhead)."""
        self.comm_overhead_time += self.comm.work(seconds)


NodeFn = Callable[[NodeView, ComputeContext], Any]


def _form_view(store: NodeStore, node: OwnNode, ctx: ComputeContext) -> NodeView:
    """Build the node+neighbours list, charging list-forming overhead."""
    costs = ctx.costs
    neighbors = []
    for v in node.neighboring_nodes:
        record = store.hash_table[v]
        neighbors.append((v, record.data))
    ctx._bookkeeping(
        costs.list_item_cost * (1 + len(neighbors))
        + costs.hash_lookup_cost * len(neighbors)
        # The appendix's SimulatorFunction linearly scans the global data
        # node list (which holds *all* graph nodes on every rank) to locate
        # the current node: an average of n/2 items touched per call.
        + costs.data_scan_item_cost * ctx.num_nodes / 2
    )
    return NodeView(
        global_id=node.global_id,
        value=node.data.data,
        neighbors=tuple(neighbors),
        iteration=ctx.iteration,
        round=ctx.round,
    )


def _compute_node(store: NodeStore, node: OwnNode, node_fn: NodeFn, ctx: ComputeContext) -> None:
    view = _form_view(store, node, ctx)
    before = ctx.compute_time
    node.data.most_recent_data = node_fn(view, ctx)
    spent = ctx.compute_time - before
    if spent:
        gid = node.global_id
        ctx.node_compute[gid] = ctx.node_compute.get(gid, 0.0) + spent


def _pack_node(node: OwnNode, buffers: CommBuffers, ctx: ComputeContext) -> None:
    for proc in node.shadow_for_procs:
        buffers.pack(proc, node.global_id, node.data.most_recent_data)
        ctx._comm_overhead(ctx.costs.pack_cost)


def _commit(store: NodeStore, ctx: ComputeContext) -> None:
    count = store.commit_owned()
    ctx._bookkeeping(ctx.costs.update_cost * count)


def _send_all(comm: Communicator, buffers: CommBuffers) -> list[int]:
    """Isend every nonempty buffer; returns the peer list (symmetric).

    Buffers are snapshotted into tuples: the in-process transport passes
    payloads by reference, and the next sweep's ``buffers.reset()`` would
    otherwise mutate a list the receiver has not drained yet.
    """
    peers = buffers.nonempty_procs()
    for q in peers:
        comm.isend(tuple(buffers.outgoing(q)), q, tag=TAG_SHADOW, nbytes=buffers.nbytes(q))
    return peers


def _unpack(store: NodeStore, records: list[tuple[int, Any]], ctx: ComputeContext) -> None:
    for gid, value in records:
        store.update_shadow(gid, value)
    # Per-record constant plus the appendix's linear scan of the global
    # data node list while locating each record's home.
    ctx._comm_overhead(
        len(records)
        * (ctx.costs.unpack_cost + ctx.costs.unpack_scan_item_cost * ctx.num_nodes / 2)
    )


def sweep_basic(
    comm: Communicator,
    store: NodeStore,
    node_fn: NodeFn,
    ctx: ComputeContext,
    buffers: CommBuffers,
) -> None:
    """One Figure-8 compute+communicate sweep.

    ``ComputeOverNodes``: internals, then peripherals with packing, then
    commit.  ``CommunicateShadows``: Isend all buffers, blocking-receive
    from each neighbouring processor, unpack into the data node list.
    """
    buffers.reset()
    for node in store.internal.values():
        _compute_node(store, node, node_fn, ctx)
    for node in store.peripheral.values():
        _compute_node(store, node, node_fn, ctx)
        _pack_node(node, buffers, ctx)
    _commit(store, ctx)

    peers = _send_all(comm, buffers)
    # Per-peer receive-buffer allocation + initialization (appendix mallocs
    # a MAX_SIZE recvbuffer per neighbouring processor every call).
    ctx._comm_overhead(ctx.costs.recv_setup_cost * len(peers))
    received = [comm.recv(source=q, tag=TAG_SHADOW) for q in peers]
    # The appendix's CommunicateShadows synchronizes all ranks between the
    # receive loop and the buffer unpacking (its MPI_Barrier) -- one of the
    # per-iteration couplings the overlapped Figure-8a variant removes.
    comm.barrier()
    for records in received:
        _unpack(store, records, ctx)


def sweep_overlapped(
    comm: Communicator,
    store: NodeStore,
    node_fn: NodeFn,
    ctx: ComputeContext,
    buffers: CommBuffers,
) -> None:
    """One Figure-8a sweep: communication overlapped with internal compute.

    Peripheral nodes are processed and dispatched first; receives are
    posted nonblocking; internal nodes compute while the shadow messages
    are in flight; finally the receives are waited on and unpacked.
    """
    buffers.reset()
    for node in store.peripheral.values():
        _compute_node(store, node, node_fn, ctx)
        _pack_node(node, buffers, ctx)

    peers = _send_all(comm, buffers)
    ctx._comm_overhead(ctx.costs.recv_setup_cost * len(peers))
    requests = [(q, comm.irecv(source=q, tag=TAG_SHADOW)) for q in peers]

    for node in store.internal.values():
        _compute_node(store, node, node_fn, ctx)
    _commit(store, ctx)

    for _, req in requests:
        records = req.wait()
        _unpack(store, records, ctx)
