"""The computation & communication phase (Figures 8 and 8a).

The platform invokes the user's *application node function* through a
pointer it maintains -- here, a plain callable.  For each owned node it
forms "a list with the current node's data as the head, followed by the
data of the neighbors" (:class:`NodeView`), calls the function, and stores
the returned value in ``most_recent_data``.  Updated peripheral data is
packed into per-destination communication buffers as the sweep proceeds, so
"by the time the computation routine returns, the communication buffers are
all set up".

Four pipelines are provided:

* :func:`sweep_basic` -- Figure 8: internals, then peripherals (packing),
  commit, then ``Isend`` everything and blocking-receive the shadows.
* :func:`sweep_overlapped` -- Figure 8a: peripherals first, ``Isend`` +
  ``Irecv``, internals computed *while the transfers are in flight*, then
  wait and unpack.
* :func:`sweep_basic_delta` / :func:`sweep_overlapped_delta` -- the
  change-driven variants (``--activation sparse``): only *active* nodes
  (own or neighbour value changed since their last evaluation) are
  recomputed, only *changed* peripheral values are packed, empty sends are
  elided entirely, and receivers discover the actual sender set from the
  mailbox after the sweep barrier (:class:`DeltaState` holds the per-round
  active sets and the sweep-parity tag).
* :func:`sweep_hybrid` -- the GraphHP two-phase superstep
  (``--execution hybrid``): a *boundary phase* computes the active
  peripheral nodes and dispatches their deltas exactly like the
  change-driven sweep, then an *interior phase* iterates the interior
  active set locally -- no messages, no barrier -- until the frontier
  drains or the per-superstep inner cap is hit, with every inner sweep
  charged at full virtual cost.  The interior loop runs between the
  ``Isend`` and the barrier, so it inherently overlaps the in-flight
  exchange; arrivals can only activate peripheral nodes (an owned node
  with a remote neighbour is peripheral by definition), which is what
  makes the interior phase safely independent of this superstep's
  traffic.

The sparse pipelines assume the node function is *pure per round*: its
return value depends only on the node's own and neighbours' values (cost
charges may vary freely).  A skipped node then provably recomputes to its
current value, so sparse results are value-identical to dense.  The
hybrid pipeline additionally requires the *algorithm* to be
order-insensitive (chaotic relaxation, e.g. Jacobi): interior nodes see
newer-than-BSP neighbour values, so the trajectory differs while the
fixed point is preserved.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

import numpy as np

from ..mpi.communicator import Communicator
from .buffers import CommBuffers
from .config import PlatformCosts
from .node import OwnNode
from .nodestore import NodeStore
from .soastore import SoAStore

__all__ = [
    "NodeView",
    "ComputeContext",
    "DeltaState",
    "HybridState",
    "NodeFn",
    "sweep_basic",
    "sweep_overlapped",
    "sweep_basic_delta",
    "sweep_overlapped_delta",
    "sweep_basic_bulk",
    "sweep_overlapped_bulk",
    "sweep_basic_delta_bulk",
    "sweep_overlapped_delta_bulk",
    "sweep_hybrid",
    "sweep_hybrid_bulk",
    "supports_bulk",
    "TAG_SHADOW",
    "TAG_SHADOW_DELTA",
]

#: Tag for shadow-exchange messages.
TAG_SHADOW = 1

#: Alternating tag pair for the delta shadow exchange.  The barrier between
#: sweeps bounds rank skew to one sweep, so two tags suffice to keep a fast
#: rank's next-sweep sends from matching a slow rank's current-sweep
#: ``pending_sources`` query.
TAG_SHADOW_DELTA = (5, 6)


@dataclass(frozen=True)
class NodeView:
    """The node+neighbours list handed to the application node function.

    Attributes:
        global_id: The node being computed.
        value: Its committed value (head of the list).
        neighbors: ``(neighbour_gid, committed value)`` pairs, in adjacency
            order.
        iteration: 1-based sweep number (the appendix's ``index``), which
            the dynamic-imbalance workload keys its grain schedule on.
        round: 0-based communication sub-round within the iteration
            (non-zero only for multi-round applications like the
            battlefield simulation).
    """

    global_id: int
    value: Any
    neighbors: tuple[tuple[int, Any], ...]
    iteration: int
    round: int = 0

    def neighbor_values(self) -> list[Any]:
        """Just the neighbour values, in adjacency order."""
        return [v for _, v in self.neighbors]


class ComputeContext:
    """Per-rank execution context passed to the node function.

    Carries the virtual-clock charging interface (:meth:`work` replaces the
    thesis's dummy grain loops) and the counters that let the platform split
    wall time into the *compute* vs *overhead* buckets of section 5.4.
    """

    def __init__(self, comm: Communicator, costs: PlatformCosts, num_nodes: int) -> None:
        self.comm = comm
        self.costs = costs
        self.num_nodes = num_nodes
        self.iteration = 0
        self.round = 0
        self.compute_time = 0.0
        self.comm_overhead_time = 0.0
        self.bookkeeping_time = 0.0
        #: Owned nodes whose committed value changed in the last sweep --
        #: the quiescence-termination count (set by every sweep variant).
        self.changed_last_sweep = 0
        #: Per-node compute seconds since the last reset -- measured node
        #: weights for load-aware repartitioning (window-scoped).
        self.node_compute: dict[int, float] = {}

    def reset_node_loads(self) -> None:
        """Start a new load-measurement window."""
        self.node_compute.clear()

    @property
    def rank(self) -> int:
        """This processor's rank."""
        return self.comm.rank

    @property
    def nprocs(self) -> int:
        """Number of processors."""
        return self.comm.size

    def work(self, seconds: float) -> None:
        """Charge application compute time (the node's grain).

        Accumulates the *charged* seconds -- a fault-injected slow window
        (:class:`~repro.mpi.faults.SlowWindow`) inflates them, so the load
        balancer sees the degraded rank as genuinely busier.
        """
        self.compute_time += self.comm.work(seconds)

    def _bookkeeping(self, seconds: float) -> None:
        """Charge platform bookkeeping (lands in computation overhead)."""
        self.bookkeeping_time += self.comm.work(seconds)

    def _comm_overhead(self, seconds: float) -> None:
        """Charge pack/unpack bookkeeping (lands in communication overhead)."""
        self.comm_overhead_time += self.comm.work(seconds)


NodeFn = Callable[[NodeView, ComputeContext], Any]


def _form_view(store: NodeStore, node: OwnNode, ctx: ComputeContext) -> NodeView:
    """Build the node+neighbours list, charging list-forming overhead."""
    costs = ctx.costs
    neighbors = []
    for v in node.neighboring_nodes:
        record = store.hash_table[v]
        neighbors.append((v, record.data))
    ctx._bookkeeping(
        costs.list_item_cost * (1 + len(neighbors))
        + costs.hash_lookup_cost * len(neighbors)
        # The appendix's SimulatorFunction linearly scans the global data
        # node list (which holds *all* graph nodes on every rank) to locate
        # the current node: an average of n/2 items touched per call.
        + costs.data_scan_item_cost * ctx.num_nodes / 2
    )
    return NodeView(
        global_id=node.global_id,
        value=node.data.data,
        neighbors=tuple(neighbors),
        iteration=ctx.iteration,
        round=ctx.round,
    )


def _compute_node(store: NodeStore, node: OwnNode, node_fn: NodeFn, ctx: ComputeContext) -> None:
    view = _form_view(store, node, ctx)
    before = ctx.compute_time
    node.data.most_recent_data = node_fn(view, ctx)
    spent = ctx.compute_time - before
    if spent:
        gid = node.global_id
        ctx.node_compute[gid] = ctx.node_compute.get(gid, 0.0) + spent


def _pack_node(node: OwnNode, buffers: CommBuffers, ctx: ComputeContext) -> None:
    for proc in node.shadow_for_procs:
        buffers.pack(proc, node.global_id, node.data.most_recent_data)
        ctx._comm_overhead(ctx.costs.pack_cost)


def _commit(store: NodeStore, ctx: ComputeContext) -> None:
    changed = store.commit_owned()
    ctx.changed_last_sweep = len(changed)
    # Every owned node was recomputed, so every one pays the update charge
    # (identical to the pre-delta cost model).
    ctx._bookkeeping(ctx.costs.update_cost * store.num_owned())


def _send_all(comm: Communicator, buffers: CommBuffers) -> list[int]:
    """Isend every nonempty buffer; returns the peer list (symmetric).

    Buffers are snapshotted into tuples: the in-process transport passes
    payloads by reference, and the next sweep's ``buffers.reset()`` would
    otherwise mutate a list the receiver has not drained yet.
    """
    peers = buffers.nonempty_procs()
    for q in peers:
        comm.isend(tuple(buffers.outgoing(q)), q, tag=TAG_SHADOW, nbytes=buffers.nbytes(q))
    return peers


def _unpack(store: NodeStore, records: list[tuple[int, Any]], ctx: ComputeContext) -> None:
    for gid, value in records:
        store.update_shadow(gid, value)
    # Per-record constant plus the appendix's linear scan of the global
    # data node list while locating each record's home.
    ctx._comm_overhead(
        len(records)
        * (ctx.costs.unpack_cost + ctx.costs.unpack_scan_item_cost * ctx.num_nodes / 2)
    )


def sweep_basic(
    comm: Communicator,
    store: NodeStore,
    node_fn: NodeFn,
    ctx: ComputeContext,
    buffers: CommBuffers,
) -> None:
    """One Figure-8 compute+communicate sweep.

    ``ComputeOverNodes``: internals, then peripherals with packing, then
    commit.  ``CommunicateShadows``: Isend all buffers, blocking-receive
    from each neighbouring processor, unpack into the data node list.
    """
    buffers.reset()
    for node in store.internal.values():
        _compute_node(store, node, node_fn, ctx)
    for node in store.peripheral.values():
        _compute_node(store, node, node_fn, ctx)
        _pack_node(node, buffers, ctx)
    _commit(store, ctx)

    peers = _send_all(comm, buffers)
    # Per-peer receive-buffer allocation + initialization (appendix mallocs
    # a MAX_SIZE recvbuffer per neighbouring processor every call).
    ctx._comm_overhead(ctx.costs.recv_setup_cost * len(peers))
    received = [comm.recv(source=q, tag=TAG_SHADOW) for q in peers]
    # The appendix's CommunicateShadows synchronizes all ranks between the
    # receive loop and the buffer unpacking (its MPI_Barrier) -- one of the
    # per-iteration couplings the overlapped Figure-8a variant removes.
    comm.barrier()
    for records in received:
        _unpack(store, records, ctx)


def sweep_overlapped(
    comm: Communicator,
    store: NodeStore,
    node_fn: NodeFn,
    ctx: ComputeContext,
    buffers: CommBuffers,
) -> None:
    """One Figure-8a sweep: communication overlapped with internal compute.

    Peripheral nodes are processed and dispatched first; receives are
    posted nonblocking; internal nodes compute while the shadow messages
    are in flight; finally the receives are waited on and unpacked.
    """
    buffers.reset()
    for node in store.peripheral.values():
        _compute_node(store, node, node_fn, ctx)
        _pack_node(node, buffers, ctx)

    peers = _send_all(comm, buffers)
    ctx._comm_overhead(ctx.costs.recv_setup_cost * len(peers))
    requests = [(q, comm.irecv(source=q, tag=TAG_SHADOW)) for q in peers]

    for node in store.internal.values():
        _compute_node(store, node, node_fn, ctx)
    _commit(store, ctx)

    for _, req in requests:
        records = req.wait()
        _unpack(store, records, ctx)


# --------------------------------------------------------------------- #
# Change-driven (delta / active-set) pipelines
# --------------------------------------------------------------------- #


class DeltaState:
    """Per-rank state of the change-driven execution mode.

    Holds one *dirty set* per communication round: the owned nodes whose
    own or neighbour value changed since the start of that round's last
    sweep.  ``None`` marks a round as *dense* -- every owned node computes
    (the first iteration, and after any ownership change: migration,
    repartition, shrink recovery, rollback to a version-less rebuild).

    Per-round sets (rather than a single frontier) keep multi-round
    applications like the battlefield simulation sound: round ``r``'s
    function may move a value even when round ``r-1``'s left it alone, so a
    node may only skip round ``r`` if nothing in its closed neighbourhood
    changed since its last *round-r* evaluation.

    ``parity`` indexes :data:`TAG_SHADOW_DELTA` and flips every sweep; it
    advances in lockstep on all ranks (sweeps are collective), so it is
    deliberately *not* checkpointed -- after a rollback the live value is
    still synchronized, while the dirty sets are restored from the
    checkpoint so the frontier does not resume empty.
    """

    def __init__(self, rounds: int) -> None:
        self.rounds = rounds
        self.parity = 0
        self.dirty: list[set[int] | None] = [None] * rounds

    def begin_sweep(self, round_idx: int) -> set[int] | None:
        """Consume round ``round_idx``'s active set (None = dense sweep).

        A fresh empty set replaces it, ready to collect the changes this
        sweep produces.
        """
        active = self.dirty[round_idx]
        self.dirty[round_idx] = set()
        return active

    def _touch(self, gid: int) -> None:
        for dset in self.dirty:
            if dset is not None:
                dset.add(gid)

    def record_commit(self, store: NodeStore, changed: list[int], ctx: ComputeContext) -> None:
        """A committed owned value changed: it and its owned neighbours must
        recompute in every round."""
        cost = 0.0
        for gid in changed:
            self._touch(gid)
            neighbors = store.graph.neighbors(gid)
            for v in neighbors:
                if store.owns(v):
                    self._touch(v)
            cost += ctx.costs.list_item_cost * (1 + len(neighbors))
        if cost:
            ctx._bookkeeping(cost)

    def record_arrival(self, store: NodeStore, gid: int, ctx: ComputeContext) -> None:
        """A shadow value changed: its owned neighbours must recompute."""
        neighbors = store.graph.neighbors(gid)
        for v in neighbors:
            if store.owns(v):
                self._touch(v)
        ctx._bookkeeping(ctx.costs.list_item_cost * (1 + len(neighbors)))

    def reset_dense(self) -> None:
        """Fall back to dense sweeps for every round.

        Called after any event that changes ownership or rebuilds stores
        from bare values (migration, repartition, shrink recovery) -- a
        dense round is a safe superset of any frontier, and purity makes
        the extra evaluations value-neutral.
        """
        self.dirty = [None] * self.rounds

    def capture(self) -> dict[str, Any]:
        """Checkpoint payload: the dirty sets as deterministic lists."""
        return {
            "dirty": [sorted(d) if d is not None else None for d in self.dirty],
        }

    def restore(self, state: dict[str, Any]) -> None:
        """Reinstate the frontier a checkpoint captured (rollback path)."""
        self.dirty = [
            set(d) if d is not None else None for d in state["dirty"]
        ]


def _active_nodes(
    store: NodeStore, active: set[int] | None
) -> tuple[list[OwnNode], list[OwnNode]]:
    """The (internal, peripheral) nodes to compute this sweep, in gid order."""
    if active is None:
        return list(store.internal.values()), list(store.peripheral.values())
    ordered = sorted(active)
    internal = [store.internal[g] for g in ordered if g in store.internal]
    peripheral = [store.peripheral[g] for g in ordered if g in store.peripheral]
    return internal, peripheral


def _pack_node_delta(node: OwnNode, buffers: CommBuffers, ctx: ComputeContext) -> None:
    """Pack only if the freshly computed value differs from the committed
    one -- receivers treat absent records as "shadow still current"."""
    data = node.data
    if data.most_recent_data is None or data.most_recent_data == data.data:
        return
    for proc in node.shadow_for_procs:
        buffers.pack(proc, node.global_id, data.most_recent_data)
        ctx._comm_overhead(ctx.costs.pack_cost)


def _commit_delta(
    store: NodeStore, ctx: ComputeContext, delta: DeltaState, active_count: int
) -> None:
    changed = store.commit_owned()
    ctx.changed_last_sweep = len(changed)
    # Only the recomputed nodes carry a pending value, so only they pay the
    # update charge -- part of the sparse mode's virtual-time win.
    ctx._bookkeeping(ctx.costs.update_cost * active_count)
    delta.record_commit(store, changed, ctx)


def _send_all_delta(comm: Communicator, buffers: CommBuffers, tag: int) -> None:
    """Isend every nonempty buffer; empty sends are elided entirely (the
    alpha saving -- no sender CPU, no wire cost, no receive to match)."""
    for q in buffers.nonempty_procs():
        comm.isend(tuple(buffers.outgoing(q)), q, tag=tag, nbytes=buffers.nbytes(q))


def _unpack_delta(
    store: NodeStore,
    records: tuple[tuple[int, Any], ...],
    ctx: ComputeContext,
    delta: DeltaState,
) -> None:
    for gid, value in records:
        if store.update_shadow(gid, value):
            delta.record_arrival(store, gid, ctx)
    ctx._comm_overhead(
        len(records)
        * (ctx.costs.unpack_cost + ctx.costs.unpack_scan_item_cost * ctx.num_nodes / 2)
    )


def sweep_basic_delta(
    comm: Communicator,
    store: NodeStore,
    node_fn: NodeFn,
    ctx: ComputeContext,
    buffers: CommBuffers,
    delta: DeltaState,
) -> None:
    """The Figure-8 sweep, change-driven.

    Active nodes compute (internals then peripherals, gid order); only
    changed peripheral values are packed and only nonempty buffers are
    sent.  Elision breaks receive symmetry -- a rank can no longer post one
    receive per graph neighbour -- so the sweep barrier doubles as the
    delivery fence: afterwards the mailbox is asked which peers actually
    sent this sweep's tag, and exactly those messages are received.
    """
    buffers.reset()
    tag = TAG_SHADOW_DELTA[delta.parity]
    delta.parity ^= 1
    internal, peripheral = _active_nodes(store, delta.begin_sweep(ctx.round))
    for node in internal:
        _compute_node(store, node, node_fn, ctx)
    for node in peripheral:
        _compute_node(store, node, node_fn, ctx)
        _pack_node_delta(node, buffers, ctx)
    _commit_delta(store, ctx, delta, len(internal) + len(peripheral))

    _send_all_delta(comm, buffers, tag)
    # Delivery fence: every peer's sends of this sweep happen-before its
    # barrier entry (sends are eagerly buffered), so after release the
    # pending-sources query is deterministic.
    comm.barrier()
    sources = comm.pending_sources(tag)
    ctx._comm_overhead(ctx.costs.recv_setup_cost * len(sources))
    received = [comm.recv(source=q, tag=tag) for q in sources]
    for records in received:
        _unpack_delta(store, records, ctx, delta)


def sweep_overlapped_delta(
    comm: Communicator,
    store: NodeStore,
    node_fn: NodeFn,
    ctx: ComputeContext,
    buffers: CommBuffers,
    delta: DeltaState,
) -> None:
    """The Figure-8a sweep, change-driven.

    Active peripherals compute and dispatch first; active internals compute
    while the (changed-only) shadow messages are in flight; the barrier
    then fences delivery and the discovered senders are drained.
    """
    buffers.reset()
    tag = TAG_SHADOW_DELTA[delta.parity]
    delta.parity ^= 1
    internal, peripheral = _active_nodes(store, delta.begin_sweep(ctx.round))
    for node in peripheral:
        _compute_node(store, node, node_fn, ctx)
        _pack_node_delta(node, buffers, ctx)
    _send_all_delta(comm, buffers, tag)

    for node in internal:
        _compute_node(store, node, node_fn, ctx)
    _commit_delta(store, ctx, delta, len(internal) + len(peripheral))

    comm.barrier()
    sources = comm.pending_sources(tag)
    ctx._comm_overhead(ctx.costs.recv_setup_cost * len(sources))
    for q in sources:
        _unpack_delta(store, comm.recv(source=q, tag=tag), ctx, delta)


# --------------------------------------------------------------------- #
# Bulk (struct-of-arrays) pipelines
# --------------------------------------------------------------------- #
#
# When the store is a SoAStore and the node function carries a *bulk
# kernel* (``fn.bulk``: a callable ``kernel(view) -> ndarray`` with a
# ``node_grain`` float attribute), the sweep computes every active node's
# value in one vectorized pass over a :class:`~repro.core.soastore.BulkView`
# -- then *replays* the scalar path's exact per-node charge sequence
# (bookkeeping, grain) through the communicator.  Every virtual-clock
# addition happens in the same order with the same amounts, so clocks,
# phase splits, per-node load measurements, and trace streams stay
# bit-identical to the object store's scalar sweeps -- even under
# slow-window fault scaling, which is a deterministic function of the
# clock at charge time.  The wall-clock win comes from eliminating the
# per-node view construction, hash lookups, and Python-level arithmetic.
#
# Bulk kernels must be pure (values from committed neighbour state only)
# and must cost exactly ``node_grain`` virtual seconds per node; functions
# with richer cost behaviour simply omit ``.bulk`` and take the scalar
# path, which is equally conformant on either store.


def supports_bulk(node_fns: tuple[NodeFn, ...] | list[NodeFn]) -> bool:
    """Whether every node function carries a bulk kernel."""
    return all(callable(getattr(fn, "bulk", None)) for fn in node_fns)


def _replay_node(
    node: OwnNode, grain: float, ctx: ComputeContext, book: dict[int, float]
) -> None:
    """Charge one node's scalar-path costs (no value computation)."""
    deg = len(node.neighboring_nodes)
    cost = book.get(deg)
    if cost is None:
        costs = ctx.costs
        cost = book[deg] = (
            costs.list_item_cost * (1 + deg)
            + costs.hash_lookup_cost * deg
            + costs.data_scan_item_cost * ctx.num_nodes / 2
        )
    ctx._bookkeeping(cost)
    before = ctx.compute_time
    ctx.work(grain)
    spent = ctx.compute_time - before
    if spent:
        gid = node.global_id
        ctx.node_compute[gid] = ctx.node_compute.get(gid, 0.0) + spent


def _replay_compute(
    nodes: list[OwnNode], grain: float, ctx: ComputeContext, book: dict[int, float]
) -> None:
    """Charge the scalar-path costs for ``nodes`` in sweep order.

    When no slow-window fault scaling can apply (``compute_scale`` would
    return 1.0 for every charge), the per-node sequence is plain float
    addition with no data-dependent factors, so it is inlined here against
    local accumulators -- the same additions in the same order as
    :func:`_replay_node`, minus six Python calls per node.  Slow windows
    make each charge a function of the clock at charge time, so that path
    falls back to the per-node replay.
    """
    if grain < 0:
        raise ValueError(f"cannot charge negative work: {grain}")
    faults = ctx.comm.faults
    if faults is not None and faults.plan.slow:
        for node in nodes:
            _replay_node(node, grain, ctx, book)
        return
    state = ctx.comm._state()
    clock = state.clock
    compute_time = ctx.compute_time
    bookkeeping_time = ctx.bookkeeping_time
    node_compute = ctx.node_compute
    costs = ctx.costs
    half_scan = costs.data_scan_item_cost * ctx.num_nodes / 2
    for node in nodes:
        deg = len(node.neighboring_nodes)
        cost = book.get(deg)
        if cost is None:
            cost = book[deg] = (
                costs.list_item_cost * (1 + deg)
                + costs.hash_lookup_cost * deg
                + half_scan
            )
        bookkeeping_time += cost
        clock += cost
        before = compute_time
        compute_time += grain
        clock += grain
        spent = compute_time - before
        if spent:
            gid = node.global_id
            node_compute[gid] = node_compute.get(gid, 0.0) + spent
    state.clock = clock
    ctx.compute_time = compute_time
    ctx.bookkeeping_time = bookkeeping_time


def _bulk_values(
    store: SoAStore,
    kernel: Any,
    ctx: ComputeContext,
    nodes: list[OwnNode] | None,
    key: str | None,
) -> list:
    """Run the kernel over ``nodes`` (None = all owned) and store results
    as pending values; returns them as exact Python objects, sweep order."""
    if nodes is None:
        positions = None
    elif nodes:
        pos = store.bulk_topology().pos
        positions = np.fromiter(
            (pos[node.global_id] for node in nodes), dtype=np.intp, count=len(nodes)
        )
    else:
        return []
    view = store.bulk_view(positions, ctx.iteration, ctx.round, key=key)
    return store.scatter_pending(positions, kernel(view))


def sweep_basic_bulk(
    comm: Communicator,
    store: SoAStore,
    node_fn: NodeFn,
    ctx: ComputeContext,
    buffers: CommBuffers,
) -> None:
    """:func:`sweep_basic`, vectorized over the struct-of-arrays store."""
    kernel = node_fn.bulk
    buffers.reset()
    values = _bulk_values(store, kernel, ctx, None, key="dense")
    internal = list(store.internal.values())
    peripheral = list(store.peripheral.values())
    grain = kernel.node_grain
    book: dict[int, float] = {}
    _replay_compute(internal, grain, ctx, book)
    n_int = len(internal)
    pack_cost = ctx.costs.pack_cost
    for i, node in enumerate(peripheral):
        _replay_node(node, grain, ctx, book)
        value = values[n_int + i]
        for proc in node.shadow_for_procs:
            buffers.pack(proc, node.global_id, value)
            ctx._comm_overhead(pack_cost)
    _commit(store, ctx)

    peers = _send_all(comm, buffers)
    ctx._comm_overhead(ctx.costs.recv_setup_cost * len(peers))
    received = [comm.recv(source=q, tag=TAG_SHADOW) for q in peers]
    comm.barrier()
    for records in received:
        _unpack(store, records, ctx)


def sweep_overlapped_bulk(
    comm: Communicator,
    store: SoAStore,
    node_fn: NodeFn,
    ctx: ComputeContext,
    buffers: CommBuffers,
) -> None:
    """:func:`sweep_overlapped`, vectorized over the struct-of-arrays store."""
    kernel = node_fn.bulk
    buffers.reset()
    values = _bulk_values(store, kernel, ctx, None, key="dense")
    internal = list(store.internal.values())
    peripheral = list(store.peripheral.values())
    grain = kernel.node_grain
    book: dict[int, float] = {}
    n_int = len(internal)
    pack_cost = ctx.costs.pack_cost
    for i, node in enumerate(peripheral):
        _replay_node(node, grain, ctx, book)
        value = values[n_int + i]
        for proc in node.shadow_for_procs:
            buffers.pack(proc, node.global_id, value)
            ctx._comm_overhead(pack_cost)

    peers = _send_all(comm, buffers)
    ctx._comm_overhead(ctx.costs.recv_setup_cost * len(peers))
    requests = [(q, comm.irecv(source=q, tag=TAG_SHADOW)) for q in peers]

    _replay_compute(internal, grain, ctx, book)
    _commit(store, ctx)

    for _, req in requests:
        records = req.wait()
        _unpack(store, records, ctx)


def sweep_basic_delta_bulk(
    comm: Communicator,
    store: SoAStore,
    node_fn: NodeFn,
    ctx: ComputeContext,
    buffers: CommBuffers,
    delta: DeltaState,
) -> None:
    """:func:`sweep_basic_delta`, vectorized: the active set becomes an
    index array and the sparse sweep a gather-compute-scatter."""
    kernel = node_fn.bulk
    buffers.reset()
    tag = TAG_SHADOW_DELTA[delta.parity]
    delta.parity ^= 1
    internal, peripheral = _active_nodes(store, delta.begin_sweep(ctx.round))
    values = _bulk_values(store, kernel, ctx, internal + peripheral, key=None)
    grain = kernel.node_grain
    book: dict[int, float] = {}
    _replay_compute(internal, grain, ctx, book)
    n_int = len(internal)
    pack_cost = ctx.costs.pack_cost
    for i, node in enumerate(peripheral):
        _replay_node(node, grain, ctx, book)
        value = values[n_int + i]
        if value is None or value == node.data.data:
            continue
        for proc in node.shadow_for_procs:
            buffers.pack(proc, node.global_id, value)
            ctx._comm_overhead(pack_cost)
    _commit_delta(store, ctx, delta, len(internal) + len(peripheral))

    _send_all_delta(comm, buffers, tag)
    comm.barrier()
    sources = comm.pending_sources(tag)
    ctx._comm_overhead(ctx.costs.recv_setup_cost * len(sources))
    received = [comm.recv(source=q, tag=tag) for q in sources]
    for records in received:
        _unpack_delta(store, records, ctx, delta)


def sweep_overlapped_delta_bulk(
    comm: Communicator,
    store: SoAStore,
    node_fn: NodeFn,
    ctx: ComputeContext,
    buffers: CommBuffers,
    delta: DeltaState,
) -> None:
    """:func:`sweep_overlapped_delta`, vectorized (see
    :func:`sweep_basic_delta_bulk`)."""
    kernel = node_fn.bulk
    buffers.reset()
    tag = TAG_SHADOW_DELTA[delta.parity]
    delta.parity ^= 1
    internal, peripheral = _active_nodes(store, delta.begin_sweep(ctx.round))
    values = _bulk_values(store, kernel, ctx, internal + peripheral, key=None)
    grain = kernel.node_grain
    book: dict[int, float] = {}
    n_int = len(internal)
    pack_cost = ctx.costs.pack_cost
    for i, node in enumerate(peripheral):
        _replay_node(node, grain, ctx, book)
        value = values[n_int + i]
        if value is None or value == node.data.data:
            continue
        for proc in node.shadow_for_procs:
            buffers.pack(proc, node.global_id, value)
            ctx._comm_overhead(pack_cost)
    _send_all_delta(comm, buffers, tag)

    _replay_compute(internal, grain, ctx, book)
    _commit_delta(store, ctx, delta, len(internal) + len(peripheral))

    comm.barrier()
    sources = comm.pending_sources(tag)
    ctx._comm_overhead(ctx.costs.recv_setup_cost * len(sources))
    for q in sources:
        _unpack_delta(store, comm.recv(source=q, tag=tag), ctx, delta)


# --------------------------------------------------------------------- #
# Hybrid sync/async (GraphHP) pipeline
# --------------------------------------------------------------------- #


class HybridState:
    """Per-rank state of the hybrid (GraphHP-style) execution mode.

    Like :class:`DeltaState`, but the per-round frontier is *split by node
    class*: ``boundary[r]`` holds active peripheral nodes (computed once
    per superstep, in the globally synchronized boundary phase) and
    ``interior[r]`` holds active interior nodes (iterated locally to
    convergence inside the superstep).  ``None`` marks a frontier dense.
    A changed node activates its owned neighbours into whichever frontier
    their classification demands, so migration/repartition/shrink (which
    rebuild the classification) are handled by the same
    :meth:`reset_dense` fallback the delta mode uses.

    ``parity`` flips once per *superstep* (not per inner sweep -- interior
    iteration is message-free, so the exchange tags stay lockstep across
    ranks with different inner-sweep counts) and is deliberately not
    checkpointed, like :class:`DeltaState.parity`.  The cumulative
    ``inner_sweeps`` counter *is* checkpointed: it rides snapshots so a
    rollback replays to bit-identical telemetry.
    """

    def __init__(self, rounds: int, inner_cap: int) -> None:
        self.rounds = rounds
        self.inner_cap = inner_cap
        self.parity = 0
        self.boundary: list[set[int] | None] = [None] * rounds
        self.interior: list[set[int] | None] = [None] * rounds
        #: Interior sweeps executed over the whole run (telemetry).
        self.inner_sweeps = 0

    def begin_boundary(self, round_idx: int) -> set[int] | None:
        """Consume round ``round_idx``'s boundary frontier (None = dense)."""
        active = self.boundary[round_idx]
        self.boundary[round_idx] = set()
        return active

    def begin_interior(self, round_idx: int) -> set[int] | None:
        """Consume round ``round_idx``'s interior frontier (None = dense)."""
        active = self.interior[round_idx]
        self.interior[round_idx] = set()
        return active

    def _touch(self, store: NodeStore, gid: int) -> None:
        frontiers = (
            self.boundary if gid in store.peripheral else self.interior
        )
        for fset in frontiers:
            if fset is not None:
                fset.add(gid)

    def record_commit(
        self, store: NodeStore, changed: list[int], ctx: ComputeContext
    ) -> None:
        """A committed owned value changed: it and its owned neighbours must
        recompute in every round, each in its own class's frontier."""
        cost = 0.0
        for gid in changed:
            self._touch(store, gid)
            neighbors = store.graph.neighbors(gid)
            for v in neighbors:
                if store.owns(v):
                    self._touch(store, v)
            cost += ctx.costs.list_item_cost * (1 + len(neighbors))
        if cost:
            ctx._bookkeeping(cost)

    def record_arrival(self, store: NodeStore, gid: int, ctx: ComputeContext) -> None:
        """A shadow value changed: its owned neighbours must recompute.

        Every owned neighbour of a shadow is peripheral by definition, so
        arrivals only ever grow the *boundary* frontier -- the invariant
        that lets the interior phase run before this superstep's messages
        are drained.
        """
        neighbors = store.graph.neighbors(gid)
        for v in neighbors:
            if store.owns(v):
                self._touch(store, v)
        ctx._bookkeeping(ctx.costs.list_item_cost * (1 + len(neighbors)))

    def reset_dense(self) -> None:
        """Fall back to dense phases for every round (ownership changed)."""
        self.boundary = [None] * self.rounds
        self.interior = [None] * self.rounds

    def capture(self) -> dict[str, Any]:
        """Checkpoint payload: both frontiers plus the inner-sweep counter."""
        return {
            "boundary": [sorted(d) if d is not None else None for d in self.boundary],
            "interior": [sorted(d) if d is not None else None for d in self.interior],
            "inner_sweeps": self.inner_sweeps,
        }

    def restore(self, state: dict[str, Any]) -> None:
        """Reinstate the frontiers and counter a checkpoint captured."""
        self.boundary = [
            set(d) if d is not None else None for d in state["boundary"]
        ]
        self.interior = [
            set(d) if d is not None else None for d in state["interior"]
        ]
        self.inner_sweeps = state["inner_sweeps"]


def _boundary_nodes(store: NodeStore, active: set[int] | None) -> list[OwnNode]:
    """The peripheral nodes to compute this boundary phase, gid order."""
    if active is None:
        return list(store.peripheral.values())
    return [store.peripheral[g] for g in sorted(active) if g in store.peripheral]


def _interior_nodes(store: NodeStore, active: set[int] | None) -> list[OwnNode]:
    """The interior nodes to compute this inner sweep, gid order."""
    if active is None:
        return list(store.internal.values())
    return [store.internal[g] for g in sorted(active) if g in store.internal]


def sweep_hybrid(
    comm: Communicator,
    store: NodeStore,
    node_fn: NodeFn,
    ctx: ComputeContext,
    buffers: CommBuffers,
    hybrid: HybridState,
) -> None:
    """One GraphHP-style two-phase superstep.

    Boundary phase: active peripherals compute, changed values pack, the
    (nonempty) delta buffers dispatch -- exactly the change-driven sweep
    restricted to the cut.  Interior phase: the interior frontier is
    iterated locally until it drains or ``inner_cap`` sweeps have run,
    each sweep committing and re-deriving the next frontier, with no
    communication at all -- it runs between the Isend and the barrier, so
    it overlaps the exchange for free.  Finally the barrier fences
    delivery and the discovered senders are drained; arrivals activate
    only boundary nodes, for the *next* superstep.

    Quiescence safety: ``changed_last_sweep`` counts boundary plus all
    interior commits.  Frontier entries are only ever created by a
    *changed* commit (counted here) or a *changed* arrival (counted at
    its sender's commit), so a global all-zero verdict implies every
    frontier on every rank is empty -- a capped-out interior frontier
    always has a nonzero change count backing it.
    """
    buffers.reset()
    tag = TAG_SHADOW_DELTA[hybrid.parity]
    hybrid.parity ^= 1
    round_idx = ctx.round

    # ---- Boundary phase (globally synchronous, delta exchange) -------
    boundary = _boundary_nodes(store, hybrid.begin_boundary(round_idx))
    for node in boundary:
        _compute_node(store, node, node_fn, ctx)
        _pack_node_delta(node, buffers, ctx)
    changed = store.commit_owned()
    total_changed = len(changed)
    ctx._bookkeeping(ctx.costs.update_cost * len(boundary))
    # Boundary changes land in the *unconsumed* interior frontier, feeding
    # this superstep's interior phase; interior commits below land in the
    # fresh boundary frontier, feeding the next superstep.
    hybrid.record_commit(store, changed, ctx)
    _send_all_delta(comm, buffers, tag)

    # ---- Interior phase (local, asynchronous, overlaps the exchange) --
    sweeps = 0
    while sweeps < hybrid.inner_cap:
        nodes = _interior_nodes(store, hybrid.begin_interior(round_idx))
        if not nodes:
            break
        sweeps += 1
        for node in nodes:
            _compute_node(store, node, node_fn, ctx)
        changed = store.commit_owned()
        total_changed += len(changed)
        ctx._bookkeeping(ctx.costs.update_cost * len(nodes))
        hybrid.record_commit(store, changed, ctx)
    hybrid.inner_sweeps += sweeps
    ctx.changed_last_sweep = total_changed

    # ---- Exchange completion -----------------------------------------
    comm.barrier()
    sources = comm.pending_sources(tag)
    ctx._comm_overhead(ctx.costs.recv_setup_cost * len(sources))
    received = [comm.recv(source=q, tag=tag) for q in sources]
    for records in received:
        # HybridState.record_arrival matches DeltaState's signature, so the
        # delta unpacker threads it unchanged.
        _unpack_delta(store, records, ctx, hybrid)


def sweep_hybrid_bulk(
    comm: Communicator,
    store: SoAStore,
    node_fn: NodeFn,
    ctx: ComputeContext,
    buffers: CommBuffers,
    hybrid: HybridState,
) -> None:
    """:func:`sweep_hybrid`, vectorized over the struct-of-arrays store.

    Each phase is one gather-compute-scatter over an anonymous sparse
    :class:`~repro.core.soastore.BulkView` (boundary set, then the interior
    frontier of every inner sweep) with the scalar charge sequence
    replayed, so clocks and values stay bit-identical to the scalar
    pipeline on either store.  Converging interior frontiers revisit the
    same position sets, which the store's geometry LRU turns into cache
    hits.
    """
    kernel = node_fn.bulk
    buffers.reset()
    tag = TAG_SHADOW_DELTA[hybrid.parity]
    hybrid.parity ^= 1
    round_idx = ctx.round
    grain = kernel.node_grain
    book: dict[int, float] = {}
    pack_cost = ctx.costs.pack_cost

    # ---- Boundary phase ----------------------------------------------
    boundary = _boundary_nodes(store, hybrid.begin_boundary(round_idx))
    values = _bulk_values(store, kernel, ctx, boundary, key=None)
    for i, node in enumerate(boundary):
        _replay_node(node, grain, ctx, book)
        value = values[i]
        if value is None or value == node.data.data:
            continue
        for proc in node.shadow_for_procs:
            buffers.pack(proc, node.global_id, value)
            ctx._comm_overhead(pack_cost)
    changed = store.commit_owned()
    total_changed = len(changed)
    ctx._bookkeeping(ctx.costs.update_cost * len(boundary))
    hybrid.record_commit(store, changed, ctx)
    _send_all_delta(comm, buffers, tag)

    # ---- Interior phase ----------------------------------------------
    sweeps = 0
    while sweeps < hybrid.inner_cap:
        nodes = _interior_nodes(store, hybrid.begin_interior(round_idx))
        if not nodes:
            break
        sweeps += 1
        _bulk_values(store, kernel, ctx, nodes, key=None)
        _replay_compute(nodes, grain, ctx, book)
        changed = store.commit_owned()
        total_changed += len(changed)
        ctx._bookkeeping(ctx.costs.update_cost * len(nodes))
        hybrid.record_commit(store, changed, ctx)
    hybrid.inner_sweeps += sweeps
    ctx.changed_last_sweep = total_changed

    # ---- Exchange completion -----------------------------------------
    comm.barrier()
    sources = comm.pending_sources(tag)
    ctx._comm_overhead(ctx.costs.recv_setup_cost * len(sources))
    received = [comm.recv(source=q, tag=tag) for q in sources]
    for records in received:
        _unpack_delta(store, records, ctx, hybrid)
