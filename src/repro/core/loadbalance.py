"""Dynamic load balancing: the centralized heuristic (section 4.3).

The balancer runs on a *weighted processor network graph* assembled at run
time: node weights are the execution times of the processors over the last
window of iterations, and edge weights are the communication buffer lengths
between processor pairs.  A designated processor (rank 0) scans the graph:

* a processor doing **>= 25 % more work than all of its neighbours** is
  *busy*;
* the least-loaded of its neighbours is its *idle* partner;
* all such busy-idle pairs are handed to the task-migration routine.

Any object implementing :class:`LoadBalancer` can be plugged in instead
(Goal 3); :class:`GreedyPairBalancer` is one such alternative, used in the
ablation benches.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol, Sequence, runtime_checkable

__all__ = [
    "BusyIdlePair",
    "LoadBalancer",
    "CentralizedHeuristicBalancer",
    "GreedyPairBalancer",
    "DiffusionBalancer",
    "build_processor_edges",
]


@dataclass(frozen=True)
class BusyIdlePair:
    """One migration directive: move work ``busy`` -> ``idle``."""

    busy: int
    idle: int


@runtime_checkable
class LoadBalancer(Protocol):
    """Plug-in interface for dynamic load balancers."""

    def find_pairs(
        self, exec_times: Sequence[float], edges: Sequence[Sequence[int]]
    ) -> list[BusyIdlePair]:
        """Derive busy-idle pairs from the run-time processor graph.

        Args:
            exec_times: Per-processor execution time over the last window.
            edges: ``edges[i][j]`` > 0 iff processors i and j exchange
                shadows; the value is the summed buffer length (i -> j plus
                j -> i).
        """
        ...


def build_processor_edges(buffer_sizes: Sequence[Sequence[int]]) -> list[list[int]]:
    """Symmetrize gathered per-rank buffer sizes into the edge matrix.

    ``buffer_sizes[i][j]`` is how many shadow records rank i sends to rank
    j each sweep; the processor-graph edge weight is the two-way sum.
    """
    nprocs = len(buffer_sizes)
    edges = [[0] * nprocs for _ in range(nprocs)]
    for i in range(nprocs):
        if len(buffer_sizes[i]) != nprocs:
            raise ValueError(
                f"rank {i} reported {len(buffer_sizes[i])} buffer sizes for {nprocs} procs"
            )
        for j in range(nprocs):
            if i != j:
                edges[i][j] = buffer_sizes[i][j] + buffer_sizes[j][i]
    return edges


class CentralizedHeuristicBalancer:
    """The thesis's centralized heuristic.

    Args:
        threshold: Relative-work threshold; 0.25 reproduces the paper's
            "25 % more work than all its neighbors".
    """

    def __init__(self, threshold: float = 0.25) -> None:
        if threshold < 0:
            raise ValueError(f"threshold must be >= 0, got {threshold}")
        self.threshold = threshold

    def relative_load(
        self, exec_times: Sequence[float], edges: Sequence[Sequence[int]]
    ) -> list[list[float]]:
        """``relative[i][j] = (t_i - t_j) / t_j`` for linked pairs with
        ``t_i > t_j`` (zero elsewhere), the quantity the heuristic compares
        against the threshold."""
        nprocs = len(exec_times)
        rel = [[0.0] * nprocs for _ in range(nprocs)]
        for i in range(nprocs):
            for j in range(nprocs):
                if i == j or edges[i][j] <= 0:
                    continue
                if exec_times[i] > exec_times[j] > 0:
                    rel[i][j] = (exec_times[i] - exec_times[j]) / exec_times[j]
        return rel

    def find_pairs(
        self, exec_times: Sequence[float], edges: Sequence[Sequence[int]]
    ) -> list[BusyIdlePair]:
        nprocs = len(exec_times)
        rel = self.relative_load(exec_times, edges)
        pairs: list[BusyIdlePair] = []
        for i in range(nprocs):
            neighbors = [j for j in range(nprocs) if j != i and edges[i][j] > 0]
            if not neighbors:
                continue
            if all(rel[i][j] >= self.threshold for j in neighbors):
                idle = max(neighbors, key=lambda j: (rel[i][j], -j))
                pairs.append(BusyIdlePair(busy=i, idle=idle))
        return pairs


class GreedyPairBalancer:
    """Alternative plug-in: pair the globally heaviest processor with its
    lightest neighbour whenever the gap exceeds the threshold.

    Fires more readily than the centralized heuristic (a processor need not
    out-work *all* neighbours), trading migration churn for responsiveness;
    the ablation bench compares the two.
    """

    def __init__(self, threshold: float = 0.25, max_pairs: int | None = None) -> None:
        if threshold < 0:
            raise ValueError(f"threshold must be >= 0, got {threshold}")
        self.threshold = threshold
        self.max_pairs = max_pairs

    def find_pairs(
        self, exec_times: Sequence[float], edges: Sequence[Sequence[int]]
    ) -> list[BusyIdlePair]:
        nprocs = len(exec_times)
        used: set[int] = set()
        pairs: list[BusyIdlePair] = []
        order = sorted(range(nprocs), key=lambda i: (-exec_times[i], i))
        for i in order:
            if i in used:
                continue
            neighbors = [
                j for j in range(nprocs) if j != i and edges[i][j] > 0 and j not in used
            ]
            candidates = [
                j
                for j in neighbors
                if exec_times[j] > 0
                and (exec_times[i] - exec_times[j]) / exec_times[j] >= self.threshold
            ]
            if not candidates:
                continue
            idle = min(candidates, key=lambda j: (exec_times[j], j))
            pairs.append(BusyIdlePair(busy=i, idle=idle))
            used.update((i, idle))
            if self.max_pairs is not None and len(pairs) >= self.max_pairs:
                break
        return pairs


class DiffusionBalancer:
    """Diffusion-style balancer: every above-average processor sheds load to
    each lighter neighbour.

    The classic decentralized alternative to the thesis's centralized
    heuristic (Cybenko-style first-order diffusion, restricted here to one
    busy-idle pair per directed gradient).  A processor need not out-work
    *all* its neighbours -- any downhill edge steep enough produces a pair,
    so load spreads along every gradient simultaneously and the scheme
    keeps working on plateaued regions where the centralized trigger is
    structurally silent.

    Args:
        threshold: Minimum relative gap ``(t_i - t_j) / t_j`` for an edge to
            carry a migration.
    """

    def __init__(self, threshold: float = 0.25) -> None:
        if threshold < 0:
            raise ValueError(f"threshold must be >= 0, got {threshold}")
        self.threshold = threshold

    def find_pairs(
        self, exec_times: Sequence[float], edges: Sequence[Sequence[int]]
    ) -> list[BusyIdlePair]:
        nprocs = len(exec_times)
        pairs: list[BusyIdlePair] = []
        for i in range(nprocs):
            for j in range(nprocs):
                if i == j or edges[i][j] <= 0:
                    continue
                if exec_times[j] <= 0:
                    continue
                if (exec_times[i] - exec_times[j]) / exec_times[j] >= self.threshold:
                    pairs.append(BusyIdlePair(busy=i, idle=j))
        return pairs
