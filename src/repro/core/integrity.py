"""Silent-corruption detection and surgical repair for the platform loop.

PRs 1-2 made the platform robust to *fail-stop* faults; this module covers
*transient* faults: a bit flip in a committed node value between supersteps
(:class:`~repro.mpi.faults.MemoryFlipEvent`).  The protection is layered:

* **Per-superstep partition digests.**  At the end of every iteration each
  rank digests each owned node's committed value
  (:func:`~repro.mpi.faults.state_digest`); at the start of the next
  iteration it re-digests and diffs.  Committed values are immutable
  between a commit and the next sweep, so any mismatch *is* corruption --
  detection reads the memory, never the fault plan.  Detected claims are
  folded into a small collective exchange (the existing barrier/allreduce
  point of the loop), so every rank reaches the same recovery decision.
* **Shadow-node replicas.**  A *boundary* (peripheral) node's committed
  value is already mirrored on every neighbor rank at the start of an
  iteration -- the shadow exchange shipped exactly that value last sweep.
  Those mirrors act as authoritative replicas: when the corruption is
  caught before any sweep consumed it, the owner re-fetches the value
  point-to-point from the lowest-ranked replica holder and the run
  continues -- no rollback, no wasted work.
* **Checkpoint rollback fallback.**  Interior nodes have no replica, and a
  claim detected late (``integrity_period > 1``) has already contaminated
  downstream state; both fall back to the PR-1 checkpoint machinery,
  discarding snapshots taken since the injection so the restore point is
  guaranteed clean (:meth:`~repro.core.checkpoint.Checkpointer.
  discard_since`).

All costs are priced in virtual time through the machine model's
``digest_time`` / ``repair_time`` terms plus the ordinary message costs of
the claim exchange and the replica fetch.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..mpi.communicator import Communicator
from ..mpi.faults import FaultState, corrupt_value, state_digest
from ..mpi.timing import estimate_nbytes
from .nodestore import NodeStore

__all__ = [
    "TAG_INTEGRITY",
    "CorruptionClaim",
    "IntegrityDecision",
    "IntegrityGuard",
    "inject_memory_flips",
]

#: Message tag reserved for replica-repair fetches.
TAG_INTEGRITY = 4


def inject_memory_flips(
    store: NodeStore,
    fault_state: FaultState,
    world_rank: int,
    iteration: int,
    applied: set[tuple[int, int, int | None]],
) -> list[int]:
    """Apply this rank's scheduled memory flips for ``iteration``.

    Only the owning rank mutates anything: the flip corrupts the node's
    *committed* value in place, bypassing the commit path -- exactly what an
    undetected memory upset between supersteps would do.  Events already in
    ``applied`` are skipped (a rollback must not re-fire the same flip), and
    an event whose explicit node is not owned here (it migrated away) is a
    no-op.

    Returns:
        Global ids corrupted on this rank, in the order applied.
    """
    flipped: list[int] = []
    for event in fault_state.plan.flips_at(iteration, world_rank):
        key = (event.rank, event.iteration, event.node)
        if key in applied:
            continue
        applied.add(key)
        if event.node is not None:
            if not store.owns(event.node):
                continue
            gid = event.node
        else:
            owned = sorted([*store.internal, *store.peripheral])
            if not owned:
                continue
            gid = owned[0]
        record = store.data_records[gid]
        record.data = corrupt_value(record.data, iteration * 31 + gid)
        fault_state.count_flip(world_rank)
        flipped.append(gid)
    return flipped


@dataclass(frozen=True)
class CorruptionClaim:
    """One corrupted node, as claimed by its owner in the digest exchange.

    Attributes:
        owner: Communicator-local rank owning the corrupted node.
        gid: Global id of the corrupted node.
        flip_iteration: Iteration at whose start the owner first saw the
            digest mismatch (== the injection iteration: committed values
            cannot legitimately change between the reference digest and the
            re-check).
        holders: Communicator-local ranks holding this node as a shadow
            (its replica set); empty for interior nodes.
    """

    owner: int
    gid: int
    flip_iteration: int
    holders: tuple[int, ...]


@dataclass(frozen=True)
class IntegrityDecision:
    """The collective verdict of one claim exchange.

    Every rank derives the same decision from the same (allgathered)
    claims, so repair and rollback stay collective and deterministic.

    Attributes:
        iteration: Iteration at whose start the exchange ran.
        claims: All ranks' claims, in (owner, gid) order.
        repair: True when every claim is surgically repairable: caught the
            superstep it was injected (nothing consumed it yet), a replica
            exists, and replica repair is enabled.
        min_flip_iteration: Earliest injection among the claims -- the
            rollback path must restore a checkpoint older than this.
    """

    iteration: int
    claims: tuple[CorruptionClaim, ...]
    repair: bool
    min_flip_iteration: int


class IntegrityGuard:
    """Per-rank driver of the digest/replica protection.

    Args:
        comm: The rank's current communicator.
        store: The rank's node store.
        repair: Allow shadow-replica surgical repair (``integrity="full"``);
            otherwise every confirmed corruption rolls back.
        period: Exchange claims every this many iterations (local digest
            checks still run every iteration -- corruption must be observed
            before the sweep overwrites the evidence).
    """

    def __init__(
        self,
        comm: Communicator,
        store: NodeStore,
        repair: bool,
        period: int = 1,
    ) -> None:
        self.comm = comm
        self.store = store
        self.repair = repair
        self.period = period
        self.reference: dict[int, int] = {}
        #: gid -> iteration of the first local digest mismatch, not yet
        #: resolved by a repair or rollback.
        self.pending: dict[int, int] = {}

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #

    def rebind(self, comm: Communicator, store: NodeStore) -> None:
        """Point the guard at a new communicator/store (shrink recovery)."""
        self.comm = comm
        self.store = store
        self.pending.clear()
        self.refresh()

    def reset_after_restore(self) -> None:
        """Re-baseline after a checkpoint restore: the restored state is
        clean, so outstanding claims and stale references are dropped."""
        self.pending.clear()
        self.refresh()

    # ------------------------------------------------------------------ #
    # Digest maintenance
    # ------------------------------------------------------------------ #

    def _digest_owned(self) -> tuple[dict[int, int], float]:
        """Digest every owned committed value; returns (digests, cpu cost)."""
        digests: dict[int, int] = {}
        cost = 0.0
        machine = self.comm.machine
        for node in self.store.owned_nodes():
            value = node.data.data
            digests[node.global_id] = state_digest(value)
            cost += machine.digest_time(estimate_nbytes(value))
        return digests, cost

    def refresh(self) -> None:
        """Take the end-of-iteration reference digests (cost charged)."""
        digests, cost = self._digest_owned()
        self.reference = digests
        self.comm.work(cost)

    # ------------------------------------------------------------------ #
    # Detection + decision
    # ------------------------------------------------------------------ #

    def check(self, iteration: int) -> IntegrityDecision | None:
        """Start-of-iteration integrity check.

        Re-digests owned committed values against the reference (every
        iteration), then -- on exchange iterations -- folds the pending
        claims into a collective exchange and returns the common decision.

        Returns:
            ``None`` when there is nothing to recover from (either no
            exchange was due, or the exchange carried no claims); otherwise
            the collective :class:`IntegrityDecision`.
        """
        current, cost = self._digest_owned()
        self.comm.work(cost)
        for gid, digest in current.items():
            if gid in self.reference and digest != self.reference[gid]:
                self.pending.setdefault(gid, iteration)
        if self.period > 1 and (iteration - 1) % self.period != 0:
            return None
        claims = [
            CorruptionClaim(
                owner=self.comm.rank,
                gid=gid,
                flip_iteration=flip_iteration,
                holders=self.store.own_node(gid).shadow_for_procs
                if self.store.owns(gid)
                else (),
            )
            for gid, flip_iteration in sorted(self.pending.items())
        ]
        gathered = self.comm.allgather(claims)
        flat = tuple(c for per_rank in gathered for c in per_rank)
        if not flat:
            return None
        repair = self.repair and all(
            c.flip_iteration == iteration and c.holders for c in flat
        )
        return IntegrityDecision(
            iteration=iteration,
            claims=flat,
            repair=repair,
            min_flip_iteration=min(c.flip_iteration for c in flat),
        )

    # ------------------------------------------------------------------ #
    # Surgical repair
    # ------------------------------------------------------------------ #

    def repair_from_replicas(
        self, decision: IntegrityDecision, fault_state: FaultState | None
    ) -> int:
        """Re-fetch every claimed node from its lowest-ranked replica.

        Collective: replica holders send, owners receive and splice, and a
        trailing barrier re-aligns the clocks.  The shadow value a holder
        ships is the owner's own committed value as of the last shadow
        exchange -- which, because repair only runs at latency 0, is exactly
        the pre-flip value.

        Returns:
            Nodes repaired *on this rank* (as owner).
        """
        comm = self.comm
        machine = comm.machine
        repaired = 0
        for claim in decision.claims:
            replica = min(claim.holders)
            if comm.rank == replica:
                value = self.store.data_records[claim.gid].data
                comm.isend((claim.gid, value), claim.owner, tag=TAG_INTEGRITY)
            if comm.rank == claim.owner:
                gid, value = comm.recv(source=replica, tag=TAG_INTEGRITY)
                record = self.store.data_records[gid]
                record.data = value
                comm.work(machine.repair_time(estimate_nbytes(value)))
                self.reference[gid] = state_digest(value)
                self.pending.pop(gid, None)
                if fault_state is not None:
                    fault_state.count_repair(comm.rank)
                repaired += 1
        comm.barrier()
        return repaired
