"""The iC2mpi platform driver.

:class:`ICPlatform` wires the three phases together exactly as Figure 6's
flow of control prescribes:

1. **Initialization** -- a static partitioner (plug-in) provides the
   node-to-processor mapping; every rank builds its node lists, data node
   list and hash table (:class:`~repro.core.nodestore.NodeStore`).
2. **Computation & communication** -- ``iterations`` sweeps of
   compute-over-nodes plus the shadow exchange (basic Figure-8 or
   overlapped Figure-8a pipeline; the battlefield app runs the sequence
   ``comm_rounds`` times per step).
3. **Load balancing & task migration** -- when dynamic load balancing is
   enabled, every ``lb_period`` iterations rank 0 assembles the run-time
   processor graph, the balancer plug-in nominates busy-idle pairs, and
   tasks migrate.

The whole thing executes on the virtual-time simulated cluster, so
``result.elapsed`` is directly comparable (in *shape*) with the wall-clock
seconds of the paper's tables.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

from ..graphs.graph import Graph
from ..mpi.communicator import Communicator
from ..mpi.faults import FaultPlan, FaultReport
from ..mpi.runtime import SimCluster
from ..mpi.timing import ORIGIN2000, MachineModel
from ..partitioning.base import Partition
from .buffers import CommBuffers
from .checkpoint import Checkpointer
from .compute import ComputeContext, NodeFn, sweep_basic, sweep_overlapped
from .config import PlatformConfig
from .loadbalance import CentralizedHeuristicBalancer, LoadBalancer
from .migration import MigrationEvent, load_balance_phase
from .nodestore import NodeStore
from .phases import PhaseTimes
from .repartition import repartition_phase
from .trace import ExecutionTrace, IterationRecord

__all__ = ["ICPlatform", "PlatformResult", "RankOutcome", "run_platform"]

InitValueFn = Callable[[int], Any]


@dataclass
class RankOutcome:
    """What one rank reports back after the run."""

    rank: int
    elapsed: float
    phases: PhaseTimes
    values: dict[int, Any]
    owned: list[int]
    migrations: list[MigrationEvent]
    repartitions: int = 0
    trace_records: list[IterationRecord] = field(default_factory=list)
    recoveries: int = 0
    checkpoints: int = 0


@dataclass
class PlatformResult:
    """Aggregated outcome of a platform run.

    Attributes:
        elapsed: Virtual makespan (all ranks synchronize on a final
            barrier, so every rank reports the same figure) -- the number
            the paper's tables print.
        nprocs: Processors used.
        iterations: Sweeps executed.
        phases: Per-rank phase breakdowns (Figures 21/22 plot their mean
            over ranks 2..16).
        values: Final committed value of every node, merged across ranks.
        final_assignment: Node-to-processor map after any migrations.
        migrations: Every executed migration, in order.
        repartitions: Full from-scratch repartitions executed (repartition
            rebalance mode only).
        recoveries: Checkpoint rollbacks performed after injected crashes
            (coordinated, so every rank rolls back together; this counts
            recovery *events*, not rank-rollbacks).
        checkpoints: Checkpoints each rank took (baseline + periodic).
        fault_report: Tally of injected fault activity when the run used a
            :class:`~repro.mpi.faults.FaultPlan`, else ``None``.
    """

    elapsed: float
    nprocs: int
    iterations: int
    phases: list[PhaseTimes]
    values: dict[int, Any]
    final_assignment: tuple[int, ...]
    migrations: list[MigrationEvent]
    repartitions: int = 0
    trace: ExecutionTrace = field(default_factory=ExecutionTrace)
    recoveries: int = 0
    checkpoints: int = 0
    fault_report: FaultReport | None = None

    @property
    def mean_phases(self) -> PhaseTimes:
        """Average phase breakdown across ranks."""
        return PhaseTimes.mean(self.phases)


class ICPlatform:
    """The platform: plug in a graph, a node function, and go.

    Args:
        graph: The application program graph.
        node_fn: The application node function (or a sequence of them, one
            per communication round -- the battlefield customization).
        init_value: ``gid -> initial value`` (default: the gid itself, as
            the appendix initializes ``data = globalID``).
        config: Run-time switches (:class:`PlatformConfig`).
        balancer: Dynamic load balancer plug-in; defaults to the thesis's
            centralized heuristic at the configured threshold.
        repartitioner: Static partitioner used by the ``"repartition"``
            rebalance mode; defaults to the Metis-like multilevel plug-in.
    """

    def __init__(
        self,
        graph: Graph,
        node_fn: NodeFn | Sequence[NodeFn],
        init_value: InitValueFn | None = None,
        config: PlatformConfig | None = None,
        balancer: LoadBalancer | None = None,
        repartitioner: Any = None,
    ) -> None:
        self.graph = graph
        self.config = config or PlatformConfig()
        if callable(node_fn):
            self.node_fns: tuple[NodeFn, ...] = (node_fn,) * self.config.comm_rounds
        else:
            fns = tuple(node_fn)
            if len(fns) != self.config.comm_rounds:
                raise ValueError(
                    f"{len(fns)} node functions for comm_rounds={self.config.comm_rounds}"
                )
            self.node_fns = fns
        self.init_value: InitValueFn = init_value or (lambda gid: gid)
        self.balancer = balancer or CentralizedHeuristicBalancer(self.config.lb_threshold)
        if repartitioner is None and self.config.rebalance_mode == "repartition":
            from ..partitioning.multilevel.kway import MetisLikePartitioner

            repartitioner = MetisLikePartitioner(seed=0, trials=1)
        self.repartitioner = repartitioner

    # ------------------------------------------------------------------ #

    def run(
        self,
        partition: Partition,
        machine: MachineModel = ORIGIN2000,
        deadlock_timeout: float = 30.0,
        faults: FaultPlan | None = None,
        sched_jitter: Callable[[], None] | None = None,
    ) -> PlatformResult:
        """Execute the configured number of iterations on the partition.

        Args:
            partition: Static node-to-processor mapping to start from.
            machine: Virtual-time machine model.
            deadlock_timeout: Real-seconds watchdog for the simulated
                cluster.
            faults: Optional deterministic fault-injection plan (message
                delays/drops, slow ranks, crashes).  Crash events require
                the platform to recover via checkpoint/restart; a baseline
                checkpoint is always taken when crashes are scheduled.
            sched_jitter: Test hook forwarded to :class:`SimCluster` --
                called at thread scheduling points to perturb the *host*
                schedule without affecting virtual-time results.
        """
        if partition.graph is not self.graph and partition.graph != self.graph:
            raise ValueError("partition was computed for a different graph")
        nprocs = partition.nparts
        cluster = SimCluster(
            nprocs,
            machine=machine,
            deadlock_timeout=deadlock_timeout,
            faults=faults,
            sched_jitter=sched_jitter,
        )
        outcomes: list[RankOutcome] = cluster.run(self._rank_main, partition)

        values: dict[int, Any] = {}
        for outcome in outcomes:
            values.update(outcome.values)
        final_assignment = [0] * self.graph.num_nodes
        for outcome in outcomes:
            for gid in outcome.owned:
                final_assignment[gid - 1] = outcome.rank
        return PlatformResult(
            elapsed=max(o.elapsed for o in outcomes),
            nprocs=nprocs,
            iterations=self.config.iterations,
            phases=[o.phases for o in outcomes],
            values=values,
            final_assignment=tuple(final_assignment),
            migrations=list(outcomes[0].migrations),
            repartitions=outcomes[0].repartitions,
            trace=ExecutionTrace(
                record for outcome in outcomes for record in outcome.trace_records
            ),
            recoveries=outcomes[0].recoveries,
            checkpoints=sum(o.checkpoints for o in outcomes),
            fault_report=(
                cluster.fault_state.report() if cluster.fault_state is not None else None
            ),
        )

    # ------------------------------------------------------------------ #

    def _rank_main(self, comm: Communicator, partition: Partition) -> RankOutcome:
        config = self.config
        phases = PhaseTimes()
        sweep = sweep_overlapped if config.overlap_communication else sweep_basic

        # ---- Initialization phase -------------------------------------
        t0 = comm.Wtime()
        assignment = list(partition.assignment)  # this rank's output_arr copy
        ctx = ComputeContext(comm, config.costs, self.graph.num_nodes)
        store = NodeStore(
            comm.rank,
            self.graph,
            assignment,
            self.init_value,
            hash_table_length=config.hash_table_length,
        )
        num_shadows = len(store.shadow_gids())
        comm.work(
            config.costs.init_node_cost * store.num_owned()
            + config.costs.init_shadow_cost * num_shadows
        )
        comm.barrier()
        phases.initialization = comm.Wtime() - t0

        # ---- Iterate ---------------------------------------------------
        buffers = CommBuffers(comm.size)
        migrations: list[MigrationEvent] = []
        repartitions = 0
        window_exec_time = 0.0

        trace_records: list[IterationRecord] = []

        # Checkpoint/restart machinery (fault-injection support).  Crash
        # events are declared in the fault plan, so every rank sees the same
        # ones at the same iteration: detection, rollback, and re-execution
        # stay collective and deterministic.
        fault_state = comm.faults
        plan = fault_state.plan if fault_state is not None else None
        has_crashes = plan is not None and bool(plan.crashes)
        checkpointer = Checkpointer(config.checkpoint_period)
        recoveries = 0
        attempt = 0
        handled_crashes: set[tuple[int, int]] = set()

        def loop_extras() -> dict[str, Any]:
            # Rollback-sensitive loop state that lives outside the store.
            return {
                "window_exec_time": window_exec_time,
                "migrations": list(migrations),
                "repartitions": repartitions,
                "node_compute": dict(ctx.node_compute),
            }

        if has_crashes or checkpointer.period:
            # Post-initialization baseline: guarantees a recovery point even
            # before the first periodic checkpoint is due.
            t_ck = comm.Wtime()
            checkpointer.take(0, store, **loop_extras())
            comm.work(config.costs.checkpoint_item_cost * len(store.data_records))
            phases.recovery += comm.Wtime() - t_ck

        iteration = 1
        while iteration <= config.iterations:
            if has_crashes:
                crashes = [
                    c
                    for c in plan.crashes_at(iteration)
                    if (c.rank, c.iteration) not in handled_crashes
                ]
                if crashes:
                    t_rec = comm.Wtime()
                    crashed_here = False
                    for c in crashes:
                        handled_crashes.add((c.rank, c.iteration))
                        if c.rank == comm.rank:
                            crashed_here = True
                            if fault_state is not None:
                                fault_state.count_crash(comm.rank)
                    # Every rank pays the failure-detection latency; the
                    # crashed rank additionally pays to respawn.
                    comm.work(config.costs.crash_detect_cost)
                    if crashed_here:
                        comm.work(config.costs.restart_fixed_cost)
                    saved_iteration, extras = checkpointer.restore(store)
                    comm.work(
                        config.costs.restore_item_cost * len(store.data_records)
                    )
                    window_exec_time = extras["window_exec_time"]
                    migrations[:] = extras["migrations"]
                    repartitions = extras["repartitions"]
                    ctx.node_compute = dict(extras["node_compute"])
                    comm.barrier()
                    phases.recovery += comm.Wtime() - t_rec
                    recoveries += 1
                    attempt += 1
                    iteration = saved_iteration + 1
                    continue
            ctx.iteration = iteration
            iter_clock_start = comm.Wtime()
            iter_compute0 = ctx.compute_time
            iter_comm_oh0 = ctx.comm_overhead_time
            migrations_before = len(migrations)
            for round_idx, node_fn in enumerate(self.node_fns):
                ctx.round = round_idx
                t_sweep = comm.Wtime()
                compute0 = ctx.compute_time
                overhead0 = ctx.comm_overhead_time
                book0 = ctx.bookkeeping_time
                sweep(comm, store, node_fn, ctx, buffers)
                t_end = comm.Wtime()
                d_compute = ctx.compute_time - compute0
                d_comm_oh = ctx.comm_overhead_time - overhead0
                d_book = ctx.bookkeeping_time - book0
                phases.compute += d_compute
                phases.communication_overhead += d_comm_oh
                phases.computation_overhead += d_book
                # Whatever wall time the counters do not explain is message
                # injection/drain cost and waiting on peers: "communicate".
                remainder = (t_end - t_sweep) - d_compute - d_comm_oh - d_book
                phases.communicate += max(0.0, remainder)
                # The thesis times *ComputeOverNodes only* as the processor
                # weight for the load balancer -- waiting inside the
                # communication step must not equalize the measurements.
                window_exec_time += d_compute + d_book

            if config.validate_each_iteration:
                store.check_invariants()

            if config.dynamic_load_balancing and iteration % config.lb_period == 0:
                t_lb = comm.Wtime()
                if config.rebalance_mode == "repartition":
                    store, changed = repartition_phase(
                        comm, store, self.repartitioner, ctx
                    )
                    repartitions += int(changed)
                else:
                    events = load_balance_phase(
                        comm,
                        store,
                        self.balancer,
                        window_exec_time,
                        ctx,
                        iteration,
                        max_migrations_per_pair=config.max_migrations_per_pair,
                    )
                    migrations.extend(events)
                window_exec_time = 0.0  # the thesis resets the window
                ctx.reset_node_loads()
                comm.barrier()
                phases.load_balancing += comm.Wtime() - t_lb
                if config.validate_each_iteration:
                    store.check_invariants()

            if config.track_trace:
                own_moves = sum(
                    1
                    for event in migrations[migrations_before:]
                    if comm.rank in (event.from_proc, event.to_proc)
                )
                trace_records.append(
                    IterationRecord(
                        rank=comm.rank,
                        iteration=iteration,
                        start=iter_clock_start,
                        end=comm.Wtime(),
                        compute=ctx.compute_time - iter_compute0,
                        comm_overhead=ctx.comm_overhead_time - iter_comm_oh0,
                        migrations=own_moves,
                        attempt=attempt,
                    )
                )

            if checkpointer.due(iteration):
                t_ck = comm.Wtime()
                checkpointer.take(iteration, store, **loop_extras())
                comm.work(
                    config.costs.checkpoint_item_cost * len(store.data_records)
                )
                phases.recovery += comm.Wtime() - t_ck

            iteration += 1

        comm.barrier()
        elapsed = comm.Wtime()
        return RankOutcome(
            rank=comm.rank,
            elapsed=elapsed,
            phases=phases,
            values={
                node.global_id: node.data.data for node in store.owned_nodes()
            },
            owned=[node.global_id for node in store.owned_nodes()],
            migrations=migrations,
            repartitions=repartitions,
            trace_records=trace_records,
            recoveries=recoveries,
            checkpoints=checkpointer.taken,
        )

def run_platform(
    graph: Graph,
    node_fn: NodeFn | Sequence[NodeFn],
    partition: Partition,
    config: PlatformConfig | None = None,
    machine: MachineModel = ORIGIN2000,
    init_value: InitValueFn | None = None,
    balancer: LoadBalancer | None = None,
    faults: FaultPlan | None = None,
    sched_jitter: Callable[[], None] | None = None,
) -> PlatformResult:
    """One-shot convenience wrapper around :class:`ICPlatform`."""
    platform = ICPlatform(
        graph, node_fn, init_value=init_value, config=config, balancer=balancer
    )
    return platform.run(
        partition, machine=machine, faults=faults, sched_jitter=sched_jitter
    )
