"""The iC2mpi platform driver.

:class:`ICPlatform` wires the three phases together exactly as Figure 6's
flow of control prescribes:

1. **Initialization** -- a static partitioner (plug-in) provides the
   node-to-processor mapping; every rank builds its node lists, data node
   list and hash table (:class:`~repro.core.nodestore.NodeStore`).
2. **Computation & communication** -- ``iterations`` sweeps of
   compute-over-nodes plus the shadow exchange (basic Figure-8 or
   overlapped Figure-8a pipeline; the battlefield app runs the sequence
   ``comm_rounds`` times per step).
3. **Load balancing & task migration** -- when dynamic load balancing is
   enabled, every ``lb_period`` iterations rank 0 assembles the run-time
   processor graph, the balancer plug-in nominates busy-idle pairs, and
   tasks migrate.

The whole thing executes on the virtual-time simulated cluster, so
``result.elapsed`` is directly comparable (in *shape*) with the wall-clock
seconds of the paper's tables.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

from ..graphs.graph import Graph
from ..mpi.communicator import Communicator
from ..mpi.failure import FailureDetector
from ..mpi.faults import FaultPlan, FaultReport
from ..mpi.runtime import SimCluster
from ..mpi.timing import ORIGIN2000, MachineModel
from ..partitioning.base import Partition
from .buffers import CommBuffers
from .checkpoint import Checkpointer
from .compute import (
    ComputeContext,
    DeltaState,
    HybridState,
    NodeFn,
    supports_bulk,
    sweep_basic,
    sweep_basic_bulk,
    sweep_basic_delta,
    sweep_basic_delta_bulk,
    sweep_hybrid,
    sweep_hybrid_bulk,
    sweep_overlapped,
    sweep_overlapped_bulk,
    sweep_overlapped_delta,
    sweep_overlapped_delta_bulk,
)
from .config import PlatformConfig
from .integrity import IntegrityGuard, inject_memory_flips
from .loadbalance import CentralizedHeuristicBalancer, LoadBalancer
from .migration import MigrationEvent, load_balance_phase
from .nodestore import NodeStore
from .phases import PhaseTimes
from .recovery import send_dying_checkpoint, shrink_reconfigure
from .repartition import repartition_phase
from .soastore import SoAStore
from .trace import (
    ExecutionTrace,
    IntegrityRecord,
    IterationRecord,
    QuiescenceRecord,
    ReconfigurationRecord,
)

__all__ = ["ICPlatform", "PlatformResult", "RankOutcome", "run_platform"]

InitValueFn = Callable[[int], Any]


@dataclass
class RankOutcome:
    """What one rank reports back after the run.

    ``rank`` is always the *world* rank (shrinking recovery re-ranks the
    communicator, but outcomes stay addressed by the original identity).
    A rank killed by a crash fault under the shrink policy reports
    ``dead=True`` with empty values/ownership; its trace records past its
    last checkpoint are pruned (survivors re-executed those iterations
    without it).
    """

    rank: int
    elapsed: float
    phases: PhaseTimes
    values: dict[int, Any]
    owned: list[int]
    migrations: list[MigrationEvent]
    versions: dict[int, int] = field(default_factory=dict)
    repartitions: int = 0
    trace_records: list[IterationRecord] = field(default_factory=list)
    recoveries: int = 0
    checkpoints: int = 0
    dead: bool = False
    reconfigurations: list[ReconfigurationRecord] = field(default_factory=list)
    integrity_records: list[IntegrityRecord] = field(default_factory=list)
    repairs: int = 0
    quiescence_records: list[QuiescenceRecord] = field(default_factory=list)
    iterations_executed: int = 0
    inner_sweeps: int = 0
    sparse_geom_hits: int = 0
    sparse_geom_misses: int = 0


@dataclass
class PlatformResult:
    """Aggregated outcome of a platform run.

    Attributes:
        elapsed: Virtual makespan (all ranks synchronize on a final
            barrier, so every rank reports the same figure) -- the number
            the paper's tables print.
        nprocs: Processors used.
        iterations: Sweeps executed.
        phases: Per-rank phase breakdowns (Figures 21/22 plot their mean
            over ranks 2..16).
        values: Final committed value of every node, merged across ranks.
        versions: Final owner-side version counter of every node (how many
            times its committed value changed), merged across ranks -- a
            conformance signal the differential store oracle pins.
        final_assignment: Node-to-processor map after any migrations.
        migrations: Every executed migration, in order.
        repartitions: Full from-scratch repartitions executed (repartition
            rebalance mode only).
        recoveries: Recovery events performed after injected crashes
            (rollbacks or shrinks; collective, so this counts *events*, not
            per-rank actions).
        checkpoints: Checkpoints each rank took (baseline + periodic).
        dead_ranks: World ranks lost to crash faults under the shrink
            policy (empty under rollback -- the dead are resurrected).
        repairs: Corrupted nodes healed surgically from shadow replicas
            (``integrity="full"`` only); corruption events that instead
            rolled back count under ``recoveries``.
        quiesced_at: Iteration at which quiescence termination fired (no
            node's value changed globally), or ``None`` when the run went
            the configured distance; when set, ``iterations`` reports the
            sweeps actually executed rather than the configured count.
        messages_delivered: Point-to-point messages the simulated cluster
            delivered over the whole run (shadow exchange, collectives,
            migration, recovery) -- the figure the delta exchange shrinks.
        barriers: Global barrier releases the simulated cluster executed
            over the whole run -- the figure hybrid execution shrinks (its
            interior sweeps are barrier-free).
        inner_sweeps: Interior sweeps executed across all ranks under
            ``execution="hybrid"`` (0 under BSP) -- the asynchronous work
            that replaced full supersteps.
        sparse_geom_hits: Anonymous sparse BulkView geometry-LRU hits
            summed over ranks (SoA store only).
        sparse_geom_misses: Geometry-LRU misses (CSR gathers actually
            built) summed over ranks.
        fault_report: Tally of injected fault activity when the run used a
            :class:`~repro.mpi.faults.FaultPlan`, else ``None``.
    """

    elapsed: float
    nprocs: int
    iterations: int
    phases: list[PhaseTimes]
    values: dict[int, Any]
    final_assignment: tuple[int, ...]
    migrations: list[MigrationEvent]
    versions: dict[int, int] = field(default_factory=dict)
    repartitions: int = 0
    trace: ExecutionTrace = field(default_factory=ExecutionTrace)
    recoveries: int = 0
    checkpoints: int = 0
    dead_ranks: tuple[int, ...] = ()
    repairs: int = 0
    quiesced_at: int | None = None
    messages_delivered: int = 0
    barriers: int = 0
    inner_sweeps: int = 0
    sparse_geom_hits: int = 0
    sparse_geom_misses: int = 0
    fault_report: FaultReport | None = None

    @property
    def mean_phases(self) -> PhaseTimes:
        """Average phase breakdown across ranks."""
        return PhaseTimes.mean(self.phases)


class ICPlatform:
    """The platform: plug in a graph, a node function, and go.

    Args:
        graph: The application program graph.
        node_fn: The application node function (or a sequence of them, one
            per communication round -- the battlefield customization).
        init_value: ``gid -> initial value`` (default: the gid itself, as
            the appendix initializes ``data = globalID``).
        config: Run-time switches (:class:`PlatformConfig`).
        balancer: Dynamic load balancer plug-in; defaults to the thesis's
            centralized heuristic at the configured threshold.
        repartitioner: Static partitioner used by the ``"repartition"``
            rebalance mode; defaults to the Metis-like multilevel plug-in.
    """

    def __init__(
        self,
        graph: Graph,
        node_fn: NodeFn | Sequence[NodeFn],
        init_value: InitValueFn | None = None,
        config: PlatformConfig | None = None,
        balancer: LoadBalancer | None = None,
        repartitioner: Any = None,
    ) -> None:
        self.graph = graph
        self.config = config or PlatformConfig()
        if callable(node_fn):
            self.node_fns: tuple[NodeFn, ...] = (node_fn,) * self.config.comm_rounds
        else:
            fns = tuple(node_fn)
            if len(fns) != self.config.comm_rounds:
                raise ValueError(
                    f"{len(fns)} node functions for comm_rounds={self.config.comm_rounds}"
                )
            self.node_fns = fns
        self.init_value: InitValueFn = init_value or (lambda gid: gid)
        self.balancer = balancer or CentralizedHeuristicBalancer(self.config.lb_threshold)
        if repartitioner is None and self.config.rebalance_mode == "repartition":
            from ..partitioning.multilevel.kway import MetisLikePartitioner

            repartitioner = MetisLikePartitioner(seed=0, trials=1)
        self.repartitioner = repartitioner

    # ------------------------------------------------------------------ #

    def run(
        self,
        partition: Partition,
        machine: MachineModel = ORIGIN2000,
        deadlock_timeout: float = 30.0,
        faults: FaultPlan | None = None,
        sched_jitter: Callable[[], None] | None = None,
        scheduler: str | None = None,
    ) -> PlatformResult:
        """Execute the configured number of iterations on the partition.

        Args:
            partition: Static node-to-processor mapping to start from.
            machine: Virtual-time machine model.
            deadlock_timeout: Real-seconds watchdog for the simulated
                cluster.
            faults: Optional deterministic fault-injection plan (message
                delays/drops, slow ranks, crashes).  Crash events require
                the platform to recover via checkpoint/restart; a baseline
                checkpoint is always taken when crashes are scheduled.
            sched_jitter: Test hook forwarded to :class:`SimCluster` --
                called at thread scheduling points to perturb the *host*
                schedule without affecting virtual-time results.
            scheduler: Execution backend for the simulated cluster
                (``"event"``, ``"threads"``, or ``"process"``); ``None``
                lets the cluster pick (event unless jitter fuzzing is
                armed).  Virtual-time results are identical on every
                backend; ``"process"`` additionally runs each rank as a
                real OS process over shared-memory SoA stores and
                requires ``config.store == "soa"``.
        """
        if partition.graph is not self.graph and partition.graph != self.graph:
            raise ValueError("partition was computed for a different graph")
        self.config.validate_for_scheduler(scheduler)
        nprocs = partition.nparts
        cluster = SimCluster(
            nprocs,
            machine=machine,
            deadlock_timeout=deadlock_timeout,
            faults=faults,
            sched_jitter=sched_jitter,
            checksums=self.config.integrity in ("checksum", "full"),
            scheduler=scheduler,
        )
        outcomes: list[RankOutcome] = cluster.run(self._rank_main, partition)

        values: dict[int, Any] = {}
        versions: dict[int, int] = {}
        for outcome in outcomes:
            values.update(outcome.values)
            versions.update(outcome.versions)
        final_assignment = [0] * self.graph.num_nodes
        for outcome in outcomes:
            for gid in outcome.owned:
                final_assignment[gid - 1] = outcome.rank
        # Migration/repartition/recovery logs are recorded collectively, so
        # any *surviving* rank's copy is authoritative (rank 0 itself may be
        # the one the fault plan killed).
        reporter = next(o for o in outcomes if not o.dead)
        quiesced_at = (
            reporter.quiescence_records[0].iteration
            if reporter.quiescence_records
            else None
        )
        return PlatformResult(
            elapsed=max(o.elapsed for o in outcomes),
            nprocs=nprocs,
            iterations=reporter.iterations_executed,
            phases=[o.phases for o in outcomes],
            values=values,
            versions=versions,
            final_assignment=tuple(final_assignment),
            migrations=list(reporter.migrations),
            repartitions=reporter.repartitions,
            trace=ExecutionTrace(
                (record for outcome in outcomes for record in outcome.trace_records),
                (
                    record
                    for outcome in outcomes
                    for record in outcome.reconfigurations
                ),
                (
                    record
                    for outcome in outcomes
                    for record in outcome.integrity_records
                ),
                (
                    record
                    for outcome in outcomes
                    for record in outcome.quiescence_records
                ),
            ),
            recoveries=reporter.recoveries,
            repairs=reporter.repairs,
            checkpoints=sum(o.checkpoints for o in outcomes),
            dead_ranks=tuple(sorted(o.rank for o in outcomes if o.dead)),
            quiesced_at=quiesced_at,
            messages_delivered=cluster.messages_delivered,
            barriers=cluster.barriers,
            inner_sweeps=sum(o.inner_sweeps for o in outcomes),
            sparse_geom_hits=sum(o.sparse_geom_hits for o in outcomes),
            sparse_geom_misses=sum(o.sparse_geom_misses for o in outcomes),
            fault_report=(
                cluster.fault_state.report() if cluster.fault_state is not None else None
            ),
        )

    # ------------------------------------------------------------------ #

    def _rank_main(self, comm: Communicator, partition: Partition) -> RankOutcome:
        config = self.config
        phases = PhaseTimes()
        # Hybrid execution supersedes the activation switch: its frontiers
        # are inherently change-driven, so a DeltaState would be redundant.
        hybrid = (
            HybridState(len(self.node_fns), config.hybrid_inner_cap)
            if config.execution == "hybrid"
            else None
        )
        # Change-driven mode threads a DeltaState through the sweeps; the
        # dense pipelines keep the thesis's exact behaviour.
        delta = (
            DeltaState(len(self.node_fns))
            if hybrid is None and config.activation == "sparse"
            else None
        )
        # The struct-of-arrays store takes the vectorized pipelines whenever
        # every node function ships a bulk kernel; functions without one
        # (imbalance schedules, battlefield) run the scalar sweeps, which
        # are equally conformant on either store.
        store_cls = SoAStore if config.store == "soa" else NodeStore
        bulk = config.store == "soa" and supports_bulk(self.node_fns)
        if hybrid is not None:
            hybrid_sweep = sweep_hybrid_bulk if bulk else sweep_hybrid
            sweep = lambda c, s, fn, cx, buf: hybrid_sweep(c, s, fn, cx, buf, hybrid)  # noqa: E731
        elif delta is not None:
            if config.overlap_communication:
                delta_sweep = (
                    sweep_overlapped_delta_bulk if bulk else sweep_overlapped_delta
                )
            else:
                delta_sweep = sweep_basic_delta_bulk if bulk else sweep_basic_delta
            sweep = lambda c, s, fn, cx, buf: delta_sweep(c, s, fn, cx, buf, delta)  # noqa: E731
        elif config.overlap_communication:
            sweep = sweep_overlapped_bulk if bulk else sweep_overlapped
        else:
            sweep = sweep_basic_bulk if bulk else sweep_basic
        quiescing = config.converge == "quiescence"
        # Stable identity: shrink recovery re-ranks the communicator, but
        # outcomes and trace records stay addressed by the original rank.
        world_rank = comm.rank

        # ---- Initialization phase -------------------------------------
        t0 = comm.Wtime()
        assignment = list(partition.assignment)  # this rank's output_arr copy
        ctx = ComputeContext(comm, config.costs, self.graph.num_nodes)
        store = store_cls(
            comm.rank,
            self.graph,
            assignment,
            self.init_value,
            hash_table_length=config.hash_table_length,
        )
        # Process-backend workers back the SoA arrays with a named
        # shared-memory segment (no-op on the in-thread backends).
        allocator = comm._cluster.shared_store_allocator()
        if allocator is not None:
            store.use_shared_arrays(allocator)
        num_shadows = len(store.shadow_gids())
        comm.work(
            config.costs.init_node_cost * store.num_owned()
            + config.costs.init_shadow_cost * num_shadows
        )
        comm.barrier()
        phases.initialization = comm.Wtime() - t0

        # ---- Iterate ---------------------------------------------------
        buffers = CommBuffers(comm.size)
        migrations: list[MigrationEvent] = []
        repartitions = 0
        window_exec_time = 0.0

        trace_records: list[IterationRecord] = []

        # Checkpoint/restart machinery (fault-injection support).  Crash
        # events are declared in the fault plan, so every rank sees the same
        # ones at the same iteration: detection, rollback, and re-execution
        # stay collective and deterministic.
        fault_state = comm.faults
        plan = fault_state.plan if fault_state is not None else None
        has_crashes = plan is not None and bool(plan.crashes)
        checkpointer = Checkpointer(config.checkpoint_period, keep=config.checkpoint_keep)
        recoveries = 0
        attempt = 0
        handled_crashes: set[tuple[int, int]] = set()
        shrinking = has_crashes and config.recovery_policy == "shrink"
        detector = (
            FailureDetector(plan, comm.machine, comm.size) if shrinking else None
        )
        reconfigurations: list[ReconfigurationRecord] = []

        # Silent-corruption machinery.  Memory flips fire whenever the plan
        # schedules them; whether anything *notices* depends on the
        # configured integrity level (see PlatformConfig.integrity).
        has_flips = plan is not None and bool(plan.flips)
        digesting = config.integrity in ("digest", "full")
        guard = (
            IntegrityGuard(
                comm,
                store,
                repair=config.integrity == "full",
                period=config.integrity_period,
            )
            if digesting
            else None
        )
        applied_flips: set[tuple[int, int, int | None]] = set()
        integrity_records: list[IntegrityRecord] = []
        repairs = 0
        quiescence_records: list[QuiescenceRecord] = []

        def loop_extras() -> dict[str, Any]:
            # Rollback-sensitive loop state that lives outside the store.
            return {
                "window_exec_time": window_exec_time,
                "migrations": list(migrations),
                "repartitions": repartitions,
                "node_compute": dict(ctx.node_compute),
                "delta": delta.capture() if delta is not None else None,
                "hybrid": hybrid.capture() if hybrid is not None else None,
            }

        def restore_delta(extras: dict[str, Any]) -> None:
            # Reinstate the change frontier a checkpoint captured -- a
            # rollback must not resume with an empty frontier (nodes whose
            # pending changes were rolled back would never recompute).
            if delta is not None:
                saved = extras.get("delta")
                if saved is not None:
                    delta.restore(saved)
                else:
                    delta.reset_dense()
            if hybrid is not None:
                saved = extras.get("hybrid")
                if saved is not None:
                    hybrid.restore(saved)
                else:
                    hybrid.reset_dense()

        if has_crashes or (digesting and has_flips) or checkpointer.period:
            # Post-initialization baseline: guarantees a recovery point even
            # before the first periodic checkpoint is due.  Digest-detected
            # corruption may need it too: rollback is the fallback whenever
            # surgical repair is impossible.
            t_ck = comm.Wtime()
            checkpointer.take(0, store, **loop_extras())
            comm.work(config.costs.checkpoint_item_cost * len(store.data_records))
            phases.recovery += comm.Wtime() - t_ck

        if guard is not None:
            t_ig = comm.Wtime()
            guard.refresh()
            phases.recovery += comm.Wtime() - t_ig

        iteration = 1
        while iteration <= config.iterations:
            if shrinking:
                detected = detector.poll(iteration)
                dead_locals = (
                    sorted(
                        local
                        for local in (
                            comm.local_rank_of(e.rank) for e in detected.events
                        )
                        if local is not None
                    )
                    if detected is not None
                    else []
                )
                if dead_locals:
                    dead_worlds = tuple(comm.world_rank_of(d) for d in dead_locals)
                    if comm.rank in dead_locals:
                        # This rank dies: hand the last checkpoint to the
                        # survivors' coordinator and leave the computation.
                        # Trace records past the checkpoint describe work
                        # the survivors will redo without this rank, so
                        # they are pruned rather than left to shadow the
                        # re-executed iterations.
                        if fault_state is not None:
                            fault_state.count_crash(world_rank)
                        send_dying_checkpoint(comm, checkpointer, dead_locals)
                        last_saved = checkpointer.last.iteration
                        return RankOutcome(
                            rank=world_rank,
                            elapsed=comm.Wtime(),
                            phases=phases,
                            values={},
                            owned=[],
                            migrations=migrations,
                            repartitions=repartitions,
                            trace_records=[
                                r
                                for r in trace_records
                                if r.iteration <= last_saved
                            ],
                            recoveries=recoveries,
                            checkpoints=checkpointer.taken,
                            dead=True,
                            reconfigurations=reconfigurations,
                            integrity_records=integrity_records,
                            repairs=repairs,
                            inner_sweeps=(
                                hybrid.inner_sweeps if hybrid is not None else 0
                            ),
                            sparse_geom_hits=getattr(store, "sparse_geom_hits", 0),
                            sparse_geom_misses=getattr(
                                store, "sparse_geom_misses", 0
                            ),
                        )
                    t_rec = comm.Wtime()
                    comm.work(detected.detection_cost)
                    shrunk = shrink_reconfigure(
                        comm, store, ctx, checkpointer, dead_locals
                    )
                    store = shrunk.store
                    comm = shrunk.comm
                    ctx.comm = comm
                    buffers = CommBuffers(comm.size)
                    extras = shrunk.extras
                    window_exec_time = extras["window_exec_time"]
                    migrations[:] = extras["migrations"]
                    repartitions = extras["repartitions"]
                    ctx.node_compute = dict(extras["node_compute"])
                    if delta is not None:
                        # The survivor stores were rebuilt from bare values
                        # (fresh version counters), so any saved frontier is
                        # meaningless: fall back to dense sweeps.
                        delta.reset_dense()
                    if hybrid is not None:
                        # Same argument -- and the interior/boundary split was
                        # recomputed by the rebuild, so dense phases re-derive
                        # the frontiers from the new classification.
                        hybrid.reset_dense()
                    if guard is not None:
                        guard.rebind(comm, store)
                    recovery_elapsed = comm.Wtime() - t_rec
                    phases.recovery += recovery_elapsed
                    reconfigurations.append(
                        ReconfigurationRecord(
                            rank=world_rank,
                            iteration=iteration,
                            policy="shrink",
                            dead_ranks=dead_worlds,
                            survivors=shrunk.survivors,
                            nodes_redistributed=shrunk.nodes_redistributed,
                            detection_cost=detected.detection_cost,
                            reconfiguration_cost=recovery_elapsed
                            - detected.detection_cost,
                            resumed_iteration=shrunk.saved_iteration + 1,
                        )
                    )
                    recoveries += 1
                    attempt += 1
                    iteration = shrunk.saved_iteration + 1
                    continue
            elif has_crashes:
                crashes = [
                    c
                    for c in plan.crashes_at(iteration)
                    if (c.rank, c.iteration) not in handled_crashes
                ]
                if crashes:
                    t_rec = comm.Wtime()
                    crashed_here = False
                    for c in crashes:
                        handled_crashes.add((c.rank, c.iteration))
                        if c.rank == comm.rank:
                            crashed_here = True
                            if fault_state is not None:
                                fault_state.count_crash(comm.rank)
                    # Every rank pays the failure-detection latency; the
                    # crashed rank additionally pays to respawn.
                    comm.work(config.costs.crash_detect_cost)
                    if crashed_here:
                        comm.work(config.costs.restart_fixed_cost)
                    saved_iteration, extras = checkpointer.restore(store)
                    comm.work(
                        config.costs.restore_item_cost * len(store.data_records)
                    )
                    window_exec_time = extras["window_exec_time"]
                    migrations[:] = extras["migrations"]
                    repartitions = extras["repartitions"]
                    ctx.node_compute = dict(extras["node_compute"])
                    restore_delta(extras)
                    if guard is not None:
                        guard.reset_after_restore()
                    comm.barrier()
                    recovery_elapsed = comm.Wtime() - t_rec
                    phases.recovery += recovery_elapsed
                    reconfigurations.append(
                        ReconfigurationRecord(
                            rank=world_rank,
                            iteration=iteration,
                            policy="rollback",
                            dead_ranks=tuple(sorted(c.rank for c in crashes)),
                            survivors=comm.group,
                            nodes_redistributed=0,
                            detection_cost=config.costs.crash_detect_cost,
                            reconfiguration_cost=recovery_elapsed
                            - config.costs.crash_detect_cost,
                            resumed_iteration=saved_iteration + 1,
                        )
                    )
                    recoveries += 1
                    attempt += 1
                    iteration = saved_iteration + 1
                    continue

            # ---- Silent corruption: inject, detect, repair/rollback ----
            if has_flips and fault_state is not None:
                # The flip itself is free (it is the *fault*); only the
                # protection machinery below costs virtual time.
                inject_memory_flips(
                    store, fault_state, world_rank, iteration, applied_flips
                )
            if guard is not None:
                t_ig = comm.Wtime()
                decision = guard.check(iteration)
                if decision is None:
                    phases.recovery += comm.Wtime() - t_ig
                elif decision.repair:
                    guard.repair_from_replicas(decision, fault_state)
                    event_cost = comm.Wtime() - t_ig
                    phases.recovery += event_cost
                    repairs += len(decision.claims)
                    for claim in decision.claims:
                        integrity_records.append(
                            IntegrityRecord(
                                rank=world_rank,
                                iteration=iteration,
                                gid=claim.gid,
                                owner=comm.world_rank_of(claim.owner),
                                flip_iteration=claim.flip_iteration,
                                latency=iteration - claim.flip_iteration,
                                mode="repair",
                                replica=comm.world_rank_of(min(claim.holders)),
                                cost=event_cost,
                                resumed_iteration=iteration,
                            )
                        )
                    # Fall through: the iteration proceeds on healed state.
                else:
                    # Interior node or late detection: checkpoints taken at
                    # or after the injection are contaminated, so discard
                    # them and roll back to the newest clean snapshot.
                    checkpointer.discard_since(decision.min_flip_iteration)
                    saved_iteration, extras = checkpointer.restore(store)
                    comm.work(
                        config.costs.restore_item_cost * len(store.data_records)
                    )
                    window_exec_time = extras["window_exec_time"]
                    migrations[:] = extras["migrations"]
                    repartitions = extras["repartitions"]
                    ctx.node_compute = dict(extras["node_compute"])
                    restore_delta(extras)
                    guard.reset_after_restore()
                    comm.barrier()
                    event_cost = comm.Wtime() - t_ig
                    phases.recovery += event_cost
                    for claim in decision.claims:
                        integrity_records.append(
                            IntegrityRecord(
                                rank=world_rank,
                                iteration=iteration,
                                gid=claim.gid,
                                owner=comm.world_rank_of(claim.owner),
                                flip_iteration=claim.flip_iteration,
                                latency=iteration - claim.flip_iteration,
                                mode="rollback",
                                replica=None,
                                cost=event_cost,
                                resumed_iteration=saved_iteration + 1,
                            )
                        )
                    recoveries += 1
                    attempt += 1
                    iteration = saved_iteration + 1
                    continue

            ctx.iteration = iteration
            iter_clock_start = comm.Wtime()
            iter_compute0 = ctx.compute_time
            iter_comm_oh0 = ctx.comm_overhead_time
            migrations_before = len(migrations)
            iter_changed = 0
            for round_idx, node_fn in enumerate(self.node_fns):
                ctx.round = round_idx
                t_sweep = comm.Wtime()
                compute0 = ctx.compute_time
                overhead0 = ctx.comm_overhead_time
                book0 = ctx.bookkeeping_time
                sweep(comm, store, node_fn, ctx, buffers)
                iter_changed += ctx.changed_last_sweep
                t_end = comm.Wtime()
                d_compute = ctx.compute_time - compute0
                d_comm_oh = ctx.comm_overhead_time - overhead0
                d_book = ctx.bookkeeping_time - book0
                phases.compute += d_compute
                phases.communication_overhead += d_comm_oh
                phases.computation_overhead += d_book
                # Whatever wall time the counters do not explain is message
                # injection/drain cost and waiting on peers: "communicate".
                remainder = (t_end - t_sweep) - d_compute - d_comm_oh - d_book
                phases.communicate += max(0.0, remainder)
                # The thesis times *ComputeOverNodes only* as the processor
                # weight for the load balancer -- waiting inside the
                # communication step must not equalize the measurements.
                window_exec_time += d_compute + d_book

            if config.validate_each_iteration:
                store.check_invariants()

            # Quiescence: fold the changed-node count into the iteration's
            # collective cadence.  The reduction is collective, so every
            # rank agrees on the verdict; when nothing changed anywhere the
            # computation is at its fixed point and further sweeps are
            # provably no-ops (pure node functions).
            quiesced = False
            if quiescing:
                quiesced = comm.allreduce(iter_changed) == 0

            if (
                not quiesced
                and config.dynamic_load_balancing
                and iteration % config.lb_period == 0
            ):
                t_lb = comm.Wtime()
                if config.rebalance_mode == "repartition":
                    store, changed = repartition_phase(
                        comm, store, self.repartitioner, ctx
                    )
                    repartitions += int(changed)
                else:
                    events = load_balance_phase(
                        comm,
                        store,
                        self.balancer,
                        window_exec_time,
                        ctx,
                        iteration,
                        max_migrations_per_pair=config.max_migrations_per_pair,
                    )
                    migrations.extend(events)
                window_exec_time = 0.0  # the thesis resets the window
                ctx.reset_node_loads()
                if delta is not None:
                    # Ownership changed (or stores were rebuilt): saved
                    # frontiers no longer describe this rank's nodes, so the
                    # next sweep of every round runs dense.
                    delta.reset_dense()
                if hybrid is not None:
                    # Migration/repartition reclassified interior vs boundary
                    # nodes wholesale: re-derive both frontiers densely.
                    hybrid.reset_dense()
                comm.barrier()
                phases.load_balancing += comm.Wtime() - t_lb
                if config.validate_each_iteration:
                    store.check_invariants()

            if config.track_trace:
                own_moves = sum(
                    1
                    for event in migrations[migrations_before:]
                    if comm.rank in (event.from_proc, event.to_proc)
                )
                trace_records.append(
                    IterationRecord(
                        rank=world_rank,
                        iteration=iteration,
                        start=iter_clock_start,
                        end=comm.Wtime(),
                        compute=ctx.compute_time - iter_compute0,
                        comm_overhead=ctx.comm_overhead_time - iter_comm_oh0,
                        migrations=own_moves,
                        attempt=attempt,
                    )
                )

            if quiesced:
                # Fixed point reached: stop early, skipping the remaining
                # configured iterations (they could not change any value).
                quiescence_records.append(
                    QuiescenceRecord(
                        rank=world_rank,
                        iteration=iteration,
                        configured_iterations=config.iterations,
                        saved_iterations=config.iterations - iteration,
                    )
                )
                break

            if checkpointer.due(iteration):
                t_ck = comm.Wtime()
                checkpointer.take(iteration, store, **loop_extras())
                comm.work(
                    config.costs.checkpoint_item_cost * len(store.data_records)
                )
                phases.recovery += comm.Wtime() - t_ck

            if guard is not None:
                # Reference digests of the just-committed values: next
                # iteration's check diffs against these.
                t_ig = comm.Wtime()
                guard.refresh()
                phases.recovery += comm.Wtime() - t_ig

            iteration += 1

        comm.barrier()
        elapsed = comm.Wtime()
        return RankOutcome(
            rank=world_rank,
            elapsed=elapsed,
            phases=phases,
            values=store.owned_values(),
            owned=[node.global_id for node in store.owned_nodes()],
            migrations=migrations,
            versions=store.owned_versions(),
            repartitions=repartitions,
            trace_records=trace_records,
            recoveries=recoveries,
            checkpoints=checkpointer.taken,
            reconfigurations=reconfigurations,
            integrity_records=integrity_records,
            repairs=repairs,
            quiescence_records=quiescence_records,
            iterations_executed=(
                iteration if quiescence_records else config.iterations
            ),
            inner_sweeps=hybrid.inner_sweeps if hybrid is not None else 0,
            sparse_geom_hits=getattr(store, "sparse_geom_hits", 0),
            sparse_geom_misses=getattr(store, "sparse_geom_misses", 0),
        )

def run_platform(
    graph: Graph,
    node_fn: NodeFn | Sequence[NodeFn],
    partition: Partition,
    config: PlatformConfig | None = None,
    machine: MachineModel = ORIGIN2000,
    init_value: InitValueFn | None = None,
    balancer: LoadBalancer | None = None,
    faults: FaultPlan | None = None,
    sched_jitter: Callable[[], None] | None = None,
    scheduler: str | None = None,
) -> PlatformResult:
    """One-shot convenience wrapper around :class:`ICPlatform`."""
    platform = ICPlatform(
        graph, node_fn, init_value=init_value, config=config, balancer=balancer
    )
    return platform.run(
        partition,
        machine=machine,
        faults=faults,
        sched_jitter=sched_jitter,
        scheduler=scheduler,
    )
