"""Task migration (section 4.3 and Appendix C's ``task_migrate``).

A single migration involves three processor roles (Table 1):

* the **busy** processor sends the task: it removes the migrating node from
  its peripheral list (keeping the data record -- the node becomes a shadow
  here), promotes internal neighbours to peripheral, and ships the data of
  the migrating node's neighbours to the idle processor;
* the **idle** processor receives the task: it installs the neighbour data
  in its data node list / hash table, adds the node to its peripheral list,
  and may promote peripheral nodes to internal;
* every processor **holding a shadow** of the migrating node updates its
  ``shadow_for_procs`` bookkeeping so future updates flow from the new
  owner.

All ranks keep their own copy of the node-to-processor map (``output_arr``)
and patch it identically, so the roles fall out of local state.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from ..mpi.communicator import Communicator
from .compute import ComputeContext
from .loadbalance import BusyIdlePair, LoadBalancer, build_processor_edges
from .nodestore import NodeStore

__all__ = ["MigrationEvent", "select_migrating_node", "migrate_node", "load_balance_phase", "TAG_MIGRATE"]

#: Tag for migration payloads (distinct from the shadow exchange).
TAG_MIGRATE = 2


@dataclass(frozen=True)
class MigrationEvent:
    """Record of one executed migration (for logs and tests)."""

    iteration: int
    global_id: int
    from_proc: int
    to_proc: int


def select_migrating_node(store: NodeStore, to_proc: int) -> int | None:
    """Pick the task to migrate: the candidate minimizing the edge-cut delta.

    Candidates are the busy processor's peripheral nodes that are shadows
    for ``to_proc`` (Appendix C's ``GetMigratingNode``).  For each, the
    score counts neighbours left behind on the busy processor (edges that
    *become* cut) minus neighbours already on ``to_proc`` (edges that stop
    being cut); the minimum wins, ties broken by peripheral-list order.

    Returns None when no candidate exists.
    """
    assignment = store.assignment
    best_gid: int | None = None
    best_score = 0
    for gid, node in store.peripheral.items():
        if to_proc not in node.shadow_for_procs:
            continue
        score = 0
        for v in node.neighboring_nodes:
            owner = assignment[v - 1]
            if owner == store.rank:
                score += 1
            elif owner == to_proc:
                score -= 1
        if best_gid is None or score < best_score:
            best_gid = gid
            best_score = score
    return best_gid


def migrate_node(
    comm: Communicator,
    store: NodeStore,
    gid: int,
    from_proc: int,
    to_proc: int,
    ctx: ComputeContext,
) -> None:
    """Execute one migration; every rank must call this collectively.

    The caller must already have patched ``store.assignment[gid - 1]`` to
    ``to_proc`` on *every* rank (the thesis updates ``output_arr`` before
    ``task_migrate`` runs).
    """
    if store.assignment[gid - 1] != to_proc:
        raise ValueError(
            f"assignment for node {gid} must be patched to {to_proc} before migrating"
        )
    costs = ctx.costs
    if comm.rank == from_proc:
        node = store.release_node(gid)
        payload: list[tuple[int, Any, int]] = []
        for v in node.neighboring_nodes:
            record = store.hash_table[v]
            payload.append((v, record.data, record.version))
        # The idle side also needs the migrating node's own latest value --
        # it holds it as a shadow, but ship it anyway so state is exact even
        # mid-window (the thesis relies on the shadow being fresh).  Version
        # counters ride along so the delta exchange stays consistent after
        # the ownership change.
        payload.append((gid, node.data.data, node.data.version))
        ctx._comm_overhead(costs.migrate_fixed_cost + costs.migrate_item_cost * len(payload))
        comm.isend(payload, to_proc, tag=TAG_MIGRATE)
    elif comm.rank == to_proc:
        payload = comm.recv(source=from_proc, tag=TAG_MIGRATE)
        ctx._comm_overhead(costs.migrate_fixed_cost + costs.migrate_item_cost * len(payload))
        neighbor_values = [entry for entry in payload if entry[0] != gid]
        own = next((entry for entry in payload if entry[0] == gid), None)
        if own is not None:
            record = store.ensure_record(gid, own[1], version=own[2])
            record.data = own[1]
        store.adopt_node(gid, neighbor_values)
    # Every rank (including busy/idle) re-derives node kinds and shadow
    # lists from the patched assignment.
    store.refresh_ownership()


def load_balance_phase(
    comm: Communicator,
    store: NodeStore,
    balancer: LoadBalancer,
    exec_time: float,
    ctx: ComputeContext,
    iteration: int,
    max_migrations_per_pair: int = 1,
) -> list[MigrationEvent]:
    """The full periodic load-balancing + task-migration phase.

    1. Rank 0 gathers per-processor execution times (processor-graph node
       weights) and communication buffer sizes (edge weights).
    2. Rank 0 runs the balancer to obtain busy-idle pairs; broadcasts them.
    3. For each pair, the busy processor selects the migrating node
       (minimum edge-cut delta) and broadcasts it; all ranks patch their
       ``output_arr`` copy and execute the migration collectively.

    The thesis executes non-conflicting migrations in parallel and
    serializes the Table-1 conflict cases; on the virtual-time substrate
    each migration's cost is dominated by its own messages, so the
    collective loop reproduces the same accounting.

    Returns the executed migrations (identical on every rank).
    """
    times = comm.gather(exec_time, root=0)
    sizes = comm.gather(store.buffer_sizes(comm.size), root=0)
    pairs: list[BusyIdlePair] | None = None
    if comm.rank == 0:
        assert times is not None and sizes is not None
        edges = build_processor_edges(sizes)
        ctx._comm_overhead(ctx.costs.lb_stat_cost * comm.size)
        pairs = balancer.find_pairs(times, edges)
    pairs = comm.bcast(pairs, root=0)

    events: list[MigrationEvent] = []
    for pair in pairs:
        for _ in range(max_migrations_per_pair):
            gid: int | None = None
            if comm.rank == pair.busy:
                gid = select_migrating_node(store, pair.idle)
            gid = comm.bcast(gid, root=pair.busy)
            if gid is None:
                break
            store.assignment[gid - 1] = pair.idle
            migrate_node(comm, store, gid, pair.busy, pair.idle, ctx)
            events.append(
                MigrationEvent(
                    iteration=iteration,
                    global_id=gid,
                    from_proc=pair.busy,
                    to_proc=pair.idle,
                )
            )
    return events
