"""Conformance suite for hybrid sync/async execution.

``execution="hybrid"`` splits every superstep into a boundary phase
(computed, exchanged, and barriered exactly like BSP) and an interior
phase in which each rank chases its interior frontier locally -- no
messages, no barrier -- until it drains or ``hybrid_inner_cap`` sweeps
are spent.  For order-insensitive fixed-point workloads (the platform's
chaotic-relaxation contract) this changes the *trajectory* but not the
fixed point, while eliding the barriers and halo exchanges the extra
interior iterations would have cost under BSP.

The invariants pinned here:

* hybrid reaches the same fixed point as dense BSP (tolerance-equal
  values, equal residual) while crossing strictly fewer barriers;
* hybrid-vs-hybrid results are bit-identical across node stores,
  activation modes, all three scheduler backends, and 10 perturbed
  host schedules;
* inner-iteration counters ride checkpoints: crash + rollback recovery
  reproduces the fault-free hybrid run exactly;
* dynamic load balancing (migration and repartition) resets the hybrid
  frontier soundly -- ownership moves never corrupt the fixed point.
"""

from __future__ import annotations

import pytest

from repro.apps.diffusion import hot_edge_plate, make_jacobi_fn, residual
from repro.core import ICPlatform, PlatformConfig
from repro.mpi import FaultPlan
from repro.partitioning import MetisLikePartitioner

from .test_sparse_mode import RUNS, make_jitter

#: Convergence tolerance of the quantized Jacobi workload below.
TOL = 1e-4


def run_plate(execution, *, converge="quiescence", iterations=200,
              scheduler=None, faults=None, jitter=None, nparts=4,
              **overrides):
    graph, boundary, init = hot_edge_plate(8, 8)
    partition = MetisLikePartitioner(seed=0).partition(graph, nparts)
    config = PlatformConfig(
        iterations=iterations,
        execution=execution,
        converge=converge,
        track_trace=True,
        **overrides,
    )
    platform = ICPlatform(
        graph, make_jacobi_fn(boundary, quantize=4), init_value=init, config=config
    )
    result = platform.run(
        partition,
        faults=FaultPlan.parse(faults) if faults else None,
        sched_jitter=jitter,
        scheduler=scheduler,
        deadlock_timeout=10.0,
    )
    return result, graph, boundary


def assert_same_fixed_point(a, b):
    """Tolerance-equality of two converged value maps."""
    assert a.keys() == b.keys()
    worst = max(abs(a[g] - b[g]) for g in a)
    assert worst <= TOL, f"fixed points diverge by {worst}"


class TestHybridFixedPoint:
    @pytest.mark.parametrize("store", ["object", "soa"])
    def test_matches_bsp_with_fewer_barriers(self, store):
        bsp, graph, boundary = run_plate("bsp", store=store)
        hyb, _, _ = run_plate("hybrid", store=store)
        assert bsp.quiesced_at is not None and hyb.quiesced_at is not None
        assert_same_fixed_point(bsp.values, hyb.values)
        assert residual(graph, hyb.values, boundary) <= TOL
        # The point of the mode: interior progress per superstep means
        # fewer supersteps, hence fewer barriers and fewer halo messages.
        assert hyb.barriers < bsp.barriers
        assert hyb.messages_delivered < bsp.messages_delivered
        assert hyb.inner_sweeps > 0

    def test_inner_cap_one_still_converges(self):
        """cap=1 is the degenerate hybrid: one interior sweep per
        superstep, interleaved with the boundary exchange."""
        bsp, _, _ = run_plate("bsp")
        hyb, _, _ = run_plate("hybrid", hybrid_inner_cap=1)
        assert hyb.quiesced_at is not None
        assert_same_fixed_point(bsp.values, hyb.values)

    def test_interior_heavy_partition_saves_more(self):
        """With fewer, larger parts the interior dominates and the
        superstep savings grow -- the GraphHP sweet spot."""
        bsp, _, _ = run_plate("bsp", nparts=2)
        hyb, _, _ = run_plate("hybrid", nparts=2)
        assert_same_fixed_point(bsp.values, hyb.values)
        assert hyb.barriers < bsp.barriers

    def test_fixed_iteration_budget(self):
        """converge="fixed" runs every superstep; hybrid still agrees at
        the end because both sides are past the fixed point by then."""
        bsp, _, _ = run_plate("bsp", converge="fixed", iterations=150)
        hyb, _, _ = run_plate("hybrid", converge="fixed", iterations=150)
        assert_same_fixed_point(bsp.values, hyb.values)


class TestHybridDeterminism:
    def test_bit_identical_across_stores(self):
        obj, _, _ = run_plate("hybrid", store="object")
        soa, _, _ = run_plate("hybrid", store="soa")
        assert obj.values == soa.values
        assert obj.elapsed == soa.elapsed
        assert obj.quiesced_at == soa.quiesced_at

    def test_bit_identical_across_activation(self):
        dense, _, _ = run_plate("hybrid")
        sparse, _, _ = run_plate("hybrid", activation="sparse")
        assert dense.values == sparse.values
        assert dense.quiesced_at == sparse.quiesced_at

    @pytest.mark.parametrize("scheduler", ["threads", "process"])
    def test_bit_identical_across_backends(self, scheduler):
        overrides = {"store": "soa"} if scheduler == "process" else {}
        event, _, _ = run_plate("hybrid", scheduler="event", **overrides)
        other, _, _ = run_plate("hybrid", scheduler=scheduler, **overrides)
        assert event.values == other.values
        assert event.elapsed == other.elapsed
        assert event.barriers == other.barriers
        assert event.messages_delivered == other.messages_delivered

    def test_bit_identical_across_perturbed_schedules(self):
        """10 jittered host schedules on the threads backend: virtual
        outcomes may not depend on host timing."""
        reference, _, _ = run_plate("hybrid", scheduler="threads")
        for seed in range(RUNS):
            run, _, _ = run_plate(
                "hybrid", scheduler="threads", jitter=make_jitter(seed)
            )
            assert run.values == reference.values, f"schedule {seed}"
            assert run.elapsed == reference.elapsed, f"schedule {seed}"


class TestHybridRecoveryAndRebalance:
    def test_crash_rollback_reproduces_fault_free(self):
        """Inner-iteration counters ride checkpoint snapshots: the
        restored run must replay the interrupted supersteps exactly."""
        clean, _, _ = run_plate("hybrid", checkpoint_period=10)
        crashed, _, _ = run_plate(
            "hybrid",
            checkpoint_period=10,
            recovery_policy="rollback",
            faults="seed=3,crash=2@20",
        )
        assert crashed.values == clean.values
        assert crashed.recoveries >= 1

    def test_crash_shrink_converges(self):
        """Shrink recovery rebuilds stores (and hybrid frontiers) on the
        survivors; the fixed point must survive the reconfiguration."""
        bsp, graph, boundary = run_plate("bsp")
        shrunk, _, _ = run_plate(
            "hybrid",
            checkpoint_period=10,
            recovery_policy="shrink",
            faults="seed=3,crash=2@20",
        )
        assert shrunk.dead_ranks == (2,)
        assert residual(graph, shrunk.values, boundary) <= TOL
        assert_same_fixed_point(bsp.values, shrunk.values)

    @pytest.mark.parametrize("mode", ["migrate", "repartition"])
    def test_dynamic_rebalance_preserves_fixed_point(self, mode):
        """Ownership changes re-derive interior/boundary classification;
        the reset hybrid frontier must not lose pending activity."""
        bsp, graph, boundary = run_plate("bsp")
        hyb, _, _ = run_plate(
            "hybrid",
            dynamic_load_balancing=True,
            lb_period=15,
            rebalance_mode=mode,
            validate_each_iteration=True,
        )
        assert hyb.quiesced_at is not None
        assert residual(graph, hyb.values, boundary) <= TOL
        assert_same_fixed_point(bsp.values, hyb.values)
