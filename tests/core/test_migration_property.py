"""Property-based round-trip tests for task migration.

For ANY random connected graph, partition, and sequence of busy->idle
migration batches, the distributed data structures must come back
consistent: every node has exactly one owner, every rank's hash table
resolves every ID it needs, internal/peripheral classification and
``shadow_for_procs`` match the patched assignment, and all ranks agree on
the node-to-processor map.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import ComputeContext, NodeStore, PlatformCosts
from repro.core.migration import migrate_node, select_migrating_node
from repro.graphs import random_connected_graph
from repro.mpi import IDEAL, run_mpi


@st.composite
def migration_cases(draw):
    n = draw(st.integers(min_value=6, max_value=18))
    seed = draw(st.integers(min_value=0, max_value=10**6))
    graph = random_connected_graph(n, avg_degree=3.0, seed=seed)
    nprocs = draw(st.integers(min_value=2, max_value=4))
    assignment = draw(
        st.lists(
            st.integers(min_value=0, max_value=nprocs - 1),
            min_size=n,
            max_size=n,
        )
    )
    # A sequence of busy -> idle migration attempts (busy != idle).
    moves = draw(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=nprocs - 1),
                st.integers(min_value=0, max_value=nprocs - 1),
            ).filter(lambda p: p[0] != p[1]),
            min_size=1,
            max_size=6,
        )
    )
    return graph, nprocs, assignment, moves


def migration_round_trip(comm, graph, assignment, moves):
    """Build the store, run the requested migrations collectively, verify."""
    store = NodeStore(comm.rank, graph, list(assignment), lambda gid: float(gid))
    ctx = ComputeContext(comm, PlatformCosts(), graph.num_nodes)
    executed = []
    for busy, idle in moves:
        gid = None
        if comm.rank == busy:
            gid = select_migrating_node(store, idle)
        gid = comm.bcast(gid, root=busy)
        if gid is None:
            continue  # busy has no candidate peripheral for idle: skip
        store.assignment[gid - 1] = idle
        migrate_node(comm, store, gid, busy, idle, ctx)
        executed.append((gid, busy, idle))

    store.check_invariants()  # shadow/peripheral/hash-table consistency

    # Every ID this rank's sweeps would touch resolves via the hash table
    # to the exact record in the data node list.
    for node in store.owned_nodes():
        assert store.hash_table[node.global_id] is store.data_records[node.global_id]
        for v in node.neighboring_nodes:
            assert store.hash_table[v] is store.data_records[v]

    owned = sorted(node.global_id for node in store.owned_nodes())
    return owned, tuple(store.assignment), executed


@given(migration_cases())
@settings(max_examples=20, deadline=None)
def test_migration_round_trip(case):
    graph, nprocs, assignment, moves = case
    results = run_mpi(
        migration_round_trip,
        nprocs,
        graph,
        assignment,
        moves,
        machine=IDEAL,
        deadlock_timeout=10.0,
    )

    # All ranks executed the same migrations and agree on the final map.
    final_assignments = {assignments for _, assignments, _ in results}
    assert len(final_assignments) == 1
    executed_logs = {tuple(executed) for _, _, executed in results}
    assert len(executed_logs) == 1

    # Unique ownership: every node owned by exactly one rank, and exactly
    # the rank the (shared) assignment says.
    final_assignment = next(iter(final_assignments))
    all_owned = [gid for owned, _, _ in results for gid in owned]
    assert sorted(all_owned) == list(graph.nodes())
    for rank, (owned, _, _) in enumerate(results):
        assert all(final_assignment[gid - 1] == rank for gid in owned)
