"""Differential conformance oracle: object store vs struct-of-arrays store.

The object store (one :class:`~repro.core.node.NodeData` per node) is the
reference semantics; ``store="soa"`` keeps the same logical state in
contiguous numpy arrays and swaps the per-node sweep loops for vectorized
bulk kernels.  That substitution must be *invisible*: every platform
workload -- fault-free, crash+rollback, crash+shrink, integrity repair,
sparse activation with quiescence termination, load balancing -- has to
produce identical committed values, identical version counters, identical
virtual clocks, and an identical trace stream under both stores.  The
tests here run each workload twice and diff everything the platform
reports, then fuzz the soa store across 10 perturbed host schedules.
"""

from __future__ import annotations

import random
import time

import pytest

from repro.apps.average import make_average_fn
from repro.apps.battlefield import BattlefieldApp, general_engagement
from repro.apps.diffusion import hot_edge_plate, make_jacobi_fn
from repro.core import ICPlatform, PlatformConfig
from repro.graphs import hex32
from repro.mpi import FaultPlan
from repro.partitioning import MetisLikePartitioner

#: Distinct host schedules for the perturbed-schedule fuzz (conformance spec).
RUNS = 10


def make_jitter(seed: int, max_sleep: float = 2e-4):
    rng = random.Random(seed)

    def jitter() -> None:
        if rng.random() < 0.5:
            time.sleep(rng.random() * max_sleep)

    return jitter


def make_scalar_average_fn(grain: float):
    """The neighbour-average fn with its bulk kernel stripped.

    On the soa store this forces the per-node scalar sweep over array-backed
    proxy records -- the fallback every application without a bulk kernel
    takes -- which must conform exactly like the vectorized path.
    """
    inner = make_average_fn(grain)

    def scalar_fn(node, ctx):
        return inner(node, ctx)

    return scalar_fn


def run_hex(store, *, node_fn=None, iterations=6, faults=None, jitter=None,
            **overrides):
    graph = hex32()
    partition = MetisLikePartitioner(seed=0).partition(graph, 4)
    config = PlatformConfig(
        iterations=iterations, track_trace=True, store=store, **overrides
    )
    platform = ICPlatform(
        graph, node_fn if node_fn is not None else make_average_fn(1e-4),
        config=config,
    )
    return platform.run(
        partition,
        faults=FaultPlan.parse(faults) if faults else None,
        sched_jitter=jitter,
        deadlock_timeout=10.0,
    )


def run_plate(store, *, iterations=150, jitter=None, **overrides):
    graph, boundary, init = hot_edge_plate(8, 8)
    partition = MetisLikePartitioner(seed=0).partition(graph, 4)
    config = PlatformConfig(
        iterations=iterations, track_trace=True, store=store, **overrides
    )
    platform = ICPlatform(
        graph, make_jacobi_fn(boundary, quantize=4), init_value=init,
        config=config,
    )
    return platform.run(partition, sched_jitter=jitter, deadlock_timeout=10.0)


def boundary_gid_of_rank(rank: int) -> int:
    """A hex32 node owned by ``rank`` with a remote neighbour (has replicas)."""
    graph = hex32()
    assignment = MetisLikePartitioner(seed=0).partition(graph, 4).assignment
    return next(
        g
        for g in sorted(graph.nodes())
        if assignment[g - 1] == rank
        and any(assignment[m - 1] != rank for m in graph.neighbors(g))
    )


def assert_identical(obj, soa):
    """Diff everything the platform reports between the two stores."""
    assert soa.values == obj.values
    assert soa.versions == obj.versions
    assert soa.elapsed == obj.elapsed
    assert soa.iterations == obj.iterations
    assert soa.trace.records == obj.trace.records
    assert soa.trace.reconfigurations == obj.trace.reconfigurations
    assert soa.trace.integrity == obj.trace.integrity
    assert soa.trace.quiescence == obj.trace.quiescence
    assert [p.as_dict() for p in soa.phases] == [p.as_dict() for p in obj.phases]
    assert soa.final_assignment == obj.final_assignment
    assert soa.migrations == obj.migrations
    assert soa.repartitions == obj.repartitions
    assert soa.messages_delivered == obj.messages_delivered
    assert soa.recoveries == obj.recoveries
    assert soa.repairs == obj.repairs
    assert soa.checkpoints == obj.checkpoints
    assert soa.dead_ranks == obj.dead_ranks
    assert soa.quiesced_at == obj.quiesced_at


class TestFaultFree:
    def test_basic_pipeline(self):
        assert_identical(run_hex("object"), run_hex("soa"))

    def test_overlapped_pipeline(self):
        assert_identical(
            run_hex("object", overlap_communication=True),
            run_hex("soa", overlap_communication=True),
        )

    def test_versions_populated(self):
        obj = run_hex("object")
        soa = run_hex("soa")
        assert obj.versions and set(obj.versions) == set(obj.values)
        assert soa.versions == obj.versions
        # Every value changes every one of the 6 iterations on this workload.
        assert set(obj.versions.values()) == {6}

    def test_scalar_fallback_on_soa(self):
        """A node fn without a bulk kernel sweeps scalar over proxies."""
        scalar = make_scalar_average_fn(1e-4)
        assert_identical(
            run_hex("object", node_fn=scalar), run_hex("soa", node_fn=scalar)
        )

    def test_object_values_demote_cleanly(self):
        """Battlefield state dicts force the soa store off its float64 fast
        path; behaviour must be unchanged after the demotion."""
        app = BattlefieldApp(general_engagement())
        graph = app.graph()
        partition = MetisLikePartitioner(seed=0, trials=4).partition(graph, 8)

        def run(store):
            platform = ICPlatform(
                graph,
                app.node_fns(),
                init_value=app.init_value,
                config=app.platform_config(steps=4, store=store, track_trace=True),
            )
            return platform.run(partition)

        obj, soa = run("object"), run("soa")
        assert sorted(soa.values.items()) == sorted(obj.values.items())
        assert soa.versions == obj.versions
        assert soa.elapsed == obj.elapsed
        assert soa.trace.records == obj.trace.records


class TestCrashRollback:
    def test_conformance(self):
        kwargs = dict(iterations=8, checkpoint_period=3, faults="seed=3,crash=2@5")
        obj = run_hex("object", **kwargs)
        soa = run_hex("soa", **kwargs)
        assert_identical(obj, soa)
        assert obj.recoveries == 1

    def test_overlapped_conformance(self):
        kwargs = dict(
            iterations=8,
            checkpoint_period=3,
            overlap_communication=True,
            faults="seed=3,crash=2@5",
        )
        assert_identical(run_hex("object", **kwargs), run_hex("soa", **kwargs))


class TestCrashShrink:
    def test_conformance(self):
        kwargs = dict(
            iterations=8,
            checkpoint_period=3,
            recovery_policy="shrink",
            faults="seed=3,crash=2@5",
        )
        obj = run_hex("object", **kwargs)
        soa = run_hex("soa", **kwargs)
        assert_identical(obj, soa)
        assert obj.dead_ranks == (2,)
        assert obj.trace.reconfiguration_events()


class TestIntegrityRepair:
    def test_conformance(self):
        gid = boundary_gid_of_rank(1)
        kwargs = dict(
            iterations=8,
            integrity="full",
            faults=f"seed=11,flipmsg=0.05,flip=1@4:{gid}",
        )
        obj = run_hex("object", **kwargs)
        soa = run_hex("soa", **kwargs)
        assert_identical(obj, soa)
        assert obj.repairs == 1
        assert obj.recoveries == 0

    def test_digest_rollback_conformance(self):
        """Digest-mode detection recovers by rollback instead of repair."""
        gid = boundary_gid_of_rank(1)
        kwargs = dict(
            iterations=8,
            integrity="digest",
            checkpoint_period=3,
            faults=f"seed=11,flip=1@4:{gid}",
        )
        obj = run_hex("object", **kwargs)
        soa = run_hex("soa", **kwargs)
        assert_identical(obj, soa)
        assert obj.recoveries >= 1


class TestSparseQuiescence:
    def test_plate_conformance(self):
        kwargs = dict(activation="sparse", converge="quiescence")
        obj = run_plate("object", **kwargs)
        soa = run_plate("soa", **kwargs)
        assert_identical(obj, soa)
        assert obj.quiesced_at is not None

    def test_hex_sparse_overlapped(self):
        kwargs = dict(activation="sparse", overlap_communication=True)
        assert_identical(run_hex("object", **kwargs), run_hex("soa", **kwargs))


class TestLoadBalancing:
    def test_migration_conformance(self):
        kwargs = dict(iterations=12, dynamic_load_balancing=True, lb_period=4)
        obj = run_hex("object", **kwargs)
        soa = run_hex("soa", **kwargs)
        assert_identical(obj, soa)

    def test_repartition_conformance(self):
        kwargs = dict(
            iterations=12,
            dynamic_load_balancing=True,
            lb_period=4,
            rebalance_mode="repartition",
        )
        assert_identical(run_hex("object", **kwargs), run_hex("soa", **kwargs))


class TestSoAScheduleFuzz:
    """The vectorized sweeps replay the scalar charge sequence; the virtual
    outcome must therefore stay schedule-independent exactly like the
    scalar path -- across 10 perturbed host schedules per scenario."""

    def test_fault_free_is_schedule_independent(self):
        reference = run_hex("object")
        for i in range(RUNS):
            fuzzed = run_hex("soa", jitter=make_jitter(seed=9000 + i))
            assert_identical(reference, fuzzed)

    def test_shrink_recovery_is_schedule_independent(self):
        kwargs = dict(
            iterations=8,
            checkpoint_period=3,
            recovery_policy="shrink",
            faults="seed=3,crash=2@5",
        )
        reference = run_hex("object", **kwargs)
        for i in range(RUNS):
            fuzzed = run_hex("soa", jitter=make_jitter(seed=9100 + i), **kwargs)
            assert_identical(reference, fuzzed)

    def test_sparse_quiescence_is_schedule_independent(self):
        kwargs = dict(activation="sparse", converge="quiescence")
        reference = run_plate("object", **kwargs)
        assert reference.quiesced_at is not None
        for i in range(RUNS):
            fuzzed = run_plate("soa", jitter=make_jitter(seed=9200 + i), **kwargs)
            assert_identical(reference, fuzzed)
