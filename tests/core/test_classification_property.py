"""Property tests for interior/boundary node classification.

Hybrid execution is only sound if the interior/boundary split is exact:
interior nodes may iterate locally without synchronization *because*
none of their neighbours live on another rank.  These properties pin the
classification invariants for ANY random connected graph and assignment,
and keep them pinned across the three ownership-changing operations --
migration batches, repartition-style rebuilds, and shrink-style rank
removal.

The invariants (checked on every rank's store):

* every owned node sits in exactly one of ``store.internal`` /
  ``store.peripheral``;
* a node is peripheral iff it has at least one remote neighbour under
  the current assignment (so every cut edge has boundary endpoints);
* interior nodes have all-local neighbourhoods (the hybrid inner loop
  touches no remote state);
* the object store and the SoA store agree on the classification.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import ComputeContext, NodeStore, PlatformCosts
from repro.core.migration import migrate_node, select_migrating_node
from repro.core.soastore import SoAStore
from repro.graphs import random_connected_graph
from repro.mpi import run_mpi


def assert_classification_exact(store, graph, assignment):
    """The hybrid soundness contract, spelled out edge by edge."""
    rank = store.rank
    owned = {gid for gid, owner in enumerate(assignment, start=1) if owner == rank}
    interior = set(store.internal)
    boundary = set(store.peripheral)
    # Exactly one class per owned node, no strays.
    assert interior | boundary == owned
    assert not interior & boundary
    for gid in owned:
        remote = [v for v in graph.neighbors(gid) if assignment[v - 1] != rank]
        if remote:
            assert gid in boundary, f"node {gid} has remote {remote} but is interior"
        else:
            assert gid in interior, f"node {gid} is all-local but boundary"
    # Every cut edge incident to this rank ends on a boundary node.
    for gid in owned:
        for v in graph.neighbors(gid):
            if assignment[v - 1] != rank:
                assert gid in boundary


def assert_stores_agree(graph, assignment, nprocs):
    """Object and SoA stores classify identically from the same inputs."""
    for rank in range(nprocs):
        obj = NodeStore(rank, graph, list(assignment), lambda gid: float(gid))
        soa = SoAStore(rank, graph, list(assignment), lambda gid: float(gid))
        assert set(obj.internal) == set(soa.internal)
        assert set(obj.peripheral) == set(soa.peripheral)
        assert_classification_exact(obj, graph, assignment)
        assert_classification_exact(soa, graph, assignment)


@st.composite
def classification_cases(draw):
    n = draw(st.integers(min_value=6, max_value=18))
    seed = draw(st.integers(min_value=0, max_value=10**6))
    graph = random_connected_graph(n, avg_degree=3.0, seed=seed)
    nprocs = draw(st.integers(min_value=2, max_value=4))
    assignment = draw(
        st.lists(
            st.integers(min_value=0, max_value=nprocs - 1),
            min_size=n,
            max_size=n,
        )
    )
    moves = draw(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=nprocs - 1),
                st.integers(min_value=0, max_value=nprocs - 1),
            ).filter(lambda p: p[0] != p[1]),
            min_size=1,
            max_size=6,
        )
    )
    return graph, nprocs, assignment, moves


@given(classification_cases())
@settings(max_examples=15, deadline=None)
def test_fresh_build_classification(case):
    graph, nprocs, assignment, _ = case
    assert_stores_agree(graph, assignment, nprocs)


@given(classification_cases())
@settings(max_examples=10, deadline=None)
def test_classification_survives_migration(case):
    """Each migration promotes/demotes internal and peripheral nodes on
    both sides of the move; the patched stores must stay exact."""
    graph, nprocs, assignment, moves = case

    def prog(comm):
        store = NodeStore(comm.rank, graph, list(assignment), lambda g: float(g))
        ctx = ComputeContext(comm, PlatformCosts(), graph.num_nodes)
        for busy, idle in moves:
            gid = None
            if comm.rank == busy:
                gid = select_migrating_node(store, idle)
            gid = comm.bcast(gid, root=busy)
            if gid is None:
                continue
            store.assignment[gid - 1] = idle
            migrate_node(comm, store, gid, busy, idle, ctx)
            assert_classification_exact(store, graph, store.assignment)
        store.check_invariants()
        return tuple(store.assignment)

    finals = run_mpi(prog, nprocs)
    assert len(set(finals)) == 1  # all ranks agree on the final map


@given(classification_cases())
@settings(max_examples=10, deadline=None)
def test_classification_survives_repartition(case):
    """A repartition rebuilds every store from a brand-new assignment
    (derived here by rotating ownership) -- classification must be exact
    for the new map, with no leakage from the old one."""
    graph, nprocs, assignment, _ = case
    rotated = [(owner + 1) % nprocs for owner in assignment]
    assert_stores_agree(graph, rotated, nprocs)


@given(classification_cases())
@settings(max_examples=10, deadline=None)
def test_classification_survives_shrink(case):
    """Shrink recovery folds a dead rank's nodes onto the survivors and
    rebuilds; cut edges against the dead rank disappear and previously
    peripheral nodes may become interior."""
    graph, nprocs, assignment, _ = case
    dead = nprocs - 1
    survivors = nprocs - 1
    if survivors < 1:
        return
    shrunk = [owner if owner != dead else gid0 % survivors
              for gid0, owner in enumerate(assignment)]
    assert_stores_agree(graph, shrunk, max(survivors, 1))
