"""Property-based end-to-end tests: platform execution equals the
synchronous sequential semantics for ANY graph, partition, and processor
count -- with and without dynamic load balancing."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.average import make_average_fn
from repro.apps.imbalance import ImbalanceSchedule, make_imbalanced_average_fn
from repro.core import GreedyPairBalancer, PlatformConfig, run_platform
from repro.graphs import Graph, random_connected_graph
from repro.mpi import IDEAL
from repro.partitioning import Partition


def sequential_average(graph: Graph, iterations: int) -> dict[int, float]:
    values = {gid: float(gid) for gid in graph.nodes()}
    for _ in range(iterations):
        values = {
            gid: (values[gid] + sum(values[v] for v in graph.neighbors(gid)))
            / (1 + graph.degree(gid))
            for gid in graph.nodes()
        }
    return values


@st.composite
def platform_cases(draw):
    n = draw(st.integers(min_value=2, max_value=20))
    seed = draw(st.integers(min_value=0, max_value=10**6))
    graph = random_connected_graph(n, avg_degree=3.0, seed=seed)
    nprocs = draw(st.integers(min_value=1, max_value=min(5, n)))
    assignment = draw(
        st.lists(
            st.integers(min_value=0, max_value=nprocs - 1),
            min_size=n,
            max_size=n,
        )
    )
    iterations = draw(st.integers(min_value=1, max_value=6))
    return graph, Partition.from_assignment(graph, assignment, nprocs), iterations


@given(platform_cases())
@settings(max_examples=25, deadline=None)
def test_platform_matches_sequential_semantics(case):
    graph, partition, iterations = case
    result = run_platform(
        graph,
        make_average_fn(0.0),
        partition,
        config=PlatformConfig(iterations=iterations),
        machine=IDEAL,
        init_value=float,
    )
    expected = sequential_average(graph, iterations)
    assert result.values.keys() == expected.keys()
    for gid, value in expected.items():
        assert result.values[gid] == pytest.approx(value, abs=1e-12)


@given(platform_cases(), st.integers(min_value=2, max_value=4))
@settings(max_examples=15, deadline=None)
def test_dynamic_lb_is_semantically_invisible(case, lb_period):
    graph, partition, iterations = case
    schedule = ImbalanceSchedule(
        windows=((10**9, 0.0, 0.5),), heavy_grain=1e-3, light_grain=1e-4
    )
    node_fn = make_imbalanced_average_fn(schedule)
    base = run_platform(
        graph, node_fn, partition,
        config=PlatformConfig(iterations=iterations),
        machine=IDEAL, init_value=float,
    )
    dyn = run_platform(
        graph, node_fn, partition,
        config=PlatformConfig(
            iterations=iterations,
            dynamic_load_balancing=True,
            lb_period=lb_period,
            validate_each_iteration=True,
        ),
        machine=IDEAL,
        init_value=float,
        balancer=GreedyPairBalancer(0.05),
    )
    for gid in base.values:
        assert dyn.values[gid] == pytest.approx(base.values[gid], abs=1e-12)
    # ownership is still a partition of the node set
    assert sorted(
        gid for gid in graph.nodes()
    ) == sorted(range(1, graph.num_nodes + 1))
    assert len(dyn.final_assignment) == graph.num_nodes


@given(platform_cases())
@settings(max_examples=10, deadline=None)
def test_repartition_mode_is_semantically_invisible(case):
    graph, partition, iterations = case
    schedule = ImbalanceSchedule(
        windows=((10**9, 0.0, 0.5),), heavy_grain=1e-3, light_grain=1e-4
    )
    node_fn = make_imbalanced_average_fn(schedule)
    base = run_platform(
        graph, node_fn, partition,
        config=PlatformConfig(iterations=iterations),
        machine=IDEAL, init_value=float,
    )
    repart = run_platform(
        graph, node_fn, partition,
        config=PlatformConfig(
            iterations=iterations,
            dynamic_load_balancing=True,
            lb_period=2,
            rebalance_mode="repartition",
            validate_each_iteration=True,
        ),
        machine=IDEAL,
        init_value=float,
    )
    for gid in base.values:
        assert repart.values[gid] == pytest.approx(base.values[gid], abs=1e-12)
