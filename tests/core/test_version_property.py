"""Property tests: version counters survive every state-surgery path.

The delta halo exchange leans on per-node version counters (how many times
the committed value changed since init).  If a checkpoint round-trip or a
migration hand-off dropped or reset them inconsistently, owner and replica
counters would diverge and the change-tracking invariant -- sparse results
bit-identical to dense -- would silently rot.  Hypothesis drives randomized
commit histories through both paths.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import NodeStore
from repro.graphs import Graph

NODES = 6

#: One randomized "sweep": gid -> freshly computed value.  Values are drawn
#: from a tiny pool so re-committing an unchanged value (version must NOT
#: bump) happens often.
sweeps = st.lists(
    st.dictionaries(
        st.integers(min_value=1, max_value=NODES),
        st.integers(min_value=0, max_value=3),
        max_size=NODES,
    ),
    max_size=6,
)


def path_graph() -> Graph:
    return Graph.from_edges(
        NODES, [(i, i + 1) for i in range(1, NODES)]
    )


def make_store(rank: int, assignment: list[int]) -> NodeStore:
    return NodeStore(rank, path_graph(), assignment, lambda gid: gid * 10)


def apply_sweeps(store: NodeStore, history) -> None:
    for sweep in history:
        for gid, value in sweep.items():
            record = store.data_records.get(gid)
            if record is not None and store.owns(gid):
                record.most_recent_data = value
        store.commit_owned()


def versions(store: NodeStore) -> dict[int, int]:
    return {gid: r.version for gid, r in sorted(store.data_records.items())}


class TestCaptureRestoreRoundTrip:
    @settings(max_examples=40, deadline=None)
    @given(history=sweeps)
    def test_snapshot_restores_versions_exactly(self, history):
        assignment = [0] * 3 + [1] * 3
        store = make_store(0, list(assignment))
        apply_sweeps(store, history)
        snapshot = store.capture_state()
        expected = versions(store)

        # Wreck the live state, then restore: everything -- committed data,
        # pending values, versions -- must come back bit-identical.
        apply_sweeps(store, [{gid: 99 for gid in range(1, NODES + 1)}])
        store.data_records[1].most_recent_data = "garbage"
        store.restore_state(snapshot)

        assert versions(store) == expected
        assert store.capture_state() == snapshot

    @settings(max_examples=40, deadline=None)
    @given(history=sweeps, extra=sweeps)
    def test_version_only_counts_real_changes(self, history, extra):
        """Version equals the number of *distinct* consecutive committed
        values -- replaying the identical history on a fresh store yields
        identical counters (determinism of the counting rule)."""
        a = make_store(0, [0] * NODES)
        b = make_store(0, [0] * NODES)
        apply_sweeps(a, history)
        apply_sweeps(b, history)
        assert versions(a) == versions(b)
        # Committing the already-committed value is a no-op for versions.
        before = versions(a)
        for record in a.data_records.values():
            record.most_recent_data = record.data
        a.commit_owned()
        assert versions(a) == before


class TestAdoptionRoundTrip:
    @settings(max_examples=40, deadline=None)
    @given(history=sweeps)
    def test_migration_ships_versions(self, history):
        """After release/adopt surgery the idle rank's counters for the
        shipped records match the busy rank's exactly."""
        assignment = [0, 0, 0, 1, 1, 1]
        busy = make_store(0, list(assignment))
        idle = make_store(1, list(assignment))
        apply_sweeps(busy, history)
        # Mirror the owner's committed boundary values onto the idle rank's
        # shadows the way the dense exchange would.
        for gid in idle.shadow_gids():
            idle.update_shadow(gid, busy.data_records[gid].data)

        # Migrate node 3 from rank 0 to rank 1 (the migration.py payload
        # format: (gid, value, version) triples).
        busy.assignment[2] = 1
        idle.assignment[2] = 1
        released = busy.release_node(3)
        payload = [
            (v, busy.data_records[v].data, busy.data_records[v].version)
            for v in released.neighboring_nodes
        ]
        payload.append((3, released.data.data, released.data.version))
        own = next(entry for entry in payload if entry[0] == 3)
        record = idle.ensure_record(3, own[1], version=own[2])
        record.data = own[1]
        idle.adopt_node(3, [entry for entry in payload if entry[0] != 3])
        busy.refresh_ownership()
        idle.refresh_ownership()

        for gid, _value, version in payload:
            assert idle.data_records[gid].version == version, gid
        busy.check_invariants()
        idle.check_invariants()
