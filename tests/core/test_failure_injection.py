"""Failure-injection tests: the platform must fail loudly and promptly, not
hang or corrupt state, when plug-ins misbehave."""

from __future__ import annotations

import pytest

from repro.apps import make_average_fn
from repro.core import ICPlatform, PlatformConfig
from repro.graphs import hex32
from repro.mpi import CommAbortedError, DeadlockError, IDEAL, run_mpi
from repro.partitioning import MetisLikePartitioner, Partition


@pytest.fixture(scope="module")
def graph():
    return hex32()


@pytest.fixture(scope="module")
def partition(graph):
    return MetisLikePartitioner(seed=1).partition(graph, 4)


class TestNodeFunctionFailures:
    def test_exception_in_node_fn_propagates(self, graph, partition):
        def exploding(node, ctx):
            if node.global_id == 17 and node.iteration == 3:
                raise RuntimeError("node 17 exploded")
            return node.value

        platform = ICPlatform(graph, exploding, config=PlatformConfig(iterations=5))
        with pytest.raises(RuntimeError, match="node 17 exploded"):
            platform.run(partition, deadlock_timeout=5.0)

    def test_exception_on_one_rank_does_not_hang_peers(self, graph, partition):
        """Ranks blocked on the dead rank's shadows abort instead of
        waiting forever."""
        owner_of_1 = partition.owner(1)

        def exploding(node, ctx):
            if ctx.rank == owner_of_1 and node.iteration == 2:
                raise ValueError("rank down")
            ctx.work(1e-5)
            return node.value

        platform = ICPlatform(graph, exploding, config=PlatformConfig(iterations=10))
        with pytest.raises(ValueError, match="rank down"):
            platform.run(partition, deadlock_timeout=5.0)

    def test_negative_work_charge_rejected(self, graph, partition):
        def negative(node, ctx):
            ctx.work(-1.0)
            return node.value

        platform = ICPlatform(graph, negative, config=PlatformConfig(iterations=2))
        with pytest.raises(ValueError):
            platform.run(partition, deadlock_timeout=5.0)


class TestBalancerFailures:
    def test_balancer_exception_propagates(self, graph, partition):
        class BrokenBalancer:
            def find_pairs(self, exec_times, edges):
                raise ZeroDivisionError("balancer bug")

        platform = ICPlatform(
            graph,
            make_average_fn(1e-4),
            config=PlatformConfig(
                iterations=10, dynamic_load_balancing=True, lb_period=5
            ),
            balancer=BrokenBalancer(),
        )
        with pytest.raises(ZeroDivisionError):
            platform.run(partition, deadlock_timeout=5.0)

    def test_balancer_nominating_invalid_pair_fails_loudly(self, graph, partition):
        from repro.core import BusyIdlePair

        class LyingBalancer:
            def find_pairs(self, exec_times, edges):
                # busy and idle are not graph-adjacent: selection returns
                # None and the pair is skipped -- the run must SURVIVE this
                # (a plug-in may legitimately nominate stale pairs).
                return [BusyIdlePair(busy=0, idle=0)]

        platform = ICPlatform(
            graph,
            make_average_fn(1e-4),
            config=PlatformConfig(
                iterations=10, dynamic_load_balancing=True, lb_period=5
            ),
            balancer=LyingBalancer(),
        )
        result = platform.run(partition, deadlock_timeout=5.0)
        assert len(result.migrations) == 0


class TestProtocolFailures:
    def test_mismatched_collective_order_deadlocks_cleanly(self):
        """A rank skipping a collective is detected, not hung."""

        def skewed(comm):
            if comm.rank == 0:
                comm.barrier()
            # rank 1 never enters the barrier but waits on a message
            else:
                comm.recv(source=0, tag=77)

        with pytest.raises((DeadlockError, CommAbortedError)):
            run_mpi(skewed, 2, machine=IDEAL, deadlock_timeout=1.0)

    def test_wrong_graph_partition_pairing(self, graph):
        from repro.graphs import hex64

        foreign = MetisLikePartitioner(seed=1).partition(hex64(), 4)
        platform = ICPlatform(graph, make_average_fn())
        with pytest.raises(ValueError):
            platform.run(foreign)

    def test_partition_mutation_is_impossible(self, graph, partition):
        with pytest.raises((AttributeError, TypeError)):
            partition.assignment[0] = 3  # tuple: immutable

    def test_run_is_repeatable_after_failure(self, graph, partition):
        """A failed run must not poison subsequent runs (fresh clusters)."""
        def exploding(node, ctx):
            raise RuntimeError("once")

        platform = ICPlatform(graph, exploding, config=PlatformConfig(iterations=1))
        with pytest.raises(RuntimeError):
            platform.run(partition, deadlock_timeout=5.0)
        # same platform object, healthy function now
        healthy = ICPlatform(
            graph, make_average_fn(0.0), config=PlatformConfig(iterations=2)
        )
        result = healthy.run(partition, machine=IDEAL)
        assert len(result.values) == 32
