"""Tests for the per-iteration execution trace."""

from __future__ import annotations

import pytest

from repro.apps import make_average_fn
from repro.apps.imbalance import ImbalanceSchedule, make_imbalanced_average_fn
from repro.core import (
    ExecutionTrace,
    GreedyPairBalancer,
    IterationRecord,
    PlatformConfig,
    run_platform,
)
from repro.graphs import hex64
from repro.partitioning import MetisLikePartitioner


def rec(rank, iteration, start, end, compute, comm=0.0, migrations=0):
    return IterationRecord(
        rank=rank, iteration=iteration, start=start, end=end,
        compute=compute, comm_overhead=comm, migrations=migrations,
    )


class TestExecutionTrace:
    def test_duration(self):
        assert rec(0, 1, 1.0, 3.5, 1.0).duration == 2.5

    def test_iterations_and_ranks(self):
        trace = ExecutionTrace([rec(0, 1, 0, 1, 0.5), rec(1, 2, 1, 2, 0.5)])
        assert trace.iterations() == [1, 2]
        assert trace.ranks() == [0, 1]
        assert len(trace) == 2

    def test_makespan(self):
        trace = ExecutionTrace([
            rec(0, 1, 0.0, 1.0, 0.5),
            rec(1, 1, 0.2, 1.8, 0.5),
        ])
        assert trace.makespan(1) == pytest.approx(1.8)

    def test_makespan_missing_iteration(self):
        with pytest.raises(KeyError):
            ExecutionTrace().makespan(1)

    def test_compute_imbalance(self):
        trace = ExecutionTrace([
            rec(0, 1, 0, 1, 3.0),
            rec(1, 1, 0, 1, 1.0),
        ])
        assert trace.compute_imbalance(1) == pytest.approx(1.5)

    def test_imbalance_of_idle_iteration_is_one(self):
        trace = ExecutionTrace([rec(0, 1, 0, 1, 0.0), rec(1, 1, 0, 1, 0.0)])
        assert trace.compute_imbalance(1) == 1.0

    def test_utilization(self):
        trace = ExecutionTrace([rec(0, 1, 0.0, 2.0, 1.0), rec(0, 2, 2.0, 4.0, 0.5)])
        assert trace.utilization(0) == pytest.approx(1.5 / 4.0)
        with pytest.raises(KeyError):
            trace.utilization(5)

    def test_total_migrations(self):
        trace = ExecutionTrace([rec(0, 1, 0, 1, 0, migrations=2),
                                rec(1, 1, 0, 1, 0, migrations=1)])
        assert trace.total_migrations() == 3

    def test_render(self):
        trace = ExecutionTrace([rec(0, 1, 0, 1, 2.0), rec(1, 1, 0, 1, 1.0)])
        text = trace.render()
        assert "makespan" in text
        assert "1.333" in text  # imbalance 2/1.5


class TestPlatformTracing:
    @pytest.fixture(scope="class")
    def traced_run(self):
        graph = hex64()
        partition = MetisLikePartitioner(seed=1).partition(graph, 4)
        schedule = ImbalanceSchedule(
            windows=((10**9, 0.0, 0.5),), heavy_grain=3e-3, light_grain=0.3e-3
        )
        return run_platform(
            graph,
            make_imbalanced_average_fn(schedule),
            partition,
            config=PlatformConfig(
                iterations=40, dynamic_load_balancing=True, lb_period=10,
                track_trace=True,
            ),
            balancer=GreedyPairBalancer(0.25),
        )

    def test_every_rank_every_iteration_recorded(self, traced_run):
        trace = traced_run.trace
        assert trace.iterations() == list(range(1, 41))
        assert trace.ranks() == [0, 1, 2, 3]
        assert len(trace) == 160

    def test_compute_sums_match_phase_totals(self, traced_run):
        traced_compute = sum(r.compute for r in traced_run.trace.records)
        phase_compute = sum(p.compute for p in traced_run.phases)
        assert traced_compute == pytest.approx(phase_compute)

    def test_balancer_flattens_imbalance(self, traced_run):
        """The headline use of the trace: watch imbalance fall across LB
        rounds."""
        series = dict(traced_run.trace.imbalance_series())
        early = series[5]   # before any LB
        late = series[40]   # after 4 LB rounds
        assert late < early

    def test_migrations_attributed_to_lb_iterations(self, traced_run):
        moving = {
            r.iteration for r in traced_run.trace.records if r.migrations > 0
        }
        assert moving  # some migrations happened
        assert all(it % 10 == 0 for it in moving)

    def test_tracing_off_by_default(self):
        graph = hex64()
        partition = MetisLikePartitioner(seed=1).partition(graph, 2)
        result = run_platform(
            graph, make_average_fn(), partition, config=PlatformConfig(iterations=3)
        )
        assert len(result.trace) == 0

    def test_tracing_does_not_change_timing(self):
        graph = hex64()
        partition = MetisLikePartitioner(seed=1).partition(graph, 4)
        base = run_platform(
            graph, make_average_fn(), partition,
            config=PlatformConfig(iterations=10),
        )
        traced = run_platform(
            graph, make_average_fn(), partition,
            config=PlatformConfig(iterations=10, track_trace=True),
        )
        assert traced.elapsed == base.elapsed
