"""Tests for load-aware repartitioning from scratch."""

from __future__ import annotations

import pytest

from repro.apps.imbalance import ImbalanceSchedule, make_imbalanced_average_fn
from repro.core import (
    PlatformConfig,
    measured_node_weights,
    run_platform,
)
from repro.graphs import hex32, hex64
from repro.mpi import IDEAL
from repro.partitioning import MetisLikePartitioner

PERSISTENT = ImbalanceSchedule(
    windows=((10**9, 0.0, 0.5),), heavy_grain=3e-3, light_grain=0.3e-3
)


class TestMeasuredNodeWeights:
    def test_empty_loads_all_ones(self):
        g = hex32()
        assert measured_node_weights(g, {}) == [1] * 32

    def test_heavier_nodes_get_heavier_weights(self):
        g = hex32()
        loads = {gid: (3e-3 if gid <= 16 else 0.3e-3) for gid in g.nodes()}
        weights = measured_node_weights(g, loads)
        assert weights[0] > weights[31]
        assert weights[0] == weights[15]

    def test_ratio_preserved_roughly(self):
        g = hex32()
        loads = {gid: (10e-3 if gid == 1 else 1e-3) for gid in g.nodes()}
        weights = measured_node_weights(g, loads)
        assert 5 <= weights[0] / weights[1] <= 15

    def test_unmeasured_nodes_get_median(self):
        g = hex32()
        loads = {gid: 2e-3 for gid in range(1, 17)}
        weights = measured_node_weights(g, loads)
        assert weights[20] == weights[0]

    def test_all_weights_at_least_one(self):
        g = hex32()
        loads = {1: 5.0, 2: 1e-9}
        assert min(measured_node_weights(g, loads)) >= 1


class TestRepartitionMode:
    @pytest.fixture(scope="class")
    def graph(self):
        return hex64()

    @pytest.fixture(scope="class")
    def partition(self, graph):
        return MetisLikePartitioner(seed=1).partition(graph, 4)

    def test_results_identical_to_static(self, graph, partition):
        node_fn = make_imbalanced_average_fn(PERSISTENT)
        static = run_platform(
            graph, node_fn, partition,
            config=PlatformConfig(iterations=25), machine=IDEAL, init_value=float,
        )
        repart = run_platform(
            graph, node_fn, partition,
            config=PlatformConfig(
                iterations=25, dynamic_load_balancing=True, lb_period=10,
                rebalance_mode="repartition", validate_each_iteration=True,
            ),
            machine=IDEAL, init_value=float,
        )
        assert repart.repartitions >= 1
        for gid in static.values:
            assert repart.values[gid] == pytest.approx(static.values[gid], abs=1e-12)

    def test_repartition_balances_persistent_imbalance(self, graph, partition):
        """After one load-aware repartition, heavy nodes spread evenly."""
        node_fn = make_imbalanced_average_fn(PERSISTENT)
        result = run_platform(
            graph, node_fn, partition,
            config=PlatformConfig(
                iterations=30, dynamic_load_balancing=True, lb_period=10,
                rebalance_mode="repartition",
            ),
        )
        heavy = set(range(1, 33))
        per_proc = [0] * 4
        for gid, proc in enumerate(result.final_assignment, start=1):
            if gid in heavy:
                per_proc[proc] += 1
        # heavy nodes are no longer concentrated: every proc holds some,
        # none holds more than half of them.
        assert min(per_proc) >= 2
        assert max(per_proc) <= 16

    def test_repartition_beats_static_under_imbalance(self, graph, partition):
        node_fn = make_imbalanced_average_fn(PERSISTENT)
        static = run_platform(
            graph, node_fn, partition, config=PlatformConfig(iterations=60)
        )
        repart = run_platform(
            graph, node_fn, partition,
            config=PlatformConfig(
                iterations=60, dynamic_load_balancing=True, lb_period=10,
                rebalance_mode="repartition",
            ),
        )
        assert repart.elapsed < static.elapsed

    def test_no_change_when_balanced(self, graph, partition):
        from repro.apps import make_average_fn

        result = run_platform(
            graph, make_average_fn(1e-3), partition,
            config=PlatformConfig(
                iterations=20, dynamic_load_balancing=True, lb_period=10,
                rebalance_mode="repartition",
            ),
        )
        # Uniform loads: the weighted repartition may still differ from the
        # original partition (different weights scale), but the run must
        # stay correct and cheap; at most the 2 scheduled repartitions fire.
        assert result.repartitions <= 2
        assert len(result.values) == 64

    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError):
            PlatformConfig(rebalance_mode="teleport")
