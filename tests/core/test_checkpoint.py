"""Checkpoint/restart tests: lossless serialization, crash recovery, and
the end-to-end determinism acceptance scenario."""

from __future__ import annotations

import pytest

from repro.apps import make_average_fn, make_jacobi_fn, hot_edge_plate
from repro.apps.battlefield import BattlefieldApp, opposing_fronts, simulate_sequential
from repro.core import (
    Checkpoint,
    CheckpointError,
    Checkpointer,
    ICPlatform,
    NodeStore,
    PlatformConfig,
)
from repro.graphs import HexGrid, hex32, hex64
from repro.mpi import FaultPlan, IDEAL
from repro.partitioning import MetisLikePartitioner


def make_store(graph, assignment, init_value, rank=0):
    return NodeStore(rank, graph, list(assignment), init_value)


def node_values(store: NodeStore):
    return {gid: record.data for gid, record in store.data_records.items()}


class TestCheckpointer:
    def test_periodic_schedule(self):
        ck = Checkpointer(period=5)
        assert [it for it in range(1, 21) if ck.due(it)] == [5, 10, 15, 20]

    def test_zero_period_never_due(self):
        ck = Checkpointer(period=0)
        assert not any(ck.due(it) for it in range(1, 50))

    def test_negative_period_rejected(self):
        with pytest.raises(ValueError):
            Checkpointer(period=-1)

    def test_restore_without_checkpoint_raises(self):
        graph = hex32()
        store = make_store(graph, [0] * graph.num_nodes, lambda g: g)
        with pytest.raises(CheckpointError):
            Checkpointer().restore(store)

    def test_unpicklable_value_fails_loudly(self):
        graph = hex32()
        store = make_store(graph, [0] * graph.num_nodes, lambda g: g)
        store.data_records[1].data = lambda: None  # not picklable
        with pytest.raises(CheckpointError, match="serialize"):
            Checkpointer().take(3, store)

    def test_take_tracks_latest_and_count(self):
        graph = hex32()
        store = make_store(graph, [0] * graph.num_nodes, lambda g: g)
        ck = Checkpointer(period=2)
        first = ck.take(0, store)
        second = ck.take(2, store, window_exec_time=1.5)
        assert isinstance(first, Checkpoint)
        assert first.nbytes > 0
        assert ck.last is second
        assert ck.taken == 2
        iteration, extras = ck.restore(store)
        assert iteration == 2
        assert extras == {"window_exec_time": 1.5}

    def test_retention_keeps_last_k(self):
        graph = hex32()
        store = make_store(graph, [0] * graph.num_nodes, lambda g: g)
        ck = Checkpointer(period=1, keep=2)
        for iteration in range(5):
            ck.take(iteration, store)
        assert ck.taken == 5
        assert [c.iteration for c in ck.snapshots] == [3, 4]
        assert ck.last.iteration == 4

    def test_retention_default_is_two(self):
        graph = hex32()
        store = make_store(graph, [0] * graph.num_nodes, lambda g: g)
        ck = Checkpointer(period=1)
        for iteration in range(4):
            ck.take(iteration, store)
        assert len(ck.snapshots) == 2

    def test_retention_of_one(self):
        graph = hex32()
        store = make_store(graph, [0] * graph.num_nodes, lambda g: g)
        ck = Checkpointer(period=1, keep=1)
        ck.take(0, store)
        ck.take(1, store)
        assert [c.iteration for c in ck.snapshots] == [1]
        iteration, _ = ck.restore(store)
        assert iteration == 1

    def test_retention_below_one_rejected(self):
        with pytest.raises(ValueError):
            Checkpointer(period=1, keep=0)


class TestDiscardSince:
    """``discard_since`` drops snapshots tainted by a corruption detected
    late: everything taken at or after the flip iteration goes, and the
    next restore falls back to the newest *retained* snapshot."""

    def make_ck(self, iterations=(0, 5, 10), keep=2):
        graph = hex32()
        store = make_store(graph, [0] * graph.num_nodes, lambda g: g)
        ck = Checkpointer(period=5, keep=keep)
        for iteration in iterations:
            store.data_records[1].most_recent_data = float(iteration)
            store.commit_owned()
            ck.take(iteration, store)
        return ck, store

    def test_drops_tainted_and_restores_older(self):
        ck, store = self.make_ck()
        assert [c.iteration for c in ck.snapshots] == [5, 10]
        assert ck.discard_since(8) == 1
        assert [c.iteration for c in ck.snapshots] == [5]
        iteration, _ = ck.restore(store)
        assert iteration == 5
        assert store.data_records[1].data == 5.0

    def test_boundary_is_inclusive(self):
        # A snapshot taken AT the flip iteration already holds the corrupt
        # value, so ``discard_since(5)`` must drop iteration 5 too.
        ck, _ = self.make_ck()
        assert ck.discard_since(5) == 2
        assert ck.snapshots == []

    def test_untainted_suffix_is_noop(self):
        ck, _ = self.make_ck()
        assert ck.discard_since(11) == 0
        assert [c.iteration for c in ck.snapshots] == [5, 10]

    def test_discarding_everything_makes_restore_fail_loudly(self):
        ck, store = self.make_ck()
        ck.discard_since(0)
        assert ck.snapshots == []
        with pytest.raises(CheckpointError):
            ck.restore(store)

    def test_last_tracks_surviving_newest(self):
        ck, _ = self.make_ck()
        ck.discard_since(8)
        assert ck.last.iteration == 5


class TestStoreRoundTrip:
    """capture_state/restore_state must be lossless for every application's
    value type: floats (average/diffusion) and rich objects (battlefield)."""

    def scenarios(self):
        hex_graph = hex32()
        plate, _, plate_init = hot_edge_plate(6, 6)
        bf = BattlefieldApp(
            opposing_fronts(grid=HexGrid(6, 6), depth=2, strength_per_hex=5.0)
        )
        return [
            ("average", hex_graph, lambda gid: float(gid)),
            ("diffusion", plate, plate_init),
            ("battlefield", bf.graph(), bf.init_value),
        ]

    @pytest.mark.parametrize("index", [0, 1, 2], ids=["average", "diffusion", "battlefield"])
    def test_capture_restore_identity(self, index):
        name, graph, init_value = self.scenarios()[index]
        assignment = list(
            MetisLikePartitioner(seed=0).partition(graph, 3).assignment
        )
        store = make_store(graph, assignment, init_value, rank=1)
        snapshot = store.capture_state()
        reference = node_values(store)

        # Wreck the live store, then restore.
        for record in store.data_records.values():
            record.most_recent_data = "garbage"
        store.commit_owned()
        store.restore_state(snapshot)

        assert node_values(store) == reference
        assert store.capture_state() == snapshot
        store.check_invariants()

    @pytest.mark.parametrize("index", [0, 1, 2], ids=["average", "diffusion", "battlefield"])
    def test_pickled_checkpoint_round_trip(self, index):
        """The full Checkpointer path (pickle included) is lossless too."""
        name, graph, init_value = self.scenarios()[index]
        assignment = list(
            MetisLikePartitioner(seed=0).partition(graph, 3).assignment
        )
        store = make_store(graph, assignment, init_value, rank=0)
        reference = node_values(store)
        ck = Checkpointer()
        ck.take(7, store, migrations=[], repartitions=0)

        for record in store.data_records.values():
            record.most_recent_data = None
        store.commit_owned()
        iteration, extras = ck.restore(store)

        assert iteration == 7
        assert extras["migrations"] == []
        assert node_values(store) == reference
        store.check_invariants()

    def test_restore_rejects_foreign_rank(self):
        graph = hex32()
        store0 = make_store(graph, [0] * graph.num_nodes, lambda g: g, rank=0)
        store1 = make_store(graph, [0] * graph.num_nodes, lambda g: g, rank=1)
        with pytest.raises(ValueError):
            store1.restore_state(store0.capture_state())


class TestCrashRecovery:
    """Crash + restart must reproduce the fault-free answers exactly."""

    def test_diffusion_survives_crash(self):
        graph, boundary, init_value = hot_edge_plate(6, 6)
        partition = MetisLikePartitioner(seed=0).partition(graph, 3)
        config = PlatformConfig(iterations=12, checkpoint_period=4)

        def run(faults):
            platform = ICPlatform(
                graph, make_jacobi_fn(boundary), init_value=init_value, config=config
            )
            return platform.run(partition, machine=IDEAL, faults=faults)

        clean = run(None)
        crashed = run(FaultPlan.parse("seed=1,crash=1@7"))
        assert crashed.values == clean.values
        assert crashed.recoveries == 1
        assert crashed.fault_report.crashes == 1

    def test_battlefield_survives_crash_multi_round(self):
        """comm_rounds=2 app: the checkpoint cut must sit between whole
        iterations, not between rounds."""
        app = BattlefieldApp(
            opposing_fronts(grid=HexGrid(6, 6), depth=2, strength_per_hex=5.0)
        )
        graph = app.graph()
        partition = MetisLikePartitioner(seed=0).partition(graph, 3)
        config = app.platform_config(steps=6, checkpoint_period=2)

        platform = ICPlatform(
            graph, app.node_fns(), init_value=app.init_value, config=config
        )
        result = platform.run(
            partition, machine=IDEAL, faults=FaultPlan.parse("seed=2,crash=0@4")
        )
        assert result.recoveries == 1
        assert result.values == simulate_sequential(app, 6)

    def test_crash_without_periodic_checkpoints_replays_from_baseline(self):
        graph = hex32()
        partition = MetisLikePartitioner(seed=0).partition(graph, 2)
        config = PlatformConfig(iterations=6, checkpoint_period=0)

        def run(faults):
            platform = ICPlatform(graph, make_average_fn(1e-4), config=config)
            return platform.run(partition, machine=IDEAL, faults=faults)

        clean = run(None)
        crashed = run(FaultPlan.parse("crash=1@4"))
        assert crashed.values == clean.values
        assert crashed.recoveries == 1
        # baseline only: one checkpoint per rank
        assert crashed.checkpoints == 2

    def test_multiple_crashes(self):
        graph = hex32()
        partition = MetisLikePartitioner(seed=0).partition(graph, 3)
        config = PlatformConfig(iterations=10, checkpoint_period=3)

        def run(faults):
            platform = ICPlatform(graph, make_average_fn(1e-4), config=config)
            return platform.run(partition, machine=IDEAL, faults=faults)

        clean = run(None)
        crashed = run(FaultPlan.parse("crash=0@2,crash=2@8"))
        assert crashed.values == clean.values
        assert crashed.recoveries == 2
        assert crashed.fault_report.crashes == 2

    def test_crash_with_dynamic_load_balancing(self):
        """The rollback must restore the migration log and load window, so
        the replayed balancer re-decides the same moves."""
        from repro.apps.imbalance import ImbalanceSchedule, make_imbalanced_average_fn

        graph = hex64()
        partition = MetisLikePartitioner(seed=1).partition(graph, 4)
        schedule = ImbalanceSchedule(windows=((10**9, 0.0, 0.5),))
        config = PlatformConfig(
            iterations=16,
            dynamic_load_balancing=True,
            lb_period=5,
            checkpoint_period=4,
            validate_each_iteration=True,
        )

        def run(faults):
            platform = ICPlatform(
                graph, make_imbalanced_average_fn(schedule), config=config
            )
            return platform.run(partition, machine=IDEAL, faults=faults)

        clean = run(None)
        crashed = run(FaultPlan.parse("seed=4,crash=3@12"))
        assert crashed.values == clean.values
        assert crashed.recoveries == 1
        assert crashed.migrations == clean.migrations
        assert crashed.final_assignment == clean.final_assignment


class TestAcceptanceDeterminism:
    def test_seeded_plan_replays_bit_identically(self):
        """The PR's acceptance scenario: crash rank 2 at iteration 40 with
        5% message delay, run twice -> identical virtual end-times and
        final node states."""
        graph = hex64()
        partition = MetisLikePartitioner(seed=1).partition(graph, 4)
        config = PlatformConfig(
            iterations=45, checkpoint_period=10, track_trace=True
        )
        plan = FaultPlan.parse("seed=42,delay=0.05,crash=2@40")

        def run():
            platform = ICPlatform(graph, make_average_fn(1e-4), config=config)
            return platform.run(partition, faults=plan)

        first = run()
        second = run()
        assert first.recoveries == 1
        assert first.elapsed == second.elapsed
        assert first.values == second.values
        assert first.trace.records == second.trace.records
        assert [p.as_dict() for p in first.phases] == [
            p.as_dict() for p in second.phases
        ]
        # the recovery overhead is visible in the rendered trace
        assert "recovery:" in first.trace.render()
        assert first.trace.recovery_overhead() > 0.0


class TestBspCheckpointing:
    def test_bsp_crash_rollback_matches_clean_run(self):
        from repro.core.bsp import run_bsp
        from repro.mpi import run_mpi

        def prog(comm):
            def step(superstep, state, inbox, c):
                total = state + sum(inbox)
                out = [((c.rank + 1) % c.size, c.rank + superstep)]
                return total, out, superstep < 6
            return run_bsp(comm, step, 0, max_supersteps=10, checkpoint_every=3)

        clean = run_mpi(prog, 4)
        crashed = run_mpi(prog, 4, faults=FaultPlan.parse("seed=3,crash=1@5"))
        # states AND logical superstep counts both match the clean run
        assert crashed == clean

    def test_bsp_crash_before_first_checkpoint_uses_baseline(self):
        from repro.core.bsp import run_bsp
        from repro.mpi import run_mpi

        def prog(comm):
            def step(superstep, state, inbox, c):
                return state + comm.rank + sum(inbox), [((c.rank + 1) % c.size, 1)], superstep < 4
            return run_bsp(comm, step, 0, max_supersteps=8, checkpoint_every=0)

        clean = run_mpi(prog, 3)
        crashed = run_mpi(prog, 3, faults=FaultPlan.parse("crash=2@3"))
        assert crashed == clean
