"""Tests for the communication buffers."""

from __future__ import annotations

import pytest

from repro.core import BUFFER_RECORD_TYPE, CommBuffers


class TestCommBuffers:
    def test_pack_and_iterate(self):
        buffers = CommBuffers(4)
        buffers.pack(1, 10, 100)
        buffers.pack(1, 11, 110)
        buffers.pack(3, 12, 120)
        assert buffers.outgoing(1) == [(10, 100), (11, 110)]
        assert buffers.nonempty_procs() == [1, 3]
        assert buffers.total_records() == 3
        assert dict(iter(buffers)) == {1: [(10, 100), (11, 110)], 3: [(12, 120)]}

    def test_reset(self):
        buffers = CommBuffers(2)
        buffers.pack(0, 1, 2)
        buffers.reset()
        assert buffers.total_records() == 0
        assert buffers.nonempty_procs() == []

    def test_invalid_proc_rejected(self):
        buffers = CommBuffers(2)
        with pytest.raises(IndexError):
            buffers.pack(2, 1, 2)
        with pytest.raises(IndexError):
            buffers.pack(-1, 1, 2)

    def test_invalid_nprocs_rejected(self):
        with pytest.raises(ValueError):
            CommBuffers(0)

    def test_int_records_use_committed_struct_size(self):
        buffers = CommBuffers(2)
        buffers.pack(1, 5, 42)
        buffers.pack(1, 6, 43)
        assert buffers.nbytes(1) == 2 * BUFFER_RECORD_TYPE.size_of()

    def test_fat_records_use_estimator(self):
        buffers = CommBuffers(2)
        buffers.pack(1, 5, [1.0] * 10)
        # 4 bytes id + 16 container + 10 floats
        assert buffers.nbytes(1) == 4 + 16 + 80

    def test_record_with_nbytes_attribute(self):
        class Fat:
            nbytes = 1000

        buffers = CommBuffers(2)
        buffers.pack(0, 1, Fat())
        assert buffers.nbytes(0) == 1004

    def test_empty_buffer_nbytes_zero(self):
        assert CommBuffers(2).nbytes(1) == 0
