"""Tests for the BSP execution layer and the vertex-centric API."""

from __future__ import annotations

import pytest

from repro.core.bsp import VertexContext, run_bsp, run_vertex_program
from repro.graphs import Graph, cycle_graph, hex32, path_graph
from repro.mpi import IDEAL, SimCluster
from repro.partitioning import MetisLikePartitioner, RoundRobinPartitioner


def run_on_cluster(fn, nprocs):
    return SimCluster(nprocs, machine=IDEAL, deadlock_timeout=15.0).run(fn)


class TestRawBsp:
    def test_token_ring(self):
        """Pass a counter around the ring once per superstep; stop at 3 laps."""

        def fn(comm):
            def step(superstep, state, inbox, comm_):
                token = inbox[0] if inbox else (comm_.rank == 0 and 0)
                if inbox or (superstep == 0 and comm_.rank == 0):
                    value = inbox[0] if inbox else 0
                    if value >= 3 * comm_.size:
                        return value, [], False
                    return value, [((comm_.rank + 1) % comm_.size, value + 1)], False
                return state, [], False

            return run_bsp(comm, step, None, max_supersteps=50)

        results = run_on_cluster(fn, 4)
        values = [state for state, _ in results]
        assert max(v for v in values if v is not None and v is not False) >= 11

    def test_halts_when_quiet(self):
        def fn(comm):
            def step(superstep, state, inbox, comm_):
                return "done", [], False  # everyone halts instantly

            return run_bsp(comm, step, "start")

        results = run_on_cluster(fn, 3)
        assert all(state == "done" for state, steps in results)
        assert all(steps <= 2 for _, steps in results)

    def test_max_supersteps_bound(self):
        def fn(comm):
            def step(superstep, state, inbox, comm_):
                return superstep, [(comm_.rank, "ping")], True  # never quiet

            return run_bsp(comm, step, None, max_supersteps=7)

        results = run_on_cluster(fn, 2)
        assert all(steps == 7 for _, steps in results)


class _MaxValueProgram:
    """Classic Pregel example: flood-fill the global maximum vertex value."""

    def initial_value(self, gid: int, graph: Graph) -> int:
        return gid * 7 % 23  # arbitrary but deterministic

    def compute(self, value, inbox, ctx: VertexContext):
        new_value = max([value, *inbox])
        if new_value != value or ctx.superstep == 0:
            ctx.send_to_neighbors(new_value)
        else:
            ctx.vote_to_halt()
        return new_value


class _DistanceProgram:
    """Single-source shortest paths (hop counts) from vertex 1."""

    INF = 10**9

    def initial_value(self, gid: int, graph: Graph) -> int:
        return 0 if gid == 1 else self.INF

    def compute(self, value, inbox, ctx: VertexContext):
        best = min([value, *inbox])
        if best < value or (ctx.superstep == 0 and ctx.gid == 1):
            ctx.send_to_neighbors(best + 1)
            value = best
        else:
            value = best
            ctx.vote_to_halt()
        return value


class TestVertexPrograms:
    @pytest.mark.parametrize("nprocs", [1, 2, 4])
    def test_max_value_floods(self, nprocs):
        graph = hex32()
        partition = MetisLikePartitioner(seed=0).partition(graph, nprocs)
        values, supersteps = run_vertex_program(
            graph, partition, _MaxValueProgram(), machine=IDEAL
        )
        expected = max(gid * 7 % 23 for gid in graph.nodes())
        assert set(values.values()) == {expected}
        assert supersteps >= 2

    @pytest.mark.parametrize("nprocs", [1, 3])
    def test_sssp_hop_counts(self, nprocs):
        graph = path_graph(10)
        partition = RoundRobinPartitioner().partition(graph, nprocs)
        values, _ = run_vertex_program(
            graph, partition, _DistanceProgram(), machine=IDEAL
        )
        assert values == {gid: gid - 1 for gid in graph.nodes()}

    def test_sssp_on_cycle(self):
        graph = cycle_graph(8)
        partition = MetisLikePartitioner(seed=0).partition(graph, 2)
        values, _ = run_vertex_program(
            graph, partition, _DistanceProgram(), machine=IDEAL
        )
        assert values[5] == 4  # opposite side of the ring
        assert values[8] == 1

    def test_partition_choice_is_transparent(self):
        graph = hex32()
        a = run_vertex_program(
            graph,
            MetisLikePartitioner(seed=0).partition(graph, 4),
            _MaxValueProgram(),
            machine=IDEAL,
        )[0]
        b = run_vertex_program(
            graph,
            RoundRobinPartitioner().partition(graph, 3),
            _MaxValueProgram(),
            machine=IDEAL,
        )[0]
        assert a == b

    def test_compute_grain_charges_time(self):
        graph = path_graph(6)
        partition = RoundRobinPartitioner().partition(graph, 2)
        _, steps = run_vertex_program(
            graph, partition, _DistanceProgram(), machine=IDEAL, compute_grain=1e-3
        )
        assert steps > 1  # grain charging must not break convergence

    def test_send_to_arbitrary_vertex(self):
        class PointToPoint:
            def initial_value(self, gid, graph):
                return None

            def compute(self, value, inbox, ctx):
                if ctx.superstep == 0 and ctx.gid == 1:
                    ctx.send_to(6, "hello from 1")
                ctx.vote_to_halt()
                return inbox[0] if inbox else value

        graph = path_graph(6)
        partition = RoundRobinPartitioner().partition(graph, 3)
        values, _ = run_vertex_program(graph, partition, PointToPoint(), machine=IDEAL)
        assert values[6] == "hello from 1"
        assert values[2] is None


class TestVertexStoreBackends:
    """``store="soa"`` keeps vertex state in arrays; results must match."""

    def test_soa_store_matches_object_store(self):
        graph = hex32()
        partition = MetisLikePartitioner(seed=0).partition(graph, 4)
        results = {
            store: run_vertex_program(
                graph, partition, _MaxValueProgram(), machine=IDEAL, store=store
            )
            for store in ("object", "soa")
        }
        assert results["soa"] == results["object"]

    def test_soa_store_halting_semantics(self):
        """Halt flags live in a bool array; waking on message arrival and
        the final value gather must behave identically."""
        graph = path_graph(10)
        partition = RoundRobinPartitioner().partition(graph, 3)
        obj = run_vertex_program(graph, partition, _DistanceProgram(),
                                 machine=IDEAL, store="object")
        soa = run_vertex_program(graph, partition, _DistanceProgram(),
                                 machine=IDEAL, store="soa")
        assert soa == obj
        assert soa[0] == {gid: gid - 1 for gid in graph.nodes()}

    def test_unknown_store_rejected(self):
        graph = path_graph(4)
        partition = RoundRobinPartitioner().partition(graph, 2)
        with pytest.raises(ValueError, match="store"):
            run_vertex_program(graph, partition, _DistanceProgram(), store="aos")
