"""Tests for survivor-based shrinking recovery.

The acceptance bar: a fixed seed and a single permanent crash under
``recovery_policy="shrink"`` must produce final node states bit-identical
to the fault-free run, the survivors must carry on at ``nprocs - 1``, and
the trace must account for the reconfiguration.
"""

from __future__ import annotations

import pytest

from repro.apps import make_average_fn
from repro.core import ICPlatform, PlatformConfig, redistribute_lost_nodes
from repro.graphs import hex32, hex64, path_graph
from repro.mpi import FaultPlan, ORIGIN2000
from repro.partitioning import MetisLikePartitioner


@pytest.fixture(scope="module")
def graph():
    return hex64()


@pytest.fixture(scope="module")
def partition(graph):
    return MetisLikePartitioner(seed=1).partition(graph, 4)


def run(graph, partition, policy, faults=None, iterations=12, **overrides):
    config = PlatformConfig(
        iterations=iterations,
        checkpoint_period=overrides.pop("checkpoint_period", 4),
        recovery_policy=policy,
        track_trace=True,
        **overrides,
    )
    platform = ICPlatform(graph, make_average_fn(0.3e-3), config=config)
    return platform.run(
        partition, machine=ORIGIN2000, faults=faults, deadlock_timeout=10.0
    )


class TestShrinkEndToEnd:
    def test_values_bit_identical_to_fault_free(self, graph, partition):
        clean = run(graph, partition, "rollback")
        faulty = run(
            graph, partition, "shrink", FaultPlan.parse("seed=3,crash=2@7")
        )
        assert faulty.values == clean.values
        assert faulty.recoveries == 1

    def test_survivors_own_everything(self, graph, partition):
        result = run(graph, partition, "shrink", FaultPlan.parse("seed=3,crash=2@7"))
        assert result.dead_ranks == (2,)
        # The final assignment reports owners by stable *world* rank: the
        # dead rank owns nothing, the three survivors own every node.
        assert set(result.final_assignment) == {0, 1, 3}
        assert len(result.values) == graph.num_nodes

    def test_crash_of_rank_zero(self, graph, partition):
        clean = run(graph, partition, "rollback")
        result = run(graph, partition, "shrink", FaultPlan.parse("seed=3,crash=0@7"))
        assert result.values == clean.values
        assert result.dead_ranks == (0,)

    def test_two_sequential_crashes(self, graph, partition):
        clean = run(graph, partition, "rollback")
        result = run(
            graph,
            partition,
            "shrink",
            FaultPlan.parse("seed=3,crash=1@5,crash=3@9"),
        )
        assert result.values == clean.values
        assert result.dead_ranks == (1, 3)
        assert result.recoveries == 2
        events = result.trace.reconfiguration_events()
        assert [e.dead_ranks for e in events] == [(1,), (3,)]
        # Second event's survivor list no longer contains either dead rank.
        assert set(events[1].survivors) == {0, 2}

    def test_simultaneous_crashes(self, graph, partition):
        clean = run(graph, partition, "rollback")
        result = run(
            graph,
            partition,
            "shrink",
            FaultPlan.parse("seed=3,crash=1@7,crash=2@7"),
        )
        assert result.values == clean.values
        assert result.dead_ranks == (1, 2)
        assert result.recoveries == 1

    def test_rollback_policy_unchanged_by_flag(self, graph, partition):
        plan = "seed=3,crash=2@7"
        rollback = run(graph, partition, "rollback", FaultPlan.parse(plan))
        clean = run(graph, partition, "rollback")
        assert rollback.values == clean.values
        assert rollback.dead_ranks == ()  # resurrected, not lost

    def test_shrink_replays_bit_identically(self, graph, partition):
        a = run(graph, partition, "shrink", FaultPlan.parse("seed=3,crash=2@7"))
        b = run(graph, partition, "shrink", FaultPlan.parse("seed=3,crash=2@7"))
        assert a.elapsed == b.elapsed
        assert a.values == b.values
        assert a.final_assignment == b.final_assignment
        assert a.trace.reconfiguration_events() == b.trace.reconfiguration_events()

    def test_shrink_with_dynamic_load_balancing(self, graph, partition):
        kwargs = dict(iterations=16, dynamic_load_balancing=True, lb_period=5)
        clean = run(graph, partition, "rollback", **kwargs)
        faulty = run(
            graph,
            partition,
            "shrink",
            FaultPlan.parse("seed=3,crash=2@9"),
            **kwargs,
        )
        assert faulty.values == clean.values


class TestReconfigurationTrace:
    def test_event_contents(self, graph, partition):
        result = run(graph, partition, "shrink", FaultPlan.parse("seed=3,crash=2@7"))
        events = result.trace.reconfiguration_events()
        assert len(events) == 1
        (event,) = events
        assert event.policy == "shrink"
        assert event.iteration == 7
        assert event.dead_ranks == (2,)
        # Dense re-ranking: survivors in new-local order are world ranks.
        assert event.survivors == (0, 1, 3)
        assert event.nodes_redistributed > 0
        assert event.detection_cost == ORIGIN2000.detection_time(3)
        assert event.reconfiguration_cost > 0
        # Crash at 7 with checkpoints every 4: resume from 5.
        assert event.resumed_iteration == 5

    def test_rollback_records_reconfiguration_too(self, graph, partition):
        result = run(graph, partition, "rollback", FaultPlan.parse("seed=3,crash=2@7"))
        events = result.trace.reconfiguration_events()
        assert len(events) == 1
        (event,) = events
        assert event.policy == "rollback"
        assert event.dead_ranks == (2,)
        assert event.survivors == (0, 1, 2, 3)  # same world: rank 2 respawns
        assert event.nodes_redistributed == 0

    def test_render_mentions_reconfiguration(self, graph, partition):
        result = run(graph, partition, "shrink", FaultPlan.parse("seed=3,crash=2@7"))
        rendered = result.trace.render()
        assert "reconfiguration @ iter 7" in rendered
        assert "dead=2" in rendered

    def test_committed_iterations_complete(self, graph, partition):
        result = run(graph, partition, "shrink", FaultPlan.parse("seed=3,crash=2@7"))
        # Every iteration still has a committed record from every rank that
        # executed it; none from the dead rank after its last checkpoint.
        for iteration in range(1, 13):
            records = result.trace.of_iteration(iteration)
            ranks = sorted(r.rank for r in records)
            if iteration <= 4:
                assert ranks == [0, 1, 2, 3]
            else:
                assert ranks == [0, 1, 3]


class TestRedistributeLostNodes:
    def test_no_survivors_rejected(self):
        g = path_graph(4)
        with pytest.raises(ValueError):
            redistribute_lost_nodes(g, [0, 0, 1, 1], [1, 2], [])

    def test_affinity_wins(self):
        # Path 1-2-3-4-5; node 3 lost; ranks 0 owns {1,2}, 1 owns {4,5}.
        # Tie on affinity (one neighbour each), tie on load -> lowest rank.
        g = path_graph(5)
        assignment = [0, 0, -1, 1, 1]
        placed = redistribute_lost_nodes(g, assignment, [3], [0, 1])
        assert placed == {3: 0}
        assert assignment[2] == 0

    def test_neighbour_majority_beats_load(self):
        # Node 4 in hex32 adjacency: give one rank most of its neighbours
        # but more load; affinity must win over load.
        g = hex32()
        neighbors = g.neighbors(4)
        assignment = [1] * g.num_nodes
        for v in neighbors:
            assignment[v - 1] = 0
        assignment[4 - 1] = -1
        placed = redistribute_lost_nodes(g, assignment, [4], [0, 1])
        assert placed[4] == 0

    def test_load_feedback_spreads_ties(self):
        # Two lost nodes, each wedged between the two survivors with equal
        # affinity.  The first tie breaks to the lowest rank; that placement
        # feeds back into the load count, so the second goes to the other
        # survivor instead of piling on.
        g = path_graph(6)
        assignment = [0, -1, 1, 0, -1, 1]
        placed = redistribute_lost_nodes(g, assignment, [2, 5], [0, 1])
        assert placed == {2: 0, 5: 1}

    def test_pure_function_of_inputs(self):
        g = hex32()
        assignment = [gid % 3 for gid in range(1, g.num_nodes + 1)]
        lost = [gid for gid in g.nodes() if assignment[gid - 1] == 2]
        for gid in lost:
            assignment[gid - 1] = -1
        a1, a2 = list(assignment), list(assignment)
        p1 = redistribute_lost_nodes(g, a1, list(lost), [0, 1])
        p2 = redistribute_lost_nodes(g, a2, list(reversed(lost)), [0, 1])
        assert p1 == p2
        assert a1 == a2


class TestRetentionWithIntegrity:
    """Checkpointer retention (``keep``) interacting with recovery: a
    late-detected memory flip taints the newest checkpoint, so the rollback
    must restore the older *retained* snapshot -- and a crash later in the
    same run must still shrink cleanly from a post-replay checkpoint."""

    def test_rollback_to_older_snapshot_then_shrink(self, graph, partition):
        # Timeline (period 3, keep 2, digest exchange every 2 iterations):
        #   checkpoints 0, 3, 6 -> retained {3, 6}
        #   flip at start of 6 -> checkpoint 6 is tainted
        #   claims agreed at the iteration-7 exchange (latency 1) -> rollback
        #   discard_since(6) leaves {3} -> restore 3, resume at 4
        #   replay retakes 6 and 9; crash of rank 2 at 10 shrinks from 9.
        clean = run(
            graph, partition, "rollback", iterations=14, checkpoint_period=3
        )
        faulty = run(
            graph,
            partition,
            "shrink",
            FaultPlan.parse("seed=5,flip=1@6,crash=2@10"),
            iterations=14,
            checkpoint_period=3,
            checkpoint_keep=2,
            integrity="full",
            integrity_period=2,
        )
        assert faulty.values == clean.values
        assert faulty.repairs == 0
        assert faulty.recoveries == 2  # one corruption rollback + one shrink
        assert faulty.dead_ranks == (2,)
        (event,) = faulty.trace.integrity_events()
        assert event.mode == "rollback"
        assert event.latency == 1
        # The tainted iteration-6 snapshot was discarded: the restore came
        # from the older retained snapshot (iteration 3).
        assert event.resumed_iteration == 4

    def test_keep_one_cannot_survive_late_detection(self, graph, partition):
        """With ``keep=1`` the only retained snapshot IS the tainted one;
        discarding it leaves nothing and the run fails loudly rather than
        resuming from corrupt state."""
        from repro.core import CheckpointError

        with pytest.raises(CheckpointError):
            run(
                graph,
                partition,
                "rollback",
                FaultPlan.parse("seed=5,flip=1@6"),
                iterations=10,
                checkpoint_period=3,
                checkpoint_keep=1,
                integrity="full",
                integrity_period=2,
            )
