"""Tests for the distributed data directory (section 7.1 extension)."""

from __future__ import annotations

import pytest

from repro.core import ComputeContext, NodeStore, PlatformConfig, migrate_node
from repro.core.directory import DistributedDirectory
from repro.graphs import hex32, path_graph
from repro.mpi import IDEAL, run_mpi


def make_store(graph, assignment, rank):
    return NodeStore(rank, graph, list(assignment), lambda gid: gid * 10)


class TestHomeHashing:
    def test_home_is_modulo(self):
        g = path_graph(6)
        assignment = [0, 0, 0, 1, 1, 1]

        def fn(comm):
            store = make_store(g, assignment, comm.rank)
            directory = DistributedDirectory(comm, store)
            return [directory.home_of(gid) for gid in range(1, 7)]

        results = run_mpi(fn, 2, machine=IDEAL, deadlock_timeout=10.0)
        assert results[0] == [0, 1, 0, 1, 0, 1]

    def test_invalid_gid(self):
        g = path_graph(2)

        def fn(comm):
            directory = DistributedDirectory(comm, make_store(g, [0, 0], comm.rank))
            with pytest.raises(KeyError):
                directory.home_of(0)

        run_mpi(fn, 1, machine=IDEAL)


class TestLookup:
    def test_registration_covers_all_nodes(self):
        g = hex32()
        assignment = [gid % 4 for gid in range(32)]

        def fn(comm):
            store = make_store(g, assignment, comm.rank)
            directory = DistributedDirectory(comm, store)
            homed = directory.homed_here()
            owners = directory.collective_lookup(range(1, 33))
            return homed, owners

        results = run_mpi(fn, 4, machine=IDEAL, deadlock_timeout=10.0)
        all_homed = sorted(gid for homed, _ in results for gid in homed)
        assert all_homed == list(range(1, 33))
        for _, owners in results:
            assert owners == {gid: assignment[gid - 1] for gid in range(1, 33)}

    def test_unregistered_gid_raises(self):
        g = path_graph(4)
        assignment = [0, 0, 1, 1]

        def fn(comm):
            store = make_store(g, assignment, comm.rank)
            directory = DistributedDirectory(comm, store)
            try:
                # 99 is homed on some rank but never registered
                directory.collective_lookup([2] if comm.rank == 0 else [])
                if comm.rank == 0:
                    return "ok"
            except KeyError:
                return "keyerror"

        results = run_mpi(fn, 2, machine=IDEAL, deadlock_timeout=10.0)
        assert results[0] == "ok"


class TestFetch:
    def test_far_off_fetch(self):
        """Rank 0 fetches data of a node three processors away -- no shadow
        of it exists locally."""
        g = path_graph(8)
        assignment = [0, 0, 1, 1, 2, 2, 3, 3]

        def fn(comm):
            store = make_store(g, assignment, comm.rank)
            directory = DistributedDirectory(comm, store)
            wanted = [8] if comm.rank == 0 else []
            values = directory.collective_fetch(wanted)
            return values

        results = run_mpi(fn, 4, machine=IDEAL, deadlock_timeout=10.0)
        assert results[0] == {8: 80}
        assert results[1] == {}

    def test_local_and_shadow_fast_path(self):
        g = path_graph(4)
        assignment = [0, 0, 1, 1]

        def fn(comm):
            store = make_store(g, assignment, comm.rank)
            directory = DistributedDirectory(comm, store)
            if comm.rank == 0:
                # 1 owned, 3 shadow (neighbour of peripheral 2), 4 far-off
                return directory.collective_fetch([1, 3, 4])
            return directory.collective_fetch([])

        results = run_mpi(fn, 2, machine=IDEAL, deadlock_timeout=10.0)
        assert results[0] == {1: 10, 3: 30, 4: 40}

    def test_everyone_fetches_everything(self):
        g = hex32()
        assignment = [gid % 4 for gid in range(32)]

        def fn(comm):
            store = make_store(g, assignment, comm.rank)
            directory = DistributedDirectory(comm, store)
            return directory.collective_fetch(range(1, 33))

        results = run_mpi(fn, 4, machine=IDEAL, deadlock_timeout=10.0)
        expected = {gid: gid * 10 for gid in range(1, 33)}
        assert all(r == expected for r in results)


class TestAfterMigration:
    def test_reregistration_tracks_new_owner(self):
        g = path_graph(6)
        assignment = [0, 0, 0, 1, 1, 1]

        def fn(comm):
            store = make_store(g, assignment, comm.rank)
            directory = DistributedDirectory(comm, store)
            ctx = ComputeContext(comm, PlatformConfig().costs, 6)
            # migrate node 3: 0 -> 1
            store.assignment[2] = 1
            migrate_node(comm, store, 3, 0, 1, ctx)
            directory.register_owned()
            owners = directory.collective_lookup([3])
            return owners[3]

        results = run_mpi(fn, 2, machine=IDEAL, deadlock_timeout=10.0)
        assert results == [1, 1]
