"""Tests for phase-time accounting."""

from __future__ import annotations

import pytest

from repro.core import PHASE_NAMES, PhaseTimes


class TestPhaseTimes:
    def test_phase_names_match_paper_order(self):
        # The paper's six categories in Figure-21/22 order, plus our
        # checkpoint/restart extension appended last.
        assert PHASE_NAMES == (
            "initialization",
            "computation_overhead",
            "compute",
            "communication_overhead",
            "communicate",
            "load_balancing",
            "recovery",
        )

    def test_total(self):
        phases = PhaseTimes(initialization=1.0, compute=2.0, communicate=0.5)
        assert phases.total() == pytest.approx(3.5)

    def test_add_accumulates(self):
        a = PhaseTimes(compute=1.0)
        b = PhaseTimes(compute=2.0, communicate=1.0)
        a.add(b)
        assert a.compute == 3.0
        assert a.communicate == 1.0

    def test_as_dict_order(self):
        phases = PhaseTimes()
        assert list(phases.as_dict()) == list(PHASE_NAMES)

    def test_mean(self):
        records = [PhaseTimes(compute=1.0), PhaseTimes(compute=3.0)]
        assert PhaseTimes.mean(records).compute == 2.0

    def test_mean_empty(self):
        assert PhaseTimes.mean([]).total() == 0.0

    def test_maximum(self):
        records = [
            PhaseTimes(compute=1.0, communicate=5.0),
            PhaseTimes(compute=3.0, communicate=2.0),
        ]
        out = PhaseTimes.maximum(records)
        assert out.compute == 3.0
        assert out.communicate == 5.0
