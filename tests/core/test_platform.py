"""End-to-end tests for the ICPlatform driver."""

from __future__ import annotations

import pytest

from repro.apps.average import make_average_fn
from repro.apps.imbalance import make_imbalanced_average_fn, ImbalanceSchedule
from repro.core import (
    GreedyPairBalancer,
    ICPlatform,
    PlatformConfig,
    run_platform,
)
from repro.graphs import Graph, hex32, hex64
from repro.mpi import IDEAL
from repro.partitioning import MetisLikePartitioner, Partition


def sequential_average(graph: Graph, iterations: int) -> dict[int, float]:
    values = {gid: float(gid) for gid in graph.nodes()}
    for _ in range(iterations):
        values = {
            gid: (values[gid] + sum(values[v] for v in graph.neighbors(gid)))
            / (1 + graph.degree(gid))
            for gid in graph.nodes()
        }
    return values


@pytest.fixture(scope="module")
def graph():
    return hex32()


@pytest.fixture(scope="module")
def partitions(graph):
    metis = MetisLikePartitioner(seed=1)
    return {p: metis.partition(graph, p) for p in (1, 2, 4, 8)}


class TestCorrectness:
    @pytest.mark.parametrize("nprocs", [1, 2, 4, 8])
    def test_values_match_sequential(self, graph, partitions, nprocs):
        config = PlatformConfig(iterations=6)
        result = run_platform(
            graph, make_average_fn(0.0), partitions[nprocs], config=config,
            machine=IDEAL, init_value=lambda gid: float(gid),
        )
        expected = sequential_average(graph, 6)
        for gid, value in expected.items():
            assert result.values[gid] == pytest.approx(value, abs=1e-12)

    def test_values_independent_of_partitioner(self, graph):
        from repro.partitioning import RoundRobinPartitioner

        config = PlatformConfig(iterations=4)
        a = run_platform(
            graph, make_average_fn(0.0),
            MetisLikePartitioner(seed=1).partition(graph, 4),
            config=config, machine=IDEAL, init_value=float,
        )
        b = run_platform(
            graph, make_average_fn(0.0),
            RoundRobinPartitioner().partition(graph, 4),
            config=config, machine=IDEAL, init_value=float,
        )
        assert a.values == b.values

    def test_dynamic_lb_does_not_change_results(self, graph, partitions):
        """Task migration must be semantically invisible."""
        schedule = ImbalanceSchedule(windows=((100, 0.0, 0.5),))
        node_fn = make_imbalanced_average_fn(schedule)
        base = run_platform(
            graph, node_fn, partitions[4],
            config=PlatformConfig(iterations=25), init_value=float,
        )
        dyn = run_platform(
            graph, node_fn, partitions[4],
            config=PlatformConfig(
                iterations=25, dynamic_load_balancing=True, lb_period=5,
                validate_each_iteration=True,
            ),
            balancer=GreedyPairBalancer(0.1),
            init_value=float,
        )
        assert len(dyn.migrations) > 0, "test needs actual migrations"
        for gid in base.values:
            assert dyn.values[gid] == pytest.approx(base.values[gid], abs=1e-12)

    def test_migrated_assignment_reported(self, graph, partitions):
        schedule = ImbalanceSchedule(windows=((100, 0.0, 0.5),))
        result = run_platform(
            graph, make_imbalanced_average_fn(schedule), partitions[4],
            config=PlatformConfig(
                iterations=20, dynamic_load_balancing=True, lb_period=5
            ),
            balancer=GreedyPairBalancer(0.1),
        )
        assert result.final_assignment != partitions[4].assignment
        moved = {e.global_id for e in result.migrations}
        for event in result.migrations:
            # final owner of a migrated node is the last event's target
            last = [e for e in result.migrations if e.global_id == event.global_id][-1]
            assert result.final_assignment[event.global_id - 1] == last.to_proc
        assert moved

    def test_deterministic_elapsed(self, graph, partitions):
        config = PlatformConfig(iterations=10)
        times = {
            run_platform(
                graph, make_average_fn(), partitions[4], config=config
            ).elapsed
            for _ in range(3)
        }
        assert len(times) == 1


class TestPerformanceShape:
    def test_elapsed_decreases_with_procs(self, graph, partitions):
        config = PlatformConfig(iterations=20)
        times = [
            run_platform(graph, make_average_fn(), partitions[p], config=config).elapsed
            for p in (1, 2, 4)
        ]
        assert times[0] > times[1] > times[2]

    def test_coarse_grain_scales_better(self, graph, partitions):
        from repro.apps.average import COARSE_GRAIN, FINE_GRAIN

        config = PlatformConfig(iterations=10)

        def speedup(grain):
            t1 = run_platform(
                graph, make_average_fn(grain), partitions[1], config=config
            ).elapsed
            t8 = run_platform(
                graph, make_average_fn(grain), partitions[8], config=config
            ).elapsed
            return t1 / t8

        assert speedup(COARSE_GRAIN) > speedup(FINE_GRAIN)

    def test_phase_times_sum_close_to_elapsed(self, graph, partitions):
        config = PlatformConfig(iterations=10)
        result = run_platform(graph, make_average_fn(), partitions[4], config=config)
        for phases in result.phases:
            assert phases.total() <= result.elapsed * 1.001
            assert phases.total() >= result.elapsed * 0.5

    def test_compute_phase_tracks_grain(self, graph, partitions):
        config = PlatformConfig(iterations=10)
        result = run_platform(
            graph, make_average_fn(1e-3), partitions[1], config=config, machine=IDEAL
        )
        assert result.phases[0].compute == pytest.approx(32 * 10 * 1e-3)


class TestConfiguration:
    def test_mismatched_partition_graph_rejected(self, graph):
        other = hex64()
        partition = MetisLikePartitioner(seed=1).partition(other, 2)
        platform = ICPlatform(graph, make_average_fn())
        with pytest.raises(ValueError, match="different graph"):
            platform.run(partition)

    def test_comm_rounds_requires_matching_fns(self, graph):
        with pytest.raises(ValueError, match="node functions"):
            ICPlatform(
                graph,
                [make_average_fn(), make_average_fn()],
                config=PlatformConfig(comm_rounds=3),
            )

    def test_single_fn_replicated_across_rounds(self, graph, partitions):
        config = PlatformConfig(iterations=3, comm_rounds=2)
        result = run_platform(
            graph, make_average_fn(0.0), partitions[2], config=config,
            machine=IDEAL, init_value=float,
        )
        # two rounds per iteration = 6 sweeps total
        expected = sequential_average(graph, 6)
        for gid in expected:
            assert result.values[gid] == pytest.approx(expected[gid], abs=1e-12)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            PlatformConfig(iterations=-1)
        with pytest.raises(ValueError):
            PlatformConfig(lb_period=0)
        with pytest.raises(ValueError):
            PlatformConfig(comm_rounds=0)
        with pytest.raises(ValueError):
            PlatformConfig(lb_threshold=-0.5)
        with pytest.raises(ValueError):
            PlatformConfig(max_migrations_per_pair=0)

    def test_with_overrides(self):
        config = PlatformConfig(iterations=5)
        new = config.with_overrides(iterations=9, lb_period=3)
        assert (new.iterations, new.lb_period) == (9, 3)
        assert config.iterations == 5

    def test_zero_iterations_runs_init_only(self, graph, partitions):
        result = run_platform(
            graph, make_average_fn(), partitions[2],
            config=PlatformConfig(iterations=0),
        )
        assert result.values == {gid: gid for gid in graph.nodes()}
        assert result.elapsed > 0  # initialization cost

    def test_default_init_value_is_gid(self, graph, partitions):
        result = run_platform(
            graph, make_average_fn(0.0), partitions[2],
            config=PlatformConfig(iterations=0),
        )
        assert result.values[17] == 17
