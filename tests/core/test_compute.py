"""Tests for the compute/communicate sweeps (Figures 8 and 8a)."""

from __future__ import annotations

import pytest

from repro.core import (
    CommBuffers,
    ComputeContext,
    NodeStore,
    NodeView,
    PlatformCosts,
    sweep_basic,
    sweep_overlapped,
)
from repro.graphs import Graph, hex32
from repro.mpi import IDEAL, run_mpi


def sequential_average(graph: Graph, iterations: int) -> dict[int, float]:
    """Reference: synchronous neighbour-average with init value = gid."""
    values = {gid: float(gid) for gid in graph.nodes()}
    for _ in range(iterations):
        values = {
            gid: (values[gid] + sum(values[v] for v in graph.neighbors(gid)))
            / (1 + graph.degree(gid))
            for gid in graph.nodes()
        }
    return values


def average_fn(node: NodeView, ctx: ComputeContext) -> float:
    vals = [node.value, *node.neighbor_values()]
    return sum(vals) / len(vals)


def run_sweeps(graph, assignment, nprocs, iterations, sweep):
    def fn(comm):
        store = NodeStore(comm.rank, graph, list(assignment), lambda gid: float(gid))
        ctx = ComputeContext(comm, PlatformCosts(), graph.num_nodes)
        buffers = CommBuffers(comm.size)
        for i in range(1, iterations + 1):
            ctx.iteration = i
            sweep(comm, store, average_fn, ctx, buffers)
        return {n.global_id: n.data.data for n in store.owned_nodes()}

    results = run_mpi(fn, nprocs, machine=IDEAL, deadlock_timeout=15.0)
    merged: dict[int, float] = {}
    for r in results:
        merged.update(r)
    return merged


class TestSweepCorrectness:
    @pytest.mark.parametrize("sweep", [sweep_basic, sweep_overlapped])
    @pytest.mark.parametrize("nprocs", [1, 2, 3, 4, 8])
    def test_matches_sequential_reference(self, sweep, nprocs):
        graph = hex32()
        assignment = [gid % nprocs for gid in range(32)]
        parallel = run_sweeps(graph, assignment, nprocs, 5, sweep)
        expected = sequential_average(graph, 5)
        assert parallel.keys() == expected.keys()
        for gid in expected:
            assert parallel[gid] == pytest.approx(expected[gid], abs=1e-12)

    def test_basic_and_overlapped_agree_exactly(self):
        graph = hex32()
        assignment = [gid % 4 for gid in range(32)]
        basic = run_sweeps(graph, assignment, 4, 7, sweep_basic)
        overlapped = run_sweeps(graph, assignment, 4, 7, sweep_overlapped)
        assert basic == overlapped

    def test_empty_rank_participates_without_deadlock(self):
        graph = Graph.from_edges(4, [(1, 2), (2, 3), (3, 4)])
        assignment = [0, 0, 1, 1]
        merged = run_sweeps(graph, assignment, 3, 3, sweep_basic)  # rank 2 idle
        assert set(merged) == {1, 2, 3, 4}


class TestOverlapPerformance:
    def test_overlapped_is_not_slower(self):
        """Figure 8a exists to hide communication latency: on a machine with
        real latency, the overlapped pipeline must not be slower."""
        from repro.mpi import MachineModel

        machine = MachineModel(latency=500e-6)
        graph = hex32()
        assignment = [gid % 4 for gid in range(32)]

        def runner(sweep):
            def fn(comm):
                store = NodeStore(
                    comm.rank, graph, list(assignment), lambda gid: float(gid)
                )
                ctx = ComputeContext(comm, PlatformCosts(), 32)
                buffers = CommBuffers(comm.size)
                for i in range(1, 11):
                    ctx.iteration = i
                    ctx.work(2e-3)  # internal compute to hide latency behind
                    sweep(comm, store, average_fn, ctx, buffers)
                comm.barrier()
                return comm.Wtime()

            return max(run_mpi(fn, 4, machine=machine, deadlock_timeout=15.0))

        assert runner(sweep_overlapped) <= runner(sweep_basic)


class TestContextAccounting:
    def test_work_counts_into_compute_bucket(self):
        graph = Graph.from_edges(2, [(1, 2)])

        def fn(comm):
            store = NodeStore(comm.rank, graph, [0, 0], lambda gid: gid)
            ctx = ComputeContext(comm, PlatformCosts(), 2)
            ctx.work(0.5)
            return ctx.compute_time, ctx.comm_overhead_time

        assert run_mpi(fn, 1, machine=IDEAL)[0] == (0.5, 0.0)

    def test_pack_unpack_count_into_comm_overhead(self):
        graph = Graph.from_edges(2, [(1, 2)])
        assignment = [0, 1]

        def fn(comm):
            store = NodeStore(comm.rank, graph, list(assignment), lambda gid: gid)
            ctx = ComputeContext(comm, PlatformCosts(), 2)
            buffers = CommBuffers(2)
            sweep_basic(comm, store, average_fn, ctx, buffers)
            return ctx.comm_overhead_time

        overheads = run_mpi(fn, 2, machine=IDEAL, deadlock_timeout=10.0)
        assert all(o > 0 for o in overheads)

    def test_bookkeeping_counter_tracks_charges(self):
        graph = hex32()
        assignment = [0] * 32

        def fn(comm):
            store = NodeStore(comm.rank, graph, list(assignment), lambda gid: gid)
            ctx = ComputeContext(comm, PlatformCosts(), 32)
            buffers = CommBuffers(1)
            sweep_basic(comm, store, average_fn, ctx, buffers)
            return ctx.bookkeeping_time, comm.Wtime()

        book, wtime = run_mpi(fn, 1, machine=IDEAL)[0]
        assert book > 0
        assert book == pytest.approx(wtime)  # no grain, no comm on 1 rank

    def test_context_exposes_rank_and_size(self):
        graph = Graph.from_edges(2, [(1, 2)])

        def fn(comm):
            ctx = ComputeContext(comm, PlatformCosts(), 2)
            return ctx.rank, ctx.nprocs

        assert run_mpi(fn, 3, machine=IDEAL) == [(0, 3), (1, 3), (2, 3)]

    def test_node_view_helpers(self):
        view = NodeView(
            global_id=1, value=10.0, neighbors=((2, 20.0), (3, 30.0)), iteration=4
        )
        assert view.neighbor_values() == [20.0, 30.0]
        assert view.iteration == 4
        assert view.round == 0
