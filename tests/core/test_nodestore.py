"""Tests for the per-processor node store (initialization + migration
surgery)."""

from __future__ import annotations

import pytest

from repro.core import NodeStore
from repro.graphs import Graph, hex32


@pytest.fixture
def path6() -> Graph:
    return Graph.from_edges(6, [(1, 2), (2, 3), (3, 4), (4, 5), (5, 6)])


def make_store(graph, assignment, rank, init=lambda gid: gid * 10):
    return NodeStore(rank, graph, list(assignment), init)


class TestClassification:
    def test_internal_vs_peripheral(self, path6):
        # [1,2,3 | 4,5,6]: nodes 3 and 4 are peripheral.
        store0 = make_store(path6, [0, 0, 0, 1, 1, 1], 0)
        assert sorted(store0.internal) == [1, 2]
        assert sorted(store0.peripheral) == [3]
        store1 = make_store(path6, [0, 0, 0, 1, 1, 1], 1)
        assert sorted(store1.internal) == [5, 6]
        assert sorted(store1.peripheral) == [4]

    def test_shadow_records_present(self, path6):
        store0 = make_store(path6, [0, 0, 0, 1, 1, 1], 0)
        assert store0.shadow_gids() == [4]
        assert store0.value_of(4) == 40

    def test_shadow_for_procs(self, path6):
        store = make_store(path6, [0, 0, 0, 1, 1, 1], 0)
        assert store.own_node(3).shadow_for_procs == (1,)
        assert store.own_node(2).shadow_for_procs == ()

    def test_multi_proc_shadows(self):
        star = Graph.from_edges(4, [(1, 2), (1, 3), (1, 4)])
        store = make_store(star, [0, 1, 2, 3], 0)
        assert store.own_node(1).shadow_for_procs == (1, 2, 3)

    def test_owned_iteration_order_internal_first(self, path6):
        store = make_store(path6, [0, 0, 0, 1, 1, 1], 0)
        kinds = [n.kind for n in store.owned_nodes()]
        assert kinds == ["i", "i", "p"]

    def test_owns_and_own_node(self, path6):
        store = make_store(path6, [0, 0, 0, 1, 1, 1], 0)
        assert store.owns(2)
        assert not store.owns(5)
        with pytest.raises(KeyError):
            store.own_node(5)

    def test_value_of_unknown_raises(self, path6):
        store = make_store(path6, [0, 0, 0, 1, 1, 1], 0)
        with pytest.raises(KeyError):
            store.value_of(6)  # two hops away: no shadow held

    def test_empty_rank(self, path6):
        store = make_store(path6, [0, 0, 0, 1, 1, 1], 2)
        assert store.num_owned() == 0
        assert store.buffer_sizes(3) == [0, 0, 0]
        store.check_invariants()

    def test_single_rank_owns_everything(self, path6):
        store = make_store(path6, [0] * 6, 0)
        assert len(store.internal) == 6
        assert len(store.peripheral) == 0
        assert store.shadow_gids() == []
        store.check_invariants()


class TestBufferSizes:
    def test_counts_shadow_copies(self, path6):
        store = make_store(path6, [0, 0, 0, 1, 1, 1], 0)
        assert store.buffer_sizes(2) == [0, 1]

    def test_symmetry_across_ranks(self):
        g = hex32()
        assignment = [gid % 4 for gid in range(32)]
        stores = [make_store(g, assignment, r) for r in range(4)]
        sizes = [s.buffer_sizes(4) for s in stores]
        for i in range(4):
            for j in range(4):
                # if i sends to j, j sends to i (graph is undirected)
                assert (sizes[i][j] > 0) == (sizes[j][i] > 0)

    def test_neighbor_procs(self, path6):
        store = make_store(path6, [0, 0, 0, 1, 1, 1], 0)
        assert store.neighbor_procs() == [1]


class TestCommitAndShadows:
    def test_commit_owned(self, path6):
        store = make_store(path6, [0, 0, 0, 1, 1, 1], 0)
        for node in store.owned_nodes():
            node.data.most_recent_data = node.global_id * 100
        assert store.commit_owned() == [1, 2, 3]
        assert store.value_of(2) == 200

    def test_commit_owned_reports_only_changes(self, path6):
        store = make_store(path6, [0, 0, 0, 1, 1, 1], 0)
        store.data_records[2].most_recent_data = 999
        store.data_records[3].most_recent_data = 30  # unchanged value
        assert store.commit_owned() == [2]
        assert store.value_of(3) == 30

    def test_commit_bumps_version_on_change_only(self, path6):
        store = make_store(path6, [0, 0, 0, 1, 1, 1], 0)
        record = store.data_records[1]
        record.most_recent_data = 42
        store.commit_owned()
        assert record.version == 1
        record.most_recent_data = 42  # same value again
        store.commit_owned()
        assert record.version == 1

    def test_update_shadow(self, path6):
        store = make_store(path6, [0, 0, 0, 1, 1, 1], 0)
        assert store.update_shadow(4, 999) is True
        assert store.value_of(4) == 999
        assert store.data_records[4].version == 1
        # Re-sending the same value is a no-op (delta-exchange contract).
        assert store.update_shadow(4, 999) is False
        assert store.data_records[4].version == 1

    def test_update_unknown_shadow_raises(self, path6):
        store = make_store(path6, [0, 0, 0, 1, 1, 1], 0)
        with pytest.raises(KeyError):
            store.update_shadow(6, 1)


class TestMigrationSurgery:
    def test_release_keeps_data_record(self, path6):
        store = make_store(path6, [0, 0, 0, 1, 1, 1], 0)
        node = store.release_node(3)
        assert node.global_id == 3
        assert not store.owns(3)
        # "the entry of the migrating node isn't removed from the data node
        # list and the hash table"
        assert 3 in store.data_records
        assert store.hash_table.get(3) is not None

    def test_release_unowned_raises(self, path6):
        store = make_store(path6, [0, 0, 0, 1, 1, 1], 0)
        with pytest.raises(KeyError):
            store.release_node(5)

    def test_adopt_then_refresh(self, path6):
        assignment = [0, 0, 0, 1, 1, 1]
        busy = make_store(path6, assignment, 0)
        idle = make_store(path6, assignment, 1)
        # migrate node 3 from 0 to 1
        busy.assignment[2] = 1
        idle.assignment[2] = 1
        released = busy.release_node(3)
        payload = [(v, busy.data_records[v].data) for v in released.neighboring_nodes]
        idle.adopt_node(3, payload)
        busy.refresh_ownership()
        idle.refresh_ownership()
        busy.check_invariants()
        idle.check_invariants()
        # node 2 on busy became peripheral; node 4 on idle stays peripheral;
        # node 3 now owned by idle and peripheral (neighbour 2 is remote).
        assert busy.own_node(2).kind == "p"
        assert idle.own_node(3).kind == "p"
        assert idle.owns(3) and not busy.owns(3)

    def test_adopt_owned_raises(self, path6):
        store = make_store(path6, [0, 0, 0, 1, 1, 1], 0)
        with pytest.raises(KeyError):
            store.adopt_node(2, [])

    def test_adopt_without_data_record_raises(self, path6):
        store = make_store(path6, [0, 0, 0, 1, 1, 1], 1)
        store.assignment[0] = 1  # node 1, two hops away: no shadow here
        with pytest.raises(KeyError):
            store.adopt_node(1, [])

    def test_ensure_record_idempotent(self, path6):
        store = make_store(path6, [0, 0, 0, 1, 1, 1], 0)
        first = store.ensure_record(6, 60)
        second = store.ensure_record(6, 999)
        assert first is second
        assert first.data == 60

    def test_prune_stale_shadows(self, path6):
        assignment = [0, 0, 0, 1, 1, 1]
        store = make_store(path6, assignment, 0)
        # give away node 3; its shadow of 4 becomes stale after pruning
        store.assignment[2] = 1
        store.release_node(3)
        store.refresh_ownership()
        dropped = store.prune_stale_shadows()
        assert 4 in dropped
        # node 3 itself is still a neighbour of owned node 2: kept
        assert 3 in store.data_records
        store.check_invariants()

    def test_invariants_catch_desync(self, path6):
        store = make_store(path6, [0, 0, 0, 1, 1, 1], 0)
        store.assignment[2] = 1  # changed ownership without surgery
        with pytest.raises(AssertionError):
            store.check_invariants()


class TestTopologyCaching:
    """buffer_sizes()/neighbor_procs() are memoized; any ownership surgery
    must invalidate the cache or the load balancer sees stale topology."""

    def test_repeated_calls_hit_cache(self, path6):
        store = make_store(path6, [0, 0, 0, 1, 1, 1], 0)
        assert store.buffer_sizes(2) == [0, 1]
        assert store.buffer_sizes(2) == [0, 1]
        assert store.neighbor_procs() == [1]
        assert store.neighbor_procs() == [1]

    def test_cached_lists_are_copies(self, path6):
        store = make_store(path6, [0, 0, 0, 1, 1, 1], 0)
        sizes = store.buffer_sizes(2)
        sizes[1] = 777
        assert store.buffer_sizes(2) == [0, 1]
        procs = store.neighbor_procs()
        procs.append(999)
        assert store.neighbor_procs() == [1]

    def test_migration_invalidates_cache(self, path6):
        assignment = [0, 0, 0, 1, 1, 1]
        busy = make_store(path6, assignment, 0)
        idle = make_store(path6, assignment, 1)
        assert busy.buffer_sizes(2) == [0, 1]
        assert idle.buffer_sizes(2) == [1, 0]
        # migrate node 3 from rank 0 to rank 1
        busy.assignment[2] = 1
        idle.assignment[2] = 1
        released = busy.release_node(3)
        payload = [
            (v, busy.data_records[v].data, busy.data_records[v].version)
            for v in released.neighboring_nodes
        ]
        idle.adopt_node(3, payload)
        busy.refresh_ownership()
        idle.refresh_ownership()
        # rank 0 now ships node 2's updates, rank 1 ships node 3's
        assert busy.buffer_sizes(2) == [0, 1]
        assert idle.buffer_sizes(2) == [1, 0]
        assert busy.neighbor_procs() == [1]
        assert idle.neighbor_procs() == [0]

    def test_restore_state_invalidates_cache(self, path6):
        store = make_store(path6, [0, 0, 0, 1, 1, 1], 0)
        snapshot = store.capture_state()
        assert store.buffer_sizes(2) == [0, 1]
        store.restore_state(snapshot)
        assert store.buffer_sizes(2) == [0, 1]
        assert store.neighbor_procs() == [1]


class TestHaltFlags:
    """Halt flags feed the memoized communication topology.

    Regression coverage for the latent bug where ``buffer_sizes`` /
    ``neighbor_procs`` memos were invalidated by ownership surgery but NOT
    by halt-flag changes: a vertex halting after the memo warmed kept its
    stale buffer accounting -- and kept it across later migrations."""

    @pytest.fixture(params=["object", "soa"])
    def store_cls(self, request):
        from repro.core import SoAStore

        return {"object": NodeStore, "soa": SoAStore}[request.param]

    def test_halt_invalidates_memoized_buffer_sizes(self, path6, store_cls):
        store = store_cls(0, path6, [0, 0, 0, 1, 1, 1], lambda gid: gid * 10)
        # Warm the memo first -- the bug only bites on a warmed cache.
        assert store.buffer_sizes(2) == [0, 1]
        assert store.neighbor_procs() == [1]
        changed = store.set_halted(3)
        assert changed
        assert store.buffer_sizes(2) == [0, 0]
        assert store.neighbor_procs() == []
        # Un-halting restores the accounting (and is also a cache event).
        assert store.set_halted(3, False)
        assert store.buffer_sizes(2) == [0, 1]
        assert store.neighbor_procs() == [1]

    def test_redundant_halt_is_a_noop(self, path6, store_cls):
        store = store_cls(0, path6, [0, 0, 0, 1, 1, 1], lambda gid: gid * 10)
        assert not store.set_halted(3, False)
        store.set_halted(3)
        assert not store.set_halted(3)
        assert store.halted_gids() == [3]

    def test_halted_buffer_sizing_under_migration(self, path6, store_cls):
        """A halted vertex migrating in must not inherit stale sizing: the
        busy rank halts its peripheral, both memos warm, then the node
        migrates and every memo must re-derive from the new ownership AND
        the current halt flags."""
        assignment = [0, 0, 0, 1, 1, 1]
        init = lambda gid: gid * 10
        busy = store_cls(0, path6, list(assignment), init)
        idle = store_cls(1, path6, list(assignment), init)
        busy.set_halted(3)
        assert busy.buffer_sizes(2) == [0, 0]  # halted peripheral excluded
        assert idle.buffer_sizes(2) == [1, 0]
        # Migrate node 3 (halted) from rank 0 to rank 1.
        busy.assignment[2] = 1
        idle.assignment[2] = 1
        released = busy.release_node(3)
        payload = [
            (v, busy.data_records[v].data, busy.data_records[v].version)
            for v in released.neighboring_nodes
        ]
        idle.adopt_node(3, payload)
        idle.set_halted(3)  # the halt flag rides the migration protocol
        busy.refresh_ownership()
        idle.refresh_ownership()
        # Rank 0's node 2 is now peripheral and active: it ships updates.
        assert busy.buffer_sizes(2) == [0, 1]
        assert busy.neighbor_procs() == [1]
        # Rank 1's adopted node 3 is peripheral but halted: excluded.
        assert idle.buffer_sizes(2) == [0, 0]
        assert idle.neighbor_procs() == []
        # Waking the migrated vertex updates the (re-warmed) memo again.
        idle.set_halted(3, False)
        assert idle.buffer_sizes(2) == [1, 0]
        assert idle.neighbor_procs() == [0]

    def test_halt_flags_survive_capture_restore(self, path6, store_cls):
        store = store_cls(0, path6, [0, 0, 0, 1, 1, 1], lambda gid: gid * 10)
        store.set_halted(2)
        store.set_halted(3)
        snapshot = store.capture_state()
        assert snapshot["halted"] == [2, 3]
        store.set_halted(2, False)
        store.restore_state(snapshot)
        assert store.halted_gids() == [2, 3]
        assert store.is_halted(2) and store.is_halted(3)
        assert store.buffer_sizes(2) == [0, 0]

    def test_unknown_gid_raises(self, path6, store_cls):
        store = store_cls(0, path6, [0, 0, 0, 1, 1, 1], lambda gid: gid * 10)
        with pytest.raises(KeyError):
            store.is_halted(6)  # rank 0 holds no data for node 6
        with pytest.raises(KeyError):
            store.set_halted(6)
