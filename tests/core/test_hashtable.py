"""Tests for the modulo-hash node table, including hypothesis properties."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import NodeData, NodeHashTable


class TestBasics:
    def test_insert_and_get(self):
        table = NodeHashTable(10)
        record = NodeData(5, data=50)
        assert table.insert(record)
        assert table.get(5) is record
        assert table[5] is record

    def test_get_missing_returns_none(self):
        table = NodeHashTable(10)
        assert table.get(3) is None
        with pytest.raises(KeyError):
            table[3]

    def test_duplicate_insert_is_noop(self):
        table = NodeHashTable(10)
        first = NodeData(5, data=1)
        table.insert(first)
        assert not table.insert(NodeData(5, data=2))
        assert table[5] is first
        assert len(table) == 1

    def test_remove(self):
        table = NodeHashTable(10)
        table.insert(NodeData(5, data=1))
        assert table.remove(5)
        assert not table.remove(5)
        assert 5 not in table
        assert len(table) == 0

    def test_contains(self):
        table = NodeHashTable(10)
        table.insert(NodeData(7, data=0))
        assert 7 in table
        assert 8 not in table

    def test_hash_matches_appendix_formula(self):
        table = NodeHashTable(10)
        for gid in (1, 2, 3, 17, 100):
            assert table.hash_index(gid) == pow(3, gid, 10)

    def test_gid_must_be_positive(self):
        table = NodeHashTable(10)
        with pytest.raises(KeyError):
            table.hash_index(0)

    def test_invalid_length_rejected(self):
        with pytest.raises(ValueError):
            NodeHashTable(0)

    def test_buckets_kept_sorted(self):
        table = NodeHashTable(1)  # everything in one bucket
        for gid in (9, 3, 7, 1, 5):
            table.insert(NodeData(gid, data=0))
        bucket = table.bucket_lengths()
        assert bucket == [5]
        assert [r.global_id for r in table] == [1, 3, 5, 7, 9]

    def test_gids_sorted(self):
        table = NodeHashTable(16)
        for gid in (12, 4, 9):
            table.insert(NodeData(gid, data=0))
        assert table.gids() == [4, 9, 12]

    def test_clear(self):
        table = NodeHashTable(8)
        for gid in range(1, 10):
            table.insert(NodeData(gid, data=0))
        table.clear()
        assert len(table) == 0
        assert table.gids() == []

    def test_collisions_resolved(self):
        # length 10: 3^1=3, 3^5=3 mod 10 (3^5=243) -> same bucket
        table = NodeHashTable(10)
        table.insert(NodeData(1, data="a"))
        table.insert(NodeData(5, data="b"))
        assert table.hash_index(1) == table.hash_index(5)
        assert table[1].data == "a"
        assert table[5].data == "b"


@given(
    gids=st.lists(st.integers(min_value=1, max_value=500), unique=True, max_size=60),
    length=st.integers(min_value=1, max_value=64),
)
@settings(max_examples=60, deadline=None)
def test_property_insert_then_get_everything(gids, length):
    table = NodeHashTable(length)
    for gid in gids:
        assert table.insert(NodeData(gid, data=gid * 2))
    assert len(table) == len(gids)
    for gid in gids:
        assert table[gid].data == gid * 2
    assert table.gids() == sorted(gids)
    assert sum(table.bucket_lengths()) == len(gids)


@given(
    gids=st.lists(st.integers(min_value=1, max_value=200), unique=True, min_size=1, max_size=40),
    data=st.data(),
)
@settings(max_examples=60, deadline=None)
def test_property_remove_subset(gids, data):
    table = NodeHashTable(16)
    for gid in gids:
        table.insert(NodeData(gid, data=0))
    to_remove = data.draw(st.lists(st.sampled_from(gids), unique=True))
    for gid in to_remove:
        assert table.remove(gid)
    remaining = sorted(set(gids) - set(to_remove))
    assert table.gids() == remaining
    for gid in to_remove:
        assert gid not in table
