"""Tests for the dynamic load balancers."""

from __future__ import annotations

import pytest

from repro.core import (
    BusyIdlePair,
    CentralizedHeuristicBalancer,
    GreedyPairBalancer,
    LoadBalancer,
    build_processor_edges,
)


def ring_edges(n: int) -> list[list[int]]:
    """A ring processor graph with unit buffer sizes."""
    edges = [[0] * n for _ in range(n)]
    for i in range(n):
        edges[i][(i + 1) % n] = 1
        edges[(i + 1) % n][i] = 1
    return edges


class TestBuildProcessorEdges:
    def test_symmetrizes(self):
        sizes = [[0, 3, 0], [1, 0, 2], [0, 0, 0]]
        edges = build_processor_edges(sizes)
        assert edges[0][1] == edges[1][0] == 4
        assert edges[1][2] == edges[2][1] == 2
        assert edges[0][2] == 0
        assert edges[0][0] == 0

    def test_wrong_row_length_rejected(self):
        with pytest.raises(ValueError):
            build_processor_edges([[0, 1], [0]])


class TestCentralizedHeuristic:
    def test_is_a_load_balancer(self):
        assert isinstance(CentralizedHeuristicBalancer(), LoadBalancer)

    def test_paper_threshold_default(self):
        assert CentralizedHeuristicBalancer().threshold == 0.25

    def test_negative_threshold_rejected(self):
        with pytest.raises(ValueError):
            CentralizedHeuristicBalancer(-0.1)

    def test_relative_load_formula(self):
        bal = CentralizedHeuristicBalancer()
        rel = bal.relative_load([2.0, 1.0], [[0, 1], [1, 0]])
        assert rel[0][1] == pytest.approx(1.0)  # (2-1)/1
        assert rel[1][0] == 0.0  # t_1 < t_0

    def test_busy_must_exceed_all_neighbors(self):
        # proc 0 linked to 1 (much lighter) and 2 (equal): not busy.
        edges = [[0, 1, 1], [1, 0, 0], [1, 0, 0]]
        times = [2.0, 1.0, 2.0]
        assert CentralizedHeuristicBalancer().find_pairs(times, edges) == []

    def test_pair_found_when_clearly_busy(self):
        edges = [[0, 1, 1], [1, 0, 0], [1, 0, 0]]
        times = [2.0, 1.0, 1.5]
        pairs = CentralizedHeuristicBalancer().find_pairs(times, edges)
        assert pairs == [BusyIdlePair(busy=0, idle=1)]

    def test_idle_is_least_loaded_neighbor(self):
        edges = [[0, 1, 1, 0], [1, 0, 0, 0], [1, 0, 0, 0], [0, 0, 0, 0]]
        times = [4.0, 2.0, 1.0, 0.1]  # proc 3 is lightest but not a neighbour
        pairs = CentralizedHeuristicBalancer().find_pairs(times, edges)
        assert pairs == [BusyIdlePair(busy=0, idle=2)]

    def test_threshold_boundary(self):
        edges = [[0, 1], [1, 0]]
        at = CentralizedHeuristicBalancer(0.25).find_pairs([1.25, 1.0], edges)
        below = CentralizedHeuristicBalancer(0.25).find_pairs([1.24, 1.0], edges)
        assert at and not below

    def test_no_neighbors_no_pair(self):
        edges = [[0, 0], [0, 0]]
        assert CentralizedHeuristicBalancer().find_pairs([9.0, 1.0], edges) == []

    def test_zero_time_neighbor_is_never_idle_candidate(self):
        edges = [[0, 1], [1, 0]]
        # avoid division by zero; no pair because rel stays 0
        assert CentralizedHeuristicBalancer().find_pairs([1.0, 0.0], edges) == []

    def test_multiple_pairs(self):
        # two independent busy-idle islands on a 4-ring
        edges = ring_edges(4)
        times = [4.0, 1.0, 4.0, 1.0]
        pairs = CentralizedHeuristicBalancer().find_pairs(times, edges)
        assert BusyIdlePair(0, 1) in pairs or BusyIdlePair(0, 3) in pairs
        assert BusyIdlePair(2, 1) in pairs or BusyIdlePair(2, 3) in pairs

    def test_uniform_load_no_pairs(self):
        edges = ring_edges(6)
        assert CentralizedHeuristicBalancer().find_pairs([1.0] * 6, edges) == []


class TestGreedyPair:
    def test_fires_on_partial_gradient(self):
        """Unlike the centralized heuristic, a busy proc with one equal
        neighbour can still pair with a lighter one."""
        edges = [[0, 1, 1], [1, 0, 1], [1, 1, 0]]
        times = [2.0, 2.0, 1.0]
        pairs = GreedyPairBalancer(0.25).find_pairs(times, edges)
        assert BusyIdlePair(busy=0, idle=2) in pairs

    def test_each_proc_used_once(self):
        edges = ring_edges(4)
        times = [4.0, 1.0, 4.0, 1.0]
        pairs = GreedyPairBalancer(0.25).find_pairs(times, edges)
        used = [p.busy for p in pairs] + [p.idle for p in pairs]
        assert len(used) == len(set(used))

    def test_max_pairs_cap(self):
        edges = ring_edges(6)
        times = [6.0, 1.0, 6.0, 1.0, 6.0, 1.0]
        pairs = GreedyPairBalancer(0.25, max_pairs=1).find_pairs(times, edges)
        assert len(pairs) == 1

    def test_threshold_respected(self):
        edges = ring_edges(2)
        assert GreedyPairBalancer(0.5).find_pairs([1.4, 1.0], edges) == []
        assert GreedyPairBalancer(0.25).find_pairs([1.4, 1.0], edges)

    def test_negative_threshold_rejected(self):
        with pytest.raises(ValueError):
            GreedyPairBalancer(-1.0)

    def test_heaviest_pairs_first(self):
        edges = [[0, 1, 0, 0], [1, 0, 1, 0], [0, 1, 0, 1], [0, 0, 1, 0]]
        times = [10.0, 1.0, 5.0, 1.0]
        pairs = GreedyPairBalancer(0.25).find_pairs(times, edges)
        assert pairs[0].busy == 0


class TestDiffusion:
    def test_fires_on_any_gradient(self):
        from repro.core import DiffusionBalancer

        edges = [[0, 1, 1], [1, 0, 1], [1, 1, 0]]
        times = [2.0, 2.0, 1.0]
        pairs = DiffusionBalancer(0.25).find_pairs(times, edges)
        assert BusyIdlePair(0, 2) in pairs
        assert BusyIdlePair(1, 2) in pairs

    def test_no_pairs_when_flat(self):
        from repro.core import DiffusionBalancer

        edges = ring_edges(4)
        assert DiffusionBalancer(0.25).find_pairs([1.0] * 4, edges) == []

    def test_respects_edges(self):
        from repro.core import DiffusionBalancer

        edges = [[0, 1, 0], [1, 0, 0], [0, 0, 0]]
        times = [5.0, 1.0, 0.1]
        pairs = DiffusionBalancer(0.25).find_pairs(times, edges)
        assert pairs == [BusyIdlePair(0, 1)]  # 2 unreachable

    def test_threshold_and_validation(self):
        from repro.core import DiffusionBalancer

        import pytest

        with pytest.raises(ValueError):
            DiffusionBalancer(-0.1)
        edges = ring_edges(2)
        assert DiffusionBalancer(0.5).find_pairs([1.4, 1.0], edges) == []
        assert DiffusionBalancer(0.25).find_pairs([1.4, 1.0], edges)

    def test_is_a_load_balancer(self):
        from repro.core import DiffusionBalancer

        assert isinstance(DiffusionBalancer(), LoadBalancer)


class TestFindPairsEdgeCases:
    """Degenerate inputs both plug-in balancers must survive: an empty
    store (no processors at all), a single rank, perfectly equal loads,
    and a gap landing exactly on the threshold."""

    @staticmethod
    def balancers(threshold=0.25):
        from repro.core import DiffusionBalancer

        return [GreedyPairBalancer(threshold), DiffusionBalancer(threshold)]

    def test_empty_store(self):
        for balancer in self.balancers():
            assert balancer.find_pairs([], []) == []

    def test_single_rank(self):
        # One processor has no neighbours, hence nowhere to shed load.
        for balancer in self.balancers():
            assert balancer.find_pairs([5.0], [[0]]) == []

    def test_all_equal_loads(self):
        for n in (2, 4, 7):
            edges = ring_edges(n)
            for balancer in self.balancers():
                assert balancer.find_pairs([3.0] * n, edges) == []

    def test_all_equal_loads_zero_threshold(self):
        # The comparison is >=, so a zero gap at threshold 0 fires on every
        # flat edge; pin that so a future tightening to > is a conscious
        # choice.
        edges = ring_edges(3)
        for balancer in self.balancers(threshold=0.0):
            pairs = balancer.find_pairs([2.0, 2.0, 2.0], edges)
            assert pairs  # flat plateau, zero threshold: everything fires

    def test_threshold_boundary_fires(self):
        # Gap exactly == threshold: (1.25 - 1.0) / 1.0 == 0.25.  Both
        # balancers use >=, so the boundary produces a pair.
        edges = ring_edges(2)
        for balancer in self.balancers(threshold=0.25):
            pairs = balancer.find_pairs([1.25, 1.0], edges)
            assert BusyIdlePair(0, 1) in pairs

    def test_just_below_threshold_is_silent(self):
        edges = ring_edges(2)
        for balancer in self.balancers(threshold=0.25):
            assert balancer.find_pairs([1.2499, 1.0], edges) == []

    def test_zero_time_neighbor_never_divides(self):
        # An idle (0s) neighbour must not blow up the relative-gap division
        # and is never a candidate.
        edges = ring_edges(2)
        for balancer in self.balancers():
            assert balancer.find_pairs([5.0, 0.0], edges) == []
