"""Cross-mode conformance for change-driven execution.

``activation="sparse"`` (delta halo exchange + active-set computation) and
``converge="quiescence"`` (fixed-point early termination) are *performance*
modes: they must never change a single committed value.  Every test here
pins sparse results against the dense reference -- on plain sweeps, both
pipelines, multi-round applications, dynamic load balancing, crash
recovery (rollback and shrink), silent-corruption repair, and across 10
perturbed host schedules.

The conformance classes are additionally parametrized over the node-store
backend (``store="object"`` / ``store="soa"``): sparse-vs-dense equality
must hold whether the state lives in per-node objects or in contiguous
arrays with vectorized sweeps.
"""

from __future__ import annotations

import random
import time

import pytest

from repro.apps.average import make_average_fn
from repro.apps.battlefield import BattlefieldApp, general_engagement
from repro.apps.diffusion import hot_edge_plate, make_jacobi_fn
from repro.core import ICPlatform, PlatformConfig
from repro.graphs import hex32
from repro.mpi import FaultPlan
from repro.partitioning import MetisLikePartitioner

#: Distinct host schedules per fuzzed scenario (conformance spec).
RUNS = 10


def make_jitter(seed: int, max_sleep: float = 2e-4):
    """A jitter hook: sleep a seed-dependent random real-time amount."""
    rng = random.Random(seed)

    def jitter() -> None:
        if rng.random() < 0.5:
            time.sleep(rng.random() * max_sleep)

    return jitter


def run_hex(activation, *, overlap=False, iterations=6, faults=None,
            jitter=None, **overrides):
    graph = hex32()
    partition = MetisLikePartitioner(seed=0).partition(graph, 4)
    config = PlatformConfig(
        iterations=iterations,
        overlap_communication=overlap,
        activation=activation,
        track_trace=True,
        **overrides,
    )
    platform = ICPlatform(graph, make_average_fn(1e-4), config=config)
    return platform.run(
        partition,
        faults=FaultPlan.parse(faults) if faults else None,
        sched_jitter=jitter,
        deadlock_timeout=10.0,
    )


def run_plate(activation, *, converge="fixed", iterations=150, faults=None,
              jitter=None, **overrides):
    graph, boundary, init = hot_edge_plate(8, 8)
    partition = MetisLikePartitioner(seed=0).partition(graph, 4)
    config = PlatformConfig(
        iterations=iterations,
        activation=activation,
        converge=converge,
        track_trace=True,
        **overrides,
    )
    platform = ICPlatform(
        graph, make_jacobi_fn(boundary, quantize=4), init_value=init, config=config
    )
    return platform.run(
        partition,
        faults=FaultPlan.parse(faults) if faults else None,
        sched_jitter=jitter,
        deadlock_timeout=10.0,
    )


@pytest.mark.parametrize("store", ["object", "soa"])
class TestSparseMatchesDense:
    def test_basic_pipeline(self, store):
        dense = run_hex("dense", store=store)
        sparse = run_hex("sparse", store=store)
        assert sparse.values == dense.values
        assert sparse.final_assignment == dense.final_assignment

    def test_overlapped_pipeline(self, store):
        dense = run_hex("dense", overlap=True, store=store)
        sparse = run_hex("sparse", overlap=True, store=store)
        assert sparse.values == dense.values

    def test_diffusion_workload(self, store):
        dense = run_plate("dense", store=store)
        sparse = run_plate("sparse", store=store)
        assert sparse.values == dense.values

    def test_multi_round_battlefield(self, store):
        """Two node functions per iteration: the per-round dirty sets must
        keep round-1 activity from hiding round-0 work and vice versa."""
        app = BattlefieldApp(general_engagement())
        graph = app.graph()
        partition = MetisLikePartitioner(seed=0, trials=4).partition(graph, 8)

        def run(activation):
            platform = ICPlatform(
                graph,
                app.node_fns(),
                init_value=app.init_value,
                config=app.platform_config(
                    steps=6, activation=activation, store=store
                ),
            )
            return platform.run(partition)

        dense = run("dense")
        sparse = run("sparse")
        assert sorted(sparse.values.items()) == sorted(dense.values.items())

    def test_dynamic_load_balancing_migration(self, store):
        """Migrations change ownership mid-run; the frontier falls back to
        dense and version counters ride the migration payload."""
        dense = run_hex(
            "dense", iterations=12, dynamic_load_balancing=True, lb_period=4,
            store=store,
        )
        sparse = run_hex(
            "sparse", iterations=12, dynamic_load_balancing=True, lb_period=4,
            store=store,
        )
        assert sparse.values == dense.values
        assert sparse.migrations == dense.migrations
        assert sparse.final_assignment == dense.final_assignment

    def test_repartition_rebuild(self, store):
        dense = run_hex(
            "dense",
            iterations=12,
            dynamic_load_balancing=True,
            lb_period=4,
            rebalance_mode="repartition",
            store=store,
        )
        sparse = run_hex(
            "sparse",
            iterations=12,
            dynamic_load_balancing=True,
            lb_period=4,
            rebalance_mode="repartition",
            store=store,
        )
        assert sparse.values == dense.values
        assert sparse.repartitions == dense.repartitions

    def test_sparse_sends_fewer_messages_once_converged(self, store):
        """Past the fixed point the delta exchange goes quiet while the
        dense exchange keeps re-sending every shadow record."""
        dense = run_plate("dense", store=store)
        sparse = run_plate("sparse", store=store)
        assert sparse.values == dense.values
        assert sparse.messages_delivered < dense.messages_delivered
        assert sparse.elapsed < dense.elapsed


@pytest.mark.parametrize("store", ["object", "soa"])
class TestSparseUnderFaults:
    def test_crash_rollback(self, store):
        """Checkpoint rollback must restore version counters and the change
        frontier -- resuming with an empty frontier would freeze nodes whose
        rolled-back changes were never re-applied."""
        plan = "seed=3,crash=2@5"
        dense_clean = run_hex("dense", iterations=8, checkpoint_period=3,
                              store=store)
        sparse = run_hex(
            "sparse", iterations=8, checkpoint_period=3, faults=plan,
            store=store,
        )
        assert sparse.values == dense_clean.values
        assert sparse.recoveries == 1

    def test_crash_shrink(self, store):
        """Shrink recovery rebuilds every store from bare committed values;
        sparse mode must reset to dense sweeps and still finish identical."""
        plan = "seed=3,crash=2@5"
        dense_clean = run_hex(
            "dense", iterations=8, checkpoint_period=3,
            recovery_policy="shrink", store=store,
        )
        sparse = run_hex(
            "sparse",
            iterations=8,
            checkpoint_period=3,
            recovery_policy="shrink",
            faults=plan,
            store=store,
        )
        assert sparse.values == dense_clean.values
        assert sparse.dead_ranks == (2,)
        assert sparse.trace.reconfiguration_events()

    def test_integrity_repair(self, store):
        """A boundary memory flip under full protection heals surgically;
        the repair happens before any sweep consumes the corruption, so the
        sparse frontier needs no special handling."""
        graph = hex32()
        partition = MetisLikePartitioner(seed=0).partition(graph, 4)
        assignment = partition.assignment
        gid = next(
            g
            for g in sorted(graph.nodes())
            if assignment[g - 1] == 1
            and any(assignment[m - 1] != 1 for m in graph.neighbors(g))
        )
        plan = f"seed=11,flipmsg=0.05,flip=1@4:{gid}"
        dense_clean = run_hex("dense", iterations=8, integrity="full",
                              store=store)
        sparse = run_hex("sparse", iterations=8, integrity="full", faults=plan,
                         store=store)
        assert sparse.values == dense_clean.values
        assert sparse.repairs == 1
        assert sparse.recoveries == 0


@pytest.mark.parametrize("store", ["object", "soa"])
class TestQuiescence:
    def test_early_termination_sparse(self, store):
        fixed = run_plate("dense", store=store)
        quiesced = run_plate("sparse", converge="quiescence", store=store)
        assert quiesced.values == fixed.values
        assert quiesced.quiesced_at is not None
        assert quiesced.quiesced_at < 150
        assert quiesced.iterations == quiesced.quiesced_at
        events = quiesced.trace.quiescence_events()
        assert len(events) == 1
        assert events[0].iteration == quiesced.quiesced_at
        assert events[0].configured_iterations == 150
        assert events[0].saved_iterations == 150 - quiesced.quiesced_at
        assert "quiescence" in quiesced.trace.render()

    def test_early_termination_dense_activation(self, store):
        """Quiescence is independent of activation: the dense sweeps also
        count changed nodes, so the reduction sees the same zero."""
        fixed = run_plate("dense", store=store)
        quiesced = run_plate("dense", converge="quiescence", store=store)
        assert quiesced.values == fixed.values
        assert quiesced.quiesced_at is not None

    def test_same_stop_iteration_dense_and_sparse(self, store):
        dense_q = run_plate("dense", converge="quiescence", store=store)
        sparse_q = run_plate("sparse", converge="quiescence", store=store)
        assert dense_q.quiesced_at == sparse_q.quiesced_at
        assert dense_q.values == sparse_q.values

    def test_not_reached_within_budget(self, store):
        result = run_plate("sparse", converge="quiescence", iterations=10,
                           store=store)
        assert result.quiesced_at is None
        assert result.iterations == 10
        assert not result.trace.quiescence_events()

    def test_resumes_after_rollback(self, store):
        """A crash mid-run rolls the frontier back with the values; the run
        must still reach the same fixed point and quiesce at the same
        iteration as the fault-free sparse run."""
        clean = run_plate("sparse", converge="quiescence", checkpoint_period=10,
                          store=store)
        assert clean.quiesced_at is not None
        crashed = run_plate(
            "sparse",
            converge="quiescence",
            checkpoint_period=10,
            faults="seed=3,crash=1@50",
            store=store,
        )
        assert crashed.values == clean.values
        assert crashed.quiesced_at == clean.quiesced_at
        assert crashed.recoveries == 1


class TestSparseScheduleFuzz:
    @pytest.mark.parametrize("overlap", [False, True])
    def test_sparse_run_is_schedule_independent(self, overlap):
        """Delta exchange relies on the barrier as a delivery fence and on
        parity tags; both must hold under any host interleaving."""
        reference = run_hex("sparse", overlap=overlap, iterations=6)
        for i in range(RUNS):
            fuzzed = run_hex(
                "sparse",
                overlap=overlap,
                iterations=6,
                jitter=make_jitter(seed=4000 + i),
            )
            assert fuzzed.elapsed == reference.elapsed
            assert fuzzed.values == reference.values
            assert fuzzed.trace.records == reference.trace.records
            assert [p.as_dict() for p in fuzzed.phases] == [
                p.as_dict() for p in reference.phases
            ]

    def test_sparse_quiescence_is_schedule_independent(self):
        reference = run_plate("sparse", converge="quiescence")
        assert reference.quiesced_at is not None
        for i in range(RUNS):
            fuzzed = run_plate(
                "sparse", converge="quiescence", jitter=make_jitter(seed=5000 + i)
            )
            assert fuzzed.elapsed == reference.elapsed
            assert fuzzed.values == reference.values
            assert fuzzed.quiesced_at == reference.quiesced_at
            assert fuzzed.trace.quiescence == reference.trace.quiescence

    def test_sparse_shrink_recovery_is_schedule_independent(self):
        plan = "seed=3,crash=2@5"
        reference = run_hex(
            "sparse",
            iterations=8,
            checkpoint_period=3,
            recovery_policy="shrink",
            faults=plan,
        )
        for i in range(RUNS):
            fuzzed = run_hex(
                "sparse",
                iterations=8,
                checkpoint_period=3,
                recovery_policy="shrink",
                faults=plan,
                jitter=make_jitter(seed=6000 + i),
            )
            assert fuzzed.elapsed == reference.elapsed
            assert fuzzed.values == reference.values
            assert fuzzed.trace.records == reference.trace.records

    def test_sparse_integrity_repair_is_schedule_independent(self):
        graph = hex32()
        partition = MetisLikePartitioner(seed=0).partition(graph, 4)
        assignment = partition.assignment
        gid = next(
            g
            for g in sorted(graph.nodes())
            if assignment[g - 1] == 1
            and any(assignment[m - 1] != 1 for m in graph.neighbors(g))
        )
        plan = f"seed=11,flipmsg=0.05,flip=1@4:{gid}"
        reference = run_hex("sparse", iterations=8, integrity="full", faults=plan)
        for i in range(RUNS):
            fuzzed = run_hex(
                "sparse",
                iterations=8,
                integrity="full",
                faults=plan,
                jitter=make_jitter(seed=8000 + i),
            )
            assert fuzzed.elapsed == reference.elapsed
            assert fuzzed.values == reference.values
            assert fuzzed.trace.integrity == reference.trace.integrity
