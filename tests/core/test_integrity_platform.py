"""Platform-level silent-corruption detection and repair.

A ``flip=RANK@ITER[:NODE]`` fault corrupts one committed node value in
place.  What happens next depends on ``PlatformConfig.integrity``:

* ``off``/``checksum`` -- nothing notices; the corruption propagates into
  the final answer (the control case these tests pin down),
* ``digest`` -- the per-superstep digest check catches it and every rank
  rolls back past the injection,
* ``full`` -- a corrupted *boundary* node is instead re-fetched from the
  neighbor rank that already mirrors it as a shadow (surgical repair, no
  rollback); interior nodes still roll back.
"""

from __future__ import annotations

import pytest

from repro.apps.average import make_average_fn
from repro.core import ICPlatform, PlatformConfig
from repro.graphs import hex32
from repro.graphs.generators import grid2d
from repro.mpi import FaultPlan
from repro.partitioning import MetisLikePartitioner

NPROCS = 4
ITERATIONS = 8


@pytest.fixture(scope="module")
def setup():
    graph = hex32()
    partition = MetisLikePartitioner(seed=0).partition(graph, NPROCS)
    return graph, partition


def run_once(
    graph,
    partition,
    integrity="off",
    faults=None,
    integrity_period=1,
    checkpoint_period=0,
    checkpoint_keep=2,
):
    config = PlatformConfig(
        iterations=ITERATIONS,
        integrity=integrity,
        integrity_period=integrity_period,
        checkpoint_period=checkpoint_period,
        checkpoint_keep=checkpoint_keep,
        track_trace=True,
    )
    platform = ICPlatform(graph, make_average_fn(1e-4), config=config)
    return platform.run(
        partition,
        faults=FaultPlan.parse(faults) if faults else None,
        deadlock_timeout=10.0,
    )


def boundary_gid(graph, partition, rank):
    assignment = partition.assignment
    return next(
        g
        for g in sorted(graph.nodes())
        if assignment[g - 1] == rank
        and any(assignment[m - 1] != rank for m in graph.neighbors(g))
    )


def interior_gid(graph, partition, rank):
    assignment = partition.assignment
    return next(
        g
        for g in sorted(graph.nodes())
        if assignment[g - 1] == rank
        and all(assignment[m - 1] == rank for m in graph.neighbors(g))
    )


class TestUnprotected:
    def test_flip_escapes_silently(self, setup):
        graph, partition = setup
        clean = run_once(graph, partition)
        flipped = run_once(graph, partition, faults="flip=1@4")
        assert flipped.values != clean.values
        assert flipped.repairs == 0 and flipped.recoveries == 0
        assert flipped.trace.integrity == ()
        assert flipped.fault_report.flips == 1

    def test_checksums_do_not_protect_memory(self, setup):
        # Checksummed transport guards the wire, not the stores.
        graph, partition = setup
        clean = run_once(graph, partition)
        flipped = run_once(graph, partition, integrity="checksum", faults="flip=1@4")
        assert flipped.values != clean.values


class TestSurgicalRepair:
    def test_boundary_flip_repairs_without_rollback(self, setup):
        graph, partition = setup
        gid = boundary_gid(graph, partition, rank=1)
        clean = run_once(graph, partition)
        result = run_once(graph, partition, integrity="full", faults=f"flip=1@4:{gid}")
        assert result.values == clean.values  # zero escapes
        assert result.repairs == 1
        assert result.recoveries == 0  # no rollback happened
        (event,) = result.trace.integrity_events()
        assert event.mode == "repair"
        assert event.gid == gid
        assert event.owner == 1
        assert event.latency == 0
        assert event.replica is not None and event.replica != 1
        assert event.resumed_iteration == event.iteration  # nothing redone
        # Every rank recorded the same collective event.
        assert len(result.trace.integrity) == NPROCS

    def test_repair_costs_virtual_time(self, setup):
        graph, partition = setup
        gid = boundary_gid(graph, partition, rank=1)
        protected = run_once(graph, partition, integrity="full")
        repaired = run_once(
            graph, partition, integrity="full", faults=f"flip=1@4:{gid}"
        )
        assert repaired.elapsed > protected.elapsed

    def test_lowest_owned_default_target(self, setup):
        # flip=RANK@ITER without :NODE corrupts the lowest owned node.
        graph, partition = setup
        clean = run_once(graph, partition)
        result = run_once(graph, partition, integrity="full", faults="flip=2@3")
        assert result.values == clean.values
        assert result.repairs + result.recoveries >= 1

    def test_simultaneous_flips_on_two_ranks(self, setup):
        graph, partition = setup
        g1 = boundary_gid(graph, partition, rank=1)
        g2 = boundary_gid(graph, partition, rank=2)
        clean = run_once(graph, partition)
        result = run_once(
            graph,
            partition,
            integrity="full",
            faults=f"flip=1@4:{g1},flip=2@4:{g2}",
        )
        assert result.values == clean.values
        assert result.repairs == 2
        assert result.recoveries == 0


class TestRollbackFallback:
    def test_interior_flip_rolls_back(self, setup):
        graph, partition = setup
        gid = interior_gid(graph, partition, rank=0)
        clean = run_once(graph, partition)
        result = run_once(graph, partition, integrity="full", faults=f"flip=0@4:{gid}")
        assert result.values == clean.values
        assert result.repairs == 0
        assert result.recoveries == 1
        (event,) = result.trace.integrity_events()
        assert event.mode == "rollback"
        assert event.replica is None
        # No periodic checkpoints: rollback replays from the baseline.
        assert event.resumed_iteration == 1
        assert result.trace.rolled_back()

    def test_digest_mode_rolls_back_even_boundary(self, setup):
        graph, partition = setup
        gid = boundary_gid(graph, partition, rank=1)
        clean = run_once(graph, partition)
        result = run_once(
            graph, partition, integrity="digest", faults=f"flip=1@4:{gid}"
        )
        assert result.values == clean.values
        assert result.repairs == 0
        assert result.recoveries == 1

    def test_late_detection_forces_rollback(self, setup):
        # integrity_period=2: the flip at iteration 4 is only *agreed on* at
        # the iteration-5 exchange -- latency 1, downstream state already
        # contaminated, so even a boundary node must roll back, past the
        # (tainted) checkpoint taken at the end of iteration 4.
        graph, partition = setup
        gid = boundary_gid(graph, partition, rank=1)
        clean = run_once(graph, partition)
        result = run_once(
            graph,
            partition,
            integrity="full",
            integrity_period=2,
            checkpoint_period=2,
            faults=f"flip=1@4:{gid}",
        )
        assert result.values == clean.values
        assert result.repairs == 0
        assert result.recoveries == 1
        (event,) = result.trace.integrity_events()
        assert event.mode == "rollback"
        assert event.latency == 1
        # The iteration-4 checkpoint was discarded as tainted: the restore
        # fell back to the older retained snapshot (iteration 2).
        assert event.resumed_iteration == 3


class TestConformance:
    @pytest.mark.parametrize("seed", range(5))
    def test_zero_escapes_across_seeds(self, setup, seed):
        """Any single flip anywhere, any seed: full protection always lands
        on the fault-free answer."""
        graph, partition = setup
        rank = seed % NPROCS
        iteration = 2 + seed
        clean = run_once(graph, partition)
        result = run_once(
            graph,
            partition,
            integrity="full",
            faults=f"seed={seed},flip={rank}@{iteration}",
        )
        assert result.values == clean.values
        assert result.repairs + result.recoveries >= 1

    def test_protection_is_transparent_without_faults(self, setup):
        graph, partition = setup
        clean = run_once(graph, partition)
        for level in ("checksum", "digest", "full"):
            result = run_once(graph, partition, integrity=level)
            assert result.values == clean.values
            assert result.repairs == 0 and result.recoveries == 0

    def test_full_protection_with_dynamic_load_balancing(self):
        graph = grid2d(8, 8)
        partition = MetisLikePartitioner(seed=0).partition(graph, NPROCS)
        config = PlatformConfig(
            iterations=12,
            dynamic_load_balancing=True,
            lb_period=5,
            integrity="full",
            validate_each_iteration=True,
        )
        gid = boundary_gid(graph, partition, rank=1)
        clean_cfg = config.with_overrides(integrity="off")
        clean = ICPlatform(graph, make_average_fn(1e-4), config=clean_cfg).run(
            partition, deadlock_timeout=10.0
        )
        result = ICPlatform(graph, make_average_fn(1e-4), config=config).run(
            partition,
            faults=FaultPlan.parse(f"flip=1@3:{gid}"),
            deadlock_timeout=10.0,
        )
        assert result.values == clean.values
        assert result.repairs + result.recoveries >= 1
