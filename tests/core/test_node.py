"""Tests for the node-level records."""

from __future__ import annotations

import pytest

from repro.core import INTERNAL, PERIPHERAL, NodeData, OwnNode


class TestNodeData:
    def test_commit_promotes(self):
        record = NodeData(1, data=10)
        record.most_recent_data = 42
        record.commit()
        assert record.data == 42

    def test_commit_without_update_keeps_data(self):
        record = NodeData(1, data=10)
        record.commit()
        assert record.data == 10

    def test_repr(self):
        assert "gid=3" in repr(NodeData(3, data=7))


class TestOwnNode:
    def _data(self, gid=1):
        return NodeData(gid, data=0)

    def test_internal_node(self):
        node = OwnNode(1, INTERNAL, 0, self._data(), (2, 3))
        assert not node.is_peripheral
        assert node.shadow_for_procs == ()

    def test_peripheral_node(self):
        node = OwnNode(1, PERIPHERAL, 0, self._data(), (2, 3), shadow_for_procs=(1, 2))
        assert node.is_peripheral

    def test_bad_kind_rejected(self):
        with pytest.raises(ValueError):
            OwnNode(1, "x", 0, self._data(), ())

    def test_internal_with_shadows_rejected(self):
        with pytest.raises(ValueError):
            OwnNode(1, INTERNAL, 0, self._data(), (2,), shadow_for_procs=(1,))

    def test_repr_mentions_kind(self):
        node = OwnNode(5, PERIPHERAL, 2, self._data(5), (1,), shadow_for_procs=(0,))
        assert "'p'" in repr(node)
