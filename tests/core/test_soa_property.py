"""Property-based mirror test: SoAStore vs NodeStore under random surgery.

Two stores -- the object reference and the struct-of-arrays subclass --
are built over the same random graph and assignment, then driven through
an identical random sequence of operations: pending writes + commits
(vectorized on the soa side, scalar on the object side), shadow updates,
halt-flag flips, ownership release/adoption with synthetic migration
payloads, record creation, shadow pruning, and checkpoint capture/restore
round-trips *including cross-store restores*.  After every operation the
stores must agree on every observable: record iteration order, committed
values and their exact Python types, pending values, version counters,
halt flags, internal/peripheral classification, memoized communication
topology, and byte-identical pickled snapshots.
"""

from __future__ import annotations

import pickle

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import NodeStore, SoAStore
from repro.graphs import random_connected_graph

NPROCS = 3

values_st = st.one_of(
    st.floats(allow_nan=False, allow_infinity=False, width=64),
    st.integers(min_value=-999, max_value=999),
    st.sampled_from(["a", "b", {"hp": 3}]),
)

ops_st = st.lists(
    st.one_of(
        st.tuples(st.just("pend"), st.integers(0, 63), values_st),
        st.tuples(st.just("sweep"), st.floats(-10, 10, allow_nan=False)),
        st.tuples(st.just("commit")),
        st.tuples(st.just("shadow"), st.integers(0, 63), values_st),
        st.tuples(st.just("halt"), st.integers(0, 63), st.booleans()),
        st.tuples(st.just("release"), st.integers(0, 63), st.integers(1, NPROCS - 1)),
        st.tuples(st.just("adopt"), st.integers(0, 63), st.floats(-10, 10, allow_nan=False)),
        st.tuples(st.just("ensure"), st.integers(0, 63), values_st, st.integers(0, 9)),
        st.tuples(st.just("prune")),
        st.tuples(st.just("roundtrip")),
        st.tuples(st.just("cross_restore")),
    ),
    min_size=1,
    max_size=14,
)


@st.composite
def mirror_cases(draw):
    n = draw(st.integers(min_value=6, max_value=18))
    seed = draw(st.integers(min_value=0, max_value=10**6))
    assignment = draw(
        st.lists(st.integers(0, NPROCS - 1), min_size=n, max_size=n)
    )
    ops = draw(ops_st)
    return n, seed, assignment, ops


def assert_mirrored(obj: NodeStore, soa: SoAStore) -> None:
    assert list(soa.data_records) == list(obj.data_records)
    assert sorted(soa.internal) == sorted(obj.internal)
    assert sorted(soa.peripheral) == sorted(obj.peripheral)
    assert soa.shadow_gids() == obj.shadow_gids()
    assert soa.owned_values() == obj.owned_values()
    assert soa.owned_versions() == obj.owned_versions()
    assert soa.halted_gids() == obj.halted_gids()
    assert soa.buffer_sizes(NPROCS) == obj.buffer_sizes(NPROCS)
    assert soa.neighbor_procs() == obj.neighbor_procs()
    for gid, ref in obj.data_records.items():
        rec = soa.data_records[gid]
        assert type(rec.data) is type(ref.data) and rec.data == ref.data
        assert type(rec.most_recent_data) is type(ref.most_recent_data)
        assert rec.most_recent_data == ref.most_recent_data
        assert rec.version == ref.version
        assert rec.halted == ref.halted
        assert soa.hash_table.get(gid) is rec  # identity invariant
    # Snapshots pickle byte-identically: checkpoints, migration payloads,
    # and integrity digests built from them cannot tell the stores apart.
    assert pickle.dumps(soa.capture_state(), 5) == pickle.dumps(obj.capture_state(), 5)
    obj.check_invariants()
    soa.check_invariants()


def apply_op(store, op, graph, nodes):
    """Apply one operation; returns an observable result for comparison."""
    kind = op[0]
    if kind == "pend":
        gid = nodes[op[1] % len(nodes)]
        if store.owns(gid):
            store.data_records[gid].most_recent_data = op[2]
            return ("pend", gid)
        return None
    if kind == "sweep":
        base = op[1]
        for node in store.owned_nodes():
            node.data.most_recent_data = base + node.global_id * 0.5
        return store.commit_owned()
    if kind == "commit":
        return store.commit_owned()
    if kind == "shadow":
        shadows = store.shadow_gids()
        if not shadows:
            return None
        gid = shadows[op[1] % len(shadows)]
        return ("shadow", gid, store.update_shadow(gid, op[2]))
    if kind == "halt":
        known = sorted(store.data_records)
        if not known:  # a rank owning nothing holds no records at all
            return None
        gid = known[op[1] % len(known)]
        return ("halt", gid, store.set_halted(gid, op[2]))
    if kind == "release":
        owned = sorted(g for g in nodes if store.owns(g))
        if not owned:
            return None
        gid = owned[op[1] % len(owned)]
        target = (store.rank + op[2]) % NPROCS
        store.assignment[gid - 1] = target
        store.release_node(gid)
        store.refresh_ownership()
        return ("release", gid, target)
    if kind == "adopt":
        foreign = sorted(g for g in nodes if not store.owns(g))
        if not foreign:
            return None
        gid = foreign[op[1] % len(foreign)]
        store.assignment[gid - 1] = store.rank
        payload = [
            (g, op[2] + g, (g * 7) % 5)
            for g in (gid, *graph.neighbors(gid))
        ]
        store.adopt_node(gid, payload)
        store.refresh_ownership()
        return ("adopt", gid)
    if kind == "ensure":
        gid = nodes[op[1] % len(nodes)]
        record = store.ensure_record(gid, op[2], version=op[3])
        return ("ensure", gid, type(record.data).__name__, record.version)
    if kind == "prune":
        return ("prune", store.prune_stale_shadows())
    if kind == "roundtrip":
        snapshot = store.capture_state()
        store.restore_state(pickle.loads(pickle.dumps(snapshot, 5)))
        return ("roundtrip",)
    raise AssertionError(f"unknown op {op!r}")


@given(mirror_cases())
@settings(max_examples=40, deadline=None)
def test_soa_mirrors_object_store(case):
    n, seed, assignment, ops = case
    graph = random_connected_graph(n, avg_degree=3.0, seed=seed)
    nodes = list(graph.nodes())
    init = lambda gid: float(gid)
    obj = NodeStore(0, graph, list(assignment), init)
    soa = SoAStore(0, graph, list(assignment), init)
    assert_mirrored(obj, soa)

    for op in ops:
        if op[0] == "cross_restore":
            # Swap snapshots between the stores: each must rebuild exactly
            # the state of the other (which mirrors its own).
            snap_obj = obj.capture_state()
            snap_soa = soa.capture_state()
            obj.restore_state(pickle.loads(pickle.dumps(snap_soa, 5)))
            soa.restore_state(pickle.loads(pickle.dumps(snap_obj, 5)))
        else:
            res_obj = apply_op(obj, op, graph, nodes)
            res_soa = apply_op(soa, op, graph, nodes)
            assert res_soa == res_obj, (op, res_obj, res_soa)
        assert_mirrored(obj, soa)


@given(
    st.integers(min_value=6, max_value=18),
    st.integers(min_value=0, max_value=10**6),
    st.lists(values_st, min_size=1, max_size=8),
)
@settings(max_examples=40, deadline=None)
def test_mixed_type_commits_demote_identically(n, seed, pendings):
    """Writing non-float values demotes the soa arrays to object dtype;
    the demotion must preserve every already-stored value exactly."""
    graph = random_connected_graph(n, avg_degree=3.0, seed=seed)
    assignment = [0] * graph.num_nodes
    init = lambda gid: float(gid)
    obj = NodeStore(0, graph, list(assignment), init)
    soa = SoAStore(0, graph, list(assignment), init)
    nodes = list(graph.nodes())
    for i, value in enumerate(pendings):
        gid = nodes[i % len(nodes)]
        obj.data_records[gid].most_recent_data = value
        soa.data_records[gid].most_recent_data = value
        assert obj.commit_owned() == soa.commit_owned()
        assert_mirrored(obj, soa)
