"""Tests for platform configuration and cost constants."""

from __future__ import annotations

import pytest

from repro.core import PlatformConfig, PlatformCosts


class TestPlatformCosts:
    def test_defaults_positive(self):
        costs = PlatformCosts()
        assert costs.list_item_cost > 0
        assert costs.pack_cost > 0
        assert costs.unpack_cost > 0
        assert costs.recv_setup_cost > 0

    def test_with_overrides(self):
        costs = PlatformCosts().with_overrides(pack_cost=1.0)
        assert costs.pack_cost == 1.0
        assert costs.unpack_cost == PlatformCosts().unpack_cost

    def test_frozen(self):
        with pytest.raises(AttributeError):
            PlatformCosts().pack_cost = 0.0  # type: ignore[misc]


class TestPlatformConfig:
    def test_defaults_match_paper(self):
        config = PlatformConfig()
        assert config.lb_period == 10       # "invoked every 10 time steps"
        assert config.lb_threshold == 0.25  # "25% more work"
        assert config.max_migrations_per_pair == 1
        assert not config.dynamic_load_balancing
        assert not config.overlap_communication
        assert config.comm_rounds == 1

    def test_overrides_do_not_mutate(self):
        config = PlatformConfig()
        other = config.with_overrides(dynamic_load_balancing=True)
        assert other.dynamic_load_balancing
        assert not config.dynamic_load_balancing

    def test_costs_embedded(self):
        costs = PlatformCosts(pack_cost=42.0)
        config = PlatformConfig(costs=costs)
        assert config.costs.pack_cost == 42.0

    def test_store_validation(self):
        assert PlatformConfig(store="soa").store == "soa"
        assert PlatformConfig(store="object").store == "object"
        with pytest.raises(ValueError, match="store"):
            PlatformConfig(store="columnar")

    def test_store_default_honours_environment(self, monkeypatch):
        monkeypatch.delenv("REPRO_STORE", raising=False)
        assert PlatformConfig().store == "object"
        monkeypatch.setenv("REPRO_STORE", "soa")
        assert PlatformConfig().store == "soa"
