"""Tests for task migration, including the Figure-9 candidate-selection
scenario and full collective migrations on the simulated cluster."""

from __future__ import annotations

import pytest

from repro.core import (
    CentralizedHeuristicBalancer,
    ComputeContext,
    NodeStore,
    PlatformConfig,
    load_balance_phase,
    migrate_node,
    select_migrating_node,
)
from repro.graphs import Graph, hex32
from repro.mpi import IDEAL, run_mpi


def make_store(graph, assignment, rank):
    return NodeStore(rank, graph, list(assignment), lambda gid: gid * 10)


class TestSelectMigratingNode:
    def test_figure9_scenario(self):
        """Figure 9: between candidates A and B on processor 0, pick the one
        whose migration keeps the edge cut minimal.

        Construction: node A(1) has three neighbours on proc 0 and one on
        proc 1; node B(2) has one neighbour on proc 0 and one on proc 1.
        Migrating A adds 3 cut edges and removes 1 (score +2); migrating B
        adds 1 and removes 1 (score 0) -> B wins.
        """
        g = Graph.from_edges(
            7,
            [
                (1, 3), (1, 4), (1, 5),  # A's local neighbours
                (1, 6),                  # A's neighbour on proc 1
                (2, 5),                  # B's local neighbour
                (2, 7),                  # B's neighbour on proc 1
            ],
        )
        assignment = [0, 0, 0, 0, 0, 1, 1]
        store = make_store(g, assignment, 0)
        assert select_migrating_node(store, to_proc=1) == 2

    def test_prefers_candidate_with_more_target_neighbors(self):
        g = Graph.from_edges(5, [(1, 3), (1, 4), (2, 4), (2, 5), (1, 2)])
        assignment = [0, 0, 1, 1, 1]
        store = make_store(g, assignment, 0)
        # node 1: remote nbrs 3,4 (proc1), local nbr 2 -> score 1-2=-1
        # node 2: remote nbrs 4,5 (proc1), local nbr 1 -> score 1-2=-1
        # tie -> peripheral-list order: node 1 first
        assert select_migrating_node(store, to_proc=1) == 1

    def test_no_candidate_returns_none(self):
        g = Graph.from_edges(4, [(1, 2), (3, 4)])
        assignment = [0, 0, 1, 1]
        store = make_store(g, assignment, 0)
        # proc 0's peripherals shadow only for... nothing: no cut edges to 1
        assert select_migrating_node(store, to_proc=1) is None


class TestMigrateNode:
    def _run_single_migration(self, graph, assignment, gid, src, dst, nprocs):
        """Run a collective migration on the simulated cluster; return the
        per-rank stores' summaries."""

        def fn(comm):
            store = make_store(graph, assignment, comm.rank)
            ctx = ComputeContext(comm, PlatformConfig().costs, graph.num_nodes)
            store.assignment[gid - 1] = dst
            migrate_node(comm, store, gid, src, dst, ctx)
            store.check_invariants()
            return {
                "owned": sorted(n.global_id for n in store.owned_nodes()),
                "kinds": {
                    n.global_id: n.kind for n in store.owned_nodes()
                },
            }

        return run_mpi(fn, nprocs, machine=IDEAL, deadlock_timeout=10.0)

    def test_ownership_transfers(self):
        g = Graph.from_edges(6, [(1, 2), (2, 3), (3, 4), (4, 5), (5, 6)])
        assignment = [0, 0, 0, 1, 1, 1]
        results = self._run_single_migration(g, assignment, 3, 0, 1, 2)
        assert results[0]["owned"] == [1, 2]
        assert results[1]["owned"] == [3, 4, 5, 6]

    def test_kind_transitions(self):
        g = Graph.from_edges(6, [(1, 2), (2, 3), (3, 4), (4, 5), (5, 6)])
        assignment = [0, 0, 0, 1, 1, 1]
        results = self._run_single_migration(g, assignment, 3, 0, 1, 2)
        # On busy: node 2 (neighbour of migrated 3) became peripheral.
        assert results[0]["kinds"][2] == "p"
        # On idle: node 4 turned internal (its neighbours 3,5 now local);
        # node 3 is peripheral (neighbour 2 remote).
        assert results[1]["kinds"][4] == "i"
        assert results[1]["kinds"][3] == "p"

    def test_third_party_shadow_holders_update(self):
        # path over 3 procs; migrating the middle node affects proc 2's
        # shadow bookkeeping.
        g = Graph.from_edges(5, [(1, 2), (2, 3), (3, 4), (4, 5)])
        assignment = [0, 0, 1, 2, 2]

        def fn(comm):
            store = make_store(g, assignment, comm.rank)
            ctx = ComputeContext(comm, PlatformConfig().costs, g.num_nodes)
            store.assignment[2] = 2  # node 3: proc 1 -> proc 2
            migrate_node(comm, store, 3, 1, 2, ctx)
            store.check_invariants()
            if comm.rank == 2:
                return store.own_node(3).shadow_for_procs
            if comm.rank == 0:
                return store.own_node(2).shadow_for_procs
            return None

        results = run_mpi(fn, 3, machine=IDEAL, deadlock_timeout=10.0)
        assert results[2] == (0,)   # node 3 now shadows for proc 0 only
        assert results[0] == (2,)   # node 2's updates now go to proc 2

    def test_unpatched_assignment_rejected(self):
        g = Graph.from_edges(2, [(1, 2)])

        def fn(comm):
            store = make_store(g, [0, 1], comm.rank)
            ctx = ComputeContext(comm, PlatformConfig().costs, 2)
            migrate_node(comm, store, 1, 0, 1, ctx)  # forgot the patch

        with pytest.raises(ValueError, match="patched"):
            run_mpi(fn, 2, machine=IDEAL, deadlock_timeout=10.0)


class TestLoadBalancePhase:
    def test_full_phase_moves_work_from_busy(self):
        g = hex32()
        assignment = [0 if gid <= 24 else 1 for gid in range(1, 33)]

        def fn(comm):
            store = make_store(g, assignment, comm.rank)
            ctx = ComputeContext(comm, PlatformConfig().costs, 32)
            exec_time = 3.0 if comm.rank == 0 else 1.0
            events = load_balance_phase(
                comm, store, CentralizedHeuristicBalancer(0.25), exec_time, ctx, 10
            )
            store.check_invariants()
            return [(e.global_id, e.from_proc, e.to_proc) for e in events], store.num_owned()

        results = run_mpi(fn, 2, machine=IDEAL, deadlock_timeout=10.0)
        events0, owned0 = results[0]
        events1, owned1 = results[1]
        assert events0 == events1, "migration log must agree on all ranks"
        assert len(events0) == 1
        gid, src, dst = events0[0]
        assert (src, dst) == (0, 1)
        assert owned0 == 23 and owned1 == 9

    def test_no_imbalance_no_migration(self):
        g = hex32()
        assignment = [gid % 2 for gid in range(32)]

        def fn(comm):
            store = make_store(g, assignment, comm.rank)
            ctx = ComputeContext(comm, PlatformConfig().costs, 32)
            events = load_balance_phase(
                comm, store, CentralizedHeuristicBalancer(0.25), 1.0, ctx, 10
            )
            return len(events)

        assert run_mpi(fn, 2, machine=IDEAL, deadlock_timeout=10.0) == [0, 0]

    def test_multi_task_migration_extension(self):
        g = hex32()
        assignment = [0 if gid <= 24 else 1 for gid in range(1, 33)]

        def fn(comm):
            store = make_store(g, assignment, comm.rank)
            ctx = ComputeContext(comm, PlatformConfig().costs, 32)
            exec_time = 3.0 if comm.rank == 0 else 1.0
            events = load_balance_phase(
                comm,
                store,
                CentralizedHeuristicBalancer(0.25),
                exec_time,
                ctx,
                10,
                max_migrations_per_pair=4,
            )
            store.check_invariants()
            return len(events)

        assert run_mpi(fn, 2, machine=IDEAL, deadlock_timeout=10.0) == [4, 4]

    def test_repeated_migrations_preserve_invariants(self):
        """Stress: many LB rounds with alternating busy processors."""
        g = hex32()
        assignment = [gid % 4 for gid in range(32)]

        def fn(comm):
            store = make_store(g, assignment, comm.rank)
            ctx = ComputeContext(comm, PlatformConfig().costs, 32)
            for round_idx in range(6):
                exec_time = 5.0 if comm.rank == round_idx % 4 else 1.0
                load_balance_phase(
                    comm, store, CentralizedHeuristicBalancer(0.25), exec_time, ctx, round_idx
                )
                store.check_invariants()
            total = comm.allreduce(store.num_owned())
            return total

        results = run_mpi(fn, 4, machine=IDEAL, deadlock_timeout=20.0)
        assert results == [32, 32, 32, 32]
