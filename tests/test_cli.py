"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import main, make_partitioner
from repro.graphs import hex32, read_chaco, read_partition


@pytest.fixture
def hexfile(tmp_path):
    path = tmp_path / "hex.txt"
    assert main(["generate", "--kind", "hex", "--rows", "4", "--cols", "8",
                 "--output", str(path)]) == 0
    return path


class TestGenerate:
    def test_hex(self, hexfile):
        graph = read_chaco(hexfile)
        assert graph.num_nodes == 32
        assert graph == hex32()

    @pytest.mark.parametrize("kind,extra,nodes", [
        ("grid", [], 64),
        ("torus", [], 64),
        ("random", ["--nodes", "40"], 40),
        ("battlefield", ["--rows", "8", "--cols", "8"], 64),
    ])
    def test_other_kinds(self, tmp_path, kind, extra, nodes):
        path = tmp_path / f"{kind}.txt"
        assert main(["generate", "--kind", kind, "--output", str(path), *extra]) == 0
        assert read_chaco(path).num_nodes == nodes


class TestPartition:
    def test_metis_writes_mapping(self, tmp_path, hexfile, capsys):
        out = tmp_path / "part.txt"
        assert main(["partition", "--graph", str(hexfile), "--scheme", "metis",
                     "--np", "4", "--output", str(out)]) == 0
        assignment = read_partition(out, num_nodes=32)
        assert set(assignment) == {0, 1, 2, 3}
        captured = capsys.readouterr().out
        assert "edge cut" in captured

    def test_band_needs_geometry(self, tmp_path, hexfile):
        out = tmp_path / "part.txt"
        with pytest.raises(SystemExit):
            main(["partition", "--graph", str(hexfile), "--scheme", "rowband",
                  "--np", "4", "--output", str(out)])

    def test_band_with_geometry(self, tmp_path, hexfile):
        out = tmp_path / "part.txt"
        assert main(["partition", "--graph", str(hexfile), "--scheme", "rowband",
                     "--np", "4", "--rows", "4", "--cols", "8",
                     "--output", str(out)]) == 0

    def test_geometry_mismatch_rejected(self, tmp_path, hexfile):
        out = tmp_path / "part.txt"
        with pytest.raises(SystemExit):
            main(["partition", "--graph", str(hexfile), "--scheme", "rowband",
                  "--np", "4", "--rows", "5", "--cols", "5",
                  "--output", str(out)])

    @pytest.mark.parametrize("scheme", ["pagrid", "spectral", "bfsgreedy",
                                        "random", "roundrobin"])
    def test_all_geometry_free_schemes(self, tmp_path, hexfile, scheme):
        out = tmp_path / f"{scheme}.txt"
        np = 4
        assert main(["partition", "--graph", str(hexfile), "--scheme", scheme,
                     "--np", str(np), "--output", str(out)]) == 0
        assert len(read_partition(out)) == 32

    def test_make_partitioner_unknown(self):
        with pytest.raises(SystemExit):
            make_partitioner("bogus", 2, 0, hex32())


class TestRun:
    def test_run_with_partitioner(self, hexfile, capsys):
        assert main(["run", "--graph", str(hexfile), "--np", "4",
                     "--iterations", "5"]) == 0
        out = capsys.readouterr().out
        assert "elapsed" in out
        assert "virtual seconds" in out

    def test_run_with_partition_file(self, tmp_path, hexfile, capsys):
        part = tmp_path / "p.txt"
        main(["partition", "--graph", str(hexfile), "--scheme", "metis",
              "--np", "4", "--output", str(part)])
        capsys.readouterr()
        assert main(["run", "--graph", str(hexfile), "--partition", str(part),
                     "--np", "4", "--iterations", "5", "--phases"]) == 0
        out = capsys.readouterr().out
        assert "from-file" in out
        assert "communication_overhead" in out

    def test_run_dynamic_imbalance(self, hexfile, capsys):
        assert main(["run", "--graph", str(hexfile), "--np", "4",
                     "--workload", "imbalance", "--iterations", "25",
                     "--dynamic", "--balancer", "greedy"]) == 0
        assert "migrations" in capsys.readouterr().out

    def test_run_repartition_mode(self, hexfile, capsys):
        assert main(["run", "--graph", str(hexfile), "--np", "4",
                     "--workload", "imbalance", "--iterations", "25",
                     "--dynamic", "--rebalance-mode", "repartition"]) == 0

    def test_run_with_fault_injection(self, hexfile, capsys):
        assert main(["run", "--graph", str(hexfile), "--np", "4",
                     "--iterations", "8", "--checkpoint-period", "3",
                     "--faults", "seed=7,delay=0.1,crash=1@5"]) == 0
        out = capsys.readouterr().out
        assert "fault report" in out
        assert "recoveries    1" in out
        assert "rank 1 crashes at iteration 5" in out

    def test_run_rejects_bad_fault_spec(self, hexfile, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["run", "--graph", str(hexfile), "--np", "2",
                  "--iterations", "2", "--faults", "explode=yes"])
        assert excinfo.value.code == 2

    def test_bad_fault_spec_exits_2_naming_token(self, hexfile, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["run", "--graph", str(hexfile), "--np", "2",
                  "--iterations", "2", "--faults", "seed=7,explode=yes"])
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        assert err.count("\n") == 1  # one-line diagnostic
        assert "--faults" in err
        assert "explode" in err

    def test_bad_recovery_policy_exits_2_naming_token(self, hexfile, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["run", "--graph", str(hexfile), "--np", "2",
                  "--iterations", "2", "--recovery", "teleport"])
        assert excinfo.value.code == 2
        assert "teleport" in capsys.readouterr().err

    def test_bad_checkpoint_keep_exits_2(self, hexfile, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["run", "--graph", str(hexfile), "--np", "2",
                  "--iterations", "2", "--checkpoint-keep", "0"])
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        assert "--checkpoint-keep" in err and "0" in err

    def test_run_shrink_recovery(self, hexfile, capsys):
        assert main(["run", "--graph", str(hexfile), "--np", "4",
                     "--iterations", "8", "--checkpoint-period", "3",
                     "--recovery", "shrink",
                     "--faults", "seed=7,crash=1@5"]) == 0
        out = capsys.readouterr().out
        assert "policy: shrink" in out
        assert "dead ranks" in out and "1" in out
        assert "reconfigured  iter 5" in out

    def test_run_overlap_and_machines(self, hexfile):
        for machine in ("ideal", "ethernet"):
            assert main(["run", "--graph", str(hexfile), "--np", "2",
                         "--iterations", "3", "--machine", machine,
                         "--overlap"]) == 0


class TestBenchAndInfo:
    def test_info(self, hexfile, capsys):
        assert main(["info", "--graph", str(hexfile)]) == 0
        out = capsys.readouterr().out
        assert "vertices   32" in out
        assert "connected  True" in out

    def test_bench_unknown_experiment(self):
        with pytest.raises(SystemExit):
            main(["bench", "nosuchthing"])

    def test_bench_table(self, capsys):
        assert main(["bench", "table5_rand32", "--seeds", "1"]) == 0
        out = capsys.readouterr().out
        assert "random graphs" in out
        assert "(paper)" in out


class TestPartitionAnalyze:
    def test_analyze_flag_prints_diagnostics(self, tmp_path, hexfile, capsys):
        out = tmp_path / "part.txt"
        assert main(["partition", "--graph", str(hexfile), "--scheme", "metis",
                     "--np", "4", "--output", str(out), "--analyze"]) == 0
        text = capsys.readouterr().out
        assert "surface/volume" in text
        assert "interfaces" in text
