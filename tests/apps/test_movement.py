"""Tests for the movement doctrine."""

from __future__ import annotations

import pytest

from repro.apps.battlefield import BLUE, HexState, MovementModel, RED


def col_of_factory(cols=8):
    return lambda gid: (gid - 1) % cols


def hexstate(gid, red=0.0, blue=0.0):
    return HexState(gid=gid, red=red, blue=blue)


class TestValidation:
    def test_fractions_in_range(self):
        with pytest.raises(ValueError):
            MovementModel(advance_fraction=1.5)
        with pytest.raises(ValueError):
            MovementModel(retreat_fraction=-0.1)

    def test_retreat_ratio_exceeds_one(self):
        with pytest.raises(ValueError):
            MovementModel(retreat_ratio=0.9)

    def test_min_move_nonnegative(self):
        with pytest.raises(ValueError):
            MovementModel(min_move=-1.0)


class TestAdvanceOnObjective:
    def test_red_marches_east(self):
        model = MovementModel(advance_fraction=0.5)
        # hex at col 1; neighbours at cols 0 and 2
        deps = model.departures_for_side(
            RED, 2, 4.0, 0.0, [hexstate(1), hexstate(3)], col_of_factory()
        )
        assert len(deps) == 1
        assert deps[0].target_gid == 3
        assert deps[0].strength == 2.0

    def test_blue_marches_west(self):
        model = MovementModel(advance_fraction=0.5)
        deps = model.departures_for_side(
            BLUE, 2, 4.0, 0.0, [hexstate(1), hexstate(3)], col_of_factory()
        )
        assert deps[0].target_gid == 1

    def test_red_at_east_edge_holds(self):
        model = MovementModel()
        col_of = col_of_factory(cols=3)
        # hex 3 is at col 2 (east edge); only westward neighbour exists
        deps = model.departures_for_side(
            RED, 3, 4.0, 0.0, [hexstate(2)], col_of
        )
        assert deps == []

    def test_small_force_holds(self):
        model = MovementModel(min_move=1.0, advance_fraction=0.5)
        deps = model.departures_for_side(
            RED, 2, 1.5, 0.0, [hexstate(3)], col_of_factory()
        )
        assert deps == []  # 0.75 <= min_move

    def test_no_neighbors_no_move(self):
        model = MovementModel()
        assert model.departures_for_side(RED, 1, 9.0, 0.0, [], col_of_factory()) == []


class TestEngage:
    def test_moves_toward_strongest_enemy(self):
        model = MovementModel(advance_fraction=0.5)
        deps = model.departures_for_side(
            RED, 2, 8.0, 0.0,
            [hexstate(1, blue=1.0), hexstate(3, blue=5.0)],
            col_of_factory(),
        )
        assert deps[0].target_gid == 3
        assert deps[0].side == RED

    def test_does_not_charge_overwhelming_force(self):
        model = MovementModel(advance_fraction=0.5, retreat_ratio=3.0)
        deps = model.departures_for_side(
            RED, 2, 2.0, 0.0, [hexstate(3, blue=50.0)], col_of_factory()
        )
        assert deps == []

    def test_stands_when_enemy_in_own_hex(self):
        model = MovementModel()
        deps = model.departures_for_side(
            RED, 2, 5.0, 4.0, [hexstate(1), hexstate(3)], col_of_factory()
        )
        assert deps == []


class TestRetreat:
    def test_retreats_when_overrun(self):
        model = MovementModel(retreat_fraction=0.75, retreat_ratio=3.0)
        deps = model.departures_for_side(
            RED, 2, 1.0, 4.0,
            [hexstate(1, red=3.0), hexstate(3, blue=3.0)],
            col_of_factory(),
        )
        assert len(deps) == 1
        assert deps[0].target_gid == 1  # friendliest neighbour
        assert deps[0].strength == 0.75

    def test_retreat_prefers_friendly_hex(self):
        model = MovementModel()
        deps = model.departures_for_side(
            BLUE, 2, 1.0, 5.0,
            [hexstate(1, red=9.0), hexstate(3, blue=2.0)],
            col_of_factory(),
        )
        assert deps[0].target_gid == 3
