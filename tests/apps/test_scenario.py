"""Tests for battlefield scenarios."""

from __future__ import annotations

import pytest

from repro.apps.battlefield import (
    general_engagement,
    meeting_engagement,
    opposing_fronts,
    single_combat_zone,
)
from repro.graphs import HexGrid


class TestOpposingFronts:
    def test_default_dimensions(self):
        s = opposing_fronts()
        assert s.grid.num_cells == 1024
        assert len(s.initial) == 1024

    def test_sides_separated(self):
        s = opposing_fronts(depth=8, strength_per_hex=8.0)
        grid = s.grid
        for gid, state in s.initial.items():
            _, col = grid.rc(gid)
            if col < 8:
                assert state.red == 8.0 and state.blue == 0.0
            elif col >= 24:
                assert state.blue == 8.0 and state.red == 0.0
            else:
                assert state.total == 0.0

    def test_totals_balanced(self):
        s = opposing_fronts()
        red, blue = s.total_strengths()
        assert red == blue > 0

    def test_overlap_rejected(self):
        with pytest.raises(ValueError):
            opposing_fronts(grid=HexGrid(8, 8), depth=5)

    def test_init_value_plugin(self):
        s = opposing_fronts()
        assert s.init_value(1).gid == 1


class TestGeneralEngagement:
    def test_interleaved_columns(self):
        s = general_engagement(grid=HexGrid(4, 6), strength_per_hex=5.0)
        for gid, state in s.initial.items():
            _, col = s.grid.rc(gid)
            if col % 2 == 0:
                assert state.red == 5.0
            else:
                assert state.blue == 5.0

    def test_everyone_in_contact(self):
        """Every deployed hex sees the enemy one hop away at step 0."""
        s = general_engagement(grid=HexGrid(6, 6))
        grid = s.grid
        for gid, state in s.initial.items():
            row, col = grid.rc(gid)
            enemy = "blue" if state.red > 0 else "red"
            visible = any(
                getattr(s.initial[grid.gid(nr, nc)], enemy) > 0
                for nr, nc in grid.neighbor_cells(row, col)
            )
            assert visible

    def test_totals_balanced_on_even_columns(self):
        s = general_engagement()
        red, blue = s.total_strengths()
        assert red == blue


class TestOtherScenarios:
    def test_meeting_engagement_two_columns(self):
        s = meeting_engagement(grid=HexGrid(8, 16), gap=4)
        occupied_cols = {
            s.grid.rc(gid)[1]
            for gid, state in s.initial.items()
            if state.total > 0
        }
        assert len(occupied_cols) == 2

    def test_single_combat_zone_concentrated(self):
        s = single_combat_zone(grid=HexGrid(16, 16), zone_rows=4)
        occupied = [gid for gid, st in s.initial.items() if st.total > 0]
        assert all(s.grid.rc(gid)[0] < 4 for gid in occupied)
        assert all(s.grid.rc(gid)[1] < 8 for gid in occupied)
