"""Tests for the combat (attrition) model."""

from __future__ import annotations

import pytest

from repro.apps.battlefield import CombatModel, HexState


def hexstate(gid=1, red=0.0, blue=0.0):
    return HexState(gid=gid, red=red, blue=blue)


class TestValidation:
    def test_kill_rate_range(self):
        with pytest.raises(ValueError):
            CombatModel(kill_rate=1.5)
        with pytest.raises(ValueError):
            CombatModel(kill_rate=-0.1)

    def test_adjacent_intensity_range(self):
        with pytest.raises(ValueError):
            CombatModel(adjacent_intensity=2.0)


class TestIncomingFire:
    def test_no_defenders_no_fire(self):
        model = CombatModel()
        fire_red, fire_blue = model.incoming_fire(
            hexstate(red=0.0, blue=0.0), [hexstate(gid=2, red=5.0, blue=5.0)]
        )
        assert fire_red == 0.0 and fire_blue == 0.0

    def test_own_hex_full_intensity(self):
        model = CombatModel(adjacent_intensity=0.5)
        fire_red, _ = model.incoming_fire(hexstate(red=1.0, blue=4.0), [])
        assert fire_red == 4.0

    def test_adjacent_attenuated(self):
        model = CombatModel(adjacent_intensity=0.5)
        fire_red, _ = model.incoming_fire(
            hexstate(red=1.0), [hexstate(gid=2, blue=4.0), hexstate(gid=3, blue=2.0)]
        )
        assert fire_red == 3.0

    def test_symmetric_roles(self):
        model = CombatModel(adjacent_intensity=0.5)
        fire_red, fire_blue = model.incoming_fire(
            hexstate(red=2.0, blue=2.0), [hexstate(gid=2, red=4.0, blue=4.0)]
        )
        assert fire_red == fire_blue == 4.0


class TestResolve:
    def test_losses_proportional(self):
        model = CombatModel(kill_rate=0.1, adjacent_intensity=0.5)
        red, blue, red_losses, blue_losses = model.resolve(
            hexstate(red=10.0, blue=5.0), []
        )
        assert red_losses == pytest.approx(0.5)   # 0.1 * 5
        assert blue_losses == pytest.approx(1.0)  # 0.1 * 10
        assert red == pytest.approx(9.5)
        assert blue == pytest.approx(4.0)

    def test_losses_capped_at_present_strength(self):
        model = CombatModel(kill_rate=1.0)
        red, _, red_losses, _ = model.resolve(
            hexstate(red=1.0, blue=100.0), []
        )
        assert red == 0.0
        assert red_losses == 1.0

    def test_peace_means_no_losses(self):
        model = CombatModel()
        red, blue, red_losses, blue_losses = model.resolve(hexstate(red=5.0), [])
        assert (red, blue, red_losses, blue_losses) == (5.0, 0.0, 0.0, 0.0)

    def test_strength_never_negative(self):
        model = CombatModel(kill_rate=1.0, adjacent_intensity=1.0)
        red, blue, *_ = model.resolve(
            hexstate(red=0.5, blue=0.5),
            [hexstate(gid=2, red=100.0, blue=100.0)],
        )
        assert red >= 0.0 and blue >= 0.0


class TestThreat:
    def test_threat_sums_visible_enemies(self):
        model = CombatModel()
        threat_to_red, threat_to_blue = model.threat(
            hexstate(red=1.0, blue=2.0),
            [hexstate(gid=2, red=3.0, blue=4.0)],
        )
        assert threat_to_red == 6.0   # blue here + blue next door
        assert threat_to_blue == 4.0  # red here + red next door
