"""Tests for battlefield hex states and departures."""

from __future__ import annotations

import pytest

from repro.apps.battlefield import BLUE, Departure, HexState, RED


class TestDeparture:
    def test_valid(self):
        d = Departure(target_gid=5, side=RED, strength=2.0)
        assert d.target_gid == 5

    def test_invalid_side(self):
        with pytest.raises(ValueError):
            Departure(1, "green", 1.0)

    def test_negative_strength(self):
        with pytest.raises(ValueError):
            Departure(1, RED, -0.5)


class TestHexState:
    def test_defaults_empty(self):
        s = HexState(gid=1)
        assert s.total == 0.0
        assert not s.contested
        assert s.step == 0

    def test_negative_strength_rejected(self):
        with pytest.raises(ValueError):
            HexState(gid=1, red=-1.0)

    def test_contested(self):
        assert HexState(gid=1, red=1.0, blue=1.0).contested
        assert not HexState(gid=1, red=1.0).contested

    def test_strength_lookup(self):
        s = HexState(gid=1, red=2.0, blue=3.0)
        assert s.strength(RED) == 2.0
        assert s.strength(BLUE) == 3.0
        with pytest.raises(ValueError):
            s.strength("green")

    def test_with_changes(self):
        s = HexState(gid=1, red=2.0)
        t = s.with_changes(red=5.0, step=3)
        assert t.red == 5.0 and t.step == 3
        assert s.red == 2.0  # immutable original

    def test_departing(self):
        s = HexState(
            gid=1,
            red=1.0,
            departures=(Departure(2, RED, 0.5), Departure(3, BLUE, 0.25)),
        )
        assert s.departing(RED) == 0.5
        assert s.departing(BLUE) == 0.25

    def test_total_strengths_counts_marchers(self):
        states = [
            HexState(gid=1, red=1.0, departures=(Departure(2, RED, 0.5),)),
            HexState(gid=2, blue=2.0),
        ]
        red, blue = HexState.total_strengths(states)
        assert red == 1.5
        assert blue == 2.0

    def test_nbytes_models_fat_hex_struct(self):
        assert HexState(gid=1).nbytes >= 1000

    def test_immutability(self):
        s = HexState(gid=1)
        with pytest.raises(AttributeError):
            s.red = 5.0  # type: ignore[misc]
