"""Tests for the combined-arms battlefield variant."""

from __future__ import annotations

import pytest

from repro.apps.battlefield import (
    ArmsHexState,
    CombinedArmsApp,
    CombinedArmsModel,
    ForceMix,
    opposing_arms_fronts,
    simulate_arms_sequential,
)
from repro.core import ICPlatform
from repro.graphs import HexGrid
from repro.mpi import IDEAL
from repro.partitioning import MetisLikePartitioner


class TestForceMix:
    def test_total(self):
        assert ForceMix(1.0, 2.0, 3.0).total == 6.0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            ForceMix(armor=-1.0)

    def test_arm_lookup(self):
        mix = ForceMix(armor=1.0, infantry=2.0, artillery=3.0)
        assert mix.arm("infantry") == 2.0
        with pytest.raises(KeyError):
            mix.arm("cavalry")

    def test_scaled_and_plus(self):
        mix = ForceMix(2.0, 4.0, 6.0)
        assert mix.scaled(0.5) == ForceMix(1.0, 2.0, 3.0)
        assert mix.plus(ForceMix(1.0, 1.0, 1.0)) == ForceMix(3.0, 5.0, 7.0)

    def test_minus_clamped(self):
        mix = ForceMix(1.0, 1.0, 1.0)
        out = mix.minus_clamped(ForceMix(2.0, 0.5, 0.0))
        assert out == ForceMix(0.0, 0.5, 1.0)

    def test_firepower_conserves_magnitude(self):
        """Total damage equals shooter strength times intensity (the matrix
        only redistributes it across defending arms)."""
        shooter = ForceMix(3.0, 4.0, 2.0)
        target = ForceMix(1.0, 1.0, 1.0)
        damage = shooter.firepower_against(target, intensity=0.5)
        assert damage.total == pytest.approx(shooter.total * 0.5)

    def test_firepower_against_empty_is_zero(self):
        assert ForceMix(5.0, 5.0, 5.0).firepower_against(ForceMix()).total == 0.0

    def test_effectiveness_skews_damage(self):
        """Artillery shreds infantry: against an even mix, infantry takes
        the largest share of pure-artillery fire."""
        arty = ForceMix(artillery=10.0)
        target = ForceMix(1.0, 1.0, 1.0)
        damage = arty.firepower_against(target)
        assert damage.infantry > damage.armor
        assert damage.infantry > damage.artillery

    def test_armor_overruns_artillery(self):
        armor = ForceMix(armor=10.0)
        target = ForceMix(1.0, 1.0, 1.0)
        damage = armor.firepower_against(target)
        assert damage.artillery == max(damage.armor, damage.infantry, damage.artillery)

    def test_infantry_ambushes_armor(self):
        infantry = ForceMix(infantry=10.0)
        target = ForceMix(1.0, 1.0, 1.0)
        damage = infantry.firepower_against(target)
        assert damage.armor == max(damage.armor, damage.infantry, damage.artillery)


class TestCombinedArmsModel:
    def test_artillery_reaches_neighbors_at_full_power(self):
        model = CombinedArmsModel(kill_rate=1.0, adjacent_intensity=0.5)
        own = ArmsHexState(gid=1, red=ForceMix(infantry=1.0))
        arty_neighbor = ArmsHexState(gid=2, blue=ForceMix(artillery=4.0))
        gun_neighbor = ArmsHexState(gid=3, blue=ForceMix(armor=4.0))
        damage_arty, _ = model.incoming(own, [arty_neighbor])
        damage_armor, _ = model.incoming(own, [gun_neighbor])
        # same shooter strength, but artillery ignores range attenuation
        assert damage_arty.total == pytest.approx(2 * damage_armor.total)

    def test_kill_rate_bounds(self):
        with pytest.raises(ValueError):
            CombinedArmsModel(kill_rate=2.0)

    def test_no_fire_without_defenders(self):
        model = CombinedArmsModel()
        own = ArmsHexState(gid=1)
        neighbor = ArmsHexState(gid=2, blue=ForceMix(armor=5.0))
        damage_red, damage_blue = model.incoming(own, [neighbor])
        assert damage_red.total == 0.0
        assert damage_blue.total == 0.0


@pytest.fixture(scope="module")
def arms_app():
    states, grid = opposing_arms_fronts(grid=HexGrid(8, 8), depth=3)
    return CombinedArmsApp(states, grid)


class TestCombinedArmsSimulation:
    def test_conservation_before_contact(self, arms_app):
        r0, b0 = ArmsHexState.totals(arms_app.initial.values())
        states = simulate_arms_sequential(arms_app, 1)
        r, b = ArmsHexState.totals(states.values())
        assert r == pytest.approx(r0)
        assert b == pytest.approx(b0)

    def test_attrition_when_engaged(self, arms_app):
        r0, b0 = ArmsHexState.totals(arms_app.initial.values())
        states = simulate_arms_sequential(arms_app, 15)
        r, b = ArmsHexState.totals(states.values())
        assert r < r0
        assert b < b0

    def test_armor_leads_the_advance(self, arms_app):
        """Higher mobility means armor concentrates at the front."""
        states = simulate_arms_sequential(arms_app, 3)
        grid = arms_app.grid
        # eastmost red-occupied column
        red_cols = [
            grid.rc(gid)[1] for gid, s in states.items() if s.red.total > 0.01
        ]
        tip = max(red_cols)
        tip_mix = ForceMix()
        for gid, s in states.items():
            if grid.rc(gid)[1] == tip:
                tip_mix = tip_mix.plus(s.red)
        # armor share at the tip exceeds its share in the base mix (3/9)
        assert tip_mix.armor / tip_mix.total > 3 / 9

    @pytest.mark.parametrize("nprocs", [1, 2, 4])
    def test_platform_equivalence(self, arms_app, nprocs):
        graph = arms_app.graph()
        partition = MetisLikePartitioner(seed=0).partition(graph, nprocs)
        platform = ICPlatform(
            graph,
            arms_app.node_fns(),
            init_value=arms_app.init_value,
            config=arms_app.platform_config(steps=5),
        )
        result = platform.run(partition, machine=IDEAL)
        assert result.values == simulate_arms_sequential(arms_app, 5)

    def test_deployment_validation(self):
        with pytest.raises(ValueError):
            opposing_arms_fronts(grid=HexGrid(4, 4), depth=3)
