"""Tests for the dynamic load-imbalance schedules (Figure 23)."""

from __future__ import annotations

import pytest

from repro.apps import PAPER_SCHEDULE, ImbalanceSchedule
from repro.apps.average import COARSE_GRAIN, FINE_GRAIN


class TestScheduleValidation:
    def test_windows_must_increase(self):
        with pytest.raises(ValueError):
            ImbalanceSchedule(windows=((10, 0.0, 0.5), (10, 0.25, 0.75)))

    def test_fractions_must_be_ordered(self):
        with pytest.raises(ValueError):
            ImbalanceSchedule(windows=((10, 0.7, 0.5),))

    def test_fractions_must_be_in_unit_range(self):
        with pytest.raises(ValueError):
            ImbalanceSchedule(windows=((10, -0.1, 0.5),))
        with pytest.raises(ValueError):
            ImbalanceSchedule(windows=((10, 0.5, 1.2),))

    def test_negative_grain_rejected(self):
        with pytest.raises(ValueError):
            ImbalanceSchedule(windows=((10, 0.0, 0.5),), heavy_grain=-1.0)


class TestPaperSchedule:
    """The Figure-23 rolling 50 % window."""

    def test_window1_first_half_heavy(self):
        n = 64
        assert PAPER_SCHEDULE.is_heavy(1, 5, n)
        assert PAPER_SCHEDULE.is_heavy(32, 10, n)
        assert not PAPER_SCHEDULE.is_heavy(33, 5, n)

    def test_window2_middle_heavy(self):
        n = 64
        assert not PAPER_SCHEDULE.is_heavy(15, 15, n)
        assert PAPER_SCHEDULE.is_heavy(16, 15, n)
        assert PAPER_SCHEDULE.is_heavy(48, 20, n)
        assert not PAPER_SCHEDULE.is_heavy(49, 15, n)

    def test_window3_last_half_heavy(self):
        n = 64
        assert PAPER_SCHEDULE.is_heavy(64, 25, n)
        assert not PAPER_SCHEDULE.is_heavy(31, 25, n)

    def test_past_all_windows_everything_light(self):
        assert not PAPER_SCHEDULE.is_heavy(1, 31, 64)
        assert not PAPER_SCHEDULE.is_heavy(64, 99, 64)

    def test_window_rolls(self):
        """A node in the first quarter is heavy early and light later."""
        n = 64
        assert PAPER_SCHEDULE.is_heavy(10, 5, n)
        assert not PAPER_SCHEDULE.is_heavy(10, 15, n)

    def test_heavy_count_roughly_half(self):
        for iteration in (5, 15, 25):
            count = PAPER_SCHEDULE.heavy_count(iteration, 64)
            assert 30 <= count <= 34

    def test_grain_values(self):
        assert PAPER_SCHEDULE.grain(1, 5, 64) == COARSE_GRAIN
        assert PAPER_SCHEDULE.grain(64, 5, 64) == FINE_GRAIN


class TestCustomSchedule:
    def test_persistent_window(self):
        sched = ImbalanceSchedule(windows=((10**6, 0.0, 0.25),))
        assert sched.is_heavy(1, 999, 100)
        assert not sched.is_heavy(26, 999, 100)

    def test_custom_grains(self):
        sched = ImbalanceSchedule(
            windows=((10, 0.0, 1.0),), heavy_grain=1.0, light_grain=0.5
        )
        assert sched.grain(1, 1, 4) == 1.0
        assert sched.grain(1, 11, 4) == 0.5


class TestNodeFn:
    def test_imbalanced_fn_charges_by_schedule(self):
        from repro.apps import make_imbalanced_average_fn
        from repro.core import NodeView

        class Ctx:
            num_nodes = 64
            charged = 0.0

            def work(self, seconds):
                self.charged += seconds

        fn = make_imbalanced_average_fn(PAPER_SCHEDULE)
        ctx = Ctx()
        fn(NodeView(global_id=1, value=0.0, neighbors=(), iteration=5), ctx)
        assert ctx.charged == COARSE_GRAIN
        ctx.charged = 0.0
        fn(NodeView(global_id=60, value=0.0, neighbors=(), iteration=5), ctx)
        assert ctx.charged == FINE_GRAIN
