"""Integration tests for the battlefield simulator: sequential reference vs
platform execution, conservation laws, and battle dynamics."""

from __future__ import annotations

import pytest

from repro.apps.battlefield import (
    BattlefieldApp,
    CombatModel,
    HexState,
    general_engagement,
    opposing_fronts,
    simulate_sequential,
)
from repro.core import ICPlatform
from repro.graphs import HexGrid
from repro.mpi import IDEAL
from repro.partitioning import MetisLikePartitioner, RowBandPartitioner


@pytest.fixture(scope="module")
def small_app() -> BattlefieldApp:
    """An 8x8 battlefield (fast enough for many-proc equivalence tests)."""
    return BattlefieldApp(
        opposing_fronts(grid=HexGrid(8, 8), depth=3, strength_per_hex=6.0)
    )


class TestSequentialReference:
    def test_states_advance_steps(self, small_app):
        states = simulate_sequential(small_app, 4)
        assert all(s.step == 4 for s in states.values())

    def test_conservation_before_contact(self, small_app):
        """Until fronts collide, total strength is exactly conserved."""
        initial_red, initial_blue = small_app.scenario.total_strengths()
        states = simulate_sequential(small_app, 1)
        red, blue = HexState.total_strengths(states.values())
        assert red == pytest.approx(initial_red)
        assert blue == pytest.approx(initial_blue)

    def test_strength_plus_destroyed_is_invariant(self, small_app):
        """Strength never appears or vanishes: survivors + destroyed ==
        deployed, at every step."""
        initial_red, initial_blue = small_app.scenario.total_strengths()
        for steps in (2, 5, 9):
            states = simulate_sequential(small_app, steps)
            red, blue = HexState.total_strengths(states.values())
            destroyed_red = sum(s.destroyed_red for s in states.values())
            destroyed_blue = sum(s.destroyed_blue for s in states.values())
            assert red + destroyed_red == pytest.approx(initial_red)
            assert blue + destroyed_blue == pytest.approx(initial_blue)

    def test_combat_eventually_happens(self, small_app):
        states = simulate_sequential(small_app, 12)
        destroyed = sum(s.destroyed_red + s.destroyed_blue for s in states.values())
        assert destroyed > 0

    def test_fronts_advance_toward_center(self, small_app):
        grid = small_app.scenario.grid
        states = simulate_sequential(small_app, 3)
        red_cols = [
            grid.rc(gid)[1] for gid, s in states.items() if s.red > 0.01
        ]
        assert max(red_cols) > 2  # red started in cols 0-2

    def test_strengths_never_negative(self, small_app):
        states = simulate_sequential(small_app, 15)
        assert all(s.red >= 0 and s.blue >= 0 for s in states.values())

    def test_general_engagement_burns_down_fast(self):
        app = BattlefieldApp(
            general_engagement(grid=HexGrid(8, 8), strength_per_hex=7.5)
        )
        initial = sum(app.scenario.total_strengths())
        after = sum(
            HexState.total_strengths(simulate_sequential(app, 10).values())
        )
        assert after < 0.5 * initial


class TestPlatformEquivalence:
    @pytest.mark.parametrize("nprocs", [1, 2, 4, 7])
    def test_platform_matches_sequential(self, small_app, nprocs):
        graph = small_app.graph()
        partition = MetisLikePartitioner(seed=0).partition(graph, nprocs)
        platform = ICPlatform(
            graph,
            small_app.node_fns(),
            init_value=small_app.init_value,
            config=small_app.platform_config(steps=6),
        )
        result = platform.run(partition, machine=IDEAL)
        expected = simulate_sequential(small_app, 6)
        assert result.values == expected

    def test_partitioner_choice_does_not_change_results(self, small_app):
        graph = small_app.graph()
        metis = MetisLikePartitioner(seed=0).partition(graph, 4)
        rows = RowBandPartitioner(8, 8).partition(graph, 4)
        make = lambda: ICPlatform(
            graph,
            small_app.node_fns(),
            init_value=small_app.init_value,
            config=small_app.platform_config(steps=5),
        )
        a = make().run(metis, machine=IDEAL)
        b = make().run(rows, machine=IDEAL)
        assert a.values == b.values

    def test_compute_load_concentrates_in_combat_zone(self, small_app):
        """The thesis's premise: combat zones make load spatially uneven."""
        states = simulate_sequential(small_app, 8)
        costs = [small_app.costs.combat_per_strength * s.total for s in states.values()]
        costs.sort()
        # busiest quartile >> quietest quartile
        quarter = len(costs) // 4
        assert sum(costs[-quarter:]) > 3 * sum(costs[:quarter])


class TestBattleDynamics:
    def test_higher_kill_rate_more_destruction(self):
        grid = HexGrid(8, 8)
        totals = []
        for kill in (0.02, 0.3):
            app = BattlefieldApp(
                general_engagement(grid=grid, strength_per_hex=6.0),
                combat=CombatModel(kill_rate=kill),
            )
            states = simulate_sequential(app, 6)
            totals.append(sum(HexState.total_strengths(states.values())))
        assert totals[1] < totals[0]

    def test_departures_cleared_after_movement_round(self, small_app):
        states = simulate_sequential(small_app, 3)
        assert all(s.departures == () for s in states.values())
